/**
 * @file
 * AES-128 block cipher (FIPS-197), implemented from scratch.
 *
 * The reproduction needs *functional* encryption so that the security
 * properties the paper argues for (Section 6) can be demonstrated and
 * tested end-to-end: nonce-unique ciphertexts, MAC forgery failure,
 * page scrambling on version reset.  This is a straightforward
 * table-free implementation; throughput is irrelevant because timing
 * is modeled separately (40-cycle pipelined engine, Table 3).
 */

#ifndef TOLEO_CRYPTO_AES_HH
#define TOLEO_CRYPTO_AES_HH

#include <array>
#include <cstdint>

namespace toleo {

/** One 16-byte AES block. */
using AesBlock = std::array<std::uint8_t, 16>;

/** One 16-byte AES-128 key. */
using AesKey = std::array<std::uint8_t, 16>;

/**
 * AES-128 with precomputed key schedule.  Encrypt and decrypt a single
 * 16-byte block.
 */
class Aes128
{
  public:
    explicit Aes128(const AesKey &key);

    /** Encrypt one block in place semantics: returns ciphertext. */
    AesBlock encrypt(const AesBlock &plain) const;

    /** Decrypt one block: returns plaintext. */
    AesBlock decrypt(const AesBlock &cipher) const;

  private:
    static constexpr unsigned numRounds = 10;
    /** Expanded round keys: (numRounds + 1) x 16 bytes. */
    std::array<std::uint8_t, 16 * (numRounds + 1)> roundKeys_;

    void expandKey(const AesKey &key);
};

/** Multiply in GF(2^8) with the AES polynomial (x^8+x^4+x^3+x+1). */
std::uint8_t gfMul(std::uint8_t a, std::uint8_t b);

/** AES S-box lookup (exposed for test vectors). */
std::uint8_t aesSbox(std::uint8_t x);

/** AES inverse S-box lookup. */
std::uint8_t aesInvSbox(std::uint8_t x);

} // namespace toleo

#endif // TOLEO_CRYPTO_AES_HH
