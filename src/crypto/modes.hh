/**
 * @file
 * AES modes of operation used by the memory-protection engines.
 *
 * - AES-CTR with a (version, address) nonce: client SGX's MEE cipher
 *   (Section 2.2).
 * - AES-XTS with a 128-bit tweak built from (version, address): the
 *   cipher scalable SGX and Toleo use.  Toleo's tweak is the 64-bit
 *   full version concatenated with the block address (Section 4.2).
 */

#ifndef TOLEO_CRYPTO_MODES_HH
#define TOLEO_CRYPTO_MODES_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "crypto/aes.hh"

namespace toleo {

/** Arbitrary-length buffer of bytes (one cache block in practice). */
using Bytes = std::vector<std::uint8_t>;

/**
 * AES-128 counter mode keyed once; encrypts/decrypts a buffer under a
 * 96-bit nonce (we pack version ‖ address) and 32-bit block counter.
 */
class AesCtr
{
  public:
    explicit AesCtr(const AesKey &key) : aes_(key) {}

    /** Encrypt (or decrypt -- CTR is an involution) a buffer. */
    Bytes apply(const Bytes &data, std::uint64_t version,
                Addr addr) const;

  private:
    Aes128 aes_;
};

/**
 * AES-128 XTS mode (IEEE 1619) over whole cache blocks.  Uses two
 * keys: one for data, one for the tweak.  The tweak is
 * (version << 64 | address) serialized little-endian and encrypted
 * under the tweak key, then advanced per 16-byte sub-block by
 * multiplication by x in GF(2^128).
 */
class AesXts
{
  public:
    AesXts(const AesKey &dataKey, const AesKey &tweakKey)
        : data_(dataKey), tweak_(tweakKey)
    {}

    /**
     * Encrypt a buffer (must be a multiple of 16 bytes).
     * @param version 64-bit full version used as tweak high half;
     *        scalable SGX passes 0 here (no nonce).
     */
    Bytes encrypt(const Bytes &plain, std::uint64_t version,
                  Addr addr) const;

    /** Inverse of encrypt(). */
    Bytes decrypt(const Bytes &cipher, std::uint64_t version,
                  Addr addr) const;

  private:
    Aes128 data_;
    Aes128 tweak_;

    AesBlock tweakFor(std::uint64_t version, Addr addr) const;
    static void gf128MulX(AesBlock &t);
};

/**
 * 56-bit message authentication code over
 * (version, address, ciphertext), truncated from an AES-CBC-MAC.
 * Matches the MAC definition in Section 2.2:
 * MAC = Hash_key(Version, address, cipher), 56 bits so eight MACs
 * pack into one 64-byte MAC block with spare space for the shared UV
 * (Section 4.4, Figure 4).
 */
class Mac56
{
  public:
    explicit Mac56(const AesKey &key) : aes_(key) {}

    std::uint64_t compute(std::uint64_t version, Addr addr,
                          const Bytes &cipher) const;

    /** Number of MAC bits (needed by layout/space accounting). */
    static constexpr unsigned bits = 56;

  private:
    Aes128 aes_;
};

} // namespace toleo

#endif // TOLEO_CRYPTO_MODES_HH
