#include "crypto/modes.hh"

#include <cstring>

#include "common/logging.hh"

namespace toleo {

namespace {

void
putLe64(std::uint8_t *dst, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        dst[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

} // namespace

Bytes
AesCtr::apply(const Bytes &data, std::uint64_t version, Addr addr) const
{
    Bytes out(data.size());
    AesBlock ctr{};
    putLe64(ctr.data(), version);
    putLe64(ctr.data() + 8, addr);
    // The low 32 bits of the address field double as the block
    // counter; cache blocks are only 4 AES blocks so no overflow.
    for (std::size_t off = 0; off < data.size(); off += 16) {
        AesBlock ks = aes_.encrypt(ctr);
        const std::size_t n = std::min<std::size_t>(16, data.size() - off);
        for (std::size_t i = 0; i < n; ++i)
            out[off + i] = data[off + i] ^ ks[i];
        // Increment counter (little-endian in byte 0..3).
        for (int i = 0; i < 4; ++i)
            if (++ctr[i] != 0)
                break;
    }
    return out;
}

AesBlock
AesXts::tweakFor(std::uint64_t version, Addr addr) const
{
    AesBlock t{};
    putLe64(t.data(), addr);
    putLe64(t.data() + 8, version);
    return tweak_.encrypt(t);
}

void
AesXts::gf128MulX(AesBlock &t)
{
    std::uint8_t carry = 0;
    for (int i = 0; i < 16; ++i) {
        std::uint8_t next = static_cast<std::uint8_t>(t[i] >> 7);
        t[i] = static_cast<std::uint8_t>((t[i] << 1) | carry);
        carry = next;
    }
    if (carry)
        t[0] ^= 0x87;
}

Bytes
AesXts::encrypt(const Bytes &plain, std::uint64_t version, Addr addr) const
{
    if (plain.size() % 16 != 0)
        panic("AesXts requires 16-byte multiples (got %zu)", plain.size());
    Bytes out(plain.size());
    AesBlock t = tweakFor(version, addr);
    for (std::size_t off = 0; off < plain.size(); off += 16) {
        AesBlock b;
        std::memcpy(b.data(), &plain[off], 16);
        for (int i = 0; i < 16; ++i)
            b[i] ^= t[i];
        b = data_.encrypt(b);
        for (int i = 0; i < 16; ++i)
            b[i] ^= t[i];
        std::memcpy(&out[off], b.data(), 16);
        gf128MulX(t);
    }
    return out;
}

Bytes
AesXts::decrypt(const Bytes &cipher, std::uint64_t version, Addr addr) const
{
    if (cipher.size() % 16 != 0)
        panic("AesXts requires 16-byte multiples (got %zu)", cipher.size());
    Bytes out(cipher.size());
    AesBlock t = tweakFor(version, addr);
    for (std::size_t off = 0; off < cipher.size(); off += 16) {
        AesBlock b;
        std::memcpy(b.data(), &cipher[off], 16);
        for (int i = 0; i < 16; ++i)
            b[i] ^= t[i];
        b = data_.decrypt(b);
        for (int i = 0; i < 16; ++i)
            b[i] ^= t[i];
        std::memcpy(&out[off], b.data(), 16);
        gf128MulX(t);
    }
    return out;
}

std::uint64_t
Mac56::compute(std::uint64_t version, Addr addr, const Bytes &cipher) const
{
    // CBC-MAC over (version ‖ addr ‖ cipher), zero-padded; truncated
    // to 56 bits.  Fixed-length inputs (one cache block) make plain
    // CBC-MAC safe here.
    AesBlock acc{};
    AesBlock hdr{};
    putLe64(hdr.data(), version);
    putLe64(hdr.data() + 8, addr);
    for (int i = 0; i < 16; ++i)
        acc[i] ^= hdr[i];
    acc = aes_.encrypt(acc);
    for (std::size_t off = 0; off < cipher.size(); off += 16) {
        const std::size_t n = std::min<std::size_t>(16, cipher.size() - off);
        for (std::size_t i = 0; i < n; ++i)
            acc[i] ^= cipher[off + i];
        acc = aes_.encrypt(acc);
    }
    std::uint64_t tag = 0;
    for (int i = 0; i < 8; ++i)
        tag |= static_cast<std::uint64_t>(acc[i]) << (8 * i);
    return tag & ((std::uint64_t{1} << bits) - 1);
}

} // namespace toleo
