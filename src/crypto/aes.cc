#include "crypto/aes.hh"

#include <cstring>

namespace toleo {

namespace {

/**
 * S-box generated at static-init time from the multiplicative inverse
 * in GF(2^8) followed by the affine transform, rather than pasted as a
 * 256-entry magic table; this keeps the construction auditable.
 */
struct SboxTables
{
    std::uint8_t sbox[256];
    std::uint8_t inv[256];

    SboxTables()
    {
        // Build log/antilog tables over generator 3.
        std::uint8_t exp[256];
        std::uint8_t log[256] = {0};
        std::uint8_t x = 1;
        for (int i = 0; i < 255; ++i) {
            exp[i] = x;
            log[x] = static_cast<std::uint8_t>(i);
            // multiply x by 3 = x + x*2 in GF(2^8)
            std::uint8_t x2 = static_cast<std::uint8_t>(
                (x << 1) ^ ((x & 0x80) ? 0x1b : 0));
            x = static_cast<std::uint8_t>(x2 ^ x);
        }
        exp[255] = exp[0];

        for (int i = 0; i < 256; ++i) {
            std::uint8_t q =
                i == 0 ? 0 : exp[255 - log[static_cast<std::uint8_t>(i)]];
            // Affine transform.
            std::uint8_t s = static_cast<std::uint8_t>(
                q ^ rotl8(q, 1) ^ rotl8(q, 2) ^ rotl8(q, 3) ^ rotl8(q, 4) ^
                0x63);
            sbox[i] = s;
            inv[s] = static_cast<std::uint8_t>(i);
        }
    }

    static std::uint8_t
    rotl8(std::uint8_t v, int k)
    {
        return static_cast<std::uint8_t>((v << k) | (v >> (8 - k)));
    }
};

const SboxTables tables;

std::uint8_t
xtime(std::uint8_t a)
{
    return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0));
}

} // namespace

std::uint8_t
gfMul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t p = 0;
    while (b) {
        if (b & 1)
            p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

std::uint8_t
aesSbox(std::uint8_t x)
{
    return tables.sbox[x];
}

std::uint8_t
aesInvSbox(std::uint8_t x)
{
    return tables.inv[x];
}

Aes128::Aes128(const AesKey &key)
{
    expandKey(key);
}

void
Aes128::expandKey(const AesKey &key)
{
    std::memcpy(roundKeys_.data(), key.data(), 16);
    std::uint8_t rcon = 1;
    for (unsigned i = 16; i < roundKeys_.size(); i += 4) {
        std::uint8_t t[4];
        std::memcpy(t, &roundKeys_[i - 4], 4);
        if (i % 16 == 0) {
            // RotWord + SubWord + Rcon
            std::uint8_t tmp = t[0];
            t[0] = static_cast<std::uint8_t>(tables.sbox[t[1]] ^ rcon);
            t[1] = tables.sbox[t[2]];
            t[2] = tables.sbox[t[3]];
            t[3] = tables.sbox[tmp];
            rcon = xtime(rcon);
        }
        for (unsigned j = 0; j < 4; ++j)
            roundKeys_[i + j] =
                static_cast<std::uint8_t>(roundKeys_[i - 16 + j] ^ t[j]);
    }
}

AesBlock
Aes128::encrypt(const AesBlock &plain) const
{
    AesBlock s = plain;
    auto addRoundKey = [&](unsigned round) {
        for (unsigned i = 0; i < 16; ++i)
            s[i] ^= roundKeys_[round * 16 + i];
    };
    auto subBytes = [&]() {
        for (auto &b : s)
            b = tables.sbox[b];
    };
    auto shiftRows = [&]() {
        AesBlock t = s;
        // State is column-major: byte index = col*4 + row.
        for (unsigned r = 1; r < 4; ++r)
            for (unsigned c = 0; c < 4; ++c)
                s[c * 4 + r] = t[((c + r) % 4) * 4 + r];
    };
    auto mixColumns = [&]() {
        for (unsigned c = 0; c < 4; ++c) {
            std::uint8_t *col = &s[c * 4];
            std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
            col[0] = static_cast<std::uint8_t>(
                gfMul(a0, 2) ^ gfMul(a1, 3) ^ a2 ^ a3);
            col[1] = static_cast<std::uint8_t>(
                a0 ^ gfMul(a1, 2) ^ gfMul(a2, 3) ^ a3);
            col[2] = static_cast<std::uint8_t>(
                a0 ^ a1 ^ gfMul(a2, 2) ^ gfMul(a3, 3));
            col[3] = static_cast<std::uint8_t>(
                gfMul(a0, 3) ^ a1 ^ a2 ^ gfMul(a3, 2));
        }
    };

    addRoundKey(0);
    for (unsigned round = 1; round < numRounds; ++round) {
        subBytes();
        shiftRows();
        mixColumns();
        addRoundKey(round);
    }
    subBytes();
    shiftRows();
    addRoundKey(numRounds);
    return s;
}

AesBlock
Aes128::decrypt(const AesBlock &cipher) const
{
    AesBlock s = cipher;
    auto addRoundKey = [&](unsigned round) {
        for (unsigned i = 0; i < 16; ++i)
            s[i] ^= roundKeys_[round * 16 + i];
    };
    auto invSubBytes = [&]() {
        for (auto &b : s)
            b = tables.inv[b];
    };
    auto invShiftRows = [&]() {
        AesBlock t = s;
        for (unsigned r = 1; r < 4; ++r)
            for (unsigned c = 0; c < 4; ++c)
                s[((c + r) % 4) * 4 + r] = t[c * 4 + r];
    };
    auto invMixColumns = [&]() {
        for (unsigned c = 0; c < 4; ++c) {
            std::uint8_t *col = &s[c * 4];
            std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
            col[0] = static_cast<std::uint8_t>(gfMul(a0, 14) ^
                gfMul(a1, 11) ^ gfMul(a2, 13) ^ gfMul(a3, 9));
            col[1] = static_cast<std::uint8_t>(gfMul(a0, 9) ^
                gfMul(a1, 14) ^ gfMul(a2, 11) ^ gfMul(a3, 13));
            col[2] = static_cast<std::uint8_t>(gfMul(a0, 13) ^
                gfMul(a1, 9) ^ gfMul(a2, 14) ^ gfMul(a3, 11));
            col[3] = static_cast<std::uint8_t>(gfMul(a0, 11) ^
                gfMul(a1, 13) ^ gfMul(a2, 9) ^ gfMul(a3, 14));
        }
    };

    addRoundKey(numRounds);
    for (unsigned round = numRounds - 1; round >= 1; --round) {
        invShiftRows();
        invSubBytes();
        addRoundKey(round);
        invMixColumns();
    }
    invShiftRows();
    invSubBytes();
    addRoundKey(0);
    return s;
}

} // namespace toleo
