/**
 * @file
 * Timing parameters of the memory-protection crypto engines.
 *
 * Table 3: "AES 40 cycle latency, 1 per cycle throughput".  The
 * InvisiMem configuration encrypts messages twice (Section 7.1).
 */

#ifndef TOLEO_CRYPTO_TIMING_HH
#define TOLEO_CRYPTO_TIMING_HH

#include "common/types.hh"

namespace toleo {

struct CryptoTiming
{
    /** Latency of one AES operation through the pipelined engine. */
    Cycles aesLatency = 40;
    /** MAC computation latency (one extra AES pass over the block). */
    Cycles macLatency = 40;
    /** Operations accepted per cycle (pipelined). */
    double throughputPerCycle = 1.0;
};

} // namespace toleo

#endif // TOLEO_CRYPTO_TIMING_HH
