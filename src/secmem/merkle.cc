#include "secmem/merkle.hh"

namespace toleo {

MerkleTreeEngine::MerkleTreeEngine(MemTopology &topo,
                                   const MerkleConfig &cfg)
    : ProtectionEngine("Merkle", topo), cfg_(cfg),
      cache_(SetAssocCache::fromCapacity(cfg.versionCacheBytes, blockSize,
                                         cfg.versionCacheAssoc)),
      readsCtr_(stats_.counter("reads")),
      writebacksCtr_(stats_.counter("writebacks")),
      nodeFetchesCtr_(stats_.counter("node_fetches")),
      nodeWritebacksCtr_(stats_.counter("node_writebacks")),
      levelsWalkedCtr_(stats_.counter("levels_walked"))
{
    std::uint64_t nodes = cfg.protectedBytes / blockSize /
                          cfg.blocksPerLeaf;
    numLevels_ = 1;
    while (nodes > 1) {
        nodes = (nodes + cfg.arity - 1) / cfg.arity;
        ++numLevels_;
    }
}

std::uint64_t
MerkleTreeEngine::nodeKey(unsigned level, std::uint64_t index) const
{
    return (static_cast<std::uint64_t>(level) << 56) | index;
}

MetaCost
MerkleTreeEngine::walk(BlockNum blk, bool is_write)
{
    MetaCost cost;
    const PageNum page = pageOfBlock(blk);
    std::uint64_t index = blk / cfg_.blocksPerLeaf;

    for (unsigned level = 0; level < numLevels_; ++level) {
        auto res = cache_.access(nodeKey(level, index), is_write);
        if (res.writebackTag) {
            cost.metaBytes += blockSize;
            topo_.addDataTraffic(page, blockSize);
            ++nodeWritebacksCtr_;
        }
        if (res.hit) {
            // Everything above this node is already verified.
            break;
        }
        // Fetch the missing node: a dependent access in the chain.
        cost.metaBytes += blockSize;
        topo_.addDataTraffic(page, blockSize);
        cost.latencyNs +=
            cfg_.levelSerialization * topo_.dataLatencyNs(page);
        ++nodeFetchesCtr_;
        levelsWalkedCtr_ += 1;
        index /= cfg_.arity;
    }
    return cost;
}

MetaCost
MerkleTreeEngine::onRead(BlockNum blk)
{
    ++readsCtr_;
    MetaCost cost = walk(blk, false);
    // Decrypt + leaf MAC verify.
    cost.latencyNs += cyclesToNs(cfg_.crypto.aesLatency) +
                      cyclesToNs(cfg_.crypto.macLatency);
    return cost;
}

MetaCost
MerkleTreeEngine::onWriteback(BlockNum blk)
{
    ++writebacksCtr_;
    // A write increments the leaf counter and dirties every ancestor
    // (they will be written back on cache eviction).
    return walk(blk, true);
}

double
MerkleTreeEngine::avgExtraAccessesPerRead()
{
    const auto reads = stats_.counter("reads").value();
    const auto writes = stats_.counter("writebacks").value();
    const auto fetches = stats_.counter("node_fetches").value();
    const auto total = reads + writes;
    return total ? static_cast<double>(fetches) / total : 0.0;
}

} // namespace toleo
