/**
 * @file
 * Baseline engine: no memory protection at all.
 */

#ifndef TOLEO_SECMEM_NOPROTECT_HH
#define TOLEO_SECMEM_NOPROTECT_HH

#include "secmem/engine.hh"

namespace toleo {

class NoProtectEngine : public ProtectionEngine
{
  public:
    explicit NoProtectEngine(MemTopology &topo)
        : ProtectionEngine("NoProtect", topo)
    {}

    MetaCost onRead(BlockNum) override { return {}; }
    MetaCost onWriteback(BlockNum) override { return {}; }

    bool confidentiality() const override { return false; }
    bool integrity() const override { return false; }
    bool freshness() const override { return false; }
    bool fullMemory() const override { return true; }
};

} // namespace toleo

#endif // TOLEO_SECMEM_NOPROTECT_HH
