/**
 * @file
 * Merkle-tree (counter-tree) freshness engine -- the client-SGX-style
 * baseline that Toleo replaces (Sections 1-2).
 *
 * A counter tree covers the protected region: each 64 B tree node
 * authenticates `arity` children; leaves hold per-block version
 * counters.  The root stays on-chip.  A read must verify every node
 * from the leaf up to the first version-cache hit (or the root); the
 * walk is a dependent chain, so every missing level adds a full
 * memory round trip.  A write updates the leaf and dirties the path.
 *
 * Leaf layouts parameterize Table 4: SGX packs 8x56-bit counters per
 * block (64 B of data per 7 B counter), VAULT fits 16-64 counters,
 * MorphCtr-128 reaches 128 per block.
 */

#ifndef TOLEO_SECMEM_MERKLE_HH
#define TOLEO_SECMEM_MERKLE_HH

#include <vector>

#include "cache/set_assoc.hh"
#include "crypto/timing.hh"
#include "secmem/engine.hh"

namespace toleo {

struct MerkleConfig
{
    /** Memory the tree protects; sets the number of levels. */
    std::uint64_t protectedBytes = 28 * TiB;
    /** Children per tree node. */
    unsigned arity = 8;
    /** Data blocks covered per 64 B leaf node. */
    unsigned blocksPerLeaf = 8;
    /** On-chip version/tree-node cache (32 KB per core in [63]). */
    std::uint64_t versionCacheBytes = 1 * MiB;
    unsigned versionCacheAssoc = 16;
    CryptoTiming crypto;
    /**
     * Serialized fraction of channel latency per missing tree level
     * (dependent walk: near 1.0).
     */
    double levelSerialization = 0.9;
};

class MerkleTreeEngine : public ProtectionEngine
{
  public:
    MerkleTreeEngine(MemTopology &topo, const MerkleConfig &cfg);

    MetaCost onRead(BlockNum blk) override;
    MetaCost onWriteback(BlockNum blk) override;

    bool confidentiality() const override { return true; }
    bool integrity() const override { return true; }
    bool freshness() const override { return true; }
    /** A Merkle tree cannot feasibly cover tera-scale memory. */
    bool fullMemory() const override
    {
        return cfg_.protectedBytes <= 64 * GiB;
    }

    unsigned numLevels() const { return numLevels_; }
    double versionCacheHitRate() const { return cache_.hitRate(); }
    double avgExtraAccessesPerRead();

  private:
    MerkleConfig cfg_;
    SetAssocCache cache_;
    unsigned numLevels_;

    /** Counters resolved once; the walk touches several per miss. */
    Counter &readsCtr_;
    Counter &writebacksCtr_;
    Counter &nodeFetchesCtr_;
    Counter &nodeWritebacksCtr_;
    Counter &levelsWalkedCtr_;

    /** Walk leaf->root until a cached level; returns cost. */
    MetaCost walk(BlockNum blk, bool is_write);

    std::uint64_t nodeKey(unsigned level, std::uint64_t index) const;
};

} // namespace toleo

#endif // TOLEO_SECMEM_MERKLE_HH
