#include "secmem/ci.hh"

namespace toleo {

CiEngine::CiEngine(MemTopology &topo, const CiConfig &cfg,
                   std::string name)
    : ProtectionEngine(
          name.empty() ? (cfg.integrity ? "CI" : "C") : std::move(name),
          topo),
      cfg_(cfg),
      macCache_(SetAssocCache::fromCapacity(cfg.macCacheBytes, blockSize,
                                            cfg.macCacheAssoc)),
      readsCtr_(stats_.counter("reads")),
      writebacksCtr_(stats_.counter("writebacks")),
      macFetchesCtr_(stats_.counter("mac_fetches")),
      macWritebacksCtr_(stats_.counter("mac_writebacks"))
{}

double
CiEngine::macAccess(BlockNum blk, bool is_write, MetaCost &cost)
{
    const std::uint64_t mac_blk = macBlockOf(blk);
    const PageNum page = pageOfBlock(blk);

    auto res = macCache_.access(mac_blk, is_write);
    double latency = 0.0;

    if (!res.hit) {
        // Fetch the 64 B MAC block from the data's home memory.  The
        // fetch overlaps the data transfer, but the integrity check
        // gates data release, so part of the channel latency lands on
        // the critical path.
        cost.metaBytes += blockSize;
        const MemTopology::Route route = topo_.routeFor(page);
        topo_.addTraffic(route, blockSize);
        latency += cfg_.macFetchSerialization * topo_.latencyNs(route);
        ++macFetchesCtr_;
    }
    if (res.writebackTag) {
        // Dirty MAC block evicted: write it back.  Use the victim's
        // own page for channel selection.
        const PageNum victim_page =
            pageOfBlock(*res.writebackTag * 8);
        cost.metaBytes += blockSize;
        topo_.addDataTraffic(victim_page, blockSize);
        ++macWritebacksCtr_;
    }
    return latency;
}

MetaCost
CiEngine::onRead(BlockNum blk)
{
    MetaCost cost;
    ++readsCtr_;

    // Decrypt on the way in; the 40-cycle AES engine is pipelined so
    // only its latency (not throughput) shows on the critical path.
    cost.latencyNs += cyclesToNs(cfg_.crypto.aesLatency);

    if (cfg_.integrity) {
        cost.latencyNs += macAccess(blk, false, cost);
        // MAC verification itself overlaps decryption on a hit; on a
        // miss its latency is folded into the serialization factor.
    }
    return cost;
}

MetaCost
CiEngine::onWriteback(BlockNum blk)
{
    MetaCost cost;
    ++writebacksCtr_;

    // Encryption of an evicted block is off the read critical path.
    if (cfg_.integrity) {
        // Read-modify-write of the MAC block (write allocate).
        macAccess(blk, true, cost);
    }
    return cost;
}

} // namespace toleo
