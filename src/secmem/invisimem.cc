#include "secmem/invisimem.hh"

#include <algorithm>

namespace toleo {

InvisiMemEngine::InvisiMemEngine(MemTopology &topo,
                                 const InvisiMemConfig &cfg)
    : ProtectionEngine("InvisiMem", topo), cfg_(cfg),
      readsCtr_(stats_.counter("reads")),
      writebacksCtr_(stats_.counter("writebacks")),
      dummyBytesCtr_(stats_.counter("dummy_bytes"))
{}

MetaCost
InvisiMemEngine::onRead(BlockNum blk)
{
    MetaCost cost;
    ++readsCtr_;
    const PageNum page = pageOfBlock(blk);

    // Request packet padded to write size + double encryption of the
    // response payload.  (The MAC rides in the same packet.)
    cost.metaBytes += cfg_.packetOverheadBytes;
    topo_.addDataTraffic(page, cfg_.packetOverheadBytes);
    epochRealBytes_ += blockSize + cfg_.packetOverheadBytes;

    // Double encryption on both the request and response path, plus
    // packet (de)framing at each endpoint.
    cost.latencyNs += 2.0 * cyclesToNs(cfg_.crypto.aesLatency) +
                      2.0 * cyclesToNs(cfg_.crypto.macLatency) +
                      10.0;
    return cost;
}

MetaCost
InvisiMemEngine::onWriteback(BlockNum blk)
{
    MetaCost cost;
    ++writebacksCtr_;
    const PageNum page = pageOfBlock(blk);

    // Write acknowledgement padded to read-response size.
    cost.metaBytes += cfg_.packetOverheadBytes;
    topo_.addDataTraffic(page, cfg_.packetOverheadBytes);
    epochRealBytes_ += blockSize + cfg_.packetOverheadBytes;
    return cost;
}

std::uint64_t
InvisiMemEngine::padEpoch(double epoch_ns)
{
    // Aggregate bandwidth of the node's data channels.
    const double agg_gbps =
        topo_.numDdrChannels() * topo_.config().ddrBandwidthGBps +
        topo_.config().cxlPoolBandwidthGBps;
    // A negative dummyRateFraction (misconfiguration) must clamp to
    // zero padding, not hit the float->unsigned cast as UB.
    const auto target = static_cast<std::uint64_t>(
        std::max(0.0, cfg_.dummyRateFraction * agg_gbps * epoch_ns));

    std::uint64_t pad = 0;
    if (epochRealBytes_ < target)
        pad = target - epochRealBytes_;
    epochRealBytes_ = 0;

    if (pad > 0) {
        // Spread dummy traffic across pages so every channel gets a
        // share of the constant-rate padding.
        const unsigned shares = 16;
        const std::uint64_t chunk = pad / shares;
        for (unsigned i = 0; i < shares; ++i)
            topo_.addDataTraffic(static_cast<PageNum>(i) * 977 + 13,
                                 chunk);
        dummyBytes_ += pad;
        dummyBytesCtr_ += pad;
    }
    return pad;
}

} // namespace toleo
