/**
 * @file
 * Memory-protection engine interface.
 *
 * The simulation driver feeds every LLC miss (read fill) and dirty
 * LLC eviction (writeback) to the configured engine.  The engine
 * models the metadata side of the access -- MAC fetches, version
 * lookups, Merkle walks, dummy packets -- by accounting traffic on the
 * memory topology's channels and returning the latency added to the
 * critical path of a read.
 *
 * Engines correspond to the paper's evaluated configurations
 * (Section 7): NoProtect, C, CI, Toleo (in src/toleo), InvisiMem,
 * plus a Merkle-tree baseline used for ablations.
 */

#ifndef TOLEO_SECMEM_ENGINE_HH
#define TOLEO_SECMEM_ENGINE_HH

#include <cstdint>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/topology.hh"

namespace toleo {

/** Cost of the metadata work for one block access. */
struct MetaCost
{
    /** Serialized latency added to a read's critical path, ns. */
    double latencyNs = 0.0;
    /** Bytes of metadata moved on conventional memory channels. */
    std::uint64_t metaBytes = 0;
    /** Bytes moved on the Toleo CXL IDE link. */
    std::uint64_t toleoBytes = 0;
    /** Dummy-traffic bytes (InvisiMem constant-rate padding). */
    std::uint64_t dummyBytes = 0;
};

class ProtectionEngine
{
  public:
    explicit ProtectionEngine(std::string name, MemTopology &topo)
        : name_(std::move(name)), topo_(topo), stats_(name_)
    {}
    virtual ~ProtectionEngine() = default;

    /** A block is being fetched from memory into the LLC.
     *  Engines mutate genuinely shared state (topology channels,
     *  stat counters, version stores), so the request hooks are
     *  phase(shared): they may only run from the single-threaded
     *  replay, never from a concurrent private-phase body.  The
     *  annotation on the base covers every engine override. */
    // toleo: phase(shared)
    virtual MetaCost onRead(BlockNum blk) = 0;

    /** A dirty block is being written back from the LLC to memory. */
    // toleo: phase(shared)
    virtual MetaCost onWriteback(BlockNum blk) = 0;

    /** Does this engine guarantee confidentiality? */
    virtual bool confidentiality() const = 0;
    /** Does this engine guarantee integrity? */
    virtual bool integrity() const = 0;
    /** Does this engine guarantee freshness? */
    virtual bool freshness() const = 0;
    /** Can it protect the full physical memory space (28 TB)? */
    virtual bool fullMemory() const = 0;

    const std::string &name() const { return name_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  protected:
    std::string name_;
    // toleo: state(shared)
    MemTopology &topo_;
    // toleo: state(shared)
    StatGroup stats_;

    /** Core cycles -> ns at the 2.25 GHz simulated clock (Table 3). */
    static double
    cyclesToNs(Cycles c)
    {
        return static_cast<double>(c) / 2.25;
    }
};

} // namespace toleo

#endif // TOLEO_SECMEM_ENGINE_HH
