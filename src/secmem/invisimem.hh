/**
 * @file
 * InvisiMem-far model: all memory replaced by smart memory [1].
 *
 * InvisiMem provides CIF *and* hides the memory-address and
 * bus-timing side channels.  The costs the paper attributes to it
 * (Section 7.1):
 *  - messages are encrypted twice (channel + payload);
 *  - read and write packets are forced to the same size;
 *  - dummy packets keep the memory bus at a constant rate.
 *
 * MACs are grouped by the smart memory into the same transaction, so
 * InvisiMem has *less* metadata traffic than CI, but the padding and
 * dummy traffic swamp that advantage.
 */

#ifndef TOLEO_SECMEM_INVISIMEM_HH
#define TOLEO_SECMEM_INVISIMEM_HH

#include "crypto/timing.hh"
#include "secmem/engine.hh"

namespace toleo {

struct InvisiMemConfig
{
    CryptoTiming crypto;
    /** Packet header + symmetric-size padding per access, bytes. */
    std::uint64_t packetOverheadBytes = 48;
    /**
     * Constant-rate target as a fraction of aggregate channel
     * bandwidth; each epoch is padded up to this rate with dummy
     * packets.
     */
    double dummyRateFraction = 0.30;
};

class InvisiMemEngine : public ProtectionEngine
{
  public:
    InvisiMemEngine(MemTopology &topo, const InvisiMemConfig &cfg);

    MetaCost onRead(BlockNum blk) override;
    MetaCost onWriteback(BlockNum blk) override;

    /** Epoch hook: emit dummy packets up to the constant rate. */
    std::uint64_t padEpoch(double epoch_ns);

    bool confidentiality() const override { return true; }
    bool integrity() const override { return true; }
    bool freshness() const override { return true; }
    /** All-smart-memory at 28 TB is prohibitively expensive. */
    bool fullMemory() const override { return false; }

    std::uint64_t dummyBytes() const { return dummyBytes_; }

  private:
    InvisiMemConfig cfg_;
    /** Real bytes this epoch (tracked for constant-rate padding). */
    std::uint64_t epochRealBytes_ = 0;
    std::uint64_t dummyBytes_ = 0;

    /** Counters resolved once; per-event map lookups are hot. */
    Counter &readsCtr_;
    Counter &writebacksCtr_;
    Counter &dummyBytesCtr_;
};

} // namespace toleo

#endif // TOLEO_SECMEM_INVISIMEM_HH
