/**
 * @file
 * Confidentiality (+ optionally Integrity) engine.
 *
 * Models scalable SGX-style protection (Section 2.2 / 7):
 *  - C: AES-XTS encryption/decryption on every off-chip transfer
 *    (40-cycle engine, Table 3);
 *  - I: a 56-bit MAC per cache block; eight MACs pack into one 64 B
 *    MAC block stored alongside data (Figure 4) and cached in a 1 MB,
 *    16-way MAC cache (32 KB/core, Table 3).
 *
 * With integrity off this is the "C" configuration of Figure 9; with
 * it on it is "CI" (scalable SGX TME + integrity).  The Toleo engine
 * composes on top of this class.
 */

#ifndef TOLEO_SECMEM_CI_HH
#define TOLEO_SECMEM_CI_HH

#include "cache/set_assoc.hh"
#include "crypto/timing.hh"
#include "secmem/engine.hh"

namespace toleo {

struct CiConfig
{
    bool integrity = true;
    std::uint64_t macCacheBytes = 1 * MiB;
    unsigned macCacheAssoc = 16;
    CryptoTiming crypto;
    /**
     * Fraction of the memory channel latency that a parallel MAC
     * fetch adds to the read critical path (the MAC block queues
     * behind the data transfer on the same channel, and the MAC
     * check gates data release; the rest overlaps under MLP).
     */
    double macFetchSerialization = 0.45;
};

class CiEngine : public ProtectionEngine
{
  public:
    CiEngine(MemTopology &topo, const CiConfig &cfg,
             std::string name = "");

    MetaCost onRead(BlockNum blk) override;
    MetaCost onWriteback(BlockNum blk) override;

    bool confidentiality() const override { return true; }
    bool integrity() const override { return cfg_.integrity; }
    bool freshness() const override { return false; }
    bool fullMemory() const override { return true; }

    double macCacheHitRate() const { return macCache_.hitRate(); }
    const SetAssocCache &macCache() const { return macCache_; }

  protected:
    CiConfig cfg_;
    /** Keyed by MAC-block number: eight data blocks per MAC block. */
    SetAssocCache macCache_;

    /**
     * Counters resolved once at construction: a per-event
     * stats_.counter(name) is a string-keyed map lookup on the
     * metadata hot path.
     */
    Counter &readsCtr_;
    Counter &writebacksCtr_;
    Counter &macFetchesCtr_;
    Counter &macWritebacksCtr_;

    /** MAC block holding the MAC of a data block. */
    static std::uint64_t macBlockOf(BlockNum blk) { return blk / 8; }

    /**
     * Run one MAC-cache access for a data block; accounts fetch and
     * writeback traffic and returns the added read-path latency.
     */
    double macAccess(BlockNum blk, bool is_write, MetaCost &cost);
};

} // namespace toleo

#endif // TOLEO_SECMEM_CI_HH
