/**
 * @file
 * Workload abstraction for the trace-driven simulation.
 *
 * The paper evaluates 12 privacy-sensitive applications (Table 2).
 * We reproduce each with a synthetic generator that emits an infinite
 * stream of memory references whose *statistical* properties --
 * footprint, LLC MPKI, read/write mix, spatial locality of writes
 * (hence Trip behaviour), and page-level reuse (hence stealth-cache
 * behaviour) -- are calibrated to the benchmark it stands in for.
 */

#ifndef TOLEO_WORKLOAD_WORKLOAD_HH
#define TOLEO_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace toleo {

/** One memory reference emitted by a generator. */
struct MemRef
{
    Addr addr = 0;
    bool isWrite = false;
    /** Non-memory instructions executed since the previous ref. */
    std::uint32_t instGap = 0;
};

/** Static description of a benchmark (reported in Table 2). */
struct WorkloadInfo
{
    std::string name;
    std::string suite;
    /** Paper-reported peak resident set size, bytes. */
    std::uint64_t paperRssBytes = 0;
    /** Paper-reported LLC misses per kilo-instruction. */
    double paperLlcMpki = 0.0;
    /** Footprint of the scaled simulation, bytes (per core). */
    std::uint64_t simFootprintBytes = 0;
    /**
     * Memory-level parallelism factor used by the core stall model:
     * how many outstanding misses overlap on average.
     */
    double mlp = 4.0;
};

/** Infinite reference-stream generator (one instance per core). */
class TraceGen
{
  public:
    explicit TraceGen(WorkloadInfo info) : info_(std::move(info)) {}
    virtual ~TraceGen() = default;

    /** Produce the next reference.  Generators are per-core
     *  instances, so the draw paths run in the concurrent private
     *  phase; the phase(private) annotations cover every override
     *  (toleo_lint fans a virtual root out over the index). */
    // toleo: phase(private)
    virtual MemRef next() = 0;

    /**
     * Produce the next @p n references into @p out -- exactly the
     * sequence n calls to next() would yield.  Generators override
     * this to amortize the virtual dispatch over a whole batch.
     */
    // toleo: phase(private)
    virtual void
    nextBatch(MemRef *out, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = next();
    }

    const WorkloadInfo &info() const { return info_; }

  protected:
    WorkloadInfo info_;
};

/** Names of the 12 paper workloads, in Table 2 order. */
const std::vector<std::string> &paperWorkloads();

/**
 * Instantiate the per-core generator for a named workload.
 * @param name Workload name (see paperWorkloads()).
 * @param core Core id; shifts the generator's address region and seed
 *        so cores work on disjoint partitions.
 * @param seed Global seed for reproducibility.
 */
std::unique_ptr<TraceGen> makeWorkload(const std::string &name,
                                       unsigned core,
                                       std::uint64_t seed);

/** Table-2 metadata for a named workload (fatal on unknown name). */
WorkloadInfo workloadInfo(const std::string &name);

} // namespace toleo

#endif // TOLEO_WORKLOAD_WORKLOAD_HH
