#include "workload/mix.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace toleo {

namespace {

/** Scatter a popularity rank over a region deterministically. */
std::uint64_t
scatterRank(std::uint64_t rank, std::uint64_t domain)
{
    return (rank * 0x9e3779b97f4a7c15ULL) % domain;
}

} // namespace

MixWorkload::MixWorkload(WorkloadInfo info, MixSpec spec, unsigned core,
                         std::uint64_t seed)
    : TraceGen(std::move(info)), spec_(std::move(spec)),
      rng_(seed * 0x2545f4914f6cdd1dULL + core + 1)
{
    if (spec_.streams.empty())
        panic("MixWorkload: no streams");

    // Each core owns a disjoint 1 TiB slice of the address space;
    // streams carve disjoint regions out of that slice.
    Addr next_base = (static_cast<Addr>(core) + 1) << 40;
    double cum = 0.0;
    for (const auto &s : spec_.streams) {
        StreamState st;
        st.spec = s;
        st.base = next_base;
        next_base += (s.regionBytes + pageSize - 1) / pageSize * pageSize;
        if (s.pattern == Pattern::Zipf) {
            const std::uint64_t blocks =
                std::max<std::uint64_t>(1, s.regionBytes / blockSize);
            st.zipf = std::make_unique<ZipfSampler>(
                blocks, s.theta, rng_.next());
        }
        if (s.pattern == Pattern::PageLocalRandom) {
            const std::uint64_t region_pages = std::max<std::uint64_t>(
                1, s.regionBytes / pageSize);
            for (unsigned k = 0; k < s.activePages; ++k)
                st.active.push_back(rng_.nextBounded(region_pages));
        }
        streams_.push_back(std::move(st));
        cum += s.weight;
        cumWeight_.push_back(cum);
    }
    totalWeight_ = cumWeight_.back();
    // Jitter bounds [0.5g, 1.5g], truncated.  Guard the degenerate
    // cases: a non-finite, negative, or over-range meanGap must not
    // reach the float->unsigned cast (UB for values the target type
    // cannot represent), and truncation must never leave
    // gapHi_ < gapLo_, which would feed nextRange an inverted
    // interval.  The cap keeps gapHi_ = 1.5g inside MemRef's u32
    // instGap field.  Small positive gaps (meanGap < 2) legitimately
    // collapse toward [0, g]; they stay well-formed here.
    constexpr double maxGap = 0x7fffffff; // 1.5x still fits in u32
    const double gap =
        std::isfinite(spec_.meanGap) && spec_.meanGap > 0.0
            ? std::min(spec_.meanGap, maxGap)
            : 0.0;
    gapLo_ = static_cast<std::uint64_t>(gap * 0.5);
    gapHi_ = std::max(gapLo_, static_cast<std::uint64_t>(gap * 1.5));
}

Addr
MixWorkload::addrFor(StreamState &st)
{
    const auto &s = st.spec;
    const std::uint64_t region_blocks =
        std::max<std::uint64_t>(1, s.regionBytes / blockSize);

    // Finish an in-flight burst first.
    if (st.burstLeft > 0) {
        --st.burstLeft;
        st.burstAddr += blockSize;
        return st.burstAddr;
    }

    switch (s.pattern) {
      case Pattern::HotSeq:
      case Pattern::StreamSeq: {
        const Addr a = st.base + st.cursor;
        st.cursor += s.strideBytes;
        if (st.cursor >= s.regionBytes)
            st.cursor = 0;
        return a;
      }
      case Pattern::UniformRandom: {
        const std::uint64_t blk = rng_.nextBounded(region_blocks);
        return st.base + blk * blockSize +
               rng_.nextBounded(blockSize / 8) * 8;
      }
      case Pattern::Zipf: {
        const std::uint64_t rank = st.zipf->next();
        const std::uint64_t blk =
            s.clustered ? rank % region_blocks
                        : scatterRank(rank, region_blocks);
        return st.base + blk * blockSize;
      }
      case Pattern::PageLocalRandom: {
        const std::uint64_t region_pages = std::max<std::uint64_t>(
            1, s.regionBytes / pageSize);
        if (rng_.nextBool(s.pageTurnover)) {
            st.active[rng_.nextBounded(st.active.size())] =
                rng_.nextBounded(region_pages);
        }
        const std::uint64_t page =
            st.active[rng_.nextBounded(st.active.size())];
        const unsigned blk_in_page = static_cast<unsigned>(
            rng_.nextBounded(blocksPerPage));
        Addr a = st.base + page * pageSize +
                 static_cast<Addr>(blk_in_page) * blockSize;
        if (s.burstBlocks > 1) {
            st.burstLeft = s.burstBlocks - 1;
            if (blk_in_page + s.burstBlocks > blocksPerPage)
                a = st.base + page * pageSize;
            st.burstAddr = a;
        }
        return a;
      }
      case Pattern::GaussPage: {
        const std::uint64_t region_pages =
            std::max<std::uint64_t>(1, s.regionBytes / pageSize);
        const double center = static_cast<double>(region_pages) / 2.0;
        double draw = rng_.nextGaussian(center, s.sigmaPages);
        if (draw < 0.0)
            draw = 0.0;
        auto page = static_cast<std::uint64_t>(draw);
        if (page >= region_pages)
            page = region_pages - 1;
        const unsigned blk_in_page = static_cast<unsigned>(
            rng_.nextBounded(blocksPerPage));
        Addr a = st.base + page * pageSize +
                 static_cast<Addr>(blk_in_page) * blockSize;
        if (s.burstBlocks > 1) {
            st.burstLeft = s.burstBlocks - 1;
            // Keep bursts within the page.
            if (blk_in_page + s.burstBlocks > blocksPerPage)
                a = st.base + page * pageSize;
            st.burstAddr = a;
        }
        return a;
      }
    }
    panic("MixWorkload: unknown pattern");
}

MemRef
MixWorkload::next()
{
    // Weighted random stream selection.
    const double draw = rng_.nextDouble() * totalWeight_;
    std::size_t idx = 0;
    while (idx + 1 < cumWeight_.size() && cumWeight_[idx] <= draw)
        ++idx;
    StreamState &st = streams_[idx];

    MemRef ref;
    ref.addr = addrFor(st);
    ref.isWrite = rng_.nextBool(st.spec.writeProb);

    // Jittered instruction gap: uniform in [0.5g, 1.5g].
    ref.instGap =
        static_cast<std::uint32_t>(rng_.nextRange(gapLo_, gapHi_));
    return ref;
}

void
MixWorkload::nextBatch(MemRef *out, std::size_t n)
{
    // Qualified call: one virtual dispatch per batch, and the
    // generator loop inlines into a single hot function.
    for (std::size_t i = 0; i < n; ++i)
        out[i] = MixWorkload::next();
}

} // namespace toleo
