/**
 * @file
 * Open-loop request layer: arrival models and the RequestSource
 * wrapper that groups a generator's MemRef stream into requests.
 *
 * The closed-loop replay core stays untouched: a RequestSource
 * delegates every draw to the wrapped generator (the emitted reference
 * stream is bit-identical to the unwrapped generator), and merely
 * tracks where request boundaries fall within each batch.  The System
 * consumes those boundaries to measure per-request service time and
 * runs the arrival process as a timing overlay — so the `closed`
 * arrival model is the degenerate case with no wrapper at all, and
 * every existing fixed-seed output is trivially preserved.
 *
 * Request segmentation comes from the generator when it is
 * request-shaped (RequestShapedGen: kvs/nat/bm25/knn plan whole
 * requests and know their lengths), and from fixed-size slicing
 * (ArrivalConfig::requestRefs) for plain mix generators and trace
 * replay, which carry no request structure.
 */

#ifndef TOLEO_WORKLOAD_REQUEST_HH
#define TOLEO_WORKLOAD_REQUEST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "workload/workload.hh"

namespace toleo {

/** Request interarrival process. */
enum class ArrivalKind
{
    Closed,  ///< Degenerate closed loop: next request starts at once.
    Poisson, ///< Exponential interarrivals at a fixed mean rate.
    Burst,   ///< Lognormal interarrivals: mean rate + tunable CV.
};

/** Printable name of an arrival kind ("closed" / "poisson" / "burst"). */
const char *arrivalKindName(ArrivalKind kind);

/**
 * Arrival-model configuration, carried by SystemConfig/SweepOptions.
 * Rates are node-wide requests/second, split evenly across cores.
 */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Closed;
    /** Offered request rate, requests/second (node-wide). */
    double ratePerSec = 0.0;
    /** Burst only: coefficient of variation of the interarrival. */
    double cv = 1.0;
    /** Refs per request for generators with no request shape. */
    std::uint64_t requestRefs = 64;
    /** SLO latency threshold, microseconds. */
    double sloUs = 100.0;

    /** True when the run is open-loop (serving layer active). */
    bool open() const { return kind != ArrivalKind::Closed; }
};

/**
 * Parse an `--arrival` spec: "closed", "poisson:<rate>", or
 * "burst:<rate>,<cv>".  On failure returns false and fills `err`;
 * on success overwrites kind/ratePerSec/cv and leaves the other
 * fields of `out` untouched.
 */
bool parseArrivalSpec(const std::string &spec, ArrivalConfig &out,
                      std::string &err);

/**
 * Draw one interarrival gap in nanoseconds for a per-core arrival
 * process of `ratePerSec` requests/second.  Deterministic given the
 * Rng state; for a fixed seed the underlying uniform draws are
 * rate-independent, so scaling the rate scales every gap by the same
 * factor — the monotone-degradation property the acceptance tests pin.
 */
double drawInterarrivalNs(const ArrivalConfig &cfg, double ratePerSec,
                          Rng &rng);

/**
 * A generator that plans whole requests and knows their lengths.
 * Standalone (closed-loop) use never calls nextRequestLen(): next()
 * plans lazily at the same points in the RNG stream, so the emitted
 * refs are identical whether or not a RequestSource drives it.
 */
class RequestShapedGen : public TraceGen
{
  public:
    using TraceGen::TraceGen;

    /**
     * Refs composing the next request (>= 1).  Called by
     * RequestSource exactly when the previous request's refs have
     * been fully consumed; plans the next request as a side effect.
     * Called from RequestSource's draw path, so it runs in the
     * concurrent private phase like next()/nextBatch().
     */
    // toleo: phase(private)
    virtual std::uint64_t nextRequestLen() = 0;
};

/**
 * Transparent TraceGen wrapper that tracks request boundaries.
 *
 * nextBatch() forwards to the wrapped generator (in per-request
 * segments, which is draw-identical for every generator in the tree:
 * their nextBatch is defined as repeated next()), and records the
 * batch-relative indices of refs that complete a request.  The System
 * reads batchBoundaries() after each private-phase batch.
 */
class RequestSource : public TraceGen
{
  public:
    /**
     * Wrap `inner`.  If `inner` is request-shaped its own request
     * lengths are used; otherwise the stream is sliced into
     * fixed-size requests of `requestRefs` refs (must be >= 1).
     */
    RequestSource(std::unique_ptr<TraceGen> inner,
                  std::uint64_t requestRefs);

    MemRef next() override;
    void nextBatch(MemRef *out, std::size_t n) override;

    /**
     * Batch-relative indices (ascending) of the refs that completed a
     * request in the most recent nextBatch() call.
     */
    const std::vector<std::uint32_t> &batchBoundaries() const
    {
        return boundaries_;
    }

  private:
    std::unique_ptr<TraceGen> inner_;
    RequestShapedGen *shaped_ = nullptr; ///< inner_, when shaped.
    std::uint64_t fixedRefs_;
    std::uint64_t leftInRequest_ = 0;
    std::vector<std::uint32_t> boundaries_;
};

} // namespace toleo

#endif // TOLEO_WORKLOAD_REQUEST_HH
