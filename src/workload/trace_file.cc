#include "workload/trace_file.hh"

#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace toleo {

namespace {

constexpr char traceMagic[8] = {'T', 'O', 'L', 'E',
                                'O', 'T', 'R', 'C'};
constexpr std::uint32_t traceVersion = 1;
constexpr std::size_t headerBytes = 64;
constexpr std::size_t tableEntryBytes = 24;
constexpr std::size_t workloadFieldBytes = 32;
constexpr std::size_t checksumOffset = 56;

constexpr std::uint64_t fnvOffsetBasis = 0xcbf29ce484222325ULL;
constexpr std::uint64_t fnvPrime = 0x100000001b3ULL;

std::uint64_t
fnv1a(std::uint64_t h, const std::uint8_t *p, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= fnvPrime;
    }
    return h;
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/**
 * Unchecked varint read: the caller guarantees (via load-time
 * validation) that a complete varint lies at @p p.
 */
std::uint64_t
readVarint(const std::uint8_t *&p)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (*p & 0x80) {
        v |= static_cast<std::uint64_t>(*p++ & 0x7f) << shift;
        shift += 7;
    }
    v |= static_cast<std::uint64_t>(*p++) << shift;
    return v;
}

/**
 * Bounds-checked varint read for validation; false if the varint
 * runs past @p end or is longer than a u64 can hold.
 */
bool
readVarintChecked(const std::uint8_t *&p, const std::uint8_t *end,
                  std::uint64_t &out)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (p < end) {
        const std::uint8_t b = *p++;
        if (shift >= 64)
            return false;
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80)) {
            out = v;
            return true;
        }
        shift += 7;
    }
    return false;
}

} // namespace

TraceWriter::TraceWriter(unsigned streamCount, std::string workload,
                         std::uint64_t seed)
    : streams_(streamCount), workload_(std::move(workload)),
      seed_(seed)
{
    if (streamCount == 0)
        throw TraceError("trace writer needs at least one stream");
    // The header's name field is fixed-width; silent strncpy
    // truncation would round-trip a different workload name and
    // trip the replay-time mismatch warning against itself.
    if (workload_.size() >= workloadFieldBytes)
        throw TraceError("workload name '" + workload_ +
                         "' does not fit the trace header (max " +
                         std::to_string(workloadFieldBytes - 1) +
                         " bytes)");
}

void
TraceWriter::append(unsigned stream, const MemRef *refs,
                    std::size_t n)
{
    Stream &s = streams_[stream];
    for (std::size_t i = 0; i < n; ++i) {
        const MemRef &ref = refs[i];
        putVarint(s.bytes,
                  zigzag(static_cast<std::int64_t>(ref.addr -
                                                   s.prevAddr)));
        putVarint(s.bytes,
                  (static_cast<std::uint64_t>(ref.instGap) << 1) |
                      (ref.isWrite ? 1 : 0));
        s.prevAddr = ref.addr;
    }
    s.count += n;
}

std::uint64_t
TraceWriter::recordCount(unsigned stream) const
{
    return streams_[stream].count;
}

void
TraceWriter::writeTo(const std::string &path) const
{
    std::vector<std::uint8_t> head;
    head.reserve(headerBytes + streams_.size() * tableEntryBytes);
    head.insert(head.end(), traceMagic, traceMagic + 8);
    putU32(head, traceVersion);
    putU32(head, static_cast<std::uint32_t>(streams_.size()));
    putU64(head, seed_);
    char name[workloadFieldBytes] = {};
    std::strncpy(name, workload_.c_str(), workloadFieldBytes - 1);
    head.insert(head.end(), name, name + workloadFieldBytes);
    putU64(head, 0); // checksum placeholder, patched below

    std::uint64_t offset =
        headerBytes + streams_.size() * tableEntryBytes;
    for (const Stream &s : streams_) {
        putU64(head, offset);
        putU64(head, s.bytes.size());
        putU64(head, s.count);
        offset += s.bytes.size();
    }

    // Whole-file checksum with the checksum field zeroed (it still
    // is at this point), patched into the header before writing.
    std::uint64_t sum = fnv1a(fnvOffsetBasis, head.data(),
                              head.size());
    for (const Stream &s : streams_)
        sum = fnv1a(sum, s.bytes.data(), s.bytes.size());
    for (int i = 0; i < 8; ++i)
        head[checksumOffset + i] =
            static_cast<std::uint8_t>(sum >> (8 * i));

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw TraceError("cannot open trace file '" + path +
                         "' for writing");
    out.write(reinterpret_cast<const char *>(head.data()),
              static_cast<std::streamsize>(head.size()));
    for (const Stream &s : streams_)
        out.write(reinterpret_cast<const char *>(s.bytes.data()),
                  static_cast<std::streamsize>(s.bytes.size()));
    out.flush();
    if (!out)
        throw TraceError("error writing trace file '" + path + "'");
}

std::shared_ptr<const TraceFile>
TraceFile::open(const std::string &path)
{
    // shared_ptr with a private ctor: build through a local deleter-
    // friendly handle.
    std::shared_ptr<TraceFile> tf(new TraceFile());

    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throw TraceError("cannot open trace file '" + path + "'");
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        throw TraceError("cannot stat trace file '" + path + "'");
    }
    const std::size_t size = static_cast<std::size_t>(st.st_size);

    void *map = size > 0
                    ? ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE,
                             fd, 0)
                    : MAP_FAILED;
    if (map != MAP_FAILED) {
        tf->data_ = static_cast<const std::uint8_t *>(map);
        tf->mapped_ = true;
    } else {
        // Streamed fallback (also taken for zero-length files so the
        // truncation check below reports them instead of mmap).
        auto *buf = new std::uint8_t[size ? size : 1];
        std::size_t got = 0;
        while (got < size) {
            const ssize_t n = ::read(fd, buf + got, size - got);
            if (n <= 0) {
                delete[] buf;
                ::close(fd);
                throw TraceError("cannot read trace file '" + path +
                                 "'");
            }
            got += static_cast<std::size_t>(n);
        }
        tf->data_ = buf;
        tf->mapped_ = false;
    }
    tf->size_ = size;
    ::close(fd);

    // --- Header ---------------------------------------------------
    if (size < headerBytes)
        throw TraceError("'" + path + "': truncated trace header (" +
                         std::to_string(size) + " bytes)");
    const std::uint8_t *d = tf->data_;
    if (std::memcmp(d, traceMagic, 8) != 0)
        throw TraceError("'" + path + "': not a TOLEOTRC trace file");
    const std::uint32_t version = getU32(d + 8);
    if (version != traceVersion)
        throw TraceError("'" + path + "': unsupported trace version " +
                         std::to_string(version));
    const std::uint32_t nstreams = getU32(d + 12);
    if (nstreams == 0)
        throw TraceError("'" + path + "': trace has zero streams");

    // Whole-file integrity: hash with the checksum field treated as
    // zero, so a corruption of *any* byte -- including the checksum
    // itself -- mismatches.  A stored zero marks an unchecksummed
    // legacy capture and is loaded on structural validation alone.
    const std::uint64_t stored = getU64(d + checksumOffset);
    if (stored != 0) {
        std::uint64_t sum = fnv1a(fnvOffsetBasis, d, checksumOffset);
        const std::uint8_t zeros[8] = {};
        sum = fnv1a(sum, zeros, 8);
        sum = fnv1a(sum, d + checksumOffset + 8,
                    size - checksumOffset - 8);
        if (sum != stored)
            throw TraceError("'" + path +
                             "': checksum mismatch (corrupt or "
                             "tampered trace file)");
    }

    tf->seed_ = getU64(d + 16);
    const char *name = reinterpret_cast<const char *>(d + 24);
    tf->workload_.assign(name,
                         strnlen(name, workloadFieldBytes));

    // --- Stream table ---------------------------------------------
    const std::size_t tableEnd =
        headerBytes +
        static_cast<std::size_t>(nstreams) * tableEntryBytes;
    if (size < tableEnd)
        throw TraceError("'" + path + "': truncated stream table");
    tf->streams_.resize(nstreams);
    for (std::uint32_t i = 0; i < nstreams; ++i) {
        const std::uint8_t *e = d + headerBytes +
                                static_cast<std::size_t>(i) *
                                    tableEntryBytes;
        const std::uint64_t off = getU64(e);
        const std::uint64_t len = getU64(e + 8);
        const std::uint64_t count = getU64(e + 16);
        if (off < tableEnd || off > size || len > size - off)
            throw TraceError("'" + path + "': stream " +
                             std::to_string(i) +
                             " payload outside the file");
        if (count == 0)
            throw TraceError("'" + path + "': stream " +
                             std::to_string(i) +
                             " is empty (cannot loop-replay)");
        Stream &s = tf->streams_[i];
        s.begin = d + off;
        s.end = s.begin + len;
        s.count = count;
    }

    // --- Payload validation ---------------------------------------
    // Decode each stream once: every record's two varints must
    // terminate inside the stream, instGap must fit its u32 field,
    // and the payload must hold exactly recordCount records.  After
    // this pass the replay decoder can run unchecked.
    for (std::uint32_t i = 0; i < nstreams; ++i) {
        const Stream &s = tf->streams_[i];
        const std::uint8_t *p = s.begin;
        std::uint64_t records = 0;
        while (p < s.end) {
            std::uint64_t delta, meta;
            if (!readVarintChecked(p, s.end, delta) ||
                !readVarintChecked(p, s.end, meta))
                throw TraceError("'" + path + "': stream " +
                                 std::to_string(i) +
                                 " payload is corrupt (truncated "
                                 "record " +
                                 std::to_string(records) + ")");
            if ((meta >> 1) > 0xffffffffULL)
                throw TraceError("'" + path + "': stream " +
                                 std::to_string(i) + " record " +
                                 std::to_string(records) +
                                 " has an oversized instruction gap");
            ++records;
        }
        if (records != s.count)
            throw TraceError(
                "'" + path + "': stream " + std::to_string(i) +
                " holds " + std::to_string(records) +
                " records but the table declares " +
                std::to_string(s.count));
    }
    return tf;
}

TraceFile::~TraceFile()
{
    if (!data_)
        return;
    if (mapped_)
        ::munmap(const_cast<std::uint8_t *>(data_), size_);
    else
        delete[] data_;
}

TraceReplayGen::TraceReplayGen(WorkloadInfo info,
                               std::shared_ptr<const TraceFile> trace,
                               unsigned core)
    : TraceGen(std::move(info)), trace_(std::move(trace)),
      begin_(trace_->streamBegin(core % trace_->streamCount())),
      end_(trace_->streamEnd(core % trace_->streamCount())),
      cur_(begin_)
{
}

MemRef
TraceReplayGen::next()
{
    MemRef ref;
    TraceReplayGen::nextBatch(&ref, 1);
    return ref;
}

void
TraceReplayGen::nextBatch(MemRef *out, std::size_t n)
{
    // Hot decode loop: validated payload, so no per-byte bounds
    // checks -- just the end-of-stream wrap at record granularity.
    const std::uint8_t *p = cur_;
    Addr prev = prevAddr_;
    for (std::size_t i = 0; i < n; ++i) {
        if (p == end_) {
            p = begin_;
            prev = 0;
        }
        const std::uint64_t delta = readVarint(p);
        const std::uint64_t meta = readVarint(p);
        prev += static_cast<Addr>(unzigzag(delta));
        out[i].addr = prev;
        out[i].isWrite = meta & 1;
        out[i].instGap = static_cast<std::uint32_t>(meta >> 1);
    }
    cur_ = p;
    prevAddr_ = prev;
}

} // namespace toleo
