/**
 * @file
 * Definitions of the 12 paper workloads (Table 2) plus a few
 * microbenchmark patterns, expressed as MixWorkload stream tables.
 *
 * Region sizes are the per-core footprint of the scaled simulation
 * node (see sim/system.hh makeScaledConfig); paperRssBytes and
 * paperLlcMpki carry Table 2's values for side-by-side reporting.
 * Conventions:
 *  - hot streams model compute-local reuse and are sized to stay
 *    L2-resident (<= 48 KB);
 *  - streaming regions use 64 B (block) stride: one reference per
 *    cache block, the granularity the memory system sees;
 *  - graph vertex accesses are Zipf-distributed (power-law degrees),
 *    which is also what gives graph workloads their page-level
 *    stealth-cache reuse;
 *  - KV stores draw pages from a Gaussian (memtier's key
 *    distribution, Section 7), the source of their poor stealth
 *    locality.
 *
 * Weights were calibrated against Table 2 MPKI with the scaled node
 * (see bench/tab2_workloads and EXPERIMENTS.md).
 */

#include "workload/workload.hh"

#include <map>

#include "common/logging.hh"
#include "workload/mix.hh"
#include "workload/request_apps.hh"

namespace toleo {

namespace {

struct WorkloadDef
{
    WorkloadInfo info;
    MixSpec mix;
};

std::map<std::string, WorkloadDef>
buildTable()
{
    std::map<std::string, WorkloadDef> t;

    auto hot = [](std::uint64_t bytes, double w) {
        StreamSpec s;
        s.pattern = Pattern::HotSeq;
        s.regionBytes = bytes;
        s.weight = w;
        return s;
    };
    auto stream = [](std::uint64_t bytes, double w, double wr) {
        StreamSpec s;
        s.pattern = Pattern::StreamSeq;
        s.regionBytes = bytes;
        s.weight = w;
        s.writeProb = wr;
        s.strideBytes = 64;
        return s;
    };
    auto random = [](std::uint64_t bytes, double w, double wr) {
        StreamSpec s;
        s.pattern = Pattern::UniformRandom;
        s.regionBytes = bytes;
        s.weight = w;
        s.writeProb = wr;
        return s;
    };
    auto zipf = [](std::uint64_t bytes, double w, double wr,
                   double theta) {
        StreamSpec s;
        s.pattern = Pattern::Zipf;
        s.regionBytes = bytes;
        s.weight = w;
        s.writeProb = wr;
        s.theta = theta;
        return s;
    };
    auto zipfTree = [](std::uint64_t bytes, double w, double wr,
                       double theta) {
        StreamSpec s;
        s.pattern = Pattern::Zipf;
        s.regionBytes = bytes;
        s.weight = w;
        s.writeProb = wr;
        s.theta = theta;
        s.clustered = true; // tree/index layout: hot nodes contiguous
        return s;
    };
    auto gauss = [](std::uint64_t bytes, double w, double wr,
                    double sigma, unsigned burst) {
        StreamSpec s;
        s.pattern = Pattern::GaussPage;
        s.regionBytes = bytes;
        s.weight = w;
        s.writeProb = wr;
        s.sigmaPages = sigma;
        s.burstBlocks = burst;
        return s;
    };
    auto pagelocal = [](std::uint64_t bytes, double w, double wr,
                        unsigned k, double turnover,
                        unsigned burst = 1) {
        StreamSpec s;
        s.pattern = Pattern::PageLocalRandom;
        s.regionBytes = bytes;
        s.weight = w;
        s.writeProb = wr;
        s.activePages = k;
        s.pageTurnover = turnover;
        s.burstBlocks = burst;
        return s;
    };


    // --- GenomicsBench ---------------------------------------------------
    // bsw: banded Smith-Waterman, 2D DP.  Hot band tile + streaming
    // input + sequential DP-row writes (uniform page writes -> flat).
    t["bsw"] = {
        {"bsw", "GenomicsBench", gibBytes(11.7), 1.21,
         800 * KiB, 6.0},
        {{hot(24 * KiB, 18.0),
          stream(4 * MiB, 0.1, 0.0),
          stream(4 * MiB, 0.1, 1.0)},
         8.0},
    };

    // chain: 1D DP over anchors; less memory-intensive than bsw.
    t["chain"] = {
        {"chain", "GenomicsBench", gibBytes(11.75), 0.49,
         512 * KiB, 6.0},
        {{hot(24 * KiB, 30.0),
          stream(4 * MiB, 0.1, 0.0),
          stream(4 * MiB, 0.1, 1.0)},
         12.0},
    };

    // dbg: De Bruijn graph construction -- streaming genome reads
    // feed hash-table inserts (write-once, near-resident table) and
    // zipf-hot probes.
    t["dbg"] = {
        {"dbg", "GenomicsBench", gibBytes(9.86), 0.47,
         3 * MiB, 4.0},
        {{hot(24 * KiB, 200.0),
          stream(4 * MiB, 0.5, 0.0),
          pagelocal(2 * MiB, 0.4, 0.35, 8, 0.02),
          zipf(128 * KiB, 0.6, 0.0, 1.1)},
         8.0},
    };

    // fmi: FM-index search -- dependent index-node lookups (low MLP)
    // over a hot index, a modest input stream, and concentrated
    // repeated node updates (drives the paper-worst uneven share).
    t["fmi"] = {
        {"fmi", "GenomicsBench", gibBytes(12.05), 0.45,
         640 * KiB, 1.5},
        {{hot(24 * KiB, 170.0),
          zipfTree(256 * KiB, 3.0, 0.0, 1.2),
          stream(1 * MiB, 0.3, 0.0),
          pagelocal(1 * MiB, 0.5, 0.9, 6, 0.1)},
         8.0},
    };

    // pileup: position-count hash updates; mostly write-once.
    t["pileup"] = {
        {"pileup", "GenomicsBench", gibBytes(10.85), 0.66,
         2560 * KiB, 4.0},
        {{hot(24 * KiB, 160.0),
          stream(4 * MiB, 0.55, 0.0),
          zipf(512 * KiB, 1.5, 0.2, 1.0),
          pagelocal(1 * MiB, 0.3, 0.5, 8, 0.03)},
         8.0},
    };

    // --- GAP graph suite --------------------------------------------------
    // bfs: frontier queue (hot) + edge stream + visited/parent bit
    // updates over a near-resident vertex region.
    t["bfs"] = {
        {"bfs", "GAP", gibBytes(12.9), 22.57,
         2764 * KiB, 8.0},
        {{hot(24 * KiB, 6.0),
          stream(384 * KiB, 0.55, 0.0),
          pagelocal(1 * MiB, 0.25, 0.05, 12, 0.12, 4)},
         3.0},
    };

    // pr: pull-style PageRank -- the edge stream dominates misses
    // (as in GAP's CSR layout); source scores are power-law hot and
    // near-resident; destination scores are written sequentially.
    t["pr"] = {
        {"pr", "GAP", gibBytes(20.8), 133.98,
         2 * MiB, 12.0},
        {{hot(24 * KiB, 1.9),
          stream(8 * MiB, 1.35, 0.0),
          zipfTree(64 * KiB, 1.0, 0.0, 0.8),
          stream(512 * KiB, 0.0125, 1.0),
          pagelocal(1 * MiB, 0.04, 1.0, 4, 0.1)},
         2.0},
    };

    // sssp: delta-stepping -- hot bucket + edge stream + repeated
    // distance relaxations over a near-resident array.
    t["sssp"] = {
        {"sssp", "GAP", gibBytes(24.57), 2.41,
         3277 * KiB, 6.0},
        {{hot(24 * KiB, 40.0),
          stream(6 * MiB, 0.5, 0.0),
          pagelocal(2 * MiB, 0.45, 0.45, 12, 0.05)},
         6.0},
    };

    // --- Generative AI ----------------------------------------------------
    // llama2-gen: token generation -- weight streaming dominates;
    // activations rewritten uniformly per token (L2-resident buffer);
    // KV-cache appends.
    t["llama2-gen"] = {
        {"llama2-gen", "LLM", gibBytes(25.8), 57.96,
         2 * MiB, 16.0},
        {{stream(8 * MiB, 0.28, 0.0),
          hot(24 * KiB, 1.6),
          stream(16 * KiB, 0.4, 1.0),
          stream(4 * MiB, 0.0125, 1.0)},
         1.0},
    };

    // --- In-memory databases ----------------------------------------------
    // redis: memtier all-write Gaussian key popularity; random page
    // accesses give the paper's poor stealth-cache hit rate.
    t["redis"] = {
        {"redis", "DB", gibBytes(11.8), 0.76,
         9 * MiB, 2.0},
        {{hot(24 * KiB, 9.0),
          gauss(4 * MiB, 2.0, 0.7, 6.0, 2),
          stream(4 * MiB, 0.05, 0.0)},
         20.0},
    };

    // memcached: same shape, higher memory intensity, larger values.
    t["memcached"] = {
        {"memcached", "DB", gibBytes(11.8), 3.14,
         12 * MiB, 2.5},
        {{hot(24 * KiB, 5.0),
          gauss(4 * MiB, 0.6, 0.7, 9.0, 4),
          stream(4 * MiB, 0.04, 0.0)},
         8.0},
    };

    // hyrise: TPC-C -- scans, row appends (write-once), zipf-hot
    // index updates at commit (repeated -> a few uneven pages).
    t["hyrise"] = {
        {"hyrise", "DB", gibBytes(6.96), 3.14,
         1536 * KiB, 4.0},
        {{hot(24 * KiB, 20.0),
          stream(2 * MiB, 0.3, 0.0),
          stream(1 * MiB, 0.04, 1.0),
          zipfTree(192 * KiB, 1.0, 0.3, 1.0),
          zipf(256 * KiB, 0.08, 0.7, 1.0)},
         6.0},
    };

    // --- Microbenchmark patterns (tests and ablations) ---------------------
    t["micro-seq-write"] = {
        {"micro-seq-write", "micro", 1 * GiB, 0.0, 4 * MiB, 8.0},
        {{stream(4 * MiB, 1.0, 1.0)}, 4.0},
    };
    t["micro-seq-read"] = {
        {"micro-seq-read", "micro", 1 * GiB, 0.0, 4 * MiB, 8.0},
        {{stream(4 * MiB, 1.0, 0.0)}, 4.0},
    };
    t["micro-rand-write"] = {
        {"micro-rand-write", "micro", 1 * GiB, 0.0, 4 * MiB, 2.0},
        {{random(4 * MiB, 1.0, 1.0)}, 4.0},
    };
    t["micro-rand-read"] = {
        {"micro-rand-read", "micro", 1 * GiB, 0.0, 4 * MiB, 2.0},
        {{random(4 * MiB, 1.0, 0.0)}, 4.0},
    };

    return t;
}

const std::map<std::string, WorkloadDef> &
table()
{
    static const std::map<std::string, WorkloadDef> t = buildTable();
    return t;
}

} // namespace

const std::vector<std::string> &
paperWorkloads()
{
    static const std::vector<std::string> names = {
        "bsw", "chain", "dbg", "fmi", "pileup",
        "bfs", "pr", "sssp",
        "llama2-gen",
        "redis", "memcached", "hyrise",
    };
    return names;
}

std::unique_ptr<TraceGen>
makeWorkload(const std::string &name, unsigned core, std::uint64_t seed)
{
    // Request-shaped datacenter apps live in their own registry so
    // the paper grid above stays byte-pinned.
    if (auto app = makeRequestApp(name, core, seed))
        return app;
    auto it = table().find(name);
    if (it == table().end())
        fatal("unknown workload '%s'", name.c_str());
    const auto &def = it->second;
    return std::make_unique<MixWorkload>(def.info, def.mix, core,
                                         seed ^ 0xabcdef12345ULL);
}

WorkloadInfo
workloadInfo(const std::string &name)
{
    WorkloadInfo app;
    if (requestAppInfo(name, app))
        return app;
    auto it = table().find(name);
    if (it == table().end())
        fatal("unknown workload '%s'", name.c_str());
    return it->second.info;
}

} // namespace toleo
