/**
 * @file
 * Request-shaped datacenter application generators, modeled on the
 * receiver-side apps of the TINA stack (KVS get/set, NAT hash lookup,
 * BM25 ranking, KNN distance scans).
 *
 * Unlike the MixWorkload generators — which emit an undifferentiated
 * reference soup — these plan one *request* at a time: a hash-table
 * probe plus a value burst for `kvs`, a flow-table lookup plus header
 * update for `nat`, several postings-list scans with score
 * accumulation for `bm25`, and candidate-vector distance scans for
 * `knn`.  Each generator implements RequestShapedGen, so the open-loop
 * serving layer (RequestSource) segments latency accounting at true
 * request boundaries; under the closed arrival model they behave as
 * ordinary TraceGens.
 *
 * These names are intentionally NOT part of paperWorkloads(): the
 * 12-workload paper grid stays byte-pinned.  They are reachable via
 * makeWorkload()/workloadInfo() and listed by requestAppWorkloads().
 */

#ifndef TOLEO_WORKLOAD_REQUEST_APPS_HH
#define TOLEO_WORKLOAD_REQUEST_APPS_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/request.hh"

namespace toleo {

/** Names of the request-shaped app generators (grid-usable). */
const std::vector<std::string> &requestAppWorkloads();

/**
 * Build a request-shaped app generator, or nullptr when `name` is not
 * a request app (the caller falls back to the mix-generator table).
 */
std::unique_ptr<TraceGen> makeRequestApp(const std::string &name,
                                         unsigned core,
                                         std::uint64_t seed);

/**
 * Look up a request app's WorkloadInfo; returns false when `name` is
 * not a request app.
 */
bool requestAppInfo(const std::string &name, WorkloadInfo &out);

} // namespace toleo

#endif // TOLEO_WORKLOAD_REQUEST_APPS_HH
