#include "workload/request.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace toleo {

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Closed:
        return "closed";
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Burst:
        return "burst";
    }
    panic("arrivalKindName: unknown kind");
}

namespace {

/** Parse a finite double; false on any leftover (NaN/inf rejected). */
bool
parseFinite(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size())
        return false;
    if (!std::isfinite(v))
        return false;
    out = v;
    return true;
}

/** Parse a strictly-positive finite double; false on any leftover. */
bool
parsePositive(const std::string &text, double &out)
{
    double v = 0.0;
    if (!parseFinite(text, v) || v <= 0.0)
        return false;
    out = v;
    return true;
}

} // namespace

bool
parseArrivalSpec(const std::string &spec, ArrivalConfig &out,
                 std::string &err)
{
    if (spec == "closed") {
        out.kind = ArrivalKind::Closed;
        out.ratePerSec = 0.0;
        return true;
    }
    const auto colon = spec.find(':');
    const std::string head = spec.substr(0, colon);
    const std::string tail =
        colon == std::string::npos ? "" : spec.substr(colon + 1);
    if (head == "poisson") {
        double rate = 0.0;
        if (!parsePositive(tail, rate)) {
            err = "poisson arrival needs a positive finite rate: "
                  "poisson:<req/s>";
            return false;
        }
        out.kind = ArrivalKind::Poisson;
        out.ratePerSec = rate;
        return true;
    }
    if (head == "burst") {
        const auto comma = tail.find(',');
        if (comma == std::string::npos) {
            err = "burst arrival needs a rate and a CV separated by "
                  "a comma: burst:<req/s>,<cv>";
            return false;
        }
        double rate = 0.0;
        if (!parsePositive(tail.substr(0, comma), rate)) {
            err = "burst arrival rate must be a positive finite "
                  "req/s value: burst:<req/s>,<cv>";
            return false;
        }
        // CV = 0 is legitimate: the lognormal interarrival
        // degenerates to the deterministic mean (same RNG draw
        // count, so it composes with every determinism contract).
        // Only negative and non-finite CVs have no meaning.
        double cv = 0.0;
        if (!parseFinite(tail.substr(comma + 1), cv) || cv < 0.0) {
            err = "burst arrival CV must be a finite value >= 0 "
                  "(0 = deterministic interarrivals): "
                  "burst:<req/s>,<cv>";
            return false;
        }
        out.kind = ArrivalKind::Burst;
        out.ratePerSec = rate;
        out.cv = cv;
        return true;
    }
    err = "unknown arrival model '" + spec +
          "' (expected closed, poisson:<rate>, or burst:<rate>,<cv>)";
    return false;
}

double
drawInterarrivalNs(const ArrivalConfig &cfg, double ratePerSec, Rng &rng)
{
    const double mean_ns = 1e9 / ratePerSec;
    switch (cfg.kind) {
      case ArrivalKind::Closed:
        return 0.0;
      case ArrivalKind::Poisson: {
        // Inverse-CDF exponential; u in [0, 1) keeps the log finite.
        const double u = rng.nextDouble();
        return -std::log(1.0 - u) * mean_ns;
      }
      case ArrivalKind::Burst: {
        // Lognormal with the requested mean and CV: the same Gaussian
        // draw sequence scales by 1/rate, like the exponential above.
        const double sigma2 = std::log1p(cfg.cv * cfg.cv);
        const double mu = std::log(mean_ns) - 0.5 * sigma2;
        return std::exp(rng.nextGaussian(mu, std::sqrt(sigma2)));
      }
    }
    panic("drawInterarrivalNs: unknown kind");
}

RequestSource::RequestSource(std::unique_ptr<TraceGen> inner,
                             std::uint64_t requestRefs)
    : TraceGen(inner->info()), inner_(std::move(inner)),
      shaped_(dynamic_cast<RequestShapedGen *>(inner_.get())),
      fixedRefs_(requestRefs)
{
    if (!shaped_ && fixedRefs_ == 0)
        panic("RequestSource: requestRefs must be >= 1");
}

MemRef
RequestSource::next()
{
    if (leftInRequest_ == 0)
        leftInRequest_ = shaped_ ? shaped_->nextRequestLen() : fixedRefs_;
    --leftInRequest_;
    return inner_->next();
}

void
RequestSource::nextBatch(MemRef *out, std::size_t n)
{
    boundaries_.clear();
    std::size_t filled = 0;
    while (filled < n) {
        if (leftInRequest_ == 0) {
            leftInRequest_ =
                shaped_ ? shaped_->nextRequestLen() : fixedRefs_;
            if (leftInRequest_ == 0)
                panic("RequestSource: generator planned an empty "
                      "request");
        }
        const std::size_t take = static_cast<std::size_t>(std::min<
            std::uint64_t>(n - filled, leftInRequest_));
        inner_->nextBatch(out + filled, take);
        filled += take;
        leftInRequest_ -= take;
        if (leftInRequest_ == 0)
            boundaries_.push_back(
                static_cast<std::uint32_t>(filled - 1));
    }
}

} // namespace toleo
