/**
 * @file
 * File-backed memory-reference traces.
 *
 * The synthetic generators calibrate paper *shapes*; traces let the
 * same sweep cells run against real application streams (gem5 /
 * DynamoRIO captures via tools/trace_convert, or any synthetic
 * generator's own output captured with --record-trace).
 *
 * Format ("TOLEOTRC", version 1, little-endian throughout):
 *
 *   offset  size  field
 *   0       8     magic "TOLEOTRC"
 *   8       4     u32 version (= 1)
 *   12      4     u32 streamCount (>= 1; one stream per source core)
 *   16      8     u64 seed of the recorded run (informational)
 *   24      32    source workload name, NUL-padded
 *   56      8     u64 FNV-1a-64 checksum of the whole file with
 *                 this field zeroed; 0 = unchecksummed legacy file
 *                 (early captures), loaded without verification
 *   64      24*S  stream table: { u64 byteOffset, u64 byteLength,
 *                                 u64 recordCount } per stream
 *   ...           per-stream record payload
 *
 * The checksum is what makes corruption detection *complete*: the
 * structural validation below catches truncations and inconsistent
 * tables, but a flipped bit inside a varint payload can decode to a
 * perfectly well-formed -- and silently wrong -- reference stream.
 * With the checksum, any single-byte change anywhere in the file
 * fails the load (property-tested against the committed fixture in
 * tests/test_trace.cc).
 *
 * Each record is two LEB128 varints: the zigzag-encoded delta from
 * the previous address in the stream (first record: delta from 0),
 * then (instGap << 1) | isWrite.  Delta + varint encoding makes the
 * common case -- strided or page-local streams -- one or two bytes
 * per field instead of the 16-byte raw MemRef.
 *
 * The reader maps the file read-only (falling back to a buffered
 * read where mmap is unavailable) and validates every stream's
 * payload once at open, so the per-reference replay decode needs no
 * bounds checks beyond the end-of-stream wrap.  All load-time
 * failures throw TraceError, which runSweep() surfaces to the
 * caller like any other cell failure.
 */

#ifndef TOLEO_WORKLOAD_TRACE_FILE_HH
#define TOLEO_WORKLOAD_TRACE_FILE_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace toleo {

/** Malformed, truncated, or unreadable trace file. */
class TraceError : public std::runtime_error
{
  public:
    explicit TraceError(const std::string &what)
        : std::runtime_error(what) {}
};

/**
 * In-memory builder for a trace file; one stream per source core.
 *
 * The encoded capture is buffered in RAM until writeTo() (the
 * stream table needs every payload length, and the per-core streams
 * interleave while the file wants them contiguous).  At the typical
 * 2-4 B/record that bounds capture windows to what fits in memory
 * -- hundreds of millions of references per GB; far past that,
 * record in segments or stream per-core temp files externally.
 */
class TraceWriter
{
  public:
    TraceWriter(unsigned streamCount, std::string workload,
                std::uint64_t seed);

    /** Append @p n references to @p stream's payload. */
    void append(unsigned stream, const MemRef *refs, std::size_t n);

    std::uint64_t recordCount(unsigned stream) const;
    unsigned streamCount() const
    {
        return static_cast<unsigned>(streams_.size());
    }

    /** Serialize header + table + payloads; TraceError on failure. */
    void writeTo(const std::string &path) const;

  private:
    struct Stream
    {
        std::vector<std::uint8_t> bytes;
        std::uint64_t count = 0;
        Addr prevAddr = 0;
    };

    /** One stream per source core; RecordingTraceGen appends to its
     *  own stream only, so concurrent private-phase capture stays
     *  disjoint. */
    // toleo: state(per-core)
    std::vector<Stream> streams_;
    std::string workload_;
    std::uint64_t seed_;
};

/**
 * A loaded (mmap'd or buffered) trace file.  Immutable and
 * position-free, so one instance can back every replay generator of
 * a System -- and, read-only, every cell of a sweep.
 */
class TraceFile
{
  public:
    /** Load and fully validate @p path; TraceError on any defect. */
    static std::shared_ptr<const TraceFile>
    open(const std::string &path);

    ~TraceFile();
    TraceFile(const TraceFile &) = delete;
    TraceFile &operator=(const TraceFile &) = delete;

    const std::string &workload() const { return workload_; }
    std::uint64_t seed() const { return seed_; }
    unsigned streamCount() const
    {
        return static_cast<unsigned>(streams_.size());
    }
    std::uint64_t recordCount(unsigned stream) const
    {
        return streams_[stream].count;
    }

    /** Payload bounds of one stream (for the replay decoder). */
    const std::uint8_t *streamBegin(unsigned stream) const
    {
        return streams_[stream].begin;
    }
    const std::uint8_t *streamEnd(unsigned stream) const
    {
        return streams_[stream].end;
    }

  private:
    struct Stream
    {
        const std::uint8_t *begin = nullptr;
        const std::uint8_t *end = nullptr;
        std::uint64_t count = 0;
    };

    TraceFile() = default;

    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    bool mapped_ = false; ///< munmap vs delete[] on destruction
    std::vector<Stream> streams_;
    std::string workload_;
    std::uint64_t seed_ = 0;
};

/**
 * Replays one stream of a trace as an infinite reference stream:
 * when the recorded stream is exhausted the cursor wraps to its
 * start (and the delta state resets), so a finite capture drives
 * simulation windows of any length.  Core @p core replays stream
 * core % streamCount.
 */
class TraceReplayGen : public TraceGen
{
  public:
    TraceReplayGen(WorkloadInfo info,
                   std::shared_ptr<const TraceFile> trace,
                   unsigned core);

    MemRef next() override;
    void nextBatch(MemRef *out, std::size_t n) override;

  private:
    std::shared_ptr<const TraceFile> trace_;
    const std::uint8_t *begin_;
    const std::uint8_t *end_;
    const std::uint8_t *cur_;
    Addr prevAddr_ = 0;
};

/**
 * Transparent capture wrapper: forwards every batch to the wrapped
 * generator and appends it to a TraceWriter stream.  The wrapped
 * generator's draw sequence is untouched, so a recorded run's stats
 * are byte-identical to an unrecorded one.
 */
class RecordingTraceGen : public TraceGen
{
  public:
    RecordingTraceGen(std::unique_ptr<TraceGen> inner,
                      TraceWriter &writer, unsigned stream)
        : TraceGen(inner->info()), inner_(std::move(inner)),
          writer_(writer), stream_(stream)
    {
    }

    MemRef
    next() override
    {
        MemRef ref = inner_->next();
        writer_.append(stream_, &ref, 1);
        return ref;
    }

    void
    nextBatch(MemRef *out, std::size_t n) override
    {
        inner_->nextBatch(out, n);
        writer_.append(stream_, out, n);
    }

  private:
    std::unique_ptr<TraceGen> inner_;
    TraceWriter &writer_;
    unsigned stream_;
};

} // namespace toleo

#endif // TOLEO_WORKLOAD_TRACE_FILE_HH
