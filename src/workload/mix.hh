/**
 * @file
 * Composable reference-stream engine.
 *
 * Every paper workload decomposes into a weighted mix of a few
 * primitive access patterns:
 *
 *  - HotSeq: sequential sweep over a small cache-resident buffer
 *    (models compute-local reuse: DP tiles, frontier queues, request
 *    parsing state);
 *  - StreamSeq: streaming sweep over a large region (edge lists, LLM
 *    weights, DP output rows, KV-cache appends);
 *  - UniformRandom: uniform random blocks over a region (score
 *    arrays, hash-table inserts);
 *  - Zipf: skewed popularity over a region (hash probes, index
 *    lookups);
 *  - GaussPage: Gaussian-distributed page + random block within it
 *    (memtier key popularity for redis/memcached, Section 7).
 *
 * A MixWorkload draws a stream by weight each step and advances that
 * stream's cursor.  Workload definitions in generators.cc are thin
 * tables of StreamSpecs.
 */

#ifndef TOLEO_WORKLOAD_MIX_HH
#define TOLEO_WORKLOAD_MIX_HH

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "workload/workload.hh"

namespace toleo {

enum class Pattern
{
    HotSeq,
    StreamSeq,
    UniformRandom,
    Zipf,
    GaussPage,
    /**
     * Random blocks within a small, slowly-changing set of "active"
     * pages.  Models the page-level locality real irregular kernels
     * exhibit -- BFS frontier order, delta-stepping buckets, FM-index
     * tree levels, community structure -- which is what gives the
     * paper's graph/genomics workloads their ~98% stealth-cache hit
     * rates despite irregular block access.
     */
    PageLocalRandom,
};

/** One primitive access stream within a workload mix. */
struct StreamSpec
{
    Pattern pattern = Pattern::HotSeq;
    /** Region size in bytes (per core). */
    std::uint64_t regionBytes = 64 * KiB;
    /** Relative selection weight within the mix. */
    double weight = 1.0;
    /** Probability that a reference from this stream is a store. */
    double writeProb = 0.0;
    /** Access stride for sequential patterns, bytes. */
    unsigned strideBytes = 8;
    /** Zipf exponent (Pattern::Zipf). */
    double theta = 0.99;
    /** Gaussian sigma in pages (Pattern::GaussPage). */
    double sigmaPages = 64.0;
    /** Consecutive blocks touched per draw (GaussPage bursts). */
    unsigned burstBlocks = 1;
    /**
     * Zipf only: map popularity rank r to block r directly (tree/
     * index layouts cluster hot nodes) instead of scattering ranks
     * across the region (hash layouts).
     */
    bool clustered = false;
    /** PageLocalRandom: number of concurrently active pages. */
    unsigned activePages = 8;
    /** PageLocalRandom: per-access probability of page turnover. */
    double pageTurnover = 0.05;
};

/** Full workload mix definition. */
struct MixSpec
{
    std::vector<StreamSpec> streams;
    /** Mean non-memory instructions between references. */
    double meanGap = 8.0;
};

class MixWorkload : public TraceGen
{
  public:
    MixWorkload(WorkloadInfo info, MixSpec spec, unsigned core,
                std::uint64_t seed);

    MemRef next() override;
    void nextBatch(MemRef *out, std::size_t n) override;

  private:
    struct StreamState
    {
        StreamSpec spec;
        Addr base = 0;            ///< region base address
        std::uint64_t cursor = 0; ///< sequential cursor (bytes)
        std::unique_ptr<ZipfSampler> zipf;
        unsigned burstLeft = 0;   ///< remaining blocks of a burst
        Addr burstAddr = 0;
        std::vector<std::uint64_t> active; ///< PageLocalRandom pages
    };

    MixSpec spec_;
    std::vector<StreamState> streams_;
    std::vector<double> cumWeight_;
    /** Hoisted per-reference constants (see next()). */
    double totalWeight_ = 0.0;
    std::uint64_t gapLo_ = 0;
    std::uint64_t gapHi_ = 0;
    Rng rng_;

    Addr addrFor(StreamState &st);
};

} // namespace toleo

#endif // TOLEO_WORKLOAD_MIX_HH
