#include "workload/request_apps.hh"

#include <algorithm>
#include <map>
#include <utility>

#include "common/logging.hh"
#include "common/types.hh"

namespace toleo {

namespace {

/** Scatter a popularity rank over a region deterministically. */
std::uint64_t
scatterRank(std::uint64_t rank, std::uint64_t domain)
{
    return (rank * 0x9e3779b97f4a7c15ULL) % domain;
}

/**
 * Shape of one request app.  Every request is: a few hot "parse" refs,
 * `probes` uniform-random probes into the table region, then `bursts`
 * contiguous block runs in the payload region (optionally Zipf-placed,
 * optionally written) with one hot accumulator write per block.
 */
struct RequestAppSpec
{
    /** Uniform-random probe region (hash / flow / index table). */
    std::uint64_t tableBytes = 2 * MiB;
    unsigned probesLo = 1;
    unsigned probesHi = 2;
    /** Streamed payload region (values / postings / vectors). */
    std::uint64_t payloadBytes = 8 * MiB;
    /** Payload bursts per request (values / terms / candidates). */
    unsigned burstsLo = 1;
    unsigned burstsHi = 1;
    /** Contiguous blocks per payload burst. */
    unsigned burstBlocksLo = 1;
    unsigned burstBlocksHi = 8;
    /** Zipf exponent for burst placement; 0 = uniform. */
    double payloadTheta = 0.0;
    /** Probability the request writes its payload (e.g. KVS SET). */
    double writeProb = 0.0;
    /** Hot scratch region (parse state, score/distance accumulators). */
    std::uint64_t hotBytes = 16 * KiB;
    /** Hot prologue refs per request (header parse, dispatch). */
    unsigned hotPrologue = 2;
    /** Hot accumulator writes per payload block. */
    unsigned hotPerBlock = 1;
    /** Mean instruction gap between refs (jittered +/-50%). */
    double meanGap = 8.0;
};

struct RequestAppDef
{
    WorkloadInfo info;
    RequestAppSpec spec;
};

/**
 * Plans one request at a time into an internal ref queue.  next()
 * replans lazily when the queue runs dry, so standalone closed-loop
 * use draws the exact same stream as RequestSource-driven use (which
 * replans via nextRequestLen() at the same RNG points).
 */
class RequestAppGen : public RequestShapedGen
{
  public:
    RequestAppGen(WorkloadInfo info, RequestAppSpec spec, unsigned core,
                  std::uint64_t seed)
        : RequestShapedGen(std::move(info)), spec_(spec),
          rng_(seed * 0x2545f4914f6cdd1dULL + core + 1)
    {
        // Each core owns a disjoint 1 TiB slice, carved into hot /
        // table / payload regions at fixed offsets (same convention
        // as MixWorkload).
        const Addr slice = (static_cast<Addr>(core) + 1) << 40;
        hotBase_ = slice;
        tableBase_ = slice + GiB;
        payloadBase_ = slice + 2 * GiB;
        tableBlocks_ =
            std::max<std::uint64_t>(1, spec_.tableBytes / blockSize);
        payloadBlocks_ =
            std::max<std::uint64_t>(1, spec_.payloadBytes / blockSize);
        hotBlocks_ =
            std::max<std::uint64_t>(1, spec_.hotBytes / blockSize);
        if (spec_.payloadTheta > 0.0)
            zipf_ = std::make_unique<ZipfSampler>(
                payloadBlocks_, spec_.payloadTheta, rng_.next());
        // Jitter bounds [0.5g, 1.5g]; specs are small compile-time
        // constants but clamp anyway before the float->unsigned cast.
        const double gap = std::min(
            std::max(0.0, spec_.meanGap), 1024.0);
        gapLo_ = static_cast<std::uint64_t>(std::max(0.0, gap * 0.5));
        gapHi_ = std::max(
            gapLo_, static_cast<std::uint64_t>(std::max(0.0, gap * 1.5)));
    }

    MemRef
    next() override
    {
        if (planPos_ >= plan_.size())
            planRequest();
        return plan_[planPos_++];
    }

    void
    nextBatch(MemRef *out, std::size_t n) override
    {
        // Qualified call: one virtual dispatch per batch.
        for (std::size_t i = 0; i < n; ++i)
            out[i] = RequestAppGen::next();
    }

    std::uint64_t
    nextRequestLen() override
    {
        if (planPos_ >= plan_.size())
            planRequest();
        return plan_.size() - planPos_;
    }

  private:
    void
    push(Addr addr, bool write)
    {
        MemRef ref;
        ref.addr = addr;
        ref.isWrite = write;
        ref.instGap =
            static_cast<std::uint32_t>(rng_.nextRange(gapLo_, gapHi_));
        plan_.push_back(ref);
    }

    void
    pushHot(bool write)
    {
        push(hotBase_ + (hotCursor_ % hotBlocks_) * blockSize, write);
        ++hotCursor_;
    }

    void
    planRequest()
    {
        plan_.clear();
        planPos_ = 0;
        const bool wr = rng_.nextBool(spec_.writeProb);
        for (unsigned i = 0; i < spec_.hotPrologue; ++i)
            pushHot(false);
        const auto probes = static_cast<unsigned>(
            rng_.nextRange(spec_.probesLo, spec_.probesHi));
        for (unsigned p = 0; p < probes; ++p)
            push(tableBase_ + rng_.nextBounded(tableBlocks_) * blockSize,
                 false);
        const auto bursts = static_cast<unsigned>(
            rng_.nextRange(spec_.burstsLo, spec_.burstsHi));
        for (unsigned b = 0; b < bursts; ++b) {
            const std::uint64_t start =
                zipf_ ? scatterRank(zipf_->next(), payloadBlocks_)
                      : rng_.nextBounded(payloadBlocks_);
            const auto len = static_cast<unsigned>(rng_.nextRange(
                spec_.burstBlocksLo, spec_.burstBlocksHi));
            for (unsigned k = 0; k < len; ++k) {
                push(payloadBase_ +
                         ((start + k) % payloadBlocks_) * blockSize,
                     wr);
                for (unsigned h = 0; h < spec_.hotPerBlock; ++h)
                    pushHot(true);
            }
        }
        if (plan_.empty())
            pushHot(false); // degenerate spec: never emit 0-ref requests
    }

    RequestAppSpec spec_;
    Rng rng_;
    Addr hotBase_ = 0;
    Addr tableBase_ = 0;
    Addr payloadBase_ = 0;
    std::uint64_t tableBlocks_ = 1;
    std::uint64_t payloadBlocks_ = 1;
    std::uint64_t hotBlocks_ = 1;
    std::uint64_t hotCursor_ = 0;
    std::uint64_t gapLo_ = 0;
    std::uint64_t gapHi_ = 0;
    std::unique_ptr<ZipfSampler> zipf_;
    std::vector<MemRef> plan_;
    std::size_t planPos_ = 0;
};

WorkloadInfo
appInfo(const char *name, const RequestAppSpec &spec, double mlp)
{
    WorkloadInfo info;
    info.name = name;
    info.suite = "tina-rx";
    info.paperRssBytes = 0;  // not a paper (Table 2) workload
    info.paperLlcMpki = 0.0; // measured, not calibrated
    info.simFootprintBytes =
        spec.hotBytes + spec.tableBytes + spec.payloadBytes;
    info.mlp = mlp;
    return info;
}

const std::map<std::string, RequestAppDef> &
appTable()
{
    static const std::map<std::string, RequestAppDef> defs = [] {
        std::map<std::string, RequestAppDef> t;

        // KVS get/set: Zipf-popular keys, 1-2 hash probes, value
        // bursts up to 512 B, 30% SETs.
        RequestAppSpec kvs;
        kvs.tableBytes = 4 * MiB;
        kvs.probesLo = 1;
        kvs.probesHi = 2;
        kvs.payloadBytes = 8 * MiB;
        kvs.burstsLo = 1;
        kvs.burstsHi = 1;
        kvs.burstBlocksLo = 1;
        kvs.burstBlocksHi = 8;
        kvs.payloadTheta = 0.99;
        kvs.writeProb = 0.3;
        kvs.hotBytes = 16 * KiB;
        kvs.hotPrologue = 4;
        kvs.hotPerBlock = 1;
        kvs.meanGap = 6.0;
        t.emplace("kvs", RequestAppDef{appInfo("kvs", kvs, 2.5), kvs});

        // NAT: per-packet flow-table lookup + header rewrite; tiny
        // requests, uniform flows, almost always a write.
        RequestAppSpec nat;
        nat.tableBytes = 2 * MiB;
        nat.probesLo = 1;
        nat.probesHi = 2;
        nat.payloadBytes = 1 * MiB;
        nat.burstsLo = 1;
        nat.burstsHi = 1;
        nat.burstBlocksLo = 1;
        nat.burstBlocksHi = 2;
        nat.payloadTheta = 0.0;
        nat.writeProb = 0.9;
        nat.hotBytes = 8 * KiB;
        nat.hotPrologue = 2;
        nat.hotPerBlock = 1;
        nat.meanGap = 4.0;
        t.emplace("nat", RequestAppDef{appInfo("nat", nat, 2.0), nat});

        // BM25 ranking: several Zipf-popular postings-list scans per
        // query with score accumulation; long read-heavy requests.
        RequestAppSpec bm25;
        bm25.tableBytes = 1 * MiB;
        bm25.probesLo = 2;
        bm25.probesHi = 6;
        bm25.payloadBytes = 16 * MiB;
        bm25.burstsLo = 2;
        bm25.burstsHi = 6;
        bm25.burstBlocksLo = 8;
        bm25.burstBlocksHi = 32;
        bm25.payloadTheta = 1.1;
        bm25.writeProb = 0.0;
        bm25.hotBytes = 32 * KiB;
        bm25.hotPrologue = 4;
        bm25.hotPerBlock = 1;
        bm25.meanGap = 10.0;
        t.emplace("bm25",
                  RequestAppDef{appInfo("bm25", bm25, 8.0), bm25});

        // KNN: distance scans over uniformly-drawn 1 KiB candidate
        // vectors with a running-minimum accumulator.
        RequestAppSpec knn;
        knn.tableBytes = 512 * KiB;
        knn.probesLo = 1;
        knn.probesHi = 4;
        knn.payloadBytes = 32 * MiB;
        knn.burstsLo = 4;
        knn.burstsHi = 12;
        knn.burstBlocksLo = 16;
        knn.burstBlocksHi = 16;
        knn.payloadTheta = 0.0;
        knn.writeProb = 0.0;
        knn.hotBytes = 16 * KiB;
        knn.hotPrologue = 2;
        knn.hotPerBlock = 1;
        knn.meanGap = 12.0;
        t.emplace("knn", RequestAppDef{appInfo("knn", knn, 10.0), knn});

        return t;
    }();
    return defs;
}

} // namespace

const std::vector<std::string> &
requestAppWorkloads()
{
    static const std::vector<std::string> names = {"kvs", "nat", "bm25",
                                                   "knn"};
    return names;
}

std::unique_ptr<TraceGen>
makeRequestApp(const std::string &name, unsigned core,
               std::uint64_t seed)
{
    auto it = appTable().find(name);
    if (it == appTable().end())
        return nullptr;
    const auto &def = it->second;
    return std::make_unique<RequestAppGen>(def.info, def.spec, core,
                                           seed ^ 0x7ea15e77a11eULL);
}

bool
requestAppInfo(const std::string &name, WorkloadInfo &out)
{
    auto it = appTable().find(name);
    if (it == appTable().end())
        return false;
    out = it->second.info;
    return true;
}

} // namespace toleo
