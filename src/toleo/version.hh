/**
 * @file
 * Version-number definitions (Section 4.2).
 *
 * Toleo uses a 64-bit full version per cache block, split into:
 *  - a 37-bit upper version (UV), shared per page and stored in the
 *    spare space of MAC blocks in conventional memory;
 *  - a 27-bit stealth version stored confidentially in the Toleo
 *    device.
 *
 * Stealth versions are initialized to a random value, increment
 * monotonically modulo 2^27, and are reset (re-randomized, UV++) with
 * probability 2^-20 on each increment of the page's leading version.
 */

#ifndef TOLEO_TOLEO_VERSION_HH
#define TOLEO_TOLEO_VERSION_HH

#include <cstdint>

namespace toleo {

/** Tunable width/probability parameters of the version scheme. */
struct TripConfig
{
    /** Stealth version width, bits (27 in the paper). */
    unsigned stealthBits = 27;
    /** Upper-version width, bits (37 in the paper). */
    unsigned uvBits = 37;
    /** Reset probability is 2^-resetLog2 per leading increment. */
    unsigned resetLog2 = 20;
    /** Uneven-entry private-offset width, bits (7 in the paper). */
    unsigned offsetBits = 7;
    /** Seed for the device RNG (D-RaNGe stand-in). */
    std::uint64_t seed = 0x70133e0;
};

/** Page-level stealth representation (Figure 3). */
enum class TripFormat : std::uint8_t { Flat = 0, Uneven = 1, Full = 2 };

/** Byte sizes of the Trip representations (Table 4). */
constexpr std::uint64_t flatEntryBytes = 12;
constexpr std::uint64_t unevenEntryBytes = 56;
/** 64 x 27-bit uncompressed stealth list. */
constexpr std::uint64_t fullEntryBytes = 216;
/** A full entry occupies four 56 B overflow blocks (Figure 5). */
constexpr std::uint64_t fullEntryAllocBytes = 224;

/** Compose the 64-bit full version from UV and stealth parts. */
constexpr std::uint64_t
composeVersion(std::uint64_t uv, std::uint64_t stealth,
               unsigned stealth_bits)
{
    return (uv << stealth_bits) | stealth;
}

const char *tripFormatName(TripFormat fmt);

} // namespace toleo

#endif // TOLEO_TOLEO_VERSION_HH
