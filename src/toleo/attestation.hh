/**
 * @file
 * Functional model of Toleo device attestation and IDE key exchange
 * (Sections 3.1, 4.1).
 *
 * CXL IDE's TDISP protocol provides two functions Toleo depends on:
 * establishing a trust relationship between the host and the smart
 * memory (attestation against the device's embedded key), and
 * exchanging the session keys that protect stealth versions in
 * flight.  This model captures the protocol's *logic* -- challenge/
 * response freshness, identity binding, session-key derivation --
 * using the library's own MAC as the signature primitive (a stand-in
 * for the device certificate chain), so tests can demonstrate that a
 * counterfeit device or a replayed attestation transcript is
 * rejected.
 */

#ifndef TOLEO_TOLEO_ATTESTATION_HH
#define TOLEO_TOLEO_ATTESTATION_HH

#include <cstdint>
#include <optional>

#include "common/rng.hh"
#include "crypto/modes.hh"

namespace toleo {

/** The device-side attestation endpoint (lives in the TCB logic). */
class DeviceIdentity
{
  public:
    /**
     * @param endorsement_key Hardware-embedded private key (shared
     *        with the manufacturer's verification service in this
     *        symmetric stand-in).
     * @param device_id Public device identifier (model/serial).
     */
    DeviceIdentity(const AesKey &endorsement_key,
                   std::uint64_t device_id);

    struct Response
    {
        std::uint64_t deviceId = 0;
        std::uint64_t deviceNonce = 0;
        /** Signature over (challenge, deviceNonce, deviceId). */
        std::uint64_t signature = 0;
    };

    /** Answer a host challenge (TDISP attestation request). */
    Response attest(std::uint64_t challenge);

    /** Derive the IDE session key after successful attestation. */
    AesKey sessionKey(std::uint64_t challenge,
                      std::uint64_t device_nonce) const;

    std::uint64_t deviceId() const { return id_; }

  private:
    Mac56 sign_;
    AesKey ek_;
    std::uint64_t id_;
    Rng rng_;
};

/** The host-side verifier (trusted CPU). */
class HostVerifier
{
  public:
    /**
     * @param endorsement_key The manufacturer-published verification
     *        key for the expected device.
     * @param expected_id Device the host intends to bind to.
     */
    HostVerifier(const AesKey &endorsement_key,
                 std::uint64_t expected_id, std::uint64_t seed = 7);

    /** Begin a handshake: returns a fresh challenge. */
    std::uint64_t challenge();

    /**
     * Verify the device response for the *latest* challenge.
     * @return The derived IDE session key on success, nullopt on a
     *         forged signature, wrong device, or stale transcript.
     */
    std::optional<AesKey> verify(const DeviceIdentity::Response &resp);

  private:
    Mac56 verify_;
    AesKey ek_;
    std::uint64_t expectedId_;
    Rng rng_;
    std::uint64_t lastChallenge_ = 0;
    bool challengeOutstanding_ = false;
};

/** Derive a session key from the endorsement secret and nonces. */
AesKey deriveSessionKey(const AesKey &ek, std::uint64_t challenge,
                        std::uint64_t device_nonce);

} // namespace toleo

#endif // TOLEO_TOLEO_ATTESTATION_HH
