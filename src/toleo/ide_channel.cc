#include "toleo/ide_channel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace toleo {

namespace {

/**
 * Derive a domain-separated subkey.  Using the raw session key for
 * both the CTR cipher and the CBC-MAC is insecure: the MAC's first
 * CBC block equals the CTR keystream block, collapsing the tag to
 * E(payload) independent of the sequence number (a regression test
 * guards this).
 */
AesKey
subKey(const AesKey &key, std::uint8_t domain)
{
    Aes128 aes(key);
    AesBlock in{};
    in[0] = domain;
    const AesBlock out = aes.encrypt(in);
    AesKey k{};
    std::copy(out.begin(), out.end(), k.begin());
    return k;
}

} // namespace

IdeStream::IdeStream(const AesKey &key, unsigned skid_depth)
    : cipher_(subKey(key, 0x01)), mac_(subKey(key, 0x02)),
      skidDepth_(skid_depth)
{}

IdeFlit
IdeStream::send(const Bytes &payload)
{
    IdeFlit flit;
    // Sequence number as the stream-cipher nonce: never repeats, so
    // equal payloads produce different ciphertexts.
    flit.cipher = cipher_.apply(payload, sendSeq_, /*addr=*/0);
    flit.mac = mac_.compute(sendSeq_, 0, flit.cipher);
    ++sendSeq_;
    return flit;
}

std::optional<Bytes>
IdeStream::receive(const IdeFlit &flit)
{
    if (poisoned_)
        return std::nullopt;

    const bool ok =
        mac_.compute(recvSeq_, 0, flit.cipher) == flit.mac;
    Bytes payload = cipher_.apply(flit.cipher, recvSeq_, 0);
    ++recvSeq_;

    if (skidDepth_ == 0) {
        // Strict mode: verify before release.
        if (!ok) {
            poisoned_ = true;
            return std::nullopt;
        }
        return payload;
    }

    // Skid mode: release now, verify within skidDepth_ flits.
    pending_.push_back(ok);
    while (pending_.size() > skidDepth_) {
        if (!pending_.front())
            poisoned_ = true;
        pending_.pop_front();
    }
    if (poisoned_)
        return std::nullopt;
    return payload;
}

IdeLinkArbiter::IdeLinkArbiter(unsigned ports) : ports_(ports)
{
    if (ports == 0)
        fatal("IdeLinkArbiter needs at least one port");
}

void
IdeLinkArbiter::enqueue(unsigned port, std::uint64_t bytes)
{
    ports_[port].pending += bytes;
}

std::uint64_t
IdeLinkArbiter::totalPendingBytes() const
{
    std::uint64_t total = 0;
    for (const Port &p : ports_)
        total += p.pending;
    return total;
}

std::uint64_t
IdeLinkArbiter::serveEpoch(std::uint64_t capacityBytes)
{
    for (Port &p : ports_)
        p.grantedLast = 0;

    std::uint64_t remaining = capacityBytes;

    // Water-filling: hand every backlogged port an equal share;
    // ports whose queue is shorter than the share empty out and
    // their surplus is redistributed on the next pass.  Each pass
    // either empties at least one port or leaves a remainder smaller
    // than the active-port count, so the loop terminates.
    for (;;) {
        unsigned active = 0;
        for (const Port &p : ports_)
            active += p.pending > 0;
        if (active == 0 || remaining == 0)
            break;
        const std::uint64_t share = remaining / active;
        if (share == 0)
            break;
        for (Port &p : ports_) {
            if (p.pending == 0)
                continue;
            const std::uint64_t g = std::min(p.pending, share);
            p.pending -= g;
            p.grantedLast += g;
            remaining -= g;
        }
    }

    // Sub-share remainder (fewer bytes left than backlogged ports):
    // one byte per port in rotating order.
    const unsigned n = ports();
    for (unsigned k = 0; k < n && remaining > 0; ++k) {
        Port &p = ports_[(rrStart_ + k) % n];
        if (p.pending == 0)
            continue;
        --p.pending;
        ++p.grantedLast;
        --remaining;
    }
    rrStart_ = (rrStart_ + 1) % n;

    const std::uint64_t granted = capacityBytes - remaining;
    totalGranted_ += granted;
    peakBacklog_ = std::max(peakBacklog_, totalPendingBytes());
    return granted;
}

} // namespace toleo
