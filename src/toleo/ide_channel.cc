#include "toleo/ide_channel.hh"

namespace toleo {

namespace {

/**
 * Derive a domain-separated subkey.  Using the raw session key for
 * both the CTR cipher and the CBC-MAC is insecure: the MAC's first
 * CBC block equals the CTR keystream block, collapsing the tag to
 * E(payload) independent of the sequence number (a regression test
 * guards this).
 */
AesKey
subKey(const AesKey &key, std::uint8_t domain)
{
    Aes128 aes(key);
    AesBlock in{};
    in[0] = domain;
    const AesBlock out = aes.encrypt(in);
    AesKey k{};
    std::copy(out.begin(), out.end(), k.begin());
    return k;
}

} // namespace

IdeStream::IdeStream(const AesKey &key, unsigned skid_depth)
    : cipher_(subKey(key, 0x01)), mac_(subKey(key, 0x02)),
      skidDepth_(skid_depth)
{}

IdeFlit
IdeStream::send(const Bytes &payload)
{
    IdeFlit flit;
    // Sequence number as the stream-cipher nonce: never repeats, so
    // equal payloads produce different ciphertexts.
    flit.cipher = cipher_.apply(payload, sendSeq_, /*addr=*/0);
    flit.mac = mac_.compute(sendSeq_, 0, flit.cipher);
    ++sendSeq_;
    return flit;
}

std::optional<Bytes>
IdeStream::receive(const IdeFlit &flit)
{
    if (poisoned_)
        return std::nullopt;

    const bool ok =
        mac_.compute(recvSeq_, 0, flit.cipher) == flit.mac;
    Bytes payload = cipher_.apply(flit.cipher, recvSeq_, 0);
    ++recvSeq_;

    if (skidDepth_ == 0) {
        // Strict mode: verify before release.
        if (!ok) {
            poisoned_ = true;
            return std::nullopt;
        }
        return payload;
    }

    // Skid mode: release now, verify within skidDepth_ flits.
    pending_.push_back(ok);
    while (pending_.size() > skidDepth_) {
        if (!pending_.front())
            poisoned_ = true;
        pending_.pop_front();
    }
    if (poisoned_)
        return std::nullopt;
    return payload;
}

} // namespace toleo
