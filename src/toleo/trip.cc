#include "toleo/trip.hh"

#include <algorithm>

#include "common/logging.hh"

namespace toleo {

const char *
tripFormatName(TripFormat fmt)
{
    switch (fmt) {
      case TripFormat::Flat: return "flat";
      case TripFormat::Uneven: return "uneven";
      case TripFormat::Full: return "full";
    }
    return "?";
}

TripStore::TripStore(const TripConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
    if (cfg.stealthBits == 0 || cfg.stealthBits > 32)
        fatal("TripStore: stealthBits must be in 1..32");
    if (cfg.offsetBits == 0 || cfg.offsetBits > 8)
        fatal("TripStore: offsetBits must be in 1..8");
    stealthMask_ =
        static_cast<std::uint32_t>((std::uint64_t{1} << cfg.stealthBits) - 1);
    uvMask_ = cfg.uvBits >= 64 ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << cfg.uvBits) - 1;
    offsetMax_ = (1u << cfg.offsetBits) - 1;
}

std::uint32_t
TripStore::randomStealth()
{
    return static_cast<std::uint32_t>(rng_.next()) & stealthMask_;
}

std::uint32_t
TripStore::initialBase(PageNum pg) const
{
    // splitmix64 finalizer over (seed, page): every flat entry gets a
    // stable random initial base without materializing the page.
    std::uint64_t x = cfg_.seed ^ (pg * 0x9e3779b97f4a7c15ULL);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::uint32_t>(x) & stealthMask_;
}

std::uint32_t
TripStore::incStealth(std::uint32_t v) const
{
    return (v + 1) & stealthMask_;
}

TripStore::PageState &
TripStore::page(PageNum pg)
{
    auto it = pages_.find(pg);
    if (it != pages_.end())
        return it->second;
    PageState ps;
    ps.base = initialBase(pg);
    return pages_.emplace(pg, std::move(ps)).first->second;
}

const TripStore::PageState *
TripStore::findPage(PageNum pg) const
{
    auto it = pages_.find(pg);
    return it == pages_.end() ? nullptr : &it->second;
}

std::uint32_t
TripStore::stealthOf(const PageState &ps, unsigned idx) const
{
    switch (ps.fmt) {
      case TripFormat::Flat:
        return (ps.base + ((ps.bitvec >> idx) & 1)) & stealthMask_;
      case TripFormat::Uneven:
        return (ps.base + ps.uneven->off[idx]) & stealthMask_;
      case TripFormat::Full:
        return ps.full->ver[idx];
    }
    panic("TripStore: bad format");
}

void
TripStore::releaseEntries(PageState &ps)
{
    if (ps.uneven) {
        ps.uneven.reset();
        --unevenCount_;
    }
    if (ps.full) {
        ps.full.reset();
        --fullCount_;
    }
}

void
TripStore::resetPage(PageState &ps)
{
    releaseEntries(ps);
    ps.fmt = TripFormat::Flat;
    ps.uv = (ps.uv + 1) & uvMask_;
    ps.base = randomStealth();
    ps.vbase = 0;
    ps.bitvec = 0;
    ps.vlead = 0;
    ps.maxOff = ps.minOff = 0;
}

TripUpdateResult
TripStore::update(BlockNum blk)
{
    ++updates_;
    PageState &ps = page(pageOfBlock(blk));
    const unsigned idx = blockIndexInPage(blk);

    TripUpdateResult res;
    res.fmtBefore = ps.fmt;

    /** Virtual (non-modular) version of the block after this write. */
    std::uint64_t vv = 0;

    switch (ps.fmt) {
      case TripFormat::Flat: {
        const std::uint64_t bit = std::uint64_t{1} << idx;
        if (!(ps.bitvec & bit)) {
            ps.bitvec |= bit;
            vv = ps.vbase + 1;
            if (ps.bitvec == ~std::uint64_t{0}) {
                // Whole page written uniformly: fold into the base.
                ps.base = incStealth(ps.base);
                ++ps.vbase;
                ps.bitvec = 0;
            }
        } else {
            // Second write to the same block before the page filled:
            // stride exceeds one, upgrade to uneven (Section 4.3).
            ps.uneven = std::make_unique<UnevenEntry>();
            ++unevenCount_;
            ++upToUneven_;
            res.upgraded = true;
            for (unsigned i = 0; i < blocksPerPage; ++i)
                ps.uneven->off[i] =
                    static_cast<std::uint8_t>((ps.bitvec >> i) & 1);
            ps.bitvec = 0; // bit-vector now holds the entry pointer
            ps.fmt = TripFormat::Uneven;
            ps.uneven->off[idx] += 1; // becomes 2
            ps.minOff = 0;
            ps.maxOff = ps.uneven->off[idx];
            vv = ps.vbase + ps.uneven->off[idx];
        }
        break;
      }
      case TripFormat::Uneven: {
        auto &off = ps.uneven->off;
        std::uint32_t new_off = static_cast<std::uint32_t>(off[idx]) + 1;
        if (new_off > offsetMax_) {
            // Try to renormalize: fold MIN into the base.
            std::uint8_t mn = 255;
            for (unsigned i = 0; i < blocksPerPage; ++i)
                mn = std::min(mn, i == idx
                                      ? static_cast<std::uint8_t>(255)
                                      : off[i]);
            // Include the incremented block in the min computation.
            mn = std::min<std::uint32_t>(mn, new_off) & 0xff;
            if (mn > 0) {
                ++normalizations_;
                res.normalized = true;
                for (auto &o : off)
                    o = static_cast<std::uint8_t>(o - mn);
                new_off -= mn;
                ps.base = (ps.base + mn) & stealthMask_;
                ps.vbase += mn;
            }
        }
        if (new_off > offsetMax_) {
            // Stride exceeds 2^7 even after normalization: full.
            ps.full = std::make_unique<FullEntry>();
            ++fullCount_;
            ++upToFull_;
            res.upgraded = true;
            for (unsigned i = 0; i < blocksPerPage; ++i) {
                ps.full->ver[i] = (ps.base + off[i]) & stealthMask_;
                ps.full->vcnt[i] = ps.vbase + off[i];
            }
            ps.full->ver[idx] = (ps.base + new_off) & stealthMask_;
            ps.full->vcnt[idx] = ps.vbase + new_off;
            vv = ps.full->vcnt[idx];
            ps.uneven.reset();
            --unevenCount_;
            ps.fmt = TripFormat::Full;
        } else {
            off[idx] = static_cast<std::uint8_t>(new_off);
            if (res.normalized) {
                // Recompute extremes after shifting all offsets.
                std::uint8_t mx = 0, mn2 = 255;
                for (auto o : off) {
                    mx = std::max(mx, o);
                    mn2 = std::min(mn2, o);
                }
                ps.maxOff = mx;
                ps.minOff = mn2;
            } else {
                ps.maxOff = std::max(ps.maxOff, off[idx]);
            }
            vv = ps.vbase + off[idx];
        }
        break;
      }
      case TripFormat::Full: {
        ps.full->ver[idx] = incStealth(ps.full->ver[idx]);
        ps.full->vcnt[idx] += 1;
        vv = ps.full->vcnt[idx];
        break;
      }
    }

    // Leading-version tracking and the probabilistic reset draw
    // (Section 4.2): only increments that advance the page's leading
    // version draw a reset, with probability 2^-resetLog2.
    if (vv > ps.vlead) {
        ps.vlead = vv;
        if (rng_.nextPow2Draw(cfg_.resetLog2)) {
            resetPage(ps);
            ++resets_;
            res.reset = true;
        }
    }

    res.fmtAfter = ps.fmt;
    res.version = fullVersion(blk);
    return res;
}

std::uint64_t
TripStore::stealth(BlockNum blk) const
{
    const PageState *ps = findPage(pageOfBlock(blk));
    if (!ps) {
        // Untouched pages sit at their deterministic initial state:
        // the statically mapped flat entry with its provisioned base.
        return initialBase(pageOfBlock(blk));
    }
    return stealthOf(*ps, blockIndexInPage(blk));
}

std::uint64_t
TripStore::fullVersion(BlockNum blk) const
{
    const PageState *ps = findPage(pageOfBlock(blk));
    if (!ps)
        return composeVersion(0, initialBase(pageOfBlock(blk)),
                              cfg_.stealthBits);
    return composeVersion(ps->uv, stealthOf(*ps, blockIndexInPage(blk)),
                          cfg_.stealthBits);
}

std::uint64_t
TripStore::upperVersion(PageNum page) const
{
    const PageState *ps = findPage(page);
    return ps ? ps->uv : 0;
}

TripFormat
TripStore::formatOf(PageNum page) const
{
    const PageState *ps = findPage(page);
    return ps ? ps->fmt : TripFormat::Flat;
}

void
TripStore::freePage(PageNum pg)
{
    auto it = pages_.find(pg);
    if (it == pages_.end())
        return;
    resetPage(it->second);
    ++frees_;
}

std::uint64_t
TripStore::dynamicBytes() const
{
    return unevenCount_ * unevenEntryBytes +
           fullCount_ * fullEntryAllocBytes;
}

TripStore::Breakdown
TripStore::breakdown() const
{
    Breakdown b;
    for (const auto &[pg, ps] : pages_) {
        switch (ps.fmt) {
          case TripFormat::Flat: ++b.flat; break;
          case TripFormat::Uneven: ++b.uneven; break;
          case TripFormat::Full: ++b.full; break;
        }
    }
    return b;
}

double
TripStore::avgEntryBytesPerPage() const
{
    if (pages_.empty())
        return static_cast<double>(flatEntryBytes);
    const Breakdown b = breakdown();
    const double total =
        static_cast<double>(pages_.size()) * flatEntryBytes +
        static_cast<double>(b.uneven) * unevenEntryBytes +
        static_cast<double>(b.full) * fullEntryBytes;
    return total / static_cast<double>(pages_.size());
}

} // namespace toleo
