#include "toleo/downgrade.hh"

namespace toleo {

double
DowngradePolicy::usageFraction() const
{
    const auto cap = device_.dynamicCapacityBytes();
    if (cap == 0)
        return 1.0;
    return static_cast<double>(device_.dynamicBytesUsed()) /
           static_cast<double>(cap);
}

void
DowngradePolicy::onUpdate(BlockNum blk)
{
    const PageNum page = pageOfBlock(blk);
    const TripFormat fmt = device_.formatOf(page);

    auto it = pos_.find(page);
    if (fmt == TripFormat::Flat) {
        // No dynamic entry (anymore): forget it.
        if (it != pos_.end()) {
            lru_.erase(it->second);
            pos_.erase(it);
        }
        return;
    }
    // Move (or insert) to MRU position.
    if (it != pos_.end())
        lru_.erase(it->second);
    lru_.push_front(page);
    pos_[page] = lru_.begin();
}

unsigned
DowngradePolicy::maintain()
{
    if (usageFraction() < cfg_.highWatermark)
        return 0;

    unsigned freed = 0;
    while (usageFraction() > cfg_.lowWatermark && !lru_.empty()) {
        const PageNum victim = lru_.back();
        lru_.pop_back();
        pos_.erase(victim);
        device_.reset(victim); // RESET request: downgrade to flat
        ++freed;
        ++downgrades_;
    }
    return freed;
}

} // namespace toleo
