/**
 * @file
 * Write-frequency tracking and rate limiting (threat model,
 * Section 2.1: "Toleo can easily track write frequencies and perform
 * rate limiting if it detects a Rowhammer threat").
 *
 * The device already sees every version UPDATE, so it is the natural
 * vantage point for detecting hammering: a per-page counter decays
 * over a sliding window; pages whose update rate exceeds a threshold
 * are throttled (the device delays their responses), starving the
 * attack without affecting well-behaved pages.  The mechanism mirrors
 * BlockHammer-style blacklisting [66].
 */

#ifndef TOLEO_TOLEO_ROWHAMMER_HH
#define TOLEO_TOLEO_ROWHAMMER_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace toleo {

struct RowhammerConfig
{
    /** Updates per window that mark a page as hammered. */
    std::uint64_t threshold = 32768;
    /** Window length in device updates (counters halve each epoch). */
    std::uint64_t windowUpdates = 1 << 20;
    /** Extra delay imposed on throttled pages, ns. */
    double throttleNs = 1000.0;
};

class RowhammerGuard
{
  public:
    explicit RowhammerGuard(const RowhammerConfig &cfg) : cfg_(cfg) {}

    /**
     * Record one update to a page.
     * @return The throttle delay to apply (0 for benign pages).
     */
    double
    onUpdate(PageNum page)
    {
        if (++sinceDecay_ >= cfg_.windowUpdates)
            decay();
        const std::uint64_t n = ++counts_[page];
        if (n >= cfg_.threshold) {
            ++throttled_;
            return cfg_.throttleNs;
        }
        return 0.0;
    }

    bool
    isHammered(PageNum page) const
    {
        auto it = counts_.find(page);
        return it != counts_.end() && it->second >= cfg_.threshold;
    }

    std::uint64_t throttledUpdates() const { return throttled_; }
    std::uint64_t trackedPages() const { return counts_.size(); }

  private:
    RowhammerConfig cfg_;
    std::unordered_map<PageNum, std::uint64_t> counts_;
    std::uint64_t sinceDecay_ = 0;
    std::uint64_t throttled_ = 0;

    void
    decay()
    {
        sinceDecay_ = 0;
        for (auto it = counts_.begin(); it != counts_.end();) {
            it->second /= 2;
            if (it->second == 0)
                it = counts_.erase(it);
            else
                ++it;
        }
    }
};

} // namespace toleo

#endif // TOLEO_TOLEO_ROWHAMMER_HH
