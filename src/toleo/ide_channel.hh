/**
 * @file
 * Functional model of the CXL 2.0 IDE secure channel (Section 3.1).
 *
 * IDE protects traffic at flit granularity with a non-deterministic
 * AES stream cipher plus MAC, giving confidentiality, integrity, and
 * replay protection on the link.  Two properties matter for Toleo's
 * security argument (Section 4.2):
 *
 *  - the stream cipher is *non-deterministic*: two transmissions of
 *    the same stealth version yield different ciphertext, so link
 *    snooping learns nothing (this is what lets short stealth
 *    versions repeat safely);
 *  - per-direction monotonic sequence numbers make replayed flits
 *    fail their MAC.
 *
 * In skid mode the receiver releases payloads before the integrity
 * check completes (checks trail by a configurable number of flits);
 * tampering is still caught, just a few flits late -- the model lets
 * tests observe exactly that window.
 */

#ifndef TOLEO_TOLEO_IDE_CHANNEL_HH
#define TOLEO_TOLEO_IDE_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "crypto/modes.hh"

namespace toleo {

/** One encrypted flit on the link (adversary-visible). */
struct IdeFlit
{
    Bytes cipher;
    std::uint64_t mac = 0;
};

/**
 * One direction of an IDE stream: sender side encrypts + tags,
 * receiver side decrypts + verifies against its own expected
 * sequence number.
 */
class IdeStream
{
  public:
    /**
     * @param key Session key from the TDISP exchange.
     * @param skid_depth 0 = verify before release; N > 0 = release
     *        payloads immediately, verification trails by up to N
     *        flits (skid mode).
     */
    explicit IdeStream(const AesKey &key, unsigned skid_depth = 0);

    /** Sender: protect a payload for transmission. */
    IdeFlit send(const Bytes &payload);

    /**
     * Receiver: accept the next flit.
     * @return The payload, or nullopt once the stream is poisoned
     *         (a failed check latches, like the kill switch).
     *
     * In skid mode the payload of a tampered flit may be released,
     * but the stream poisons within skid_depth flits -- mirroring the
     * paper's "withhold data from the CPU until both checks are
     * done" integration point.
     */
    std::optional<Bytes> receive(const IdeFlit &flit);

    /** Has any integrity check failed so far? */
    bool poisoned() const { return poisoned_; }

    /** Flits released whose verification is still pending. */
    unsigned pendingChecks() const { return pending_.size(); }

  private:
    AesCtr cipher_;
    Mac56 mac_;
    unsigned skidDepth_;
    std::uint64_t sendSeq_ = 0;
    std::uint64_t recvSeq_ = 0;
    bool poisoned_ = false;
    /** Deferred verification queue (skid mode). */
    std::deque<bool> pending_;
};

/**
 * Deterministic multi-initiator arbiter for the device-side IDE
 * front end (rack mode, sim/rack.hh).
 *
 * N compute nodes each talk to the shared Toleo device over their
 * own IDE link; the device's version-store service capacity is what
 * they contend for.  Each epoch the rack driver enqueues every
 * node's link traffic on its port and calls serveEpoch() with the
 * bytes the device can service in that epoch.  Capacity is divided
 * max-min fairly: every backlogged port gets an equal share, ports
 * needing less donate their surplus, and the sub-port remainder goes
 * to ports in rotating round-robin order so no port is
 * systematically favoured.  Unserved bytes stay queued and carry
 * into the next epoch -- that backlog is the queueing the rack's
 * contention stats report.
 *
 * Byte-granular and integer-only, so arbitration is exactly
 * reproducible across runs and platforms (the golden rack stats
 * depend on it).
 */
class IdeLinkArbiter
{
  public:
    explicit IdeLinkArbiter(unsigned ports);

    /** Queue @p bytes of link traffic on @p port.  Arbiter state is
     *  rack-shared: only the serial shared sub-phase of the rack
     *  epoch loop may call this (never a node's private half). */
    // toleo: phase(shared)
    void enqueue(unsigned port, std::uint64_t bytes);

    /**
     * Serve up to @p capacityBytes across the ports (max-min fair).
     * Rack-shared, like enqueue(): serial sub-phase only.
     * @return Bytes actually granted (<= capacity and <= demand).
     */
    // toleo: phase(shared)
    std::uint64_t serveEpoch(std::uint64_t capacityBytes);

    /** Bytes still queued on @p port after the last serveEpoch(). */
    std::uint64_t pendingBytes(unsigned port) const
    {
        return ports_[port].pending;
    }
    /** Bytes granted to @p port by the last serveEpoch(). */
    std::uint64_t grantedLastEpoch(unsigned port) const
    {
        return ports_[port].grantedLast;
    }
    /** Total queued bytes across every port. */
    std::uint64_t totalPendingBytes() const;
    /** Bytes granted over the arbiter lifetime. */
    std::uint64_t totalGrantedBytes() const { return totalGranted_; }
    /** High-water mark of total backlog left after a serveEpoch(). */
    std::uint64_t peakBacklogBytes() const { return peakBacklog_; }
    unsigned ports() const
    {
        return static_cast<unsigned>(ports_.size());
    }

  private:
    struct Port
    {
        std::uint64_t pending = 0;
        std::uint64_t grantedLast = 0;
    };

    std::vector<Port> ports_;
    /** Rotating start port for remainder grants. */
    unsigned rrStart_ = 0;
    std::uint64_t totalGranted_ = 0;
    std::uint64_t peakBacklog_ = 0;
};

} // namespace toleo

#endif // TOLEO_TOLEO_IDE_CHANNEL_HH
