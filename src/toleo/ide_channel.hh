/**
 * @file
 * Functional model of the CXL 2.0 IDE secure channel (Section 3.1).
 *
 * IDE protects traffic at flit granularity with a non-deterministic
 * AES stream cipher plus MAC, giving confidentiality, integrity, and
 * replay protection on the link.  Two properties matter for Toleo's
 * security argument (Section 4.2):
 *
 *  - the stream cipher is *non-deterministic*: two transmissions of
 *    the same stealth version yield different ciphertext, so link
 *    snooping learns nothing (this is what lets short stealth
 *    versions repeat safely);
 *  - per-direction monotonic sequence numbers make replayed flits
 *    fail their MAC.
 *
 * In skid mode the receiver releases payloads before the integrity
 * check completes (checks trail by a configurable number of flits);
 * tampering is still caught, just a few flits late -- the model lets
 * tests observe exactly that window.
 */

#ifndef TOLEO_TOLEO_IDE_CHANNEL_HH
#define TOLEO_TOLEO_IDE_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <optional>

#include "crypto/modes.hh"

namespace toleo {

/** One encrypted flit on the link (adversary-visible). */
struct IdeFlit
{
    Bytes cipher;
    std::uint64_t mac = 0;
};

/**
 * One direction of an IDE stream: sender side encrypts + tags,
 * receiver side decrypts + verifies against its own expected
 * sequence number.
 */
class IdeStream
{
  public:
    /**
     * @param key Session key from the TDISP exchange.
     * @param skid_depth 0 = verify before release; N > 0 = release
     *        payloads immediately, verification trails by up to N
     *        flits (skid mode).
     */
    explicit IdeStream(const AesKey &key, unsigned skid_depth = 0);

    /** Sender: protect a payload for transmission. */
    IdeFlit send(const Bytes &payload);

    /**
     * Receiver: accept the next flit.
     * @return The payload, or nullopt once the stream is poisoned
     *         (a failed check latches, like the kill switch).
     *
     * In skid mode the payload of a tampered flit may be released,
     * but the stream poisons within skid_depth flits -- mirroring the
     * paper's "withhold data from the CPU until both checks are
     * done" integration point.
     */
    std::optional<Bytes> receive(const IdeFlit &flit);

    /** Has any integrity check failed so far? */
    bool poisoned() const { return poisoned_; }

    /** Flits released whose verification is still pending. */
    unsigned pendingChecks() const { return pending_.size(); }

  private:
    AesCtr cipher_;
    Mac56 mac_;
    unsigned skidDepth_;
    std::uint64_t sendSeq_ = 0;
    std::uint64_t recvSeq_ = 0;
    bool poisoned_ = false;
    /** Deferred verification queue (skid mode). */
    std::deque<bool> pending_;
};

} // namespace toleo

#endif // TOLEO_TOLEO_IDE_CHANNEL_HH
