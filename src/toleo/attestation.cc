#include "toleo/attestation.hh"

namespace toleo {

AesKey
deriveSessionKey(const AesKey &ek, std::uint64_t challenge,
                 std::uint64_t device_nonce)
{
    // KDF: AES(ek) over (challenge ‖ device_nonce) blocks.
    Aes128 aes(ek);
    AesBlock in{};
    for (int i = 0; i < 8; ++i) {
        in[i] = static_cast<std::uint8_t>(challenge >> (8 * i));
        in[8 + i] = static_cast<std::uint8_t>(device_nonce >> (8 * i));
    }
    const AesBlock out = aes.encrypt(in);
    AesKey key{};
    std::copy(out.begin(), out.end(), key.begin());
    return key;
}

DeviceIdentity::DeviceIdentity(const AesKey &endorsement_key,
                               std::uint64_t device_id)
    : sign_(endorsement_key), ek_(endorsement_key), id_(device_id),
      rng_(device_id ^ 0x1de57ULL)
{}

DeviceIdentity::Response
DeviceIdentity::attest(std::uint64_t challenge)
{
    Response r;
    r.deviceId = id_;
    r.deviceNonce = rng_.next();
    // Sign the transcript: binds identity to this exact exchange.
    Bytes transcript(16);
    for (int i = 0; i < 8; ++i) {
        transcript[i] =
            static_cast<std::uint8_t>(r.deviceNonce >> (8 * i));
        transcript[8 + i] = static_cast<std::uint8_t>(id_ >> (8 * i));
    }
    r.signature = sign_.compute(challenge, id_, transcript);
    return r;
}

AesKey
DeviceIdentity::sessionKey(std::uint64_t challenge,
                           std::uint64_t device_nonce) const
{
    return deriveSessionKey(ek_, challenge, device_nonce);
}

HostVerifier::HostVerifier(const AesKey &endorsement_key,
                           std::uint64_t expected_id,
                           std::uint64_t seed)
    : verify_(endorsement_key), ek_(endorsement_key),
      expectedId_(expected_id), rng_(seed ^ 0x417e57ULL)
{}

std::uint64_t
HostVerifier::challenge()
{
    lastChallenge_ = rng_.next();
    challengeOutstanding_ = true;
    return lastChallenge_;
}

std::optional<AesKey>
HostVerifier::verify(const DeviceIdentity::Response &resp)
{
    if (!challengeOutstanding_)
        return std::nullopt; // replayed or unsolicited transcript
    challengeOutstanding_ = false;

    if (resp.deviceId != expectedId_)
        return std::nullopt;

    Bytes transcript(16);
    for (int i = 0; i < 8; ++i) {
        transcript[i] =
            static_cast<std::uint8_t>(resp.deviceNonce >> (8 * i));
        transcript[8 + i] =
            static_cast<std::uint8_t>(resp.deviceId >> (8 * i));
    }
    const std::uint64_t expect =
        verify_.compute(lastChallenge_, resp.deviceId, transcript);
    if (expect != resp.signature)
        return std::nullopt;

    return deriveSessionKey(ek_, lastChallenge_, resp.deviceNonce);
}

} // namespace toleo
