#include "toleo/secure_memory.hh"

#include "common/logging.hh"

namespace toleo {

SecureMemory::SecureMemory(ToleoDevice &device, const AesKey &dataKey,
                           const AesKey &tweakKey, const AesKey &macKey)
    : device_(device), xts_(dataKey, tweakKey), mac_(macKey)
{}

unsigned
SecureMemory::stealthBits() const
{
    return device_.config().trip.stealthBits;
}

std::uint64_t
SecureMemory::macFor(const UntrustedBlock &b, Addr addr,
                     std::uint64_t version) const
{
    return mac_.compute(version, blockAlign(addr), b.cipher);
}

void
SecureMemory::reencryptPage(PageNum page, BlockNum skip)
{
    // UV_UPDATE handling (Section 4.3): decrypt + verify every block
    // of the page under its pre-reset version and re-encrypt under
    // the fresh one.  Hardware does this atomically with the reset.
    for (unsigned i = 0; i < blocksPerPage; ++i) {
        const BlockNum other =
            (page << (pageBits - blockBits)) | i;
        if (other == skip)
            continue;
        auto it = dram_.find(other);
        if (it == dram_.end())
            continue;
        const Addr other_addr = other << blockBits;
        const std::uint64_t old_v = encVersion_[other];

        if (macFor(it->second, other_addr, old_v) != it->second.mac) {
            killed_ = true;
            warn("SecureMemory: MAC failure during page re-encryption "
                 "-- kill switch");
            return;
        }
        Bytes plain =
            xts_.decrypt(it->second.cipher, old_v, other_addr);
        const std::uint64_t new_v = device_.fullVersion(other);
        it->second.cipher = xts_.encrypt(plain, new_v, other_addr);
        it->second.uv = new_v >> stealthBits();
        it->second.mac = macFor(it->second, other_addr, new_v);
        encVersion_[other] = new_v;
    }
}

void
SecureMemory::write(Addr addr, const Bytes &plain)
{
    if (killed_)
        return;
    if (plain.size() != blockSize)
        fatal("SecureMemory::write: blocks are %llu bytes",
              static_cast<unsigned long long>(blockSize));

    const Addr base = blockAlign(addr);
    const BlockNum blk = blockOf(addr);

    auto res = device_.update(blk);
    const std::uint64_t version = res.version;

    if (res.reset)
        reencryptPage(pageOfBlock(blk), blk);
    if (killed_)
        return;

    UntrustedBlock b;
    b.cipher = xts_.encrypt(plain, version, base);
    b.uv = version >> stealthBits();
    b.mac = macFor(b, base, version);
    dram_[blk] = b;
    encVersion_[blk] = version;
}

std::optional<Bytes>
SecureMemory::read(Addr addr)
{
    if (killed_)
        return std::nullopt;

    const Addr base = blockAlign(addr);
    const BlockNum blk = blockOf(addr);

    auto it = dram_.find(blk);
    if (it == dram_.end())
        return std::nullopt; // never written; not an attack

    // Compose the verification version from the *untrusted* UV and
    // the *trusted* stealth version: this is exactly the property
    // that defeats replay -- the adversary controls UV but not
    // stealth.
    const std::uint64_t stealth = device_.read(blk);
    const std::uint64_t version =
        composeVersion(it->second.uv, stealth, stealthBits());

    if (macFor(it->second, base, version) != it->second.mac) {
        // Integrity or freshness violation: kill switch (Sec 2.1).
        killed_ = true;
        warn("SecureMemory: MAC check failed at %#llx -- kill switch",
             static_cast<unsigned long long>(base));
        return std::nullopt;
    }
    return xts_.decrypt(it->second.cipher, version, base);
}

void
SecureMemory::freePage(PageNum page)
{
    device_.reset(page);
}

SecureMemory::UntrustedBlock
SecureMemory::snoop(Addr addr) const
{
    auto it = dram_.find(blockOf(addr));
    if (it == dram_.end())
        return {};
    return it->second;
}

void
SecureMemory::inject(Addr addr, const UntrustedBlock &blk)
{
    dram_[blockOf(addr)] = blk;
}

void
SecureMemory::flipCipherBit(Addr addr, unsigned bit)
{
    auto it = dram_.find(blockOf(addr));
    if (it == dram_.end())
        return;
    it->second.cipher[bit / 8] ^= static_cast<std::uint8_t>(
        1u << (bit % 8));
}

} // namespace toleo
