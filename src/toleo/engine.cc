#include "toleo/engine.hh"

#include <algorithm>

namespace toleo {

ToleoEngine::ToleoEngine(MemTopology &topo, ToleoDevice &device,
                         const ToleoEngineConfig &cfg)
    : CiEngine(topo, cfg.ci, "Toleo"), tcfg_(cfg), device_(device),
      scache_(cfg.stealth),
      toleoFetchesCtr_(stats_.counter("toleo_fetches")),
      toleoFetchesReadCtr_(stats_.counter("toleo_fetches_read")),
      toleoFetchesWbCtr_(stats_.counter("toleo_fetches_wb")),
      pageReencryptionsCtr_(stats_.counter("page_reencryptions"))
{}

double
ToleoEngine::fetchFromToleo(BlockNum blk, MetaCost &cost, bool on_read)
{
    const std::uint64_t bytes =
        on_read ? tcfg_.requestBytes + tcfg_.responseBytes
                : tcfg_.updateRequestBytes + tcfg_.updateResponseBytes;
    cost.toleoBytes += bytes;
    topo_.addToleoTraffic(bytes);
    ++toleoFetchesCtr_;
    ++(on_read ? toleoFetchesReadCtr_ : toleoFetchesWbCtr_);
    device_.read(blk);

    if (!on_read)
        return 0.0;

    // The version fetch is issued in parallel with the data fetch;
    // only the excess of the Toleo round trip over the data access
    // lands on the read critical path.
    const PageNum page = pageOfBlock(blk);
    const double data_lat = topo_.dataLatencyNs(page);
    return std::max(0.0, topo_.toleoLatencyNs() - data_lat);
}

MetaCost
ToleoEngine::onRead(BlockNum blk)
{
    MetaCost cost = CiEngine::onRead(blk);

    const TripFormat fmt = device_.formatOf(pageOfBlock(blk));
    auto look = scache_.access(blk, fmt, false);
    if (look.writebackBytes) {
        // Dirty version entries flushed back to the device.
        cost.toleoBytes += look.writebackBytes;
        topo_.addToleoTraffic(look.writebackBytes);
    }
    if (!look.hit)
        cost.latencyNs += fetchFromToleo(blk, cost, true);
    return cost;
}

MetaCost
ToleoEngine::onWriteback(BlockNum blk)
{
    MetaCost cost = CiEngine::onWriteback(blk);

    // Functional version increment (UPDATE request semantics); the
    // stealth caches are write-back, so a cached entry defers the
    // link transfer to eviction.
    auto res = device_.update(blk);

    auto look = scache_.access(blk, res.fmtAfter, true);
    if (look.writebackBytes) {
        cost.toleoBytes += look.writebackBytes;
        topo_.addToleoTraffic(look.writebackBytes);
    }
    if (!look.hit)
        fetchFromToleo(blk, cost, false);

    if (res.upgraded || res.reset) {
        // Format changes drop stale overflow entries.
        scache_.invalidatePage(pageOfBlock(blk));
    }

    if (res.reset) {
        // UV_UPDATE: the host re-encrypts the page with the new
        // version (Section 4.3) -- 64 blocks read and rewritten.
        // Rare (p = 2^-20 per leading increment), so the cost is
        // amortized to nothing; we still account the traffic.
        const PageNum page = pageOfBlock(blk);
        const std::uint64_t bytes = 2ULL * blocksPerPage * blockSize;
        cost.metaBytes += bytes;
        topo_.addDataTraffic(page, bytes);
        ++pageReencryptionsCtr_;
    }
    return cost;
}

} // namespace toleo
