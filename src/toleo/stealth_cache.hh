/**
 * @file
 * On-chip stealth-version caches (Section 4.4, Figure 5).
 *
 * Flat entries (12 B) ride in an extension of the shared 256-entry
 * last-level TLB: the tag array is untouched, so flat-entry residency
 * tracks TLB residency exactly.  Uneven and full entries live in a
 * 28 KB, 16-way *stealth overflow buffer* with 56 B blocks; a full
 * entry spans four blocks, addressed by VPN ‖ 2-bit list offset.
 * Both caches are checked in parallel on every LLC miss.
 */

#ifndef TOLEO_TOLEO_STEALTH_CACHE_HH
#define TOLEO_TOLEO_STEALTH_CACHE_HH

#include "cache/set_assoc.hh"
#include "common/types.hh"
#include "toleo/version.hh"

namespace toleo {

struct StealthCacheConfig
{
    unsigned tlbEntries = 256;
    /** Flat-entry extension per TLB entry, bytes. */
    unsigned tlbExtBytes = 12;
    std::uint64_t overflowBytes = 28 * KiB;
    unsigned overflowAssoc = 16;
    unsigned overflowBlockBytes = 56;
    /**
     * Write-combining buffer for version updates: bursts of
     * writebacks to the same page (a KV value spanning several
     * blocks, a page's eviction wave) coalesce into one device
     * UPDATE instead of one per block.
     */
    unsigned updateCombineEntries = 16;
};

/** Outcome of one stealth-cache lookup. */
struct StealthLookup
{
    /** All entries needed for this block's version were on chip. */
    bool hit = false;
    /** A dirty entry was evicted and must be flushed to Toleo. */
    std::uint64_t writebackBytes = 0;
};

class StealthCache
{
  public:
    explicit StealthCache(const StealthCacheConfig &cfg);

    /**
     * Look up the version entries needed for a block access.
     * @param blk The data block being filled or written back.
     * @param fmt The page's current Trip format.
     * @param is_update Version update (marks entries dirty).
     *
     * The stealth caches sit beside the (shared) LLC and are probed
     * per miss during the global-order replay, so the mutating entry
     * points are phase(shared).
     */
    // toleo: phase(shared)
    StealthLookup access(BlockNum blk, TripFormat fmt, bool is_update);

    /** Drop a page's overflow entries (downgrade/reset/free). */
    // toleo: phase(shared)
    void invalidatePage(PageNum page);

    /** Read-path (LLC-miss) hits: what Figure 7 reports. */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    double hitRate() const;

    /** Writeback-path (version update) statistics. */
    std::uint64_t updateHits() const { return updateHits_; }
    std::uint64_t updateMisses() const { return updateMisses_; }

    double tlbHitRate() const { return tlb_.hitRate(); }
    double overflowHitRate() const { return overflow_.hitRate(); }

    /** Total on-chip SRAM the stealth caches add, bytes (Sec 7.3). */
    std::uint64_t sramBytes() const;

    void resetStats();

  private:
    StealthCacheConfig cfg_;
    /** Fully associative TLB extension, keyed by page number. */
    // toleo: state(shared)
    SetAssocCache tlb_;
    /** Overflow buffer keyed by (page << 2) | 56B-chunk index. */
    // toleo: state(shared)
    SetAssocCache overflow_;
    /** Update write-combining buffer (page-granular, FIFO-LRU). */
    // toleo: state(shared)
    SetAssocCache combine_;

    // toleo: state(shared)
    std::uint64_t hits_ = 0;
    // toleo: state(shared)
    std::uint64_t misses_ = 0;
    // toleo: state(shared)
    std::uint64_t updateHits_ = 0;
    // toleo: state(shared)
    std::uint64_t updateMisses_ = 0;

    std::uint64_t overflowKey(PageNum page, unsigned chunk) const;
};

} // namespace toleo

#endif // TOLEO_TOLEO_STEALTH_CACHE_HH
