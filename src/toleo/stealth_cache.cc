#include "toleo/stealth_cache.hh"

namespace toleo {

StealthCache::StealthCache(const StealthCacheConfig &cfg)
    : cfg_(cfg),
      tlb_(1, cfg.tlbEntries),
      overflow_(cfg.overflowBytes / cfg.overflowBlockBytes /
                    cfg.overflowAssoc,
                cfg.overflowAssoc),
      combine_(1, cfg.updateCombineEntries)
{}

std::uint64_t
StealthCache::overflowKey(PageNum page, unsigned chunk) const
{
    return (page << 2) | chunk;
}

StealthLookup
StealthCache::access(BlockNum blk, TripFormat fmt, bool is_update)
{
    const PageNum page = pageOfBlock(blk);
    StealthLookup out;

    bool hit;
    if (is_update) {
        // Version updates must not displace the read path's working
        // set: touch without allocating.  A missing entry means the
        // update goes to the device as a compact command; bursts of
        // updates to the same page coalesce in a small
        // write-combining buffer first.
        hit = tlb_.touch(page, true);
        if (fmt == TripFormat::Uneven) {
            hit = overflow_.touch(overflowKey(page, 0), true) && hit;
        } else if (fmt == TripFormat::Full) {
            const unsigned chunk = blockIndexInPage(blk) / 16;
            hit = overflow_.touch(overflowKey(page, chunk), true) &&
                  hit;
        }
        if (!hit)
            hit = combine_.access(page, false).hit;
    } else {
        // Flat entry (base + bit-vector / pointer) is always needed.
        auto tlb_res = tlb_.access(page, false);
        hit = tlb_res.hit;
        if (tlb_res.writebackTag)
            out.writebackBytes += cfg_.tlbExtBytes;

        if (fmt == TripFormat::Uneven) {
            auto ov = overflow_.access(overflowKey(page, 0), false);
            hit = hit && ov.hit;
            if (ov.writebackTag)
                out.writebackBytes += cfg_.overflowBlockBytes;
        } else if (fmt == TripFormat::Full) {
            // A 56 B chunk holds 16 x 27-bit versions; pick the
            // chunk containing this block's version.
            const unsigned chunk = blockIndexInPage(blk) / 16;
            auto ov =
                overflow_.access(overflowKey(page, chunk), false);
            hit = hit && ov.hit;
            if (ov.writebackTag)
                out.writebackBytes += cfg_.overflowBlockBytes;
        }
    }

    out.hit = hit;
    // Figure 7's hit rate covers the LLC-miss (read) path, where the
    // version gates decryption; writeback updates are tracked
    // separately -- they cost link bandwidth, not read latency.
    if (is_update) {
        if (hit)
            ++updateHits_;
        else
            ++updateMisses_;
    } else {
        if (hit)
            ++hits_;
        else
            ++misses_;
    }
    return out;
}

void
StealthCache::invalidatePage(PageNum page)
{
    tlb_.invalidate(page);
    for (unsigned chunk = 0; chunk < 4; ++chunk)
        overflow_.invalidate(overflowKey(page, chunk));
    // The write-combining buffer holds per-page coalescing state
    // too: a stale entry would let updates to a reset/downgraded
    // page falsely coalesce against the pre-reset entry.
    combine_.invalidate(page);
}

double
StealthCache::hitRate() const
{
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / total : 0.0;
}

std::uint64_t
StealthCache::sramBytes() const
{
    return static_cast<std::uint64_t>(cfg_.tlbEntries) * cfg_.tlbExtBytes +
           cfg_.overflowBytes;
}

void
StealthCache::resetStats()
{
    hits_ = misses_ = 0;
    updateHits_ = updateMisses_ = 0;
    tlb_.resetStats();
    overflow_.resetStats();
    // The combine buffer is transient coalescing state, not a warmed
    // cache: entries left over from the warmup phase would count as
    // measured update hits they never earned.  Drop contents and
    // stats together.
    combine_.invalidateAll();
    combine_.resetStats();
}

} // namespace toleo
