/**
 * @file
 * The Toleo smart-memory device (Sections 4-5).
 *
 * A trusted PIM device behind a CXL 2.0 IDE link: a logic die with a
 * simple in-order controller core, a D-RaNGe TRNG, and package-
 * enclosed DRAM holding the Trip version store.  The device accepts
 * three request types from the host (Section 5):
 *
 *  - READ(block)   -> stealth version;
 *  - UPDATE(block) -> incremented stealth version (may trigger a
 *                     stealth reset, surfaced to the host as a
 *                     UV_UPDATE that re-encrypts the page);
 *  - RESET(page)   -> OS-initiated downgrade to flat on page free or
 *                     remap (scrambles old contents).
 *
 * Space management (Section 4.4): the flat-entry array is statically
 * sized for the protected physical memory; uneven and full entries
 * are allocated dynamically from the remaining capacity.  When space
 * runs out the device rejects upgrades until the host OS downgrades
 * inactive pages.
 */

#ifndef TOLEO_TOLEO_DEVICE_HH
#define TOLEO_TOLEO_DEVICE_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"
#include "toleo/trip.hh"

namespace toleo {

struct ToleoDeviceConfig
{
    /** Total smart-memory capacity (168 GB in the paper). */
    std::uint64_t capacityBytes = 168ULL * 1000 * 1000 * 1000;
    /** Conventional memory the device protects (24.8 TB of data
     *  out of the rack's 28 TB; the rest holds MACs and UVs). */
    std::uint64_t protectedBytes = std::uint64_t(24.8 * 1024) * GiB;
    TripConfig trip;
};

class ToleoDevice
{
  public:
    explicit ToleoDevice(const ToleoDeviceConfig &cfg);

    /** READ request: current stealth version of a block. */
    std::uint64_t read(BlockNum blk);

    /** UPDATE request: increment and return the new version state. */
    TripUpdateResult update(BlockNum blk);

    /** RESET request (host OS page free/remap downgrade). */
    void reset(PageNum page);

    /** Full 64-bit version (host-side view: UV ‖ stealth). */
    std::uint64_t fullVersion(BlockNum blk) const;

    TripFormat formatOf(PageNum page) const;

    /** Static flat-entry array size for the protected region. */
    std::uint64_t flatArrayBytes() const;

    /** Capacity left for dynamic uneven/full entries. */
    std::uint64_t dynamicCapacityBytes() const;

    /** Dynamic bytes currently allocated. */
    std::uint64_t dynamicBytesUsed() const { return store_.dynamicBytes(); }

    /** True when dynamic space is exhausted (host must downgrade). */
    bool spaceExhausted() const;

    /**
     * Device usage attributable to the *touched* footprint: static
     * flat entries for touched pages plus dynamic entries.  This is
     * the quantity Figure 12 plots over time.
     */
    std::uint64_t usageBytes() const;
    std::uint64_t peakUsageBytes() const { return peakUsage_; }

    /**
     * Peak usage normalized per TB of protected data (Figure 11),
     * split by entry kind.  Derived from the touched footprint's
     * Trip-format fractions.
     */
    struct UsagePerTb
    {
        double flatGb = 0.0;
        double unevenGb = 0.0;
        double fullGb = 0.0;
        double totalGb() const { return flatGb + unevenGb + fullGb; }
    };
    UsagePerTb usagePerTbProtected() const;

    TripStore &store() { return store_; }
    const TripStore &store() const { return store_; }
    StatGroup &stats() { return stats_; }
    const ToleoDeviceConfig &config() const { return cfg_; }

  private:
    ToleoDeviceConfig cfg_;
    TripStore store_;
    StatGroup stats_;

    /** Counters resolved once; per-request map lookups are hot. */
    Counter &readReqsCtr_;
    Counter &updateReqsCtr_;
    Counter &uvUpdatesCtr_;
    Counter &upgradesCtr_;
    Counter &spaceRejectionsCtr_;
    Counter &resetReqsCtr_;

    std::uint64_t peakUsage_ = 0;

    void notePeak();
};

} // namespace toleo

#endif // TOLEO_TOLEO_DEVICE_HH
