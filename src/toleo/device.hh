/**
 * @file
 * The Toleo smart-memory device (Sections 4-5).
 *
 * A trusted PIM device behind a CXL 2.0 IDE link: a logic die with a
 * simple in-order controller core, a D-RaNGe TRNG, and package-
 * enclosed DRAM holding the Trip version store.  The device accepts
 * three request types from the host (Section 5):
 *
 *  - READ(block)   -> stealth version;
 *  - UPDATE(block) -> incremented stealth version (may trigger a
 *                     stealth reset, surfaced to the host as a
 *                     UV_UPDATE that re-encrypts the page);
 *  - RESET(page)   -> OS-initiated downgrade to flat on page free or
 *                     remap (scrambles old contents).
 *
 * Space management (Section 4.4): the flat-entry array is statically
 * sized for the protected physical memory; uneven and full entries
 * are allocated dynamically from the remaining capacity.  When space
 * runs out the device rejects upgrades until the host OS downgrades
 * inactive pages.
 */

#ifndef TOLEO_TOLEO_DEVICE_HH
#define TOLEO_TOLEO_DEVICE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "toleo/trip.hh"

namespace toleo {

struct ToleoDeviceConfig
{
    /** Total smart-memory capacity (168 GB in the paper). */
    std::uint64_t capacityBytes = 168ULL * 1000 * 1000 * 1000;
    /** Conventional memory the device protects (24.8 TB of data
     *  out of the rack's 28 TB; the rest holds MACs and UVs).
     *  25395 GiB = trunc(24.8 * 1024) GiB, spelled as an integer so
     *  no float->unsigned conversion is involved. */
    std::uint64_t protectedBytes = 25395 * GiB;
    TripConfig trip;
};

class ToleoDevice
{
  public:
    explicit ToleoDevice(const ToleoDeviceConfig &cfg);

    /** READ request: current stealth version of a block.
     *  The device is one shared instance (per node, or per rack with
     *  multiple initiators); requests are issued strictly in the
     *  global replay order, so the request handlers are
     *  phase(shared). */
    // toleo: phase(shared)
    std::uint64_t read(BlockNum blk);

    /** UPDATE request: increment and return the new version state. */
    // toleo: phase(shared)
    TripUpdateResult update(BlockNum blk);

    /** RESET request (host OS page free/remap downgrade). */
    // toleo: phase(shared)
    void reset(PageNum page);

    /** Full 64-bit version (host-side view: UV ‖ stealth). */
    std::uint64_t fullVersion(BlockNum blk) const;

    TripFormat formatOf(PageNum page) const;

    /** Static flat-entry array size for the protected region. */
    std::uint64_t flatArrayBytes() const;

    /** Capacity left for dynamic uneven/full entries. */
    std::uint64_t dynamicCapacityBytes() const;

    /** Dynamic bytes currently allocated. */
    std::uint64_t dynamicBytesUsed() const { return store_.dynamicBytes(); }

    /** True when dynamic space is exhausted (host must downgrade). */
    bool spaceExhausted() const;

    /**
     * Device usage attributable to the *touched* footprint: static
     * flat entries for touched pages plus dynamic entries.  This is
     * the quantity Figure 12 plots over time.
     */
    std::uint64_t usageBytes() const;
    std::uint64_t peakUsageBytes() const { return peakUsage_; }

    /**
     * Peak usage normalized per TB of protected data (Figure 11),
     * split by entry kind.  Derived from the touched footprint's
     * Trip-format fractions.
     */
    struct UsagePerTb
    {
        double flatGb = 0.0;
        double unevenGb = 0.0;
        double fullGb = 0.0;
        double totalGb() const { return flatGb + unevenGb + fullGb; }
    };
    UsagePerTb usagePerTbProtected() const;

    /**
     * Multi-initiator support (rack mode, Figure 1): one device
     * serves several compute nodes over per-node IDE links.  Each
     * node is an *initiator*; the device partitions its page-number
     * space with a fixed per-initiator stride so nodes' version
     * state never collides (each node protects its own slice of the
     * rack's pooled memory), and attributes request counts to the
     * active initiator so the rack arbiter can bill contention.
     *
     * The rack driver steps nodes strictly round-robin, so a single
     * setActiveInitiator() call per node step replaces any
     * per-request initiator plumbing.  Initiator 0 always exists
     * with a zero offset: a device that never sees addInitiator() /
     * setActiveInitiator() behaves (and performs) exactly as before.
     */
    static constexpr std::uint64_t initiatorPageStride =
        std::uint64_t{1} << 40;

    /** Register one more initiator; returns its id (1, 2, ...). */
    unsigned addInitiator();
    /** Route subsequent requests (and their stats) to @p id.
     *  Device-global routing state: rack drivers may only switch
     *  initiators from the serial shared sub-phase, between nodes'
     *  replays -- never while private halves are in flight. */
    // toleo: phase(shared)
    void setActiveInitiator(unsigned id);
    unsigned activeInitiator() const { return active_; }
    unsigned initiatorCount() const
    {
        return static_cast<unsigned>(initiators_.size());
    }
    /** READ+UPDATE+RESET requests by @p id since the epoch opened. */
    std::uint64_t epochRequests(unsigned id) const
    {
        return initiators_[id].epochReqs;
    }
    /** READ+UPDATE+RESET requests by @p id over the device lifetime. */
    std::uint64_t totalRequests(unsigned id) const
    {
        return initiators_[id].totalReqs;
    }
    /** Open a new arbitration epoch: zero per-initiator counts.
     *  Serial shared sub-phase only, like setActiveInitiator(). */
    // toleo: phase(shared)
    void beginInitiatorEpoch();

    TripStore &store() { return store_; }
    const TripStore &store() const { return store_; }
    StatGroup &stats() { return stats_; }
    std::uint64_t spaceRejections() const
    {
        return spaceRejectionsCtr_.value();
    }
    const ToleoDeviceConfig &config() const { return cfg_; }

  private:
    ToleoDeviceConfig cfg_;
    // toleo: state(shared)
    TripStore store_;
    // toleo: state(shared)
    StatGroup stats_;

    /** Counters resolved once; per-request map lookups are hot. */
    Counter &readReqsCtr_;
    Counter &updateReqsCtr_;
    Counter &uvUpdatesCtr_;
    Counter &upgradesCtr_;
    Counter &spaceRejectionsCtr_;
    Counter &resetReqsCtr_;

    // toleo: state(shared)
    std::uint64_t peakUsage_ = 0;

    struct Initiator
    {
        std::uint64_t epochReqs = 0;
        std::uint64_t totalReqs = 0;
    };

    /**
     * With several initiators, a page number at or past the stride
     * would silently alias the next initiator's slice (e.g. a
     * converted trace carrying kernel-space addresses); reject it.
     * A single-initiator device has no neighbour to collide with,
     * so the classic path stays unrestricted.
     */
    void
    checkInitiatorRange(PageNum page) const
    {
        if (initiators_.size() > 1 && page >= initiatorPageStride)
            rangePanic(page);
    }
    [[noreturn]] void rangePanic(PageNum page) const;
    /** Initiator 0 (the classic single-node owner) always exists. */
    // toleo: state(shared)
    std::vector<Initiator> initiators_{1};
    // toleo: state(shared)
    unsigned active_ = 0;
    /** Cached offsets of the active initiator (hot request path). */
    // toleo: state(shared)
    std::uint64_t activePageOff_ = 0;
    // toleo: state(shared)
    std::uint64_t activeBlockOff_ = 0;

    void
    noteRequest()
    {
        Initiator &ini = initiators_[active_];
        ++ini.epochReqs;
        ++ini.totalReqs;
    }

    void notePeak();
};

} // namespace toleo

#endif // TOLEO_TOLEO_DEVICE_HH
