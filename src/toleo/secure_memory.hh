/**
 * @file
 * Functional end-to-end model of a Toleo-protected memory.
 *
 * This is the *behavioural* counterpart of the timing model: data is
 * really AES-XTS encrypted under the (UV ‖ stealth, address) tweak,
 * really MAC'd, and versions really live in a ToleoDevice.  The split
 * is faithful to Section 4.2: the 37-bit UV is stored in untrusted
 * conventional memory (in the MAC block) and is adversary-visible and
 * replayable; the 27-bit stealth version lives only in the trusted
 * device.  A read composes version = UV(from memory) ‖ stealth(from
 * Toleo) and verifies the MAC against it.
 *
 * An Adversary view exposes exactly what the threat model grants an
 * attacker -- ciphertext, MAC, UV -- and lets tests mount replay and
 * tampering attacks to demonstrate the paper's security claims
 * (Section 6):
 *
 *  - replaying an old (ciphertext, MAC, UV) fails unless the stealth
 *    version happens to match (probability 2^-27);
 *  - tampering with ciphertext or MAC fails the integrity check;
 *  - freeing a page scrambles it (reads of old contents fail).
 *
 * A failed check trips the kill switch: the enclave is destroyed and
 * all further accesses refuse service (Section 2.1).
 */

#ifndef TOLEO_TOLEO_SECURE_MEMORY_HH
#define TOLEO_TOLEO_SECURE_MEMORY_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "crypto/modes.hh"
#include "toleo/device.hh"

namespace toleo {

class SecureMemory
{
  public:
    /** One block as the adversary sees it in untrusted memory. */
    struct UntrustedBlock
    {
        Bytes cipher;
        std::uint64_t mac = 0;
        /** 37-bit upper version (rides in the MAC block). */
        std::uint64_t uv = 0;
    };

    SecureMemory(ToleoDevice &device, const AesKey &dataKey,
                 const AesKey &tweakKey, const AesKey &macKey);

    /** Write one 64 B block (increments its version). */
    void write(Addr addr, const Bytes &plain);

    /**
     * Read one block: compose UV (untrusted memory) with the stealth
     * version (trusted device), verify the MAC, then decrypt.
     * Returns nullopt and trips the kill switch on any integrity or
     * freshness failure.
     */
    std::optional<Bytes> read(Addr addr);

    /** OS frees/remaps a page: version reset scrambles contents. */
    void freePage(PageNum page);

    bool killed() const { return killed_; }
    /** Restart after a kill (new enclave; testing convenience). */
    void reviveForTesting() { killed_ = false; }

    /** @name Adversary interface (untrusted-memory access). */
    /// @{
    UntrustedBlock snoop(Addr addr) const;
    void inject(Addr addr, const UntrustedBlock &blk);
    void flipCipherBit(Addr addr, unsigned bit);
    /// @}

    ToleoDevice &device() { return device_; }

  private:
    ToleoDevice &device_;
    AesXts xts_;
    Mac56 mac_;
    std::unordered_map<BlockNum, UntrustedBlock> dram_;
    /**
     * Host-transient bookkeeping: the full version each block was
     * last encrypted under.  Real hardware reconstructs this during
     * the re-encryption pass that accompanies a UV_UPDATE; it is not
     * adversary-visible state.
     */
    std::unordered_map<BlockNum, std::uint64_t> encVersion_;
    bool killed_ = false;

    unsigned stealthBits() const;
    std::uint64_t macFor(const UntrustedBlock &b, Addr addr,
                         std::uint64_t version) const;
    void reencryptPage(PageNum page, BlockNum skip);
};

} // namespace toleo

#endif // TOLEO_TOLEO_SECURE_MEMORY_HH
