/**
 * @file
 * TripStore: the tri-level page-granularity stealth-version store
 * (Section 4.3) that runs inside the Toleo device.
 *
 * Every protected page is statically mapped to a 12 B *flat* entry:
 * a shared 27-bit stealth base plus a 64-bit dirty bit-vector.  Pages
 * whose blocks drift apart by more than one version upgrade to an
 * *uneven* entry (64 x 7-bit private offsets, MIN/MAX tracked in the
 * flat entry); offsets drifting past 2^7 upgrade to a *full* entry
 * (64 x 27-bit).  Version resets (probability 2^-20 per leading
 * increment) and OS page frees downgrade back to flat.
 *
 * The store is fully functional: it really tracks versions, so the
 * security properties (non-repetition of the full version, scramble
 * on free) are testable, and the same state drives the timing model's
 * space/caching statistics.
 */

#ifndef TOLEO_TOLEO_TRIP_HH
#define TOLEO_TOLEO_TRIP_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/rng.hh"
#include "common/types.hh"
#include "toleo/version.hh"

namespace toleo {

/** What happened inside the store on one version update. */
struct TripUpdateResult
{
    TripFormat fmtBefore = TripFormat::Flat;
    TripFormat fmtAfter = TripFormat::Flat;
    /** Stealth reset fired: UV incremented, page must re-encrypt. */
    bool reset = false;
    /** Flat->Uneven or Uneven->Full transition happened. */
    bool upgraded = false;
    /** Uneven offsets were renormalized (MIN folded into base). */
    bool normalized = false;
    /** New full version of the updated block. */
    std::uint64_t version = 0;
};

class TripStore
{
  public:
    explicit TripStore(const TripConfig &cfg);

    /**
     * Record a write(back) to a cache block: increments its stealth
     * version, applying format transitions and the probabilistic
     * reset policy.
     */
    TripUpdateResult update(BlockNum blk);

    /** Current 64-bit full version of a block (UV ‖ stealth). */
    std::uint64_t fullVersion(BlockNum blk) const;

    /** Current 27-bit stealth version of a block. */
    std::uint64_t stealth(BlockNum blk) const;

    /** Current shared UV of a page. */
    std::uint64_t upperVersion(PageNum page) const;

    /** Current Trip format of a page (Flat if never touched). */
    TripFormat formatOf(PageNum page) const;

    /**
     * OS downgrade on page free/remap (Section 4.3): reset the
     * stealth version and bump UV *without* re-encrypting, which
     * scrambles the old contents.
     */
    void freePage(PageNum page);

    /** Number of pages ever touched (drives flat-array accounting). */
    std::uint64_t touchedPages() const { return pages_.size(); }
    std::uint64_t unevenCount() const { return unevenCount_; }
    std::uint64_t fullCount() const { return fullCount_; }

    /** Dynamically allocated entry bytes (uneven + full). */
    std::uint64_t dynamicBytes() const;

    /** Trip-format page-count breakdown. */
    struct Breakdown
    {
        std::uint64_t flat = 0;
        std::uint64_t uneven = 0;
        std::uint64_t full = 0;
    };
    Breakdown breakdown() const;

    /** Average trusted bytes per touched page (Table 4 "Avg"). */
    double avgEntryBytesPerPage() const;

    std::uint64_t resets() const { return resets_; }
    std::uint64_t upgradesToUneven() const { return upToUneven_; }
    std::uint64_t upgradesToFull() const { return upToFull_; }
    std::uint64_t normalizations() const { return normalizations_; }
    std::uint64_t frees() const { return frees_; }
    std::uint64_t updates() const { return updates_; }

    const TripConfig &config() const { return cfg_; }

  private:
    struct FullEntry
    {
        /** Modular 27-bit stealth per block. */
        std::array<std::uint32_t, blocksPerPage> ver;
        /** Non-modular increment count (leading-version tracking). */
        std::array<std::uint64_t, blocksPerPage> vcnt;
    };

    struct UnevenEntry
    {
        std::array<std::uint8_t, blocksPerPage> off;
    };

    struct PageState
    {
        TripFormat fmt = TripFormat::Flat;
        /** Shared 27-bit stealth base (random-initialized). */
        std::uint32_t base = 0;
        /** Non-modular count of base increments since last reset. */
        std::uint64_t vbase = 0;
        /** Flat dirty bit-vector. */
        std::uint64_t bitvec = 0;
        /** Shared 37-bit upper version. */
        std::uint64_t uv = 0;
        /** Max/min uneven offsets (packed in flat entry, Sec 4.3). */
        std::uint8_t maxOff = 0;
        std::uint8_t minOff = 0;
        /** Virtual leading version (max increments since reset). */
        std::uint64_t vlead = 0;
        std::unique_ptr<UnevenEntry> uneven;
        std::unique_ptr<FullEntry> full;
    };

    TripConfig cfg_;
    std::uint32_t stealthMask_;
    std::uint64_t uvMask_;
    std::uint32_t offsetMax_;
    mutable Rng rng_;
    std::unordered_map<PageNum, PageState> pages_;

    std::uint64_t unevenCount_ = 0;
    std::uint64_t fullCount_ = 0;
    std::uint64_t resets_ = 0;
    std::uint64_t upToUneven_ = 0;
    std::uint64_t upToFull_ = 0;
    std::uint64_t normalizations_ = 0;
    std::uint64_t frees_ = 0;
    std::uint64_t updates_ = 0;

    PageState &page(PageNum pg);
    const PageState *findPage(PageNum pg) const;

    /**
     * Deterministic random-looking initial stealth base of a page's
     * statically mapped flat entry (what the device's TRNG wrote at
     * provisioning time).
     */
    std::uint32_t initialBase(PageNum pg) const;

    std::uint32_t randomStealth();
    std::uint32_t incStealth(std::uint32_t v) const;

    /** Apply a stealth reset: UV++, re-randomize, downgrade flat. */
    void resetPage(PageState &ps);

    void releaseEntries(PageState &ps);

    /** Modular stealth of a block given page state. */
    std::uint32_t stealthOf(const PageState &ps, unsigned idx) const;
};

} // namespace toleo

#endif // TOLEO_TOLEO_TRIP_HH
