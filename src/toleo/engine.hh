/**
 * @file
 * The Toleo protection engine: CI plus CXL/PIM-backed freshness.
 *
 * Composes on top of CiEngine (AES-XTS + MAC): every LLC fill needs
 * the block's version to decrypt and verify; every dirty eviction
 * increments it.  Versions come from the on-chip stealth caches when
 * possible; misses fetch from the Toleo device over the IDE link.
 * The shared UV travels in the MAC block (Figure 4), so it costs no
 * extra access.  Stealth resets surface as UV_UPDATEs that re-encrypt
 * the page (64 blocks read+written, amortized over ~2^20 writes).
 */

#ifndef TOLEO_TOLEO_ENGINE_HH
#define TOLEO_TOLEO_ENGINE_HH

#include "secmem/ci.hh"
#include "toleo/device.hh"
#include "toleo/stealth_cache.hh"

namespace toleo {

struct ToleoEngineConfig
{
    CiConfig ci;
    StealthCacheConfig stealth;
    /** CXL.mem request flit bytes on the IDE link. */
    std::uint64_t requestBytes = 16;
    /** Response flit bytes (one Trip entry fits in a 64 B flit). */
    std::uint64_t responseBytes = 64;
    /**
     * A version UPDATE whose entry is not cached is a compact
     * command + short response (the device increments locally and
     * returns just the new 27-bit stealth), not a full entry fetch.
     */
    std::uint64_t updateRequestBytes = 16;
    std::uint64_t updateResponseBytes = 16;
};

class ToleoEngine : public CiEngine
{
  public:
    ToleoEngine(MemTopology &topo, ToleoDevice &device,
                const ToleoEngineConfig &cfg);

    MetaCost onRead(BlockNum blk) override;
    MetaCost onWriteback(BlockNum blk) override;

    bool freshness() const override { return true; }

    const StealthCache &stealthCache() const { return scache_; }
    StealthCache &stealthCache() { return scache_; }
    ToleoDevice &device() { return device_; }

    /** On-chip SRAM added over CI (TLB ext + overflow buffer). */
    std::uint64_t addedSramBytes() const { return scache_.sramBytes(); }

  private:
    ToleoEngineConfig tcfg_;
    ToleoDevice &device_;
    StealthCache scache_;

    /** Counters resolved once; per-event map lookups are hot. */
    Counter &toleoFetchesCtr_;
    Counter &toleoFetchesReadCtr_;
    Counter &toleoFetchesWbCtr_;
    Counter &pageReencryptionsCtr_;

    /** Charge one miss-path fetch from the Toleo device. */
    double fetchFromToleo(BlockNum blk, MetaCost &cost, bool on_read);
};

} // namespace toleo

#endif // TOLEO_TOLEO_ENGINE_HH
