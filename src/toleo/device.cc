#include "toleo/device.hh"

#include "common/logging.hh"

namespace toleo {

ToleoDevice::ToleoDevice(const ToleoDeviceConfig &cfg)
    : cfg_(cfg), store_(cfg.trip), stats_("toleo_device"),
      readReqsCtr_(stats_.counter("read_reqs")),
      updateReqsCtr_(stats_.counter("update_reqs")),
      uvUpdatesCtr_(stats_.counter("uv_updates")),
      upgradesCtr_(stats_.counter("upgrades")),
      spaceRejectionsCtr_(stats_.counter("space_rejections")),
      resetReqsCtr_(stats_.counter("reset_reqs"))
{
    if (flatArrayBytes() > cfg.capacityBytes)
        fatal("ToleoDevice: %llu B protected memory needs a flat array "
              "larger than the device capacity",
              static_cast<unsigned long long>(cfg.protectedBytes));
}

unsigned
ToleoDevice::addInitiator()
{
    initiators_.emplace_back();
    return static_cast<unsigned>(initiators_.size() - 1);
}

void
ToleoDevice::setActiveInitiator(unsigned id)
{
    if (id >= initiators_.size())
        fatal("ToleoDevice: initiator %u not registered (have %zu)",
              id, initiators_.size());
    active_ = id;
    activePageOff_ = id * initiatorPageStride;
    activeBlockOff_ = activePageOff_ * blocksPerPage;
}

void
ToleoDevice::beginInitiatorEpoch()
{
    for (Initiator &ini : initiators_)
        ini.epochReqs = 0;
}

void
ToleoDevice::rangePanic(PageNum page) const
{
    fatal("ToleoDevice: page 0x%llx of initiator %u overruns the "
          "per-initiator page stride (2^40) and would alias the "
          "next node's slice",
          static_cast<unsigned long long>(page), active_);
}

std::uint64_t
ToleoDevice::read(BlockNum blk)
{
    ++readReqsCtr_;
    noteRequest();
    checkInitiatorRange(pageOfBlock(blk));
    return store_.stealth(blk + activeBlockOff_);
}

TripUpdateResult
ToleoDevice::update(BlockNum blk)
{
    ++updateReqsCtr_;
    noteRequest();
    checkInitiatorRange(pageOfBlock(blk));
    auto res = store_.update(blk + activeBlockOff_);
    if (res.reset)
        ++uvUpdatesCtr_;
    if (res.upgraded) {
        ++upgradesCtr_;
        if (spaceExhausted())
            ++spaceRejectionsCtr_;
    }
    notePeak();
    return res;
}

void
ToleoDevice::reset(PageNum page)
{
    ++resetReqsCtr_;
    noteRequest();
    checkInitiatorRange(page);
    store_.freePage(page + activePageOff_);
}

std::uint64_t
ToleoDevice::fullVersion(BlockNum blk) const
{
    return store_.fullVersion(blk + activeBlockOff_);
}

TripFormat
ToleoDevice::formatOf(PageNum page) const
{
    return store_.formatOf(page + activePageOff_);
}

std::uint64_t
ToleoDevice::flatArrayBytes() const
{
    return cfg_.protectedBytes / pageSize * flatEntryBytes;
}

std::uint64_t
ToleoDevice::dynamicCapacityBytes() const
{
    return cfg_.capacityBytes - flatArrayBytes();
}

bool
ToleoDevice::spaceExhausted() const
{
    return store_.dynamicBytes() >= dynamicCapacityBytes();
}

std::uint64_t
ToleoDevice::usageBytes() const
{
    return store_.touchedPages() * flatEntryBytes +
           store_.dynamicBytes();
}

void
ToleoDevice::notePeak()
{
    const std::uint64_t u = usageBytes();
    if (u > peakUsage_)
        peakUsage_ = u;
}

ToleoDevice::UsagePerTb
ToleoDevice::usagePerTbProtected() const
{
    UsagePerTb out;
    const auto b = store_.breakdown();
    const std::uint64_t touched = store_.touchedPages();
    if (touched == 0)
        return out;
    const double pages_per_tb =
        1e12 / static_cast<double>(pageSize);
    const double f_uneven =
        static_cast<double>(b.uneven) / static_cast<double>(touched);
    const double f_full =
        static_cast<double>(b.full) / static_cast<double>(touched);
    out.flatGb = pages_per_tb * flatEntryBytes / 1e9;
    out.unevenGb = pages_per_tb * f_uneven * unevenEntryBytes / 1e9;
    out.fullGb = pages_per_tb * f_full * fullEntryAllocBytes / 1e9;
    return out;
}

} // namespace toleo
