/**
 * @file
 * Host-OS downgrade policy for Toleo space exhaustion (Section 4.3).
 *
 * "In scenarios where Toleo exhausts its available space, it is the
 * responsibility of the host OS to ask Toleo to downgrade inactive
 * pages to flat.  If Toleo is full, it will reject update requests
 * until sufficient space has been freed."
 *
 * This is the host-side daemon: it tracks recency of uneven/full
 * pages and, when the device reports pressure, issues RESET requests
 * for the coldest fraction.  A downgraded page's stealth version
 * resets and UV bumps, which scrambles the old ciphertext -- so the
 * policy must only target pages the OS knows are inactive (here:
 * least-recently-updated).  Note the security property (Section 4.3):
 * a *malicious* OS downgrading an active page causes MAC failures,
 * not data leakage -- tests/test_secure_memory.cc demonstrates it.
 */

#ifndef TOLEO_TOLEO_DOWNGRADE_HH
#define TOLEO_TOLEO_DOWNGRADE_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "toleo/device.hh"

namespace toleo {

struct DowngradePolicyConfig
{
    /** Start downgrading when dynamic usage exceeds this fraction. */
    double highWatermark = 0.9;
    /** Downgrade until usage falls below this fraction. */
    double lowWatermark = 0.7;
};

class DowngradePolicy
{
  public:
    DowngradePolicy(ToleoDevice &device,
                    const DowngradePolicyConfig &cfg = {})
        : device_(device), cfg_(cfg)
    {}

    /**
     * Note a version update (keeps the LRU recency order).  Call
     * after every device update; cheap.
     */
    void onUpdate(BlockNum blk);

    /**
     * Run one maintenance pass: if the device is over the high
     * watermark, downgrade least-recently-updated dynamic pages
     * until below the low watermark.
     * @return Number of pages downgraded.
     */
    unsigned maintain();

    std::uint64_t downgrades() const { return downgrades_; }

  private:
    ToleoDevice &device_;
    DowngradePolicyConfig cfg_;
    /** LRU list of pages holding dynamic (uneven/full) entries. */
    std::list<PageNum> lru_;
    std::unordered_map<PageNum, std::list<PageNum>::iterator> pos_;
    std::uint64_t downgrades_ = 0;

    double usageFraction() const;
};

} // namespace toleo

#endif // TOLEO_TOLEO_DOWNGRADE_HH
