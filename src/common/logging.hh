/**
 * @file
 * Status and error reporting in the gem5 style.
 *
 * panic()  -- an internal invariant was violated (a simulator bug);
 *             aborts so a debugger or core dump can catch it.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, invalid argument); exits cleanly.
 * warn()   -- something is off but the run can proceed.
 * inform() -- progress / status output.
 */

#ifndef TOLEO_COMMON_LOGGING_HH
#define TOLEO_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace toleo {

/** Report a simulator bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a user error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a recoverable problem. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report status information. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

} // namespace toleo

#endif // TOLEO_COMMON_LOGGING_HH
