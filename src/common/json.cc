#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace toleo {

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        panic("Json: asBool() on non-bool value");
    return bool_;
}

double
Json::asDouble() const
{
    if (type_ != Type::Number)
        panic("Json: asDouble() on non-number value");
    return num_;
}

std::uint64_t
Json::asUint() const
{
    if (type_ != Type::Number || num_ < 0)
        panic("Json: asUint() on non-number or negative value");
    // 0x1p64 is the first double NOT representable in uint64_t; a
    // NaN num_ fails both comparisons above and this one, so it
    // panics rather than reaching the cast as UB.
    if (!(num_ < 0x1p64))
        panic("Json: asUint() value %g out of uint64 range", num_);
    return static_cast<std::uint64_t>(num_);
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        panic("Json: asString() on non-string value");
    return str_;
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    panic("Json: size() on non-container value");
}

const Json &
Json::at(std::size_t i) const
{
    if (type_ != Type::Array)
        panic("Json: at() on non-array value");
    if (i >= arr_.size())
        panic("Json: index %zu out of range (size %zu)", i,
              arr_.size());
    return arr_[i];
}

void
Json::push_back(Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ != Type::Array)
        panic("Json: push_back() on non-array value");
    arr_.push_back(std::move(v));
}

Json &
Json::operator[](const std::string &key)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        panic("Json: operator[] on non-object value");
    for (auto &kv : obj_)
        if (kv.first == key)
            return kv.second;
    obj_.emplace_back(key, Json());
    return obj_.back().second;
}

const Json *
Json::get(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &kv : obj_)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

const std::vector<std::pair<std::string, Json>> &
Json::items() const
{
    if (type_ != Type::Object)
        panic("Json: items() on non-object value");
    return obj_;
}

namespace {

void
dumpString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
dumpNumber(std::ostream &os, double d)
{
    if (!std::isfinite(d)) {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        os << "null";
        return;
    }
    if (d == std::floor(d) && std::fabs(d) < 1e15) {
        os << static_cast<long long>(d);
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    os << buf;
}

} // namespace

void
Json::dumpIndented(std::ostream &os, int indent, int depth) const
{
    const std::string pad =
        indent > 0 ? std::string(indent * (depth + 1), ' ') : "";
    const std::string closePad =
        indent > 0 ? std::string(indent * depth, ' ') : "";
    const char *nl = indent >= 0 ? "\n" : "";
    const char *sep = indent >= 0 ? ": " : ":";

    switch (type_) {
      case Type::Null:
        os << "null";
        break;
      case Type::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Type::Number:
        dumpNumber(os, num_);
        break;
      case Type::String:
        dumpString(os, str_);
        break;
      case Type::Array:
        if (arr_.empty()) {
            os << "[]";
            break;
        }
        os << '[' << nl;
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            os << pad;
            arr_[i].dumpIndented(os, indent, depth + 1);
            if (i + 1 < arr_.size())
                os << ',';
            os << nl;
        }
        os << closePad << ']';
        break;
      case Type::Object:
        if (obj_.empty()) {
            os << "{}";
            break;
        }
        os << '{' << nl;
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            os << pad;
            dumpString(os, obj_[i].first);
            os << sep;
            obj_[i].second.dumpIndented(os, indent, depth + 1);
            if (i + 1 < obj_.size())
                os << ',';
            os << nl;
        }
        os << closePad << '}';
        break;
    }
}

void
Json::dump(std::ostream &os, int indent) const
{
    dumpIndented(os, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream os;
    dump(os, indent);
    return os.str();
}

namespace {

/** Recursive-descent parser over the document text. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *err)
        : text_(text), err_(err) {}

    Json run()
    {
        Json v = value();
        if (failed_)
            return Json();
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after document");
            return Json();
        }
        return v;
    }

    bool failed() const { return failed_; }

  private:
    void fail(const std::string &what)
    {
        if (failed_)
            return;
        failed_ = true;
        std::ostringstream os;
        os << "JSON parse error at offset " << pos_ << ": " << what;
        if (err_)
            *err_ = os.str();
        else
            fatal("%s", os.str().c_str());
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json value()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return Json();
        }
        const char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return Json(string());
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return number();
        if (literal("true"))
            return Json(true);
        if (literal("false"))
            return Json(false);
        if (literal("null"))
            return Json();
        fail("unexpected character");
        return Json();
    }

    Json object()
    {
        Json obj = Json::object();
        ++pos_; // '{'
        skipWs();
        if (consume('}'))
            return obj;
        while (!failed_) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                break;
            }
            std::string key = string();
            if (failed_)
                break;
            skipWs();
            if (!consume(':')) {
                fail("expected ':' after object key");
                break;
            }
            obj[key] = value();
            if (failed_)
                break;
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                break;
            fail("expected ',' or '}' in object");
        }
        return obj;
    }

    Json array()
    {
        Json arr = Json::array();
        ++pos_; // '['
        skipWs();
        if (consume(']'))
            return arr;
        while (!failed_) {
            arr.push_back(value());
            if (failed_)
                break;
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                break;
            fail("expected ',' or ']' in array");
        }
        return arr;
    }

    std::string string()
    {
        std::string out;
        ++pos_; // '"'
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return out;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code |= h - 'A' + 10;
                    else {
                        fail("bad hex digit in \\u escape");
                        return out;
                    }
                }
                // UTF-8 encode the BMP code point (surrogate pairs
                // are not needed for simulator output).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape character");
                return out;
            }
        }
        fail("unterminated string");
        return out;
    }

    Json number()
    {
        const std::size_t start = pos_;
        if (consume('-')) {}
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (consume('.'))
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        try {
            return Json(std::stod(text_.substr(start, pos_ - start)));
        } catch (...) {
            fail("malformed number");
            return Json();
        }
    }

    const std::string &text_;
    std::string *err_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

} // namespace

Json
Json::parse(const std::string &text, std::string *err)
{
    if (err)
        err->clear();
    return Parser(text, err).run();
}

} // namespace toleo
