/**
 * @file
 * Fundamental types and memory-geometry constants shared by every
 * module in the Toleo reproduction.
 *
 * The geometry mirrors the paper: 64 B cache blocks, 4 KB pages,
 * hence 64 cache blocks per page (Section 4.3).
 */

#ifndef TOLEO_COMMON_TYPES_HH
#define TOLEO_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace toleo {

/** Physical or virtual byte address. */
using Addr = std::uint64_t;

/** Physical page number (address >> pageBits). */
using PageNum = std::uint64_t;

/** Cache-block number (address >> blockBits). */
using BlockNum = std::uint64_t;

/** Simulation time in core clock cycles. */
using Cycles = std::uint64_t;

/** Simulation time in picoseconds (used by the memory models). */
using Tick = std::uint64_t;

/** Size of one cache block in bytes. */
constexpr std::uint64_t blockSize = 64;
/** log2(blockSize). */
constexpr unsigned blockBits = 6;

/** Size of one page in bytes. */
constexpr std::uint64_t pageSize = 4096;
/** log2(pageSize). */
constexpr unsigned pageBits = 12;

/** Cache blocks per page: 64 (Section 4.3). */
constexpr unsigned blocksPerPage = pageSize / blockSize;

/** Extract the block number of a byte address. */
constexpr BlockNum
blockOf(Addr addr)
{
    return addr >> blockBits;
}

/** Extract the page number of a byte address. */
constexpr PageNum
pageOf(Addr addr)
{
    return addr >> pageBits;
}

/** Page number containing a given cache block. */
constexpr PageNum
pageOfBlock(BlockNum blk)
{
    return blk >> (pageBits - blockBits);
}

/** Index of a cache block within its page: 0..63. */
constexpr unsigned
blockIndexInPage(BlockNum blk)
{
    return static_cast<unsigned>(blk & (blocksPerPage - 1));
}

/** Align a byte address down to its cache-block base. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~(blockSize - 1);
}

/** Align a byte address down to its page base. */
constexpr Addr
pageAlign(Addr addr)
{
    return addr & ~(pageSize - 1);
}

/** Convenience literals for capacities. */
constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;
constexpr std::uint64_t GiB = 1024 * MiB;
constexpr std::uint64_t TiB = 1024 * GiB;

/**
 * Fractional capacity in GiB, converted with an explicit clamp: the
 * float->unsigned conversion is UB for negative or over-range values
 * (the PR 4 bug class; toleo_lint's unclamped-cast rule), so table
 * entries like "11.7 GiB" route through here instead of a bare cast.
 */
constexpr std::uint64_t
gibBytes(double gib)
{
    // 2^53 GiB already exceeds the exactly-representable double
    // range; everything the tables use is far below either bound.
    const double bytes = gib < 0.0 ? 0.0 : gib * 0x1p30;
    const double capped = bytes < 0x1p62 ? bytes : 0x1p62;
    return static_cast<std::uint64_t>(capped);
}

} // namespace toleo

#endif // TOLEO_COMMON_TYPES_HH
