#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace toleo {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBounded called with bound 0");
    // Lemire-style rejection to remove modulo bias.
    std::uint64_t threshold = -bound % bound;
    while (true) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    if (hi < lo)
        panic("Rng::nextRange: hi < lo");
    return lo + nextBounded(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

bool
Rng::nextPow2Draw(unsigned bits)
{
    if (bits == 0)
        return true;
    if (bits >= 64)
        return false;
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    return (next() & mask) == 0;
}

double
Rng::nextGaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    haveSpare_ = true;
    return u * mul;
}

double
Rng::nextGaussian(double mean, double stddev)
{
    return mean + stddev * nextGaussian();
}

double
ZipfSampler::zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta, std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed)
{
    if (n == 0)
        panic("ZipfSampler domain must be non-empty");
    // Cap the zeta sum for very large domains; the tail contributes
    // negligibly and exact summation would dominate setup time.
    const std::uint64_t cap = n > 10'000'000 ? 10'000'000 : n;
    zetan_ = zeta(cap, theta);
    if (cap < n) {
        // Integral approximation of the remaining tail.
        zetan_ += (std::pow(static_cast<double>(n), 1.0 - theta) -
                   std::pow(static_cast<double>(cap), 1.0 - theta)) /
                  (1.0 - theta);
    }
    alpha_ = 1.0 / (1.0 - theta);
    const double zeta2 = zeta(2, theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / zetan_);
}

std::uint64_t
ZipfSampler::next()
{
    const double u = rng_.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const double frac =
        std::pow(eta_ * u - eta_ + 1.0, alpha_);
    auto idx = static_cast<std::uint64_t>(static_cast<double>(n_) * frac);
    if (idx >= n_)
        idx = n_ - 1;
    return idx;
}

} // namespace toleo
