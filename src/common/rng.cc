#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace toleo {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

void
Rng::boundPanic()
{
    panic("Rng::nextBounded called with bound 0");
}

void
Rng::setupBoundMemo(std::uint64_t bound)
{
    // Granlund & Montgomery round-up reciprocal, as implemented by
    // libdivide's u64 path: floor(r / bound) for every 64-bit r is
    // mulhi(magic, r) (>> shift), with an add-fixup when the magic
    // would need 65 bits.  bound is non-zero and not a power of two
    // here (those take the mask path in nextBounded).
    memoBound_ = bound;
    memoThreshold_ = -bound % bound;

    const unsigned fl =
        63 - static_cast<unsigned>(__builtin_clzll(bound));
    const unsigned __int128 num = static_cast<unsigned __int128>(1)
                                  << (64 + fl);
    std::uint64_t proposed_m = static_cast<std::uint64_t>(num / bound);
    const std::uint64_t rem = static_cast<std::uint64_t>(num % bound);
    const std::uint64_t e = bound - rem;
    if (e < (std::uint64_t{1} << fl)) {
        memoAdd_ = false;
    } else {
        proposed_m += proposed_m;
        const std::uint64_t twice_rem = rem + rem;
        if (twice_rem >= bound || twice_rem < rem)
            ++proposed_m;
        memoAdd_ = true;
    }
    memoMagic_ = proposed_m + 1;
    memoShift_ = fl;
}

void
Rng::rangePanic()
{
    panic("Rng::nextRange: hi < lo");
}

double
Rng::nextGaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    haveSpare_ = true;
    return u * mul;
}

double
Rng::nextGaussian(double mean, double stddev)
{
    return mean + stddev * nextGaussian();
}

double
ZipfSampler::zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta, std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed)
{
    if (n == 0)
        panic("ZipfSampler domain must be non-empty");
    // Cap the zeta sum for very large domains; the tail contributes
    // negligibly and exact summation would dominate setup time.
    const std::uint64_t cap = n > 10'000'000 ? 10'000'000 : n;
    zetan_ = zeta(cap, theta);
    if (cap < n) {
        // Integral approximation of the remaining tail.
        zetan_ += (std::pow(static_cast<double>(n), 1.0 - theta) -
                   std::pow(static_cast<double>(cap), 1.0 - theta)) /
                  (1.0 - theta);
    }
    alpha_ = 1.0 / (1.0 - theta);
    const double zeta2 = zeta(2, theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / zetan_);
    powHalfTheta_ = std::pow(0.5, theta_);
}

std::uint64_t
ZipfSampler::next()
{
    const double u = rng_.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + powHalfTheta_)
        return 1;
    const double frac =
        std::pow(eta_ * u - eta_ + 1.0, alpha_);
    // Clamp BEFORE the conversion: float->unsigned is UB for values
    // the target cannot represent, so an over-range or NaN frac
    // (possible when eta_ makes pow's base negative) must never
    // reach the cast.  For in-range draws the result is unchanged
    // from the historical cast-then-clamp shape.
    const double scaled = static_cast<double>(n_) * frac;
    if (!std::isfinite(scaled) || scaled >= static_cast<double>(n_))
        return n_ - 1;
    return static_cast<std::uint64_t>(scaled);
}

} // namespace toleo
