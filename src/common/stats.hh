/**
 * @file
 * Minimal statistics framework in the spirit of gem5's Stats package.
 *
 * Components register named Counter / Scalar / Histogram objects with a
 * StatGroup; the simulation driver dumps all groups at the end of a
 * run.  Keeping stats first-class (rather than ad-hoc member ints)
 * makes every bench and test read the same numbers the paper reports.
 */

#ifndef TOLEO_COMMON_STATS_HH
#define TOLEO_COMMON_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace toleo {

/** Monotonic event counter. */
class Counter
{
  public:
    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulates samples; reports count / sum / mean / min / max. */
class Accumulator
{
  public:
    /** Inline: sampled on hot per-event paths throughout the model. */
    void
    sample(double v)
    {
        if (count_ == 0) {
            min_ = max_ = v;
        } else {
            min_ = min_ < v ? min_ : v;
            max_ = max_ > v ? max_ : v;
        }
        ++count_;
        sum_ += v;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = min_ = max_ = 0.0;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-bucket linear histogram over [lo, hi). */
class Histogram
{
  public:
    Histogram(double lo, double hi, unsigned buckets);

    void sample(double v);
    std::uint64_t bucketCount(unsigned b) const { return buckets_.at(b); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t totalSamples() const { return total_; }
    unsigned numBuckets() const { return buckets_.size(); }
    double percentile(double p) const;
    void reset();

  private:
    double lo_, hi_, width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Fixed-bucket log-scale histogram for per-request latencies in
 * nanoseconds.
 *
 * Buckets are HDR-style: a linear region for [0, 8) ns, then 8
 * sub-buckets per power of two up to ~2^48 ns, so relative resolution
 * stays within 12.5% across twelve orders of magnitude at a fixed
 * 368-counter footprint.  Indexing is pure integer bit manipulation
 * (no libm), so bucket placement is bit-identical across hosts.
 *
 * Percentiles use exact nearest-rank counting (no interpolation): the
 * value at rank ceil(p * count).  The first and last ranks return the
 * exactly-tracked min/max, and interior ranks return the bucket
 * midpoint clamped to [min, max] — so 0/1/2-sample and all-equal
 * distributions report exact values, not bucket artifacts.
 *
 * merge() adds another histogram's counts; rack-level serving stats
 * merge per-node histograms so rack percentiles are computed over the
 * full request population rather than averaged per node.
 */
class LatencyHistogram
{
  public:
    /** Sub-buckets per power of two (8 => 12.5% resolution). */
    static constexpr unsigned subBits = 3;
    static constexpr unsigned subCount = 1u << subBits;
    /** Largest octave tracked: values clamp below 2^48 ns (~3 days). */
    static constexpr unsigned maxOctave = 47;
    /** Total bucket count: linear region + 8 per octave above it. */
    static constexpr unsigned bucketTotal =
        subCount + (maxOctave - subBits + 1) * subCount;

    void sample(double ns);
    void merge(const LatencyHistogram &other);

    std::uint64_t count() const { return count_; }
    double sumNs() const { return sum_; }
    double meanNs() const { return count_ ? sum_ / count_ : 0.0; }
    double minNs() const { return count_ ? min_ : 0.0; }
    double maxNs() const { return count_ ? max_ : 0.0; }

    /** Exact nearest-rank percentile, p in [0, 1]; 0 when empty. */
    double percentileNs(double p) const;

    std::uint64_t bucketCount(unsigned b) const { return buckets_.at(b); }
    /** Inclusive lower bound of a bucket, in nanoseconds. */
    static double bucketLowerNs(unsigned b);

    void reset();

  private:
    static unsigned bucketIndex(std::uint64_t ns);

    std::array<std::uint64_t, bucketTotal> buckets_{};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Open-loop request-serving statistics for one node, or a rack-level
 * aggregate (merged across nodes).
 *
 * `arrival` names the arrival model ("poisson" / "burst") and is empty
 * for closed-loop runs; every serializer keys off that, so enabling
 * the serving layer never perturbs closed-mode output.  Rates are
 * requests per second; latencies are microseconds.  "Offered" is what
 * the arrival process generated, "completed" what the node served,
 * and "goodput" the completed-within-SLO share of that.
 */
struct ServingStats
{
    /** Arrival model name; empty means closed loop (not serving). */
    std::string arrival;
    /** Configured offered request rate (node-wide), requests/sec. */
    double offeredRatePerSec = 0.0;
    /** SLO latency threshold, microseconds. */
    double sloUs = 0.0;
    /** Requests completed inside the measurement window. */
    std::uint64_t requests = 0;
    /** Completed requests with latency <= sloUs. */
    std::uint64_t sloMet = 0;
    /** Measurement-start to last-completion span, seconds. */
    double spanSeconds = 0.0;
    /** Measured arrival rate: requests / arrival span. */
    double offeredRps = 0.0;
    /** Completion throughput: requests / spanSeconds. */
    double completedRps = 0.0;
    /** SLO-meeting throughput: sloMet / spanSeconds. */
    double goodputRps = 0.0;
    /** Fraction of completed requests that met the SLO. */
    double sloAttainment = 0.0;
    double meanLatencyUs = 0.0;
    /** Mean queueing delay (arrival to service start). */
    double meanQueueUs = 0.0;
    /** Mean pure service (execution) time per request. */
    double meanServiceUs = 0.0;
    double p50LatencyUs = 0.0;
    double p99LatencyUs = 0.0;
    double p999LatencyUs = 0.0;
    double maxLatencyUs = 0.0;
    /** Full latency distribution (ns), mergeable across nodes. */
    LatencyHistogram latency;
};

/**
 * Named collection of statistics.  Components own a StatGroup and
 * register their counters; dump() pretty-prints everything.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    Counter &counter(const std::string &name);
    Accumulator &accumulator(const std::string &name);

    const std::string &name() const { return name_; }
    void dump(std::ostream &os) const;
    void reset();

    /** Ratio of two registered counters (0 if denominator is 0). */
    double ratio(const std::string &num, const std::string &den) const;

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Accumulator> accumulators_;
};

} // namespace toleo

#endif // TOLEO_COMMON_STATS_HH
