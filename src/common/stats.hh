/**
 * @file
 * Minimal statistics framework in the spirit of gem5's Stats package.
 *
 * Components register named Counter / Scalar / Histogram objects with a
 * StatGroup; the simulation driver dumps all groups at the end of a
 * run.  Keeping stats first-class (rather than ad-hoc member ints)
 * makes every bench and test read the same numbers the paper reports.
 */

#ifndef TOLEO_COMMON_STATS_HH
#define TOLEO_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace toleo {

/** Monotonic event counter. */
class Counter
{
  public:
    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulates samples; reports count / sum / mean / min / max. */
class Accumulator
{
  public:
    /** Inline: sampled on hot per-event paths throughout the model. */
    void
    sample(double v)
    {
        if (count_ == 0) {
            min_ = max_ = v;
        } else {
            min_ = min_ < v ? min_ : v;
            max_ = max_ > v ? max_ : v;
        }
        ++count_;
        sum_ += v;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = min_ = max_ = 0.0;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-bucket linear histogram over [lo, hi). */
class Histogram
{
  public:
    Histogram(double lo, double hi, unsigned buckets);

    void sample(double v);
    std::uint64_t bucketCount(unsigned b) const { return buckets_.at(b); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t totalSamples() const { return total_; }
    unsigned numBuckets() const { return buckets_.size(); }
    double percentile(double p) const;
    void reset();

  private:
    double lo_, hi_, width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Named collection of statistics.  Components own a StatGroup and
 * register their counters; dump() pretty-prints everything.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    Counter &counter(const std::string &name);
    Accumulator &accumulator(const std::string &name);

    const std::string &name() const { return name_; }
    void dump(std::ostream &os) const;
    void reset();

    /** Ratio of two registered counters (0 if denominator is 0). */
    double ratio(const std::string &num, const std::string &den) const;

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Accumulator> accumulators_;
};

} // namespace toleo

#endif // TOLEO_COMMON_STATS_HH
