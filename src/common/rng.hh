/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the reproduction (stealth-version
 * initialization, probabilistic resets, workload synthesis) draws from
 * seeded xoshiro256** streams so every experiment is reproducible
 * bit-for-bit.  The real Toleo device uses a DRAM-based TRNG
 * (D-RaNGe [29]); a seeded PRNG is the standard simulation stand-in.
 */

#ifndef TOLEO_COMMON_RNG_HH
#define TOLEO_COMMON_RNG_HH

#include <cstdint>

namespace toleo {

/**
 * xoshiro256** generator (Blackman & Vigna).  Small, fast, and good
 * enough statistically for simulation purposes.
 *
 * The integer/uniform draws are defined inline: the workload
 * generators draw several per simulated reference, so the call
 * overhead of out-of-line definitions is measurable.
 */
class Rng
{
  public:
    /** Seed via splitmix64 so any 64-bit seed yields a good state. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;

        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);

        return result;
    }

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        if (bound == 0)
            boundPanic();
        // Power-of-two bound: the rejection threshold (-bound % bound)
        // is zero and the modulo reduces to a mask, so the two 64-bit
        // divisions vanish while every draw stays identical.
        if ((bound & (bound - 1)) == 0)
            return next() & (bound - 1);
        // Rejection to remove modulo bias.  Call sites draw the same
        // bound over and over (region sizes, instruction gaps), so a
        // one-entry memo caches the rejection threshold and a
        // Granlund-Montgomery reciprocal that turns the per-draw
        // 64-bit modulo into a multiply (exactly r % bound, without
        // the hardware divide).
        if (bound != memoBound_)
            setupBoundMemo(bound);
        while (true) {
            const std::uint64_t r = next();
            if (r >= memoThreshold_)
                return r - memoQuotient(r) * bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    nextRange(std::uint64_t lo, std::uint64_t hi)
    {
        if (hi < lo)
            rangePanic();
        return lo + nextBounded(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

    /**
     * Bernoulli draw with probability 2^-bits, computed without
     * floating point (matches hardware reset-draw semantics:
     * Section 4.2 uses p = 2^-20).
     */
    bool
    nextPow2Draw(unsigned bits)
    {
        if (bits == 0)
            return true;
        if (bits >= 64)
            return false;
        const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
        return (next() & mask) == 0;
    }

    /** Standard normal (Box-Muller). */
    double nextGaussian();

    /** Gaussian with given mean and standard deviation. */
    double nextGaussian(double mean, double stddev);

  private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
    /**
     * One-entry memo for nextBounded: rejection threshold plus a
     * Granlund-Montgomery magic reciprocal (libdivide's u64 scheme)
     * giving exact floor(r / bound) by multiplication.
     */
    std::uint64_t memoBound_ = 0;
    std::uint64_t memoThreshold_ = 0;
    std::uint64_t memoMagic_ = 0;
    unsigned memoShift_ = 0;
    bool memoAdd_ = false;

    /** Fill the bound memo (cold path; one 128/64 division). */
    void setupBoundMemo(std::uint64_t bound);

    /** Exact floor(r / memoBound_) via the memoized reciprocal. */
    std::uint64_t
    memoQuotient(std::uint64_t r) const
    {
        std::uint64_t q = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(memoMagic_) * r) >> 64);
        if (memoAdd_) {
            const std::uint64_t t = ((r - q) >> 1) + q;
            return t >> memoShift_;
        }
        return q >> memoShift_;
    }

    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** Out-of-line so the inline fast paths stay small. */
    [[noreturn]] static void boundPanic();
    [[noreturn]] static void rangePanic();
};

/**
 * Bounded Zipfian sampler over [0, n) with exponent theta, using the
 * standard inverse-CDF-free rejection method of Gray et al.  Used by
 * the key-value-store workload generators for popularity skew.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double theta, std::uint64_t seed);

    std::uint64_t next();

    std::uint64_t domain() const { return n_; }

  private:
    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    /** pow(0.5, theta), hoisted out of the per-draw path. */
    double powHalfTheta_;
    Rng rng_;

    static double zeta(std::uint64_t n, double theta);
};

} // namespace toleo

#endif // TOLEO_COMMON_RNG_HH
