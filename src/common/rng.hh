/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the reproduction (stealth-version
 * initialization, probabilistic resets, workload synthesis) draws from
 * seeded xoshiro256** streams so every experiment is reproducible
 * bit-for-bit.  The real Toleo device uses a DRAM-based TRNG
 * (D-RaNGe [29]); a seeded PRNG is the standard simulation stand-in.
 */

#ifndef TOLEO_COMMON_RNG_HH
#define TOLEO_COMMON_RNG_HH

#include <cstdint>

namespace toleo {

/**
 * xoshiro256** generator (Blackman & Vigna).  Small, fast, and good
 * enough statistically for simulation purposes.
 */
class Rng
{
  public:
    /** Seed via splitmix64 so any 64-bit seed yields a good state. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p. */
    bool nextBool(double p);

    /**
     * Bernoulli draw with probability 2^-bits, computed without
     * floating point (matches hardware reset-draw semantics:
     * Section 4.2 uses p = 2^-20).
     */
    bool nextPow2Draw(unsigned bits);

    /** Standard normal (Box-Muller). */
    double nextGaussian();

    /** Gaussian with given mean and standard deviation. */
    double nextGaussian(double mean, double stddev);

  private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

/**
 * Bounded Zipfian sampler over [0, n) with exponent theta, using the
 * standard inverse-CDF-free rejection method of Gray et al.  Used by
 * the key-value-store workload generators for popularity skew.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double theta, std::uint64_t seed);

    std::uint64_t next();

    std::uint64_t domain() const { return n_; }

  private:
    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    Rng rng_;

    static double zeta(std::uint64_t n, double theta);
};

} // namespace toleo

#endif // TOLEO_COMMON_RNG_HH
