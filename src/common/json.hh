/**
 * @file
 * Minimal JSON value type: build, serialize, parse.
 *
 * Exists so the simulator can emit machine-readable results (the
 * toleo_sim sweep driver, future BENCH_*.json perf tracking) and so
 * tests can parse that output back without an external dependency.
 * Objects preserve insertion order, which keeps serialized reports
 * stable across runs and easy to diff.
 */

#ifndef TOLEO_COMMON_JSON_HH
#define TOLEO_COMMON_JSON_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace toleo {

class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Json() : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double d) : type_(Type::Number), num_(d) {}
    Json(int i) : type_(Type::Number), num_(i) {}
    Json(unsigned u) : type_(Type::Number), num_(u) {}
    Json(std::int64_t i)
        : type_(Type::Number), num_(static_cast<double>(i)) {}
    Json(std::uint64_t u)
        : type_(Type::Number), num_(static_cast<double>(u)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static Json array() { Json j; j.type_ = Type::Array; return j; }
    static Json object() { Json j; j.type_ = Type::Object; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Value accessors; panic() on type mismatch. */
    bool asBool() const;
    double asDouble() const;
    std::uint64_t asUint() const;
    const std::string &asString() const;

    /** Array access. */
    std::size_t size() const;
    const Json &at(std::size_t i) const;
    void push_back(Json v);

    /** Object access: operator[] inserts, get() returns null ptr on
     *  missing key. */
    Json &operator[](const std::string &key);
    const Json *get(const std::string &key) const;
    bool has(const std::string &key) const { return get(key); }
    const std::vector<std::pair<std::string, Json>> &items() const;

    /**
     * Serialize.  @p indent < 0 emits the compact single-line form;
     * otherwise nested values are pretty-printed with that many
     * spaces per level.
     */
    void dump(std::ostream &os, int indent = -1) const;
    std::string dump(int indent = -1) const;

    /**
     * Parse a JSON document.
     * @param err On failure receives a message with offset; if null,
     *        failures are reported via fatal().
     * @return The parsed value, or a Null value on failure.
     */
    static Json parse(const std::string &text,
                      std::string *err = nullptr);

  private:
    void dumpIndented(std::ostream &os, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

} // namespace toleo

#endif // TOLEO_COMMON_JSON_HH
