#include "common/stats.hh"

#include <algorithm>
#include <iomanip>

#include "common/logging.hh"

namespace toleo {

Histogram::Histogram(double lo, double hi, unsigned buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / buckets), buckets_(buckets, 0)
{
    if (hi <= lo || buckets == 0)
        panic("Histogram: invalid range or bucket count");
}

void
Histogram::sample(double v)
{
    ++total_;
    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        ++overflow_;
    } else {
        auto b = static_cast<unsigned>((v - lo_) / width_);
        if (b >= buckets_.size())
            b = buckets_.size() - 1;
        ++buckets_[b];
    }
}

double
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return 0.0;
    // Clamp before the float->unsigned conversion: p outside [0, 1]
    // is a caller bug, but it must degrade to the nearest edge, not
    // to UB.
    const double frac = std::min(1.0, std::max(0.0, p));
    const auto target =
        static_cast<std::uint64_t>(frac * static_cast<double>(total_));
    std::uint64_t seen = underflow_;
    if (seen > target)
        return lo_;
    for (unsigned b = 0; b < buckets_.size(); ++b) {
        seen += buckets_[b];
        if (seen > target)
            return lo_ + (b + 0.5) * width_;
    }
    return hi_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = total_ = 0;
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Accumulator &
StatGroup::accumulator(const std::string &name)
{
    return accumulators_[name];
}

double
StatGroup::ratio(const std::string &num, const std::string &den) const
{
    auto n = counters_.find(num);
    auto d = counters_.find(den);
    if (n == counters_.end() || d == counters_.end())
        return 0.0;
    if (d->second.value() == 0)
        return 0.0;
    return static_cast<double>(n->second.value()) /
           static_cast<double>(d->second.value());
}

void
StatGroup::dump(std::ostream &os) const
{
    os << "=== " << name_ << " ===\n";
    for (const auto &[name, c] : counters_)
        os << "  " << std::left << std::setw(32) << name << c.value()
           << "\n";
    for (const auto &[name, a] : accumulators_) {
        os << "  " << std::left << std::setw(32) << name
           << "count=" << a.count() << " mean=" << a.mean()
           << " min=" << a.min() << " max=" << a.max() << "\n";
    }
}

void
StatGroup::reset()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, a] : accumulators_)
        a.reset();
}

} // namespace toleo
