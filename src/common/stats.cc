#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "common/logging.hh"

namespace toleo {

Histogram::Histogram(double lo, double hi, unsigned buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / buckets), buckets_(buckets, 0)
{
    if (hi <= lo || buckets == 0)
        panic("Histogram: invalid range or bucket count");
}

void
Histogram::sample(double v)
{
    ++total_;
    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        ++overflow_;
    } else {
        auto b = static_cast<unsigned>((v - lo_) / width_);
        if (b >= buckets_.size())
            b = buckets_.size() - 1;
        ++buckets_[b];
    }
}

double
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return 0.0;
    // Clamp before the float->unsigned conversion: p outside [0, 1]
    // is a caller bug, but it must degrade to the nearest edge, not
    // to UB.
    const double frac = std::min(1.0, std::max(0.0, p));
    // Exact nearest-rank counting: report the value holding 1-based
    // rank ceil(p * total).  The old form truncated the rank and
    // compared with ">", which mis-ranked small sample counts (a
    // 1-sample histogram returned hi_ for p = 1.0).
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(frac * static_cast<double>(total_))));
    std::uint64_t seen = underflow_;
    if (seen >= rank)
        return lo_;
    for (unsigned b = 0; b < buckets_.size(); ++b) {
        seen += buckets_[b];
        if (seen >= rank)
            return lo_ + (b + 0.5) * width_;
    }
    return hi_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = total_ = 0;
}

unsigned
LatencyHistogram::bucketIndex(std::uint64_t ns)
{
    if (ns < subCount)
        return static_cast<unsigned>(ns);
    // Position of the leading bit; ns >= 8 here, so octave >= subBits
    // and the shift below is non-negative.
    const auto octave = static_cast<unsigned>(
        63 - __builtin_clzll(ns));
    const auto sub = static_cast<unsigned>(
        (ns >> (octave - subBits)) & (subCount - 1));
    return subCount + (octave - subBits) * subCount + sub;
}

double
LatencyHistogram::bucketLowerNs(unsigned b)
{
    if (b < subCount)
        return static_cast<double>(b);
    const unsigned octave = subBits + (b - subCount) / subCount;
    const unsigned sub = (b - subCount) % subCount;
    const std::uint64_t lower =
        (std::uint64_t{1} << octave) +
        (static_cast<std::uint64_t>(sub) << (octave - subBits));
    return static_cast<double>(lower);
}

void
LatencyHistogram::sample(double ns)
{
    // Non-finite or negative latencies are caller bugs; degrade to
    // the nearest representable edge instead of corrupting a bucket.
    const double ceiling = 0x1p48 - 1.0;
    const double v =
        std::isfinite(ns) ? std::min(ceiling, std::max(0.0, ns))
                          : ceiling;
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = min_ < v ? min_ : v;
        max_ = max_ > v ? max_ : v;
    }
    ++count_;
    sum_ += v;
    const auto n = static_cast<std::uint64_t>(std::min(v, ceiling));
    ++buckets_[bucketIndex(n)];
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = min_ < other.min_ ? min_ : other.min_;
        max_ = max_ > other.max_ ? max_ : other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
    for (unsigned b = 0; b < bucketTotal; ++b)
        buckets_[b] += other.buckets_[b];
}

double
LatencyHistogram::percentileNs(double p) const
{
    if (count_ == 0)
        return 0.0;
    const double frac = std::min(1.0, std::max(0.0, p));
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(frac * static_cast<double>(count_))));
    // The extreme ranks are tracked exactly; with 1 or 2 samples (or
    // all-equal values) every percentile lands here and is exact.
    if (rank >= count_)
        return max_;
    if (rank == 1)
        return min_;
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < bucketTotal; ++b) {
        seen += buckets_[b];
        if (seen >= rank) {
            const double lower = bucketLowerNs(b);
            const double width =
                (b + 1 < bucketTotal ? bucketLowerNs(b + 1) : 0x1p48) -
                lower;
            const double mid = lower + width * 0.5;
            return std::min(max_, std::max(min_, mid));
        }
    }
    return max_;
}

void
LatencyHistogram::reset()
{
    buckets_.fill(0);
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Accumulator &
StatGroup::accumulator(const std::string &name)
{
    return accumulators_[name];
}

double
StatGroup::ratio(const std::string &num, const std::string &den) const
{
    auto n = counters_.find(num);
    auto d = counters_.find(den);
    if (n == counters_.end() || d == counters_.end())
        return 0.0;
    if (d->second.value() == 0)
        return 0.0;
    return static_cast<double>(n->second.value()) /
           static_cast<double>(d->second.value());
}

void
StatGroup::dump(std::ostream &os) const
{
    os << "=== " << name_ << " ===\n";
    for (const auto &[name, c] : counters_)
        os << "  " << std::left << std::setw(32) << name << c.value()
           << "\n";
    for (const auto &[name, a] : accumulators_) {
        os << "  " << std::left << std::setw(32) << name
           << "count=" << a.count() << " mean=" << a.mean()
           << " min=" << a.min() << " max=" << a.max() << "\n";
    }
}

void
StatGroup::reset()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, a] : accumulators_)
        a.reset();
}

} // namespace toleo
