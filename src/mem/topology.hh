/**
 * @file
 * Rack memory topology (Figure 1 / Table 3).
 *
 * One simulated compute node sees:
 *  - local DDR4-3200 DRAM, 3 channels;
 *  - a shared CXL 2.0 memory pool over a PCIe5 x8 link with retimer
 *    (12.7 GB/s, 95 ns added link latency);
 *  - the Toleo device over a dedicated IDE-enabled CXL 2.0 PCIe5 x2
 *    link (3.32 GB/s, 95 ns), with HMC2 DRAM behind it (15 ns).
 *
 * Virtual pages are mapped to local vs. pooled memory randomly in
 * proportion to channel bandwidth (Section 7), which we reproduce with
 * a page-hash split.
 */

#ifndef TOLEO_MEM_TOPOLOGY_HH
#define TOLEO_MEM_TOPOLOGY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mem/channel.hh"

namespace toleo {

/** Where a physical page lives. */
enum class MemTarget { LocalDram, CxlPool };

struct MemTopologyConfig
{
    unsigned ddrChannels = 3;
    double ddrBandwidthGBps = 25.6;   ///< per DDR4-3200 channel
    double ddrLatencyNs = 60.0;       ///< zero-load DRAM access
    double cxlPoolBandwidthGBps = 12.7;
    double cxlPoolLatencyNs = 95.0;   ///< link+retimer, added to DRAM
    double toleoLinkBandwidthGBps = 3.32;
    double toleoLinkLatencyNs = 95.0;
    double toleoDramLatencyNs = 15.0; ///< HMC2 access behind the link
    /**
     * CXL IDE in skid mode releases data before the integrity check
     * completes, so IDE adds (near) zero latency; non-skid serializes
     * the MAC check (Section 3.1 / 4.1).
     */
    bool ideSkidMode = true;
    double ideNonSkidPenaltyNs = 25.0;
};

class MemTopology
{
  public:
    explicit MemTopology(const MemTopologyConfig &cfg);

    /** Map a page to local DRAM or the CXL pool (bandwidth-propor.). */
    MemTarget targetFor(PageNum page) const;

    /**
     * A page's resolved home channel: a DDR channel index, or
     * poolRoute for the CXL pool.  Resolving the route once and
     * reusing it saves the page-hash computations that addDataTraffic
     * and dataLatencyNs would each redo on the miss path.
     */
    using Route = std::uint32_t;
    static constexpr Route poolRoute = ~Route{0};

    Route routeFor(PageNum page) const;

    /** Account a transfer on a resolved route. */
    void
    addTraffic(Route route, std::uint64_t bytes)
    {
        if (route == poolRoute)
            cxlPool_.addTraffic(bytes);
        else
            ddr_[route].addTraffic(bytes);
    }

    /** Effective access latency of a resolved route, ns. */
    double
    latencyNs(Route route) const
    {
        if (route == poolRoute)
            return cxlPool_.latencyNs();
        return ddr_[route].latencyNs();
    }

    /** Account a data/metadata transfer to/from a page's home. */
    void addDataTraffic(PageNum page, std::uint64_t bytes);

    /** Account a transfer on the Toleo CXL IDE link. */
    void addToleoTraffic(std::uint64_t bytes);

    /** Effective latency of a block access to a page's home, ns. */
    double dataLatencyNs(PageNum page) const;

    /** Effective round-trip latency of a Toleo version access, ns. */
    double toleoLatencyNs() const;

    /** Close a traffic epoch on all channels. */
    void endEpoch(double epoch_ns);

    /** Max over channels of the time needed to drain this epoch. */
    double requiredEpochNs() const;

    const Channel &ddr(unsigned ch) const { return ddr_[ch]; }
    const Channel &cxlPool() const { return cxlPool_; }
    const Channel &toleoLink() const { return toleoLink_; }
    unsigned numDdrChannels() const { return ddr_.size(); }

    std::uint64_t totalDataBytes() const;
    std::uint64_t toleoBytes() const { return toleoLink_.totalBytes(); }

    /** Fraction of pages that map to the CXL pool. */
    double poolFraction() const { return poolFraction_; }

    const MemTopologyConfig &config() const { return cfg_; }
    void resetStats();

  private:
    MemTopologyConfig cfg_;
    std::vector<Channel> ddr_;
    Channel cxlPool_;
    Channel toleoLink_;
    double poolFraction_;

    unsigned ddrChannelFor(PageNum page) const;
};

} // namespace toleo

#endif // TOLEO_MEM_TOPOLOGY_HH
