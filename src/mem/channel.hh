/**
 * @file
 * Bandwidth-and-latency channel model used for DDR channels and CXL
 * links.
 *
 * The simulation is epoch-based: traffic is accumulated per channel,
 * and at each epoch boundary the channel computes its utilization and
 * derives a queueing delay (M/D/1-style) that inflates the latency of
 * accesses in the next epoch.  This captures the first-order effect
 * the paper's Figures 6/8/9 depend on: metadata traffic (MACs, dummy
 * packets) saturates bandwidth and inflates memory latency for
 * bandwidth-bound workloads.
 */

#ifndef TOLEO_MEM_CHANNEL_HH
#define TOLEO_MEM_CHANNEL_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace toleo {

class Channel
{
  public:
    /**
     * @param name Channel name for reporting.
     * @param bandwidth_gbps Peak bandwidth in GB/s.
     * @param base_latency_ns Unloaded (zero-load) access latency.
     */
    Channel(std::string name, double bandwidth_gbps,
            double base_latency_ns);

    /** Account bytes transferred in the current epoch. */
    void addTraffic(std::uint64_t bytes);

    /**
     * Current effective access latency in ns (zero-load latency plus
     * the queueing delay derived from last epoch's utilization).
     */
    double latencyNs() const { return baseLatencyNs_ + queueDelayNs_; }

    double baseLatencyNs() const { return baseLatencyNs_; }
    double bandwidthGBps() const { return bandwidthGBps_; }

    /**
     * Close the current epoch of given wall-clock length and update
     * the queueing delay used in the next epoch.
     */
    void endEpoch(double epoch_ns);

    /**
     * Minimum wall-clock time (ns) this channel needs to drain the
     * traffic accumulated in the current epoch.  The system uses the
     * max over channels as a throughput floor on simulated time --
     * this is what makes bandwidth-bound workloads' execution time
     * scale with (data + metadata + dummy) traffic.
     */
    double requiredNs() const
    {
        return static_cast<double>(epochBytes_) / bandwidthGBps_;
    }

    /** Bytes accumulated in the not-yet-closed epoch. */
    std::uint64_t pendingBytes() const { return epochBytes_; }

    /** Utilization observed in the last completed epoch, [0, 1]. */
    double utilization() const { return lastUtilization_; }

    std::uint64_t totalBytes() const { return totalBytes_; }
    const std::string &name() const { return name_; }
    void resetStats();

  private:
    std::string name_;
    double bandwidthGBps_;
    double baseLatencyNs_;

    std::uint64_t epochBytes_ = 0;
    std::uint64_t totalBytes_ = 0;
    double lastUtilization_ = 0.0;
    double queueDelayNs_ = 0.0;
};

} // namespace toleo

#endif // TOLEO_MEM_CHANNEL_HH
