#include "mem/channel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace toleo {

Channel::Channel(std::string name, double bandwidth_gbps,
                 double base_latency_ns)
    : name_(std::move(name)), bandwidthGBps_(bandwidth_gbps),
      baseLatencyNs_(base_latency_ns)
{
    if (bandwidth_gbps <= 0.0)
        panic("Channel %s: non-positive bandwidth", name_.c_str());
}

void
Channel::addTraffic(std::uint64_t bytes)
{
    epochBytes_ += bytes;
    totalBytes_ += bytes;
}

void
Channel::endEpoch(double epoch_ns)
{
    if (epoch_ns <= 0.0)
        panic("Channel %s: non-positive epoch", name_.c_str());

    // bandwidth GB/s == bytes/ns.
    const double capacity = bandwidthGBps_ * epoch_ns;
    double u = static_cast<double>(epochBytes_) / capacity;
    // Cap utilization just below 1: a saturated channel stretches the
    // epoch in reality; the cap keeps the M/D/1 term finite while
    // still producing a large penalty.
    u = std::min(u, 0.95);
    lastUtilization_ = u;

    // M/D/1 mean queueing delay: Wq = rho / (2 (1 - rho)) * service.
    const double service_ns =
        static_cast<double>(blockSize) / bandwidthGBps_;
    queueDelayNs_ = service_ns * u / (2.0 * (1.0 - u)) +
                    // A second, steeper term as the channel approaches
                    // saturation (bank conflicts, scheduler pressure).
                    service_ns * 8.0 * u * u * u * u;

    epochBytes_ = 0;
}

void
Channel::resetStats()
{
    epochBytes_ = 0;
    totalBytes_ = 0;
    lastUtilization_ = 0.0;
    queueDelayNs_ = 0.0;
}

} // namespace toleo
