#include "mem/topology.hh"

#include <algorithm>

#include "common/logging.hh"

namespace toleo {

namespace {

std::uint64_t
hashPage(PageNum page)
{
    std::uint64_t x = page;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace

MemTopology::MemTopology(const MemTopologyConfig &cfg)
    : cfg_(cfg),
      cxlPool_("cxl_pool", cfg.cxlPoolBandwidthGBps,
               cfg.ddrLatencyNs + cfg.cxlPoolLatencyNs),
      toleoLink_("toleo_link", cfg.toleoLinkBandwidthGBps,
                 cfg.toleoLinkLatencyNs + cfg.toleoDramLatencyNs)
{
    if (cfg.ddrChannels == 0)
        panic("MemTopology: at least one DDR channel required");
    for (unsigned c = 0; c < cfg.ddrChannels; ++c)
        ddr_.emplace_back("ddr" + std::to_string(c),
                          cfg.ddrBandwidthGBps, cfg.ddrLatencyNs);

    const double ddr_bw = cfg.ddrChannels * cfg.ddrBandwidthGBps;
    poolFraction_ =
        cfg.cxlPoolBandwidthGBps / (ddr_bw + cfg.cxlPoolBandwidthGBps);
}

MemTarget
MemTopology::targetFor(PageNum page) const
{
    // Deterministic bandwidth-proportional split on a page hash.
    const double frac =
        static_cast<double>(hashPage(page) >> 11) * 0x1.0p-53;
    return frac < poolFraction_ ? MemTarget::CxlPool
                                : MemTarget::LocalDram;
}

unsigned
MemTopology::ddrChannelFor(PageNum page) const
{
    return static_cast<unsigned>(hashPage(page ^ 0x5bd1e995) %
                                 ddr_.size());
}

MemTopology::Route
MemTopology::routeFor(PageNum page) const
{
    if (targetFor(page) == MemTarget::CxlPool)
        return poolRoute;
    return ddrChannelFor(page);
}

void
MemTopology::addDataTraffic(PageNum page, std::uint64_t bytes)
{
    addTraffic(routeFor(page), bytes);
}

void
MemTopology::addToleoTraffic(std::uint64_t bytes)
{
    toleoLink_.addTraffic(bytes);
}

double
MemTopology::dataLatencyNs(PageNum page) const
{
    return latencyNs(routeFor(page));
}

double
MemTopology::toleoLatencyNs() const
{
    double lat = toleoLink_.latencyNs();
    if (!cfg_.ideSkidMode)
        lat += cfg_.ideNonSkidPenaltyNs;
    return lat;
}

double
MemTopology::requiredEpochNs() const
{
    double req = 0.0;
    for (const auto &ch : ddr_)
        req = std::max(req, ch.requiredNs());
    req = std::max(req, cxlPool_.requiredNs());
    req = std::max(req, toleoLink_.requiredNs());
    return req;
}

void
MemTopology::endEpoch(double epoch_ns)
{
    for (auto &ch : ddr_)
        ch.endEpoch(epoch_ns);
    cxlPool_.endEpoch(epoch_ns);
    toleoLink_.endEpoch(epoch_ns);
}

std::uint64_t
MemTopology::totalDataBytes() const
{
    std::uint64_t n = cxlPool_.totalBytes();
    for (const auto &ch : ddr_)
        n += ch.totalBytes();
    return n;
}

void
MemTopology::resetStats()
{
    for (auto &ch : ddr_)
        ch.resetStats();
    cxlPool_.resetStats();
    toleoLink_.resetStats();
}

} // namespace toleo
