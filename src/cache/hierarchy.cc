#include "cache/hierarchy.hh"

namespace toleo {

CacheHierarchy::CacheHierarchy(const CacheHierarchyConfig &cfg)
    : cfg_(cfg)
{
    if (cfg.numCores == 0)
        panic("CacheHierarchy: zero cores");
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        l1_.push_back(SetAssocCache::fromCapacity(cfg.l1Bytes, blockSize,
                                                  cfg.l1Assoc));
        l2_.push_back(SetAssocCache::fromCapacity(cfg.l2Bytes, blockSize,
                                                  cfg.l2Assoc));
    }
    const unsigned slices =
        (cfg.numCores + cfg.coresPerL3Slice - 1) / cfg.coresPerL3Slice;
    for (unsigned s = 0; s < slices; ++s)
        l3_.push_back(SetAssocCache::fromCapacity(cfg.l3SliceBytes,
                                                  blockSize, cfg.l3Assoc));
    for (unsigned c = 0; c < cfg.numCores; ++c)
        l3SliceOf_.push_back(c / cfg.coresPerL3Slice);
}

SetAssocCache &
CacheHierarchy::l3SliceFor(unsigned core)
{
    return l3_[l3SliceOf_[core]];
}

const SetAssocCache &
CacheHierarchy::l3SliceFor(unsigned core) const
{
    return l3_[l3SliceOf_[core]];
}

HierarchyResult
CacheHierarchy::access(unsigned core, BlockNum blk, bool is_write)
{
    if (core >= cfg_.numCores)
        panic("CacheHierarchy: core %u out of range", core);

    HierarchyResult res;
    const PrivateAccessResult priv = accessPrivate(core, blk, is_write);
    accessShared(core, blk, priv, res);

    if (priv.l1Hit) {
        res.servedBy = 1;
        res.onChipLatency = cfg_.l1Latency;
    } else if (!priv.l2Miss) {
        res.servedBy = 2;
        res.onChipLatency = cfg_.l1Latency + cfg_.l2Latency;
    } else {
        res.servedBy = res.llcMiss ? 4 : 3;
        res.onChipLatency =
            cfg_.l1Latency + cfg_.l2Latency + cfg_.l3Latency;
    }
    return res;
}

std::uint64_t
CacheHierarchy::llcHits() const
{
    std::uint64_t n = 0;
    for (const auto &slice : l3_)
        n += slice.hits();
    return n;
}

std::uint64_t
CacheHierarchy::llcMisses() const
{
    std::uint64_t n = 0;
    for (const auto &slice : l3_)
        n += slice.misses();
    return n;
}

std::uint64_t
CacheHierarchy::llcAccesses() const
{
    return llcHits() + llcMisses();
}

double
CacheHierarchy::llcMissRate() const
{
    const auto total = llcAccesses();
    return total ? static_cast<double>(llcMisses()) / total : 0.0;
}

std::uint64_t
CacheHierarchy::llcWritebacks() const
{
    std::uint64_t n = 0;
    for (const auto &slice : l3_)
        n += slice.writebacks();
    return n;
}

void
CacheHierarchy::resetStats()
{
    resetStatsPrivate();
    resetStatsShared();
}

void
CacheHierarchy::resetStatsPrivate()
{
    for (auto &c : l1_)
        c.resetStats();
    for (auto &c : l2_)
        c.resetStats();
}

void
CacheHierarchy::resetStatsShared()
{
    for (auto &c : l3_)
        c.resetStats();
}

} // namespace toleo
