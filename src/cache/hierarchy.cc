#include "cache/hierarchy.hh"

namespace toleo {

CacheHierarchy::CacheHierarchy(const CacheHierarchyConfig &cfg)
    : cfg_(cfg)
{
    if (cfg.numCores == 0)
        panic("CacheHierarchy: zero cores");
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        l1_.push_back(SetAssocCache::fromCapacity(cfg.l1Bytes, blockSize,
                                                  cfg.l1Assoc));
        l2_.push_back(SetAssocCache::fromCapacity(cfg.l2Bytes, blockSize,
                                                  cfg.l2Assoc));
    }
    const unsigned slices =
        (cfg.numCores + cfg.coresPerL3Slice - 1) / cfg.coresPerL3Slice;
    for (unsigned s = 0; s < slices; ++s)
        l3_.push_back(SetAssocCache::fromCapacity(cfg.l3SliceBytes,
                                                  blockSize, cfg.l3Assoc));
}

SetAssocCache &
CacheHierarchy::l3SliceFor(unsigned core)
{
    return l3_[core / cfg_.coresPerL3Slice];
}

const SetAssocCache &
CacheHierarchy::l3SliceFor(unsigned core) const
{
    return l3_[core / cfg_.coresPerL3Slice];
}

HierarchyResult
CacheHierarchy::access(unsigned core, BlockNum blk, bool is_write)
{
    if (core >= cfg_.numCores)
        panic("CacheHierarchy: core %u out of range", core);

    HierarchyResult res;
    res.onChipLatency = cfg_.l1Latency;

    auto r1 = l1_[core].access(blk, is_write);
    if (r1.hit) {
        res.servedBy = 1;
        return res;
    }
    // A dirty L1 victim merges into L2 if resident there, otherwise
    // (non-inclusive hierarchy) it spills straight to memory.
    if (r1.writebackTag) {
        if (l2_[core].contains(*r1.writebackTag))
            l2_[core].markDirty(*r1.writebackTag);
        else if (l3SliceFor(core).contains(*r1.writebackTag))
            l3SliceFor(core).markDirty(*r1.writebackTag);
        else
            res.memWritebacks.push_back(*r1.writebackTag);
    }

    // Lower levels fill *clean*: the dirty bit lives in L1 and
    // travels down on eviction, so each store produces exactly one
    // eventual memory writeback.
    res.onChipLatency += cfg_.l2Latency;
    auto r2 = l2_[core].access(blk, false);
    if (r2.hit) {
        res.servedBy = 2;
        return res;
    }
    if (r2.writebackTag) {
        if (l3SliceFor(core).contains(*r2.writebackTag))
            l3SliceFor(core).markDirty(*r2.writebackTag);
        else
            res.memWritebacks.push_back(*r2.writebackTag);
    }

    res.onChipLatency += cfg_.l3Latency;
    auto r3 = l3SliceFor(core).access(blk, false);
    if (r3.hit) {
        res.servedBy = 3;
        return res;
    }

    res.servedBy = 4;
    res.llcMiss = true;
    if (r3.writebackTag)
        res.memWritebacks.push_back(*r3.writebackTag);
    return res;
}

std::uint64_t
CacheHierarchy::llcHits() const
{
    std::uint64_t n = 0;
    for (const auto &slice : l3_)
        n += slice.hits();
    return n;
}

std::uint64_t
CacheHierarchy::llcMisses() const
{
    std::uint64_t n = 0;
    for (const auto &slice : l3_)
        n += slice.misses();
    return n;
}

std::uint64_t
CacheHierarchy::llcAccesses() const
{
    return llcHits() + llcMisses();
}

double
CacheHierarchy::llcMissRate() const
{
    const auto total = llcAccesses();
    return total ? static_cast<double>(llcMisses()) / total : 0.0;
}

std::uint64_t
CacheHierarchy::llcWritebacks() const
{
    std::uint64_t n = 0;
    for (const auto &slice : l3_)
        n += slice.writebacks();
    return n;
}

void
CacheHierarchy::resetStats()
{
    for (auto &c : l1_)
        c.resetStats();
    for (auto &c : l2_)
        c.resetStats();
    for (auto &c : l3_)
        c.resetStats();
}

} // namespace toleo
