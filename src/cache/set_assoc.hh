/**
 * @file
 * Generic set-associative cache model with LRU replacement.
 *
 * Used for the data hierarchy (L1D/L2/L3), the MAC cache, the stealth
 * overflow buffer, the Merkle version cache, and (fully associative)
 * the shared last-level TLB.  The model tracks tags, dirty bits, and
 * hit/miss/writeback statistics -- no data payloads, which is all the
 * timing simulation needs.  Functional payloads live in the
 * protection-engine models that need them.
 */

#ifndef TOLEO_CACHE_SET_ASSOC_HH
#define TOLEO_CACHE_SET_ASSOC_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace toleo {

/** Result of a cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** Valid dirty victim evicted to make room (writeback needed). */
    std::optional<std::uint64_t> writebackTag;
    /** Valid clean victim evicted (silent drop). */
    std::optional<std::uint64_t> evictedTag;
};

/**
 * Set-associative cache over abstract 64-bit keys ("tags" here are
 * full keys; the set index is derived from the key).
 */
class SetAssocCache
{
  public:
    /**
     * @param num_sets Number of sets (1 == fully associative).
     * @param assoc Ways per set.
     */
    SetAssocCache(std::uint64_t num_sets, unsigned assoc);

    /** Construct from byte capacity / line size / associativity. */
    static SetAssocCache fromCapacity(std::uint64_t bytes,
                                      std::uint64_t line_size,
                                      unsigned assoc);

    /**
     * Access a key; allocates on miss (evicting LRU), promotes on hit.
     * @param key Lookup key (block number, page number, ...).
     * @param is_write Marks the line dirty on hit or fill.
     */
    CacheAccessResult access(std::uint64_t key, bool is_write);

    /** Probe without modifying state. */
    bool contains(std::uint64_t key) const;

    /**
     * Non-allocating access: on a hit, refresh LRU (and optionally
     * the dirty bit); on a miss, do nothing.  Used for traffic that
     * must not displace the demand working set (e.g. version updates
     * for long-cold pages).
     */
    bool touch(std::uint64_t key, bool mark_dirty);

    /** Invalidate a key if present; returns true if it was dirty. */
    bool invalidate(std::uint64_t key);

    /** Mark a resident key dirty (no-op if absent). */
    void markDirty(std::uint64_t key);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    std::uint64_t accesses() const { return hits_ + misses_; }
    double hitRate() const;

    std::uint64_t numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }
    void resetStats();

  private:
    struct Line
    {
        std::uint64_t key = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::uint64_t numSets_;
    unsigned assoc_;
    std::vector<Line> lines_;
    std::uint64_t useClock_ = 0;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;

    std::uint64_t setIndex(std::uint64_t key) const;
    Line *findLine(std::uint64_t key);
    const Line *findLine(std::uint64_t key) const;
};

} // namespace toleo

#endif // TOLEO_CACHE_SET_ASSOC_HH
