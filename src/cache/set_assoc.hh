/**
 * @file
 * Generic set-associative cache model with LRU replacement.
 *
 * Used for the data hierarchy (L1D/L2/L3), the MAC cache, the stealth
 * overflow buffer, the Merkle version cache, and (fully associative)
 * the shared last-level TLB.  The model tracks tags, dirty bits, and
 * hit/miss/writeback statistics -- no data payloads, which is all the
 * timing simulation needs.  Functional payloads live in the
 * protection-engine models that need them.
 *
 * The simulator spends about half its time probing these caches, so
 * the storage is one slab of 64-bit words, blocked per set: a set's
 * `assoc` keys followed by its `assoc` metadata words, where a
 * metadata word packs (lastUse << 2) | dirty | valid.  A whole
 * 16-way set then spans three host cache lines instead of five, the
 * LRU victim is a plain argmin over the metadata words (an invalid
 * line's word is 0, which any valid word exceeds), and the MRU line
 * is kept in way 0 so the common repeated-key probe needs neither
 * hash nor scan.
 */

#ifndef TOLEO_CACHE_SET_ASSOC_HH
#define TOLEO_CACHE_SET_ASSOC_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

/** SIMD tag probes: x86-64 with a GNU-flavored compiler can build the
 *  AVX2 scan as a target("avx2") function and dispatch on the host
 *  CPU at runtime, so the binary stays baseline-portable. */
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TOLEO_SET_ASSOC_SIMD 1
#else
#define TOLEO_SET_ASSOC_SIMD 0
#endif

namespace toleo {

/** Result of a cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** Valid dirty victim evicted to make room (writeback needed). */
    std::optional<std::uint64_t> writebackTag;
    /** Valid clean victim evicted (silent drop). */
    std::optional<std::uint64_t> evictedTag;
};

/**
 * Set-associative cache over abstract 64-bit keys ("tags" here are
 * full keys; the set index is derived from the key).
 */
class SetAssocCache
{
  public:
    /**
     * @param num_sets Number of sets (1 == fully associative).
     * @param assoc Ways per set.
     */
    SetAssocCache(std::uint64_t num_sets, unsigned assoc);

    /** Construct from byte capacity / line size / associativity. */
    static SetAssocCache fromCapacity(std::uint64_t bytes,
                                      std::uint64_t line_size,
                                      unsigned assoc);

    /**
     * Access a key; allocates on miss (evicting LRU), promotes on hit.
     * The inline part is the MRU shortcut: after any access or fill,
     * the touched key sits in way 0 of its set (see moveToFront), so
     * a repeated key -- the dominant pattern when a core walks a
     * block in sub-block strides -- needs no hash and no tag scan.
     * @param key Lookup key (block number, page number, ...).
     * @param is_write Marks the line dirty on hit or fill.
     *
     * The probe paths (access/touch/markDirtyIfPresent/prefetchSet)
     * are annotated phase(private): L1/L2 instances are probed from
     * the concurrent private phase, so everything they reach must be
     * instance-local.  Shared-phase use of the same methods on L3 /
     * MAC / stealth instances is always legal (shared code may call
     * private-safe code; only the converse is a violation).
     */
    // toleo: phase(private)
    CacheAccessResult
    access(std::uint64_t key, bool is_write)
    {
        if (mruValid_ && key == mruKey_) {
            ++useClock_;
            ++hits_;
            std::uint64_t &meta = slab_[mruBase_ + assoc_];
            meta = (useClock_ << 2) | (meta & kDirty) |
                   (is_write ? kDirty : 0) | kValid;
            CacheAccessResult res;
            res.hit = true;
            return res;
        }
        return accessFull(key, is_write);
    }

    /** Probe without modifying state. */
    bool
    contains(std::uint64_t key) const
    {
        return findInSet(setBase(key), key) != wayNone;
    }

    /**
     * Non-allocating access: on a hit, refresh LRU (and optionally
     * the dirty bit); on a miss, do nothing.  Used for traffic that
     * must not displace the demand working set (e.g. version updates
     * for long-cold pages).
     */
    // toleo: phase(private)
    bool
    touch(std::uint64_t key, bool mark_dirty)
    {
        if (mruValid_ && key == mruKey_) {
            ++useClock_;
            ++hits_;
            std::uint64_t &meta = slab_[mruBase_ + assoc_];
            meta = (useClock_ << 2) | (meta & kDirty) |
                   (mark_dirty ? kDirty : 0) | kValid;
            return true;
        }
        return touchFull(key, mark_dirty);
    }

    /** Invalidate a key if present; returns true if it was dirty. */
    bool invalidate(std::uint64_t key);

    /** Invalidate every line; statistics are left untouched. */
    void invalidateAll();

    /**
     * Mark a resident key dirty; returns whether it was resident.
     * One set scan where contains() + markDirty() would take two.
     * Like contains(), does not touch LRU state or statistics.
     */
    // toleo: phase(private)
    bool
    markDirtyIfPresent(std::uint64_t key)
    {
        const std::size_t base = setBase(key);
        const unsigned w = findInSet(base, key);
        if (w == wayNone)
            return false;
        slab_[base + assoc_ + w] |= kDirty;
        return true;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    std::uint64_t accesses() const { return hits_ + misses_; }
    double hitRate() const;

    std::uint64_t numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }
    void resetStats();

    /** Way index meaning "not found" (see scanWays). */
    static constexpr unsigned wayNone = ~0u;
    /** Metadata word: (lastUse << 2) | kDirty | kValid. */
    static constexpr std::uint64_t kValid = 1;
    static constexpr std::uint64_t kDirty = 2;

    /**
     * Scalar reference scan over one set's key/metadata words: the
     * lowest way w with keys[w] == key whose valid bit is set, or
     * wayNone.  Public and static (alongside the SIMD variant below)
     * so tests/test_set_assoc.cc can property-test the two
     * implementations against each other on arbitrary slabs.
     */
    static unsigned
    scanWaysScalar(const std::uint64_t *keys, const std::uint64_t *meta,
                   unsigned assoc, std::uint64_t key)
    {
        for (unsigned w = 0; w < assoc; ++w) {
            // Keys of invalid lines are stale, so the (rare) tag
            // match still has to check the valid bit.
            if (keys[w] == key && (meta[w] & kValid))
                return w;
        }
        return wayNone;
    }

#if TOLEO_SET_ASSOC_SIMD
    /** AVX2 scan, scalar-identical by construction: 4-way compares
     *  walk the ways in ascending order and candidate lanes resolve
     *  lowest-first, so stale duplicates behind an invalid line
     *  cannot change which way wins. */
    static unsigned scanWaysAvx2(const std::uint64_t *keys,
                                 const std::uint64_t *meta,
                                 unsigned assoc, std::uint64_t key);

    /** Runtime CPU dispatch, resolved once before main() so the
     *  check is a plain bool load on the hot path. */
    static bool
    haveAvx2()
    {
        static const bool ok = __builtin_cpu_supports("avx2") != 0;
        return ok;
    }
#endif

    /** Dispatching scan: SIMD when the host supports it and the set
     *  is wide enough to amortize the setup, scalar otherwise. */
    static unsigned
    scanWays(const std::uint64_t *keys, const std::uint64_t *meta,
             unsigned assoc, std::uint64_t key)
    {
#if TOLEO_SET_ASSOC_SIMD
        if (assoc >= 8 && haveAvx2())
            return scanWaysAvx2(keys, meta, assoc, key);
#endif
        return scanWaysScalar(keys, meta, assoc, key);
    }

    /**
     * Hint the prefetcher at the slab lines an upcoming access to
     * @p key will probe (the set's keys and its metadata words).
     * Pure performance hint: no architectural state changes, so the
     * batching driver can issue these ahead of the access loop.
     */
    // toleo: phase(private)
    void
    prefetchSet(std::uint64_t key) const
    {
        const std::uint64_t *p = &slab_[setBase(key)];
        __builtin_prefetch(p, 1, 3);
        __builtin_prefetch(p + assoc_, 1, 3);
    }

  private:

    std::uint64_t numSets_;
    unsigned assoc_;
    /** Words per set block: assoc keys then assoc metadata words. */
    unsigned stride_;
    /** numSets - 1 when numSets is a power of two, else 0. */
    std::uint64_t setMask_;

    /** Per-set blocks of [keys | metadata], see the file comment. */
    std::vector<std::uint64_t> slab_;

    std::uint64_t useClock_ = 0;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;

    /**
     * MRU shortcut state: mruKey_ is the key most recently accessed
     * or filled, which moveToFront keeps in way 0 of the set whose
     * slab block starts at mruBase_.  Invalidation clears it.
     */
    std::uint64_t mruKey_ = 0;
    std::size_t mruBase_ = 0;
    bool mruValid_ = false;

    /** access() past the MRU shortcut: hash, scan, hit or fill. */
    CacheAccessResult accessFull(std::uint64_t key, bool is_write);

    /** touch() past the MRU shortcut. */
    bool touchFull(std::uint64_t key, bool mark_dirty);

    /** Fill path: victim selection, eviction, and allocation. */
    CacheAccessResult accessMiss(std::size_t base, std::uint64_t key,
                                 bool is_write);

    /** Mix the key so low-entropy keys still spread across sets. */
    static std::uint64_t
    mixKey(std::uint64_t x)
    {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        return x;
    }

    /** Slab offset of the set block holding @p key. */
    std::size_t
    setBase(std::uint64_t key) const
    {
        if (numSets_ == 1)
            return 0;
        // Every real configuration has a power-of-two set count, for
        // which masking equals the modulo the model always used.
        const std::uint64_t set = setMask_
                                      ? (mixKey(key) & setMask_)
                                      : (mixKey(key) % numSets_);
        return set * stride_;
    }

    /** Scan one set for a valid line holding @p key; way or wayNone.
     *  The slab layout (a set's keys contiguous, then its metadata)
     *  was built for this: the scan is one dispatch into the
     *  vectorized probe over the key slab. */
    unsigned
    findInSet(std::size_t base, std::uint64_t key) const
    {
        return scanWays(&slab_[base], &slab_[base + assoc_], assoc_,
                        key);
    }

    /**
     * Keep the MRU line in way 0 so the usual hit terminates the tag
     * scan immediately.  Physical way order is unobservable: lookups
     * match the unique valid key wherever it sits, and the LRU victim
     * is picked by the (unique) lastUse timestamps, not by position.
     */
    void
    moveToFront(std::size_t base, unsigned w)
    {
        if (w == 0)
            return;
        std::swap(slab_[base], slab_[base + w]);
        std::swap(slab_[base + assoc_], slab_[base + assoc_ + w]);
    }
};

} // namespace toleo

#endif // TOLEO_CACHE_SET_ASSOC_HH
