/**
 * @file
 * Three-level data-cache hierarchy matching the simulated node
 * (Table 3): per-core 32 KB L1-D and 1 MB L2, and a 16 MB L3 slice
 * shared by every 8 cores.  The hierarchy consumes block-level
 * references from the cores and emits LLC misses and dirty writebacks
 * to the memory system / protection engine.
 */

#ifndef TOLEO_CACHE_HIERARCHY_HH
#define TOLEO_CACHE_HIERARCHY_HH

#include <cstdint>
#include <vector>

#include "cache/set_assoc.hh"
#include "common/types.hh"

namespace toleo {

/** Configuration of the data hierarchy. */
struct CacheHierarchyConfig
{
    unsigned numCores = 32;
    unsigned coresPerL3Slice = 8;
    std::uint64_t l1Bytes = 32 * KiB;
    unsigned l1Assoc = 8;
    std::uint64_t l2Bytes = 1 * MiB;
    unsigned l2Assoc = 16;
    std::uint64_t l3SliceBytes = 16 * MiB;
    unsigned l3Assoc = 16;
    Cycles l1Latency = 4;
    Cycles l2Latency = 14;
    Cycles l3Latency = 49;
};

/** What the hierarchy asks the memory system to do for one access. */
struct HierarchyResult
{
    /** Level that served the access: 1, 2, 3, or 4 (= memory). */
    unsigned servedBy = 1;
    /** On-chip lookup latency accumulated before leaving the chip. */
    Cycles onChipLatency = 0;
    /** LLC miss: a block must be fetched from memory. */
    bool llcMiss = false;
    /**
     * Dirty blocks leaving the chip this access: the LLC victim,
     * and/or dirty upper-level victims spilling past a
     * non-inclusive lower level straight to memory.
     */
    std::vector<BlockNum> memWritebacks;
};

class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const CacheHierarchyConfig &cfg);

    /**
     * Run one load/store from a core through L1 -> L2 -> L3.
     * @param core Issuing core id.
     * @param blk Cache-block number accessed.
     * @param is_write Store (marks lines dirty).
     */
    HierarchyResult access(unsigned core, BlockNum blk, bool is_write);

    std::uint64_t llcHits() const;
    std::uint64_t llcMisses() const;
    std::uint64_t llcAccesses() const;
    double llcMissRate() const;
    std::uint64_t llcWritebacks() const;

    const CacheHierarchyConfig &config() const { return cfg_; }
    void resetStats();

  private:
    CacheHierarchyConfig cfg_;
    std::vector<SetAssocCache> l1_;
    std::vector<SetAssocCache> l2_;
    std::vector<SetAssocCache> l3_;

    SetAssocCache &l3SliceFor(unsigned core);
    const SetAssocCache &l3SliceFor(unsigned core) const;
};

} // namespace toleo

#endif // TOLEO_CACHE_HIERARCHY_HH
