/**
 * @file
 * Three-level data-cache hierarchy matching the simulated node
 * (Table 3): per-core 32 KB L1-D and 1 MB L2, and a 16 MB L3 slice
 * shared by every 8 cores.  The hierarchy consumes block-level
 * references from the cores and emits LLC misses and dirty writebacks
 * to the memory system / protection engine.
 */

#ifndef TOLEO_CACHE_HIERARCHY_HH
#define TOLEO_CACHE_HIERARCHY_HH

#include <cstdint>
#include <vector>

#include "cache/set_assoc.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace toleo {

/** Configuration of the data hierarchy. */
struct CacheHierarchyConfig
{
    unsigned numCores = 32;
    unsigned coresPerL3Slice = 8;
    std::uint64_t l1Bytes = 32 * KiB;
    unsigned l1Assoc = 8;
    std::uint64_t l2Bytes = 1 * MiB;
    unsigned l2Assoc = 16;
    std::uint64_t l3SliceBytes = 16 * MiB;
    unsigned l3Assoc = 16;
    Cycles l1Latency = 4;
    Cycles l2Latency = 14;
    Cycles l3Latency = 49;
};

/**
 * Dirty blocks leaving the chip on one access.  One access can spill
 * at most one victim per cache level (L1, L2, L3), so a fixed inline
 * array suffices -- a std::vector here would allocate on every miss
 * path, which is most of the simulator's heap traffic.
 */
class WritebackList
{
  public:
    void
    push_back(BlockNum blk)
    {
        if (count_ >= maxWritebacks)
            panic("WritebackList: more than %u victims in one access",
                  maxWritebacks);
        blocks_[count_++] = blk;
    }

    const BlockNum *begin() const { return blocks_; }
    const BlockNum *end() const { return blocks_ + count_; }
    unsigned size() const { return count_; }
    bool empty() const { return count_ == 0; }

  private:
    /** One potential victim per level: L1, L2, L3. */
    static constexpr unsigned maxWritebacks = 3;

    /** Only entries below count_ are ever read: no zero-init. */
    BlockNum blocks_[maxWritebacks];
    unsigned count_ = 0;
};

/** What the hierarchy asks the memory system to do for one access. */
struct HierarchyResult
{
    /** Level that served the access: 1, 2, 3, or 4 (= memory). */
    unsigned servedBy = 1;
    /** On-chip lookup latency accumulated before leaving the chip. */
    Cycles onChipLatency = 0;
    /** LLC miss: a block must be fetched from memory. */
    bool llcMiss = false;
    /**
     * Dirty blocks leaving the chip this access: the LLC victim,
     * and/or dirty upper-level victims spilling past a
     * non-inclusive lower level straight to memory.
     */
    WritebackList memWritebacks;
};

/**
 * Outcome of the core-private (L1 + L2) part of one access.
 *
 * The hierarchy splits into a private half and a shared half so the
 * simulation driver can run each core's references in a batch
 * (L1/L2 state is per-core, so batching cannot reorder anything
 * observable) and then replay the shared-L3/memory work in the
 * original global reference order.
 */
struct PrivateAccessResult
{
    /** Dirty victims that missed the private levels: L3 must be
     *  probed, and on a probe miss they leave the chip. */
    BlockNum spills[2];
    std::uint8_t numSpills = 0;
    /** Served by L1: no private spill, no shared work. */
    bool l1Hit = false;
    /** Missed L2 as well: the shared L3 slice must be accessed. */
    bool l2Miss = false;

    bool needsShared() const { return numSpills > 0 || l2Miss; }
};

class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const CacheHierarchyConfig &cfg);

    /**
     * Run one load/store from a core through L1 -> L2 -> L3.
     * Equivalent to accessPrivate() immediately followed by
     * accessShared(); batching drivers call the halves directly.
     * @param core Issuing core id.
     * @param blk Cache-block number accessed.
     * @param is_write Store (marks lines dirty).
     */
    HierarchyResult access(unsigned core, BlockNum blk, bool is_write);

    /**
     * Private half: L1 access, dirty-victim merge into L2, and the
     * L2 access on an L1 miss.  Touches only this core's caches.
     */
    // toleo: phase(private)
    PrivateAccessResult
    accessPrivate(unsigned core, BlockNum blk, bool is_write)
    {
        PrivateAccessResult out;

        auto r1 = l1_[core].access(blk, is_write);
        if (r1.hit) {
            out.l1Hit = true;
            return out;
        }
        // A dirty L1 victim merges into L2 if resident there,
        // otherwise (non-inclusive hierarchy) it heads for L3 or
        // memory -- shared state, deferred to accessShared().
        if (r1.writebackTag) {
            if (!l2_[core].markDirtyIfPresent(*r1.writebackTag))
                out.spills[out.numSpills++] = *r1.writebackTag;
        }

        // Lower levels fill *clean*: the dirty bit lives in L1 and
        // travels down on eviction, so each store produces exactly
        // one eventual memory writeback.
        auto r2 = l2_[core].access(blk, false);
        if (r2.hit)
            return out;
        if (r2.writebackTag)
            out.spills[out.numSpills++] = *r2.writebackTag;
        out.l2Miss = true;
        return out;
    }

    /**
     * Shared half: L3 probes for spilled victims and the L3 access
     * for an L2 miss.  Must run in global reference order; fills
     * res.memWritebacks / res.llcMiss exactly as access() does.
     */
    // toleo: phase(shared)
    void
    accessShared(unsigned core, BlockNum blk,
                 const PrivateAccessResult &priv, HierarchyResult &res)
    {
        SetAssocCache &l3 = l3SliceFor(core);
        for (unsigned s = 0; s < priv.numSpills; ++s) {
            if (!l3.markDirtyIfPresent(priv.spills[s]))
                res.memWritebacks.push_back(priv.spills[s]);
        }
        if (!priv.l2Miss)
            return;
        auto r3 = l3.access(blk, false);
        if (r3.hit)
            return;
        res.llcMiss = true;
        if (r3.writebackTag)
            res.memWritebacks.push_back(*r3.writebackTag);
    }

    /**
     * Prefetch hint for an upcoming accessPrivate(core, blk, ...):
     * pulls the L1 and L2 set blocks for @p blk toward the issuing
     * thread's caches.  No architectural state changes, so the
     * batching driver can issue it a few references ahead.
     */
    // toleo: phase(private)
    void
    prefetchPrivate(unsigned core, BlockNum blk) const
    {
        l1_[core].prefetchSet(blk);
        l2_[core].prefetchSet(blk);
    }

    std::uint64_t llcHits() const;
    std::uint64_t llcMisses() const;
    std::uint64_t llcAccesses() const;
    double llcMissRate() const;
    std::uint64_t llcWritebacks() const;

    const CacheHierarchyConfig &config() const { return cfg_; }
    void resetStats();
    /**
     * Counter-reset split matching the access split above, for
     * drivers that stage a whole epoch's private work before the
     * shared replay (System::stepEpochPrivate): the per-core L1/L2
     * counters reset in the private sub-phase, the shared L3 slices
     * in the replay, so each side only ever touches its own tier.
     */
    // toleo: phase(private)
    void resetStatsPrivate();
    // toleo: phase(shared)
    void resetStatsShared();

  private:
    CacheHierarchyConfig cfg_;
    // toleo: state(per-core)
    std::vector<SetAssocCache> l1_;
    // toleo: state(per-core)
    std::vector<SetAssocCache> l2_;
    /** L3 slices are shared across the cores of a slice: only the
     *  global-order shared replay may touch them. */
    // toleo: state(shared)
    std::vector<SetAssocCache> l3_;
    /** Per-core slice index: avoids a runtime division per lookup. */
    std::vector<unsigned> l3SliceOf_;

    SetAssocCache &l3SliceFor(unsigned core);
    const SetAssocCache &l3SliceFor(unsigned core) const;
};

} // namespace toleo

#endif // TOLEO_CACHE_HIERARCHY_HH
