/**
 * @file
 * Shared last-level (L2) TLB with the Toleo stealth-version extension.
 *
 * Section 4.4 / Table 3: 256 entries, fully associative, shared by all
 * cores [6].  Toleo extends each entry's data array by 12 bytes to
 * hold the page's flat Trip entry; the tag array is unchanged, so the
 * flat-entry hit rate equals the TLB hit rate by construction.
 */

#ifndef TOLEO_CACHE_TLB_HH
#define TOLEO_CACHE_TLB_HH

#include "cache/set_assoc.hh"
#include "common/types.hh"

namespace toleo {

class SharedTlb
{
  public:
    /**
     * @param entries Number of TLB entries (256 in Table 3).
     * @param stealth_ext_bytes Flat-entry extension per entry
     *        (12 B in the paper; 0 models a baseline TLB).
     */
    explicit SharedTlb(unsigned entries = 256,
                       unsigned stealth_ext_bytes = 12)
        : cache_(1, entries), extBytes_(stealth_ext_bytes),
          entries_(entries)
    {}

    /** Look up a page; fills on miss (LRU). Returns hit. */
    bool
    access(PageNum page)
    {
        return cache_.access(page, false).hit;
    }

    bool contains(PageNum page) const { return cache_.contains(page); }
    void invalidate(PageNum page) { cache_.invalidate(page); }

    std::uint64_t hits() const { return cache_.hits(); }
    std::uint64_t misses() const { return cache_.misses(); }
    double hitRate() const { return cache_.hitRate(); }
    void resetStats() { cache_.resetStats(); }

    /** On-chip SRAM added by the stealth extension, bytes. */
    std::uint64_t
    extensionBytes() const
    {
        return static_cast<std::uint64_t>(extBytes_) * entries_;
    }

  private:
    SetAssocCache cache_;
    unsigned extBytes_;
    unsigned entries_;
};

} // namespace toleo

#endif // TOLEO_CACHE_TLB_HH
