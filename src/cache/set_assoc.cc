#include "cache/set_assoc.hh"

#include <algorithm>

#if TOLEO_SET_ASSOC_SIMD
#include <immintrin.h>
#endif

namespace toleo {

#if TOLEO_SET_ASSOC_SIMD

__attribute__((target("avx2"))) unsigned
SetAssocCache::scanWaysAvx2(const std::uint64_t *keys,
                            const std::uint64_t *meta, unsigned assoc,
                            std::uint64_t key)
{
    const __m256i needle =
        _mm256_set1_epi64x(static_cast<long long>(key));
    unsigned w = 0;
    for (; w + 4 <= assoc; w += 4) {
        // The slab is 8-byte aligned, not 32: unaligned loads, which
        // cost nothing on cache-resident data on every AVX2 part.
        const __m256i four = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(keys + w));
        const __m256i eq = _mm256_cmpeq_epi64(four, needle);
        std::uint32_t mask = static_cast<std::uint32_t>(
            _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
        // Matches are almost always unique (stale duplicates need an
        // invalidated line), so this loop runs at most once in
        // practice; lowest lane first preserves the scalar order.
        while (mask != 0) {
            const unsigned lane =
                static_cast<unsigned>(__builtin_ctz(mask));
            if (meta[w + lane] & kValid)
                return w + lane;
            mask &= mask - 1;
        }
    }
    for (; w < assoc; ++w) {
        if (keys[w] == key && (meta[w] & kValid))
            return w;
    }
    return wayNone;
}

#endif // TOLEO_SET_ASSOC_SIMD

SetAssocCache::SetAssocCache(std::uint64_t num_sets, unsigned assoc)
    : numSets_(num_sets), assoc_(assoc), stride_(2 * assoc),
      setMask_((num_sets & (num_sets - 1)) == 0 ? num_sets - 1 : 0),
      slab_(num_sets * 2 * assoc, 0)
{
    if (num_sets == 0 || assoc == 0)
        panic("SetAssocCache: zero sets or ways");
}

SetAssocCache
SetAssocCache::fromCapacity(std::uint64_t bytes, std::uint64_t line_size,
                            unsigned assoc)
{
    if (bytes % (line_size * assoc) != 0)
        panic("SetAssocCache: capacity %llu not divisible by way size",
              static_cast<unsigned long long>(bytes));
    return SetAssocCache(bytes / (line_size * assoc), assoc);
}

CacheAccessResult
SetAssocCache::accessFull(std::uint64_t key, bool is_write)
{
    ++useClock_;
    const std::size_t base = setBase(key);

    const unsigned w = findInSet(base, key);
    if (w != wayNone) {
        ++hits_;
        std::uint64_t &meta = slab_[base + assoc_ + w];
        meta = (useClock_ << 2) | (meta & kDirty) |
               (is_write ? kDirty : 0) | kValid;
        moveToFront(base, w);
        mruKey_ = key;
        mruBase_ = base;
        mruValid_ = true;
        CacheAccessResult res;
        res.hit = true;
        return res;
    }
    return accessMiss(base, key, is_write);
}

bool
SetAssocCache::touchFull(std::uint64_t key, bool mark_dirty)
{
    ++useClock_;
    const std::size_t base = setBase(key);
    const unsigned w = findInSet(base, key);
    if (w != wayNone) {
        ++hits_;
        std::uint64_t &meta = slab_[base + assoc_ + w];
        meta = (useClock_ << 2) | (meta & kDirty) |
               (mark_dirty ? kDirty : 0) | kValid;
        moveToFront(base, w);
        mruKey_ = key;
        mruBase_ = base;
        mruValid_ = true;
        return true;
    }
    ++misses_;
    return false;
}

CacheAccessResult
SetAssocCache::accessMiss(std::size_t base, std::uint64_t key,
                          bool is_write)
{
    CacheAccessResult res;
    ++misses_;

    // LRU victim = argmin over the metadata words.  An invalid
    // line's word is 0, below every valid word, so this picks the
    // first invalid way if any exists (matching the historical
    // first-free scan) and the unique least-recently-used way
    // otherwise (timestamps are unique by construction).
    unsigned victim = 0;
    std::uint64_t best = slab_[base + assoc_];
    for (unsigned w = 1; w < assoc_; ++w) {
        const std::uint64_t m = slab_[base + assoc_ + w];
        if (m < best) {
            best = m;
            victim = w;
        }
    }

    if (best & kValid) {
        if (best & kDirty) {
            ++writebacks_;
            res.writebackTag = slab_[base + victim];
        } else {
            res.evictedTag = slab_[base + victim];
        }
    }

    slab_[base + victim] = key;
    slab_[base + assoc_ + victim] =
        (useClock_ << 2) | (is_write ? kDirty : 0) | kValid;
    moveToFront(base, victim);
    mruKey_ = key;
    mruBase_ = base;
    mruValid_ = true;
    return res;
}

bool
SetAssocCache::invalidate(std::uint64_t key)
{
    const std::size_t base = setBase(key);
    const unsigned w = findInSet(base, key);
    if (w == wayNone)
        return false;
    std::uint64_t &meta = slab_[base + assoc_ + w];
    const bool was_dirty = (meta & kDirty) != 0;
    meta = 0;
    if (mruValid_ && key == mruKey_)
        mruValid_ = false;
    return was_dirty;
}

void
SetAssocCache::invalidateAll()
{
    for (std::uint64_t s = 0; s < numSets_; ++s) {
        const std::size_t meta = s * stride_ + assoc_;
        std::fill_n(slab_.begin() + meta, assoc_, std::uint64_t{0});
    }
    mruValid_ = false;
}

double
SetAssocCache::hitRate() const
{
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / total : 0.0;
}

void
SetAssocCache::resetStats()
{
    hits_ = misses_ = writebacks_ = 0;
}

} // namespace toleo
