#include "cache/set_assoc.hh"

namespace toleo {

namespace {

/** Mix the key so low-entropy keys still spread across sets. */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
}

} // namespace

SetAssocCache::SetAssocCache(std::uint64_t num_sets, unsigned assoc)
    : numSets_(num_sets), assoc_(assoc),
      lines_(num_sets * assoc)
{
    if (num_sets == 0 || assoc == 0)
        panic("SetAssocCache: zero sets or ways");
}

SetAssocCache
SetAssocCache::fromCapacity(std::uint64_t bytes, std::uint64_t line_size,
                            unsigned assoc)
{
    if (bytes % (line_size * assoc) != 0)
        panic("SetAssocCache: capacity %llu not divisible by way size",
              static_cast<unsigned long long>(bytes));
    return SetAssocCache(bytes / (line_size * assoc), assoc);
}

std::uint64_t
SetAssocCache::setIndex(std::uint64_t key) const
{
    if (numSets_ == 1)
        return 0;
    return mix(key) % numSets_;
}

SetAssocCache::Line *
SetAssocCache::findLine(std::uint64_t key)
{
    const std::uint64_t base = setIndex(key) * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.key == key)
            return &line;
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::findLine(std::uint64_t key) const
{
    const std::uint64_t base = setIndex(key) * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        const Line &line = lines_[base + w];
        if (line.valid && line.key == key)
            return &line;
    }
    return nullptr;
}

CacheAccessResult
SetAssocCache::access(std::uint64_t key, bool is_write)
{
    CacheAccessResult res;
    ++useClock_;

    if (Line *line = findLine(key)) {
        ++hits_;
        res.hit = true;
        line->lastUse = useClock_;
        line->dirty = line->dirty || is_write;
        return res;
    }

    ++misses_;
    const std::uint64_t base = setIndex(key) * assoc_;
    Line *victim = &lines_[base];
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &line = lines_[base + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }

    if (victim->valid) {
        if (victim->dirty) {
            ++writebacks_;
            res.writebackTag = victim->key;
        } else {
            res.evictedTag = victim->key;
        }
    }

    victim->valid = true;
    victim->key = key;
    victim->lastUse = useClock_;
    victim->dirty = is_write;
    return res;
}

bool
SetAssocCache::contains(std::uint64_t key) const
{
    return findLine(key) != nullptr;
}

bool
SetAssocCache::touch(std::uint64_t key, bool mark_dirty)
{
    ++useClock_;
    if (Line *line = findLine(key)) {
        ++hits_;
        line->lastUse = useClock_;
        line->dirty = line->dirty || mark_dirty;
        return true;
    }
    ++misses_;
    return false;
}

bool
SetAssocCache::invalidate(std::uint64_t key)
{
    if (Line *line = findLine(key)) {
        const bool was_dirty = line->dirty;
        line->valid = false;
        line->dirty = false;
        return was_dirty;
    }
    return false;
}

void
SetAssocCache::markDirty(std::uint64_t key)
{
    if (Line *line = findLine(key))
        line->dirty = true;
}

double
SetAssocCache::hitRate() const
{
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / total : 0.0;
}

void
SetAssocCache::resetStats()
{
    hits_ = misses_ = writebacks_ = 0;
}

} // namespace toleo
