/**
 * @file
 * First-class multi-node rack simulation (Figure 1 / Section 2).
 *
 * The paper's headline deployment is one 168 GB Toleo device serving
 * a whole rack: several compute nodes share 28 TB of pooled memory,
 * and every node's version traffic lands on the *same* device.  A
 * single toleo::System cannot see the consequences -- device-side
 * queueing when nodes burst together, and space pressure when their
 * combined uneven/full entries fill the shared store.
 *
 * runRack() simulates exactly that: N full Systems (one per node)
 * advance in deterministic round-robin traffic epochs against one
 * shared ToleoDevice.  At every epoch barrier an IdeLinkArbiter
 * divides the device's version-store service bandwidth across the
 * node ports max-min fairly; traffic the device could not serve
 * carries over as per-node backlog, and each backlogged node's cores
 * stall for the time the device needs to drain that backlog -- the
 * feedback loop that makes contention cost execution time.
 *
 * Determinism contract (pinned by tests/test_rack.cc):
 *  - a 1-node rack is bit-identical (statsToJson) to running the
 *    same SystemConfig through System::run() -- the shared device
 *    with a single initiator, the epoch-stepped loop, and a zero
 *    contention stall are all exact no-ops;
 *  - rack runs are byte-identical across repeated runs, across
 *    sweep worker counts, and across RackConfig::rackThreads values
 *    (integer-only arbitration, fixed node order; the node-private
 *    epoch halves touch disjoint state and all shared-device work
 *    replays serially in node order).
 */

#ifndef TOLEO_SIM_RACK_HH
#define TOLEO_SIM_RACK_HH

#include <cstdint>
#include <vector>

#include "sim/system.hh"

namespace toleo {

struct RackConfig
{
    /** One full node config per compute node (workload, engine,
     *  cores, seed...).  Node order is the deterministic round-robin
     *  step order. */
    std::vector<SystemConfig> nodes;

    /** The single shared Toleo device all Toleo-engine nodes use. */
    ToleoDeviceConfig device;

    /**
     * Version-store service bandwidth of the shared device (its
     * controller + HMC2 DRAM draining the per-node IDE links),
     * GB/s.  0 selects auto: serviceFactor x the fastest node link,
     * so a lone node can never out-run the device (the 1-node
     * bit-identity invariant) while N bursting nodes contend.
     */
    double deviceServiceGBps = 0.0;
    double serviceFactor = 1.5;

    /** Per-core warmup / measured references, as in System::run. */
    std::uint64_t warmupRefs = 30000;
    std::uint64_t measureRefs = 60000;

    /**
     * Worker threads for the node-private half of each rack epoch
     * (`--rack-threads`).  Each epoch splits per node into a private
     * sub-phase (generator draws, L1/L2, staging -- no shared-device
     * access; System::stepEpochPrivate) that the pool runs for all
     * live nodes concurrently, and a shared sub-phase (device/arbiter
     * replay; System::replayEpochShared) that always runs serially in
     * strict node order.  1 (the default) takes exactly the historic
     * serial stepEpoch() path; any value yields bit-identical
     * rackStatsToJson output.  Clamped to the node count.
     */
    unsigned rackThreads = 1;
};

/**
 * Clone @p base into an @p nodes -node rack: node i runs base with
 * seed base.seed + i (node 0 keeps the seed unchanged, which is what
 * makes the 1-node invariant exact), and the shared device takes
 * base's device config.
 */
RackConfig makeRackConfig(unsigned nodes, const SystemConfig &base);

/** Per-node view of one rack run. */
struct RackNodeStats
{
    SimStats sim;

    /** Version-store requests (READ+UPDATE+RESET) this node issued
     *  to the shared device over the whole run (warmup included). */
    std::uint64_t deviceRequests = 0;
    /** Toleo IDE-link bytes this node offered (whole run). */
    std::uint64_t toleoLinkBytes = 0;
    /** Core-stall ns injected by device contention (whole run). */
    double contentionStallNs = 0.0;
    /** High-water mark of this node's unserved device backlog. */
    std::uint64_t peakBacklogBytes = 0;
    /** Epochs this node ended with backlog still queued. */
    std::uint64_t stalledEpochs = 0;
    /** Most requests this node issued within one epoch (burstiness:
     *  how hard the node can hit the device at once). */
    std::uint64_t peakEpochRequests = 0;
};

/** Device-side contention report of one rack run. */
struct RackStats
{
    std::vector<RackNodeStats> nodes;

    /** Round-robin epoch barriers executed. */
    std::uint64_t epochs = 0;
    /** Barriers where offered traffic exceeded device service. */
    std::uint64_t saturatedEpochs = 0;

    /** Resolved service bandwidth (after auto selection), GB/s. */
    double deviceServiceGBps = 0.0;
    std::uint64_t deviceGrantedBytes = 0;
    /** High-water mark of total unserved backlog across nodes. */
    std::uint64_t devicePeakBacklogBytes = 0;

    /**
     * Forced-downgrade pressure: peak dynamic (uneven+full) bytes of
     * the shared store over the run, as a fraction of the device's
     * dynamic capacity.  >= 1.0 means the host OS must downgrade
     * inactive pages (Section 4.4); spaceRejections counts upgrades
     * that landed while the store was already exhausted.
     */
    double downgradePressure = 0.0;
    std::uint64_t spaceRejections = 0;

    /** Shared-store aggregates across all nodes. */
    std::uint64_t sharedTouchedPages = 0;
    std::uint64_t sharedDynamicPeakBytes = 0;

    /**
     * Rack-wide open-loop serving aggregate: request counts and rates
     * summed over the nodes, latency percentiles recomputed from the
     * merged per-node histograms, spanSeconds = the slowest node.
     * Empty (arrival == "") when the rack ran the closed model.
     */
    ServingStats serving;
};

/**
 * Run the rack.  Throws std::invalid_argument on an empty node list
 * or a service bandwidth below the fastest node link (which would
 * stall even an uncontended node and break the 1-node invariant).
 */
RackStats runRack(const RackConfig &cfg);

/**
 * Serialize a RackStats record: per-node SimStats go through the
 * existing statsToJson path, wrapped with the per-node and
 * device-side contention fields.
 */
Json rackStatsToJson(const RackStats &stats);

/**
 * Flat CSV view of a rack run, one row per node: the node index, the
 * node's full single-sim CSV columns (statsCsvHeader order), its
 * device-contention counters, and the rack-level device/store scalars
 * (identical on every row of one record, so a concatenated multi-cell
 * sweep still selects/aggregates with plain column filters).  The
 * rack-level serving aggregate stays JSON-only: its percentiles come
 * from merged histograms and have no per-node row to live on.
 */
std::string rackCsvHeader();

/** One CSV row for stats.nodes[node]; no trailing newline. */
std::string rackCsvRow(const RackStats &stats, std::size_t node);

} // namespace toleo

#endif // TOLEO_SIM_RACK_HH
