#include "sim/rack.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "sim/intra_pool.hh"
#include "toleo/ide_channel.hh"

namespace toleo {

/**
 * Node-private half of one rack epoch step: generator draws, L1/L2,
 * footprint and serving-boundary staging.  This is the body the rack
 * pool runs for all live nodes concurrently, and the phase-safety
 * walk root that proves it never touches the shared device, the
 * arbiter, or any other node's state.
 */
// toleo: phase(private)
bool
rackNodeStepPrivate(System &sys)
{
    return sys.stepEpochPrivate();
}

/**
 * Shared half of the same epoch step: device/arbiter-visible replay.
 * Always runs serially, in strict node order, with the node's device
 * port selected -- the deterministic global operation sequence the
 * rack contract pins.
 */
// toleo: phase(shared)
void
rackNodeReplayShared(System &sys)
{
    sys.replayEpochShared();
}

RackConfig
makeRackConfig(unsigned nodes, const SystemConfig &base)
{
    RackConfig rc;
    rc.device = base.device;
    rc.nodes.reserve(nodes);
    for (unsigned i = 0; i < nodes; ++i) {
        SystemConfig sc = base;
        sc.seed = base.seed + i;
        rc.nodes.push_back(std::move(sc));
    }
    return rc;
}

RackStats
runRack(const RackConfig &cfg)
{
    const unsigned n = static_cast<unsigned>(cfg.nodes.size());
    if (n == 0)
        throw std::invalid_argument("runRack: rack has no nodes");

    double maxLinkGBps = 0.0;
    for (const SystemConfig &sc : cfg.nodes)
        maxLinkGBps =
            std::max(maxLinkGBps, sc.mem.toleoLinkBandwidthGBps);
    const double service = cfg.deviceServiceGBps > 0.0
                               ? cfg.deviceServiceGBps
                               : cfg.serviceFactor * maxLinkGBps;
    // Every node's own epoch already stretches to drain its link
    // (System's bandwidth floor), so epoch traffic never exceeds
    // linkGBps * epochNs.  Service >= the fastest link therefore
    // guarantees a lone node never backlogs -- the 1-node
    // bit-identity invariant.  A slower device would stall even an
    // uncontended node, which is a misconfiguration, not contention.
    if (service < maxLinkGBps)
        throw std::invalid_argument(
            "runRack: deviceServiceGBps below the fastest node's "
            "Toleo link bandwidth");

    // The rack-wide serving aggregate (counts summed, percentiles
    // from merged histograms) only has one meaning when every node
    // runs the same arrival model against the same SLO: a rack mixing
    // open and closed nodes, or poisson and burst nodes, or different
    // SLO thresholds, has no single "rack SLO attainment".  Reject
    // such configs up front instead of silently reporting whichever
    // node happened to be aggregated last.  Per-node *rates* may
    // differ: they sum into the rack-wide offered rate.
    const ArrivalConfig &a0 = cfg.nodes[0].arrival;
    for (unsigned i = 1; i < n; ++i) {
        const ArrivalConfig &ai = cfg.nodes[i].arrival;
        if (ai.kind != a0.kind)
            throw std::invalid_argument(
                "runRack: mixed per-node arrival models (node 0 is " +
                std::string(arrivalKindName(a0.kind)) + ", node " +
                std::to_string(i) + " is " +
                std::string(arrivalKindName(ai.kind)) +
                "); a rack-wide serving aggregate requires one model");
        if (a0.open() && ai.sloUs != a0.sloUs)
            throw std::invalid_argument(
                "runRack: mixed per-node SLO thresholds (node 0 has " +
                std::to_string(a0.sloUs) + " us, node " +
                std::to_string(i) + " has " +
                std::to_string(ai.sloUs) +
                " us); rack SLO attainment requires one threshold");
    }

    ToleoDevice device(cfg.device);
    for (unsigned i = 1; i < n; ++i)
        device.addInitiator();

    std::vector<std::unique_ptr<System>> systems;
    systems.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        SystemConfig sc = cfg.nodes[i];
        sc.sharedDevice = &device;
        systems.push_back(std::make_unique<System>(sc));
    }

    RackStats out;
    out.nodes.resize(n);
    out.deviceServiceGBps = service;

    IdeLinkArbiter arbiter(n);
    for (unsigned i = 0; i < n; ++i)
        systems[i]->beginRun(cfg.warmupRefs, cfg.measureRefs);

    // Node pool for the private epoch halves.  rackThreads == 1 (the
    // default) takes the historic one-call stepEpoch() path below --
    // not a pool of one -- so the serial binary is exactly unchanged.
    const unsigned rackThreads =
        std::min(std::max(1u, cfg.rackThreads), n);
    std::unique_ptr<IntraPool> rackPool;
    if (rackThreads > 1)
        rackPool = std::make_unique<IntraPool>(rackThreads);

    // Plain byte flags, not std::vector<bool>: the pool writes
    // stepped[] from different threads, and vector<bool>'s packed
    // bits would race even though the nodes are disjoint.
    std::vector<unsigned char> alive(n, 1);
    std::vector<unsigned char> stepped(n, 0);
    for (bool anyAlive = true; anyAlive;) {
        anyAlive = false;

        // Step every live node one traffic epoch, strictly in node
        // order: the shared store (and its reset RNG) sees one
        // deterministic global operation sequence.  With a rack pool,
        // the node-private halves (lint-proven free of shared-device
        // access) run concurrently first; the device/arbiter-visible
        // replay below still runs serially in node order either way,
        // so the device observes the identical operation sequence for
        // any rackThreads value.
        device.beginInitiatorEpoch();
        if (rackPool) {
            rackPool->run(n, [&](unsigned i) {
                if (alive[i])
                    stepped[i] =
                        rackNodeStepPrivate(*systems[i]) ? 1 : 0;
            });
        }
        double epochNs = 0.0;
        std::uint64_t offered = 0;
        for (unsigned i = 0; i < n; ++i) {
            if (!alive[i])
                continue;
            device.setActiveInitiator(i);
            bool more;
            if (rackPool) {
                rackNodeReplayShared(*systems[i]);
                more = stepped[i] != 0;
            } else {
                more = systems[i]->stepEpoch();
            }
            // The step that retires a node still closed its final
            // epoch; its traffic competes like any other.
            const std::uint64_t bytes =
                systems[i]->lastEpochToleoBytes();
            arbiter.enqueue(i, bytes);
            offered += bytes;
            RackNodeStats &ns = out.nodes[i];
            ns.toleoLinkBytes += bytes;
            ns.peakEpochRequests = std::max(
                ns.peakEpochRequests, device.epochRequests(i));
            epochNs = std::max(epochNs, systems[i]->lastEpochWallNs());
            alive[i] = more;
            anyAlive = anyAlive || more;
        }

        // Epoch barrier: the device drains at its service bandwidth
        // for the slowest node's epoch.  ceil keeps the capacity an
        // upper bound of service * epochNs so float truncation can
        // never manufacture a 1-byte backlog for a lone node.
        const std::uint64_t capacity = static_cast<std::uint64_t>(
            std::max(0.0, std::ceil(service * epochNs)));
        arbiter.serveEpoch(capacity);
        // Saturation is an offered-vs-service statement about *this*
        // epoch's traffic; backlog draining from an earlier burst
        // shows up in the stall/backlog stats, not here.
        if (offered > capacity)
            ++out.saturatedEpochs;

        // Bill each node's unserved backlog as core stall: the node
        // cannot retire version traffic faster than the device
        // drains its queue.  Retired nodes keep their queue (it
        // still competes) but their report is already final.
        for (unsigned i = 0; i < n; ++i) {
            const std::uint64_t backlog = arbiter.pendingBytes(i);
            if (backlog == 0)
                continue;
            RackNodeStats &ns = out.nodes[i];
            ns.peakBacklogBytes =
                std::max(ns.peakBacklogBytes, backlog);
            ++ns.stalledEpochs;
            if (alive[i]) {
                const double stallNs =
                    static_cast<double>(backlog) / service;
                systems[i]->addRackStallNs(stallNs);
                ns.contentionStallNs += stallNs;
            }
        }

        out.sharedDynamicPeakBytes = std::max(
            out.sharedDynamicPeakBytes, device.dynamicBytesUsed());
        ++out.epochs;
    }

    for (unsigned i = 0; i < n; ++i) {
        device.setActiveInitiator(i);
        out.nodes[i].sim = systems[i]->finishRun();
        out.nodes[i].deviceRequests = device.totalRequests(i);
    }

    // Rack-wide serving aggregate: counts and rates sum over nodes,
    // percentiles are recomputed from the merged histograms (exact,
    // not an average of per-node percentiles), and the span is the
    // slowest node's.  Per-request means are request-weighted.  The
    // up-front validation guarantees every node ran the same arrival
    // model and SLO, so the scalars identifying the aggregate are set
    // once from node 0 instead of being overwritten per node; only
    // the rates differ per node, and those sum into the rack-wide
    // offered rate by definition.
    if (a0.open()) {
        ServingStats &rs = out.serving;
        rs.arrival = out.nodes[0].sim.serving.arrival;
        rs.sloUs = a0.sloUs;
        double servLatW = 0.0, servQueueW = 0.0, servSvcW = 0.0;
        for (unsigned i = 0; i < n; ++i) {
            const ServingStats &ns = out.nodes[i].sim.serving;
            rs.offeredRatePerSec += ns.offeredRatePerSec;
            rs.requests += ns.requests;
            rs.sloMet += ns.sloMet;
            rs.spanSeconds = std::max(rs.spanSeconds, ns.spanSeconds);
            rs.offeredRps += ns.offeredRps;
            rs.completedRps += ns.completedRps;
            rs.goodputRps += ns.goodputRps;
            // A node that completed zero requests (window too short
            // for its rate) reports zero means; weight 0 keeps it out
            // of the rack means without poisoning them with NaNs.
            const double w = static_cast<double>(ns.requests);
            servLatW += ns.meanLatencyUs * w;
            servQueueW += ns.meanQueueUs * w;
            servSvcW += ns.meanServiceUs * w;
            rs.latency.merge(ns.latency);
        }
        // With zero requests rack-wide, every mean/attainment/
        // percentile field keeps its zero default -- defined output,
        // no 0/0.
        if (rs.requests > 0) {
            const double total = static_cast<double>(rs.requests);
            rs.sloAttainment = static_cast<double>(rs.sloMet) / total;
            rs.meanLatencyUs = servLatW / total;
            rs.meanQueueUs = servQueueW / total;
            rs.meanServiceUs = servSvcW / total;
            rs.p50LatencyUs = rs.latency.percentileNs(0.50) * 1e-3;
            rs.p99LatencyUs = rs.latency.percentileNs(0.99) * 1e-3;
            rs.p999LatencyUs = rs.latency.percentileNs(0.999) * 1e-3;
            rs.maxLatencyUs = rs.latency.maxNs() * 1e-3;
        }
    }

    out.deviceGrantedBytes = arbiter.totalGrantedBytes();
    out.devicePeakBacklogBytes = arbiter.peakBacklogBytes();
    out.sharedTouchedPages = device.store().touchedPages();
    out.spaceRejections = device.spaceRejections();
    const std::uint64_t dynCap = device.dynamicCapacityBytes();
    out.downgradePressure =
        dynCap > 0 ? static_cast<double>(out.sharedDynamicPeakBytes) /
                         static_cast<double>(dynCap)
                   : 0.0;
    return out;
}

Json
rackStatsToJson(const RackStats &stats)
{
    Json j = Json::object();
    Json nodes = Json::array();
    for (const RackNodeStats &ns : stats.nodes) {
        Json node = Json::object();
        node["sim"] = statsToJson(ns.sim);
        node["deviceRequests"] = ns.deviceRequests;
        node["toleoLinkBytes"] = ns.toleoLinkBytes;
        node["contentionStallNs"] = ns.contentionStallNs;
        node["peakBacklogBytes"] = ns.peakBacklogBytes;
        node["stalledEpochs"] = ns.stalledEpochs;
        node["peakEpochRequests"] = ns.peakEpochRequests;
        nodes.push_back(std::move(node));
    }
    j["nodes"] = std::move(nodes);
    j["epochs"] = stats.epochs;
    j["saturatedEpochs"] = stats.saturatedEpochs;
    j["deviceServiceGBps"] = stats.deviceServiceGBps;
    j["deviceGrantedBytes"] = stats.deviceGrantedBytes;
    j["devicePeakBacklogBytes"] = stats.devicePeakBacklogBytes;
    j["downgradePressure"] = stats.downgradePressure;
    j["spaceRejections"] = stats.spaceRejections;
    j["sharedTouchedPages"] = stats.sharedTouchedPages;
    j["sharedDynamicPeakBytes"] = stats.sharedDynamicPeakBytes;
    // Emitted only for open-loop runs, so closed-model rack output
    // (and the golden fixture) stays byte-identical.
    if (!stats.serving.arrival.empty())
        j["serving"] = servingStatsToJson(stats.serving);
    return j;
}

std::string
rackCsvHeader()
{
    return "node," + statsCsvHeader() +
           ",deviceRequests,toleoLinkBytes,contentionStallNs,"
           "peakBacklogBytes,stalledEpochs,peakEpochRequests,"
           "epochs,saturatedEpochs,deviceServiceGBps,"
           "deviceGrantedBytes,devicePeakBacklogBytes,"
           "downgradePressure,spaceRejections,sharedTouchedPages,"
           "sharedDynamicPeakBytes";
}

std::string
rackCsvRow(const RackStats &stats, std::size_t node)
{
    const RackNodeStats &ns = stats.nodes.at(node);
    std::ostringstream os;
    os << node << ',' << statsCsvRow(ns.sim) << ','
       << ns.deviceRequests << ',' << ns.toleoLinkBytes << ','
       << ns.contentionStallNs << ',' << ns.peakBacklogBytes << ','
       << ns.stalledEpochs << ',' << ns.peakEpochRequests << ','
       << stats.epochs << ',' << stats.saturatedEpochs << ','
       << stats.deviceServiceGBps << ',' << stats.deviceGrantedBytes
       << ',' << stats.devicePeakBacklogBytes << ','
       << stats.downgradePressure << ',' << stats.spaceRejections
       << ',' << stats.sharedTouchedPages << ','
       << stats.sharedDynamicPeakBytes;
    return os.str();
}

} // namespace toleo
