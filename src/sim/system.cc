#include "sim/system.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/logging.hh"
#include "secmem/noprotect.hh"
#include "sim/intra_pool.hh"
#include "workload/trace_file.hh"

namespace toleo {

namespace {

/**
 * Host wall clock for the bench-only phase breakdown (PhaseTimes).
 * Gated so the default path performs no clock calls; the value never
 * feeds simulated state, only the --bench telemetry.
 */
double
benchNowNs(bool enabled)
{
    if (!enabled)
        return 0.0;
    return std::chrono::duration<double, std::nano>(
               // toleo-lint: allow(nondeterminism)
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::NoProtect: return "NoProtect";
      case EngineKind::C: return "C";
      case EngineKind::CI: return "CI";
      case EngineKind::Toleo: return "Toleo";
      case EngineKind::InvisiMem: return "InvisiMem";
      case EngineKind::Merkle: return "Merkle";
    }
    return "?";
}

System::System(const SystemConfig &cfg)
    : cfg_(cfg), topo_(cfg.mem),
      hierarchy_([&] {
          CacheHierarchyConfig c = cfg.caches;
          c.numCores = cfg.numCores;
          return c;
      }()),
      winfo_(workloadInfo(cfg.workload))
{
    switch (cfg.engine) {
      case EngineKind::NoProtect:
        engine_ = std::make_unique<NoProtectEngine>(topo_);
        break;
      case EngineKind::C: {
        CiConfig c = cfg.ci;
        c.integrity = false;
        engine_ = std::make_unique<CiEngine>(topo_, c);
        break;
      }
      case EngineKind::CI:
        engine_ = std::make_unique<CiEngine>(topo_, cfg.ci);
        break;
      case EngineKind::Toleo: {
        // Rack mode borrows one device shared across nodes; the
        // single-node path owns a private one.  Either way the
        // engine and the stats collection go through devp_.
        if (cfg.sharedDevice) {
            devp_ = cfg.sharedDevice;
        } else {
            device_ = std::make_unique<ToleoDevice>(cfg.device);
            devp_ = device_.get();
        }
        auto eng = std::make_unique<ToleoEngine>(topo_, *devp_,
                                                 cfg.toleo);
        toleoEngine_ = eng.get();
        engine_ = std::move(eng);
        break;
      }
      case EngineKind::InvisiMem: {
        auto eng = std::make_unique<InvisiMemEngine>(topo_,
                                                     cfg.invisimem);
        invisimem_ = eng.get();
        engine_ = std::move(eng);
        break;
      }
      case EngineKind::Merkle:
        engine_ = std::make_unique<MerkleTreeEngine>(topo_, cfg.merkle);
        break;
    }

    const bool replaying = cfg.trace || !cfg.tracePath.empty();
    // TraceError, not fatal(): every trace defect throws (see
    // trace_file.hh) so library callers can catch it.
    if (replaying && !cfg.recordTracePath.empty())
        throw TraceError(
            "a System cannot replay and record a trace at once");
    if (replaying) {
        trace_ = cfg.trace ? cfg.trace : TraceFile::open(cfg.tracePath);
        if (trace_->workload() != cfg.workload) {
            warn("trace '%s' was captured from workload '%s' but is "
                 "replayed under '%s' metadata",
                 cfg.tracePath.empty() ? "<preloaded>"
                                       : cfg.tracePath.c_str(),
                 trace_->workload().c_str(), cfg.workload.c_str());
        }
        for (unsigned c = 0; c < cfg.numCores; ++c)
            gens_.push_back(
                std::make_unique<TraceReplayGen>(winfo_, trace_, c));
    } else {
        for (unsigned c = 0; c < cfg.numCores; ++c)
            gens_.push_back(makeWorkload(cfg.workload, c, cfg.seed));
        if (!cfg.recordTracePath.empty()) {
            traceWriter_ = std::make_unique<TraceWriter>(
                cfg.numCores, cfg.workload, cfg.seed);
            for (unsigned c = 0; c < cfg.numCores; ++c)
                gens_[c] = std::make_unique<RecordingTraceGen>(
                    std::move(gens_[c]), *traceWriter_, c);
        }
    }

    // Open-loop serving overlay: wrap every generator in a
    // RequestSource that tracks request boundaries.  The wrapper
    // forwards draws unchanged and the arrival process never feeds
    // back into simulated state, so every non-serving statistic is
    // bit-identical to the closed-loop run of the same config.
    serving_ = cfg.arrival.open();
    if (serving_) {
        if (!std::isfinite(cfg.arrival.ratePerSec) ||
            cfg.arrival.ratePerSec <= 0.0)
            throw std::invalid_argument(
                "System: open-loop arrival needs a positive finite "
                "ratePerSec");
        if (!std::isfinite(cfg.arrival.sloUs) ||
            cfg.arrival.sloUs <= 0.0)
            throw std::invalid_argument(
                "System: open-loop arrival needs a positive finite "
                "sloUs");
        if (cfg.arrival.requestRefs == 0)
            throw std::invalid_argument(
                "System: arrival.requestRefs must be >= 1");
        if (!cfg.recordTracePath.empty())
            throw std::invalid_argument(
                "System: record the trace under the closed arrival "
                "model and replay it open-loop instead");
        sloNs_ = cfg.arrival.sloUs * 1000.0;
        perCoreRate_ = cfg.arrival.ratePerSec / cfg.numCores;
        reqSrcs_.resize(cfg.numCores);
        servCores_.resize(cfg.numCores);
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            auto src = std::make_unique<RequestSource>(
                std::move(gens_[c]), cfg.arrival.requestRefs);
            reqSrcs_[c] = src.get();
            gens_[c] = std::move(src);
            // Dedicated stream, decorrelated from the workload draws:
            // the arrival process must not mirror or perturb them.
            servCores_[c].rng =
                Rng(cfg.seed ^ 0x517cc1b727220a95ULL ^
                    (static_cast<std::uint64_t>(c) *
                     0x9e3779b97f4a7c15ULL));
        }
    }

    coreInsts_.assign(cfg.numCores, 0);
    coreStallNs_.assign(cfg.numCores, 0.0);
    refBuf_.resize(static_cast<std::size_t>(cfg.numCores) *
                   batchRounds);
    evBuf_.resize(refBuf_.size());
    evCount_.assign(cfg.numCores, 0);
    evPos_.assign(cfg.numCores, 0);

    // Private-phase worker pool.  More threads than cores can never
    // help (the unit of work is one core's batch), and intraThreads
    // == 1 keeps the historical single-threaded path with no pool,
    // no staging, and no synchronization at all.
    const unsigned intra =
        std::min(std::max(cfg.intraThreads, 1u), cfg.numCores);
    if (intra > 1) {
        intraPool_ = std::make_unique<IntraPool>(intra);
        footprintStage_.resize(cfg.numCores);
        for (auto &stage : footprintStage_)
            stage.reserve(batchRounds);
    }
}

System::~System() = default;

double
System::coreTimeNs(unsigned core) const
{
    const double inst_ns = static_cast<double>(coreInsts_[core]) /
                           (cfg_.baseIpc * cfg_.clockGhz);
    return inst_ns + coreStallNs_[core];
}

double
System::maxCoreTimeNs() const
{
    double m = 0.0;
    for (unsigned c = 0; c < cfg_.numCores; ++c)
        m = std::max(m, coreTimeNs(c));
    return m;
}

void
System::stepShared(unsigned core, Addr addr,
                   const PrivateAccessResult &priv)
{
    HierarchyResult res;
    hierarchy_.accessShared(core, blockOf(addr), priv, res);

    // Dirty victims leaving the chip: off the read critical path but
    // they generate data + metadata traffic and version updates.
    for (BlockNum victim : res.memWritebacks) {
        const PageNum vpage = pageOfBlock(victim);
        topo_.addDataTraffic(vpage, blockSize);
        MetaCost wc = engine_->onWriteback(victim);
        metaBytes_ += wc.metaBytes;
        ++writebacks_;
    }

    if (!res.llcMiss)
        return;

    const PageNum page = pageOf(addr);

    // Data fill.  Resolve the page's home channel once for both the
    // traffic accounting and the latency lookup.
    const MemTopology::Route route = topo_.routeFor(page);
    topo_.addTraffic(route, blockSize);
    MetaCost mc = engine_->onRead(blockOf(addr));
    metaBytes_ += mc.metaBytes;
    const double dram_ns = topo_.latencyNs(route);
    const double total_ns = dram_ns + mc.latencyNs;

    readLat_.sample(total_ns, dram_ns, mc.latencyNs);

    coreStallNs_[core] += total_ns / winfo_.mlp;
}

void
System::privateCore(unsigned core, std::uint64_t rounds)
{
    // Pull the probed L1/L2 set blocks a few references ahead of the
    // access loop; the draws below give the addresses up front.
    constexpr std::uint64_t prefetchDist = 8;

    MemRef *refs = &refBuf_[core * batchRounds];
    SharedEvent *evs = &evBuf_[core * batchRounds];
    gens_[core]->nextBatch(refs, rounds);
    std::vector<PageNum> *stage =
        intraPool_ ? &footprintStage_[core] : nullptr;
    std::uint32_t nev = 0;
    std::uint64_t insts = 0;
    for (std::uint64_t k = 0; k < rounds; ++k) {
        const MemRef &ref = refs[k];
        insts += ref.instGap + 1;
        if (k + prefetchDist < rounds) {
            hierarchy_.prefetchPrivate(
                core, blockOf(refs[k + prefetchDist].addr));
        }
        const PrivateAccessResult priv = hierarchy_.accessPrivate(
            core, blockOf(ref.addr), ref.isWrite);
        // RSS tracking off the L1-hit path: a page's very first
        // reference always misses L1 (an untouched block cannot be
        // resident), so recording pages on L1 misses only yields the
        // same footprint set.  Under the pool the insert is staged
        // per core -- footprint_ is the single structure the private
        // phase would otherwise share -- and merged by stepRounds.
        if (!priv.l1Hit) {
            const PageNum page = pageOf(ref.addr);
            if (stage)
                stage->push_back(page);
            else
                // Justified shared touch: this branch only runs when
                // intraPool_ is null, i.e. the private phase is
                // single-threaded, so the direct insert cannot race.
                // The pooled path stages per core (above) and merges
                // in stepRounds.
                footprint_.insert(page); // toleo-lint: allow(phase-safety)
        }
        if (priv.needsShared()) {
            evs[nev].round = static_cast<std::uint32_t>(k);
            evs[nev].priv = priv;
            ++nev;
        }
    }
    evCount_[core] = nev;
    evPos_[core] = 0;
    if (serving_) {
        // Stage this batch's request boundaries (round index plus the
        // absolute retired-instruction count at completion) for the
        // shared phase to time-stamp.  A post-loop pass over the
        // already-drawn refs keeps the hot loop above untouched; the
        // state is all core-local, so the intra pool needs no
        // synchronization.
        auto &sv = servCores_[core];
        sv.boundaries.clear();
        sv.pos = 0;
        const auto &marks = reqSrcs_[core]->batchBoundaries();
        if (!marks.empty()) {
            std::uint64_t cum = coreInsts_[core];
            std::uint64_t next = 0;
            for (const std::uint32_t m : marks) {
                for (; next <= m; ++next)
                    cum += refs[next].instGap + 1;
                sv.boundaries.push_back({m, cum});
            }
        }
    }
    coreInsts_[core] += insts;
}

void
System::stepRounds(std::uint64_t rounds, bool measuring)
{
    const unsigned cores = cfg_.numCores;
    const bool timing = cfg_.phaseTimers;
    while (rounds > 0) {
        const std::uint64_t n = std::min(rounds, batchRounds);

        const double t0 = benchNowNs(timing);

        // Private phase: generator draws and each core's own L1/L2.
        // Per-generator draw order and per-cache operation sequences
        // are exactly those of the old one-reference-at-a-time loop;
        // the cores' structures are mutually disjoint, so running
        // them concurrently (static striping, pure function of core
        // id and thread count) cannot reorder anything observable.
        if (intraPool_) {
            intraPool_->run(cores,
                            [this, n](unsigned c) { privateCore(c, n); });
            // Merge the staged footprint inserts serially, in core
            // order.  The footprint is a set and its final contents
            // are all that is ever read (size()), so the merge is
            // bit-identical to inline insertion for any thread count.
            for (unsigned c = 0; c < cores; ++c) {
                for (PageNum page : footprintStage_[c])
                    footprint_.insert(page);
                footprintStage_[c].clear();
            }
        } else {
            for (unsigned c = 0; c < cores; ++c)
                privateCore(c, n);
        }

        const double t1 = benchNowNs(timing);

        // Shared phase, in round-robin global order: L3 slices, the
        // memory topology, and the protection engine observe the
        // exact operation sequence of the original loop.  Each
        // core's queue is already round-ordered, so this is an
        // n-way merge on the round index.
        for (std::uint64_t k = 0; k < n; ++k) {
            for (unsigned c = 0; c < cores; ++c) {
                const std::uint32_t pos = evPos_[c];
                if (pos >= evCount_[c])
                    continue;
                const SharedEvent &ev = evBuf_[c * batchRounds + pos];
                if (ev.round != k)
                    continue;
                stepShared(c, refBuf_[c * batchRounds + k].addr,
                           ev.priv);
                evPos_[c] = pos + 1;
            }
            // Requests ending at round k complete here: the round's
            // shared work has been replayed, so each boundary core's
            // stall clock is final for this point in time.
            if (serving_)
                finalizeServingRound(k, measuring);
        }

        if (timing) {
            phases_.privateNs += t1 - t0;
            phases_.sharedNs += benchNowNs(true) - t1;
        }
        rounds -= n;
    }
}

void
System::stageRounds(std::uint64_t rounds, bool measuring)
{
    const unsigned cores = cfg_.numCores;
    const bool timing = cfg_.phaseTimers;
    while (rounds > 0) {
        const std::uint64_t n = std::min(rounds, batchRounds);

        const double t0 = benchNowNs(timing);

        // Same private phase as stepRounds: draws, L1/L2, per-core
        // event queues, footprint and serving-boundary staging.
        if (intraPool_) {
            intraPool_->run(cores,
                            [this, n](unsigned c) { privateCore(c, n); });
            for (unsigned c = 0; c < cores; ++c) {
                for (PageNum page : footprintStage_[c])
                    // Node-local serialization: footprint_ belongs to
                    // this System alone and the rack pool runs one
                    // thread per System, so this merge -- like the
                    // direct insert in privateCore -- cannot race
                    // across nodes; it is the same merge stepRounds
                    // performs, at the same point in the batch.
                    footprint_.insert(page); // toleo-lint: allow(phase-safety)
                footprintStage_[c].clear();
            }
        } else {
            for (unsigned c = 0; c < cores; ++c)
                privateCore(c, n);
        }

        // Flatten this batch's per-core queues into the staged epoch
        // log -- the identical (round, core) n-way merge stepRounds
        // replays, minus the stepShared calls.  Rounds are renumbered
        // globally across the epoch so the replay is one linear scan.
        for (std::uint64_t k = 0; k < n; ++k) {
            for (unsigned c = 0; c < cores; ++c) {
                const std::uint32_t pos = evPos_[c];
                if (pos >= evCount_[c])
                    continue;
                const SharedEvent &ev = evBuf_[c * batchRounds + pos];
                if (ev.round != k)
                    continue;
                stagedEvents_.push_back(
                    {stageRoundBase_ + k, c,
                     refBuf_[c * batchRounds + k].addr, ev.priv});
                evPos_[c] = pos + 1;
            }
            if (serving_ && measuring) {
                // Warmup boundaries are not staged: completeRequest
                // ignores them (measuring snapshot false), so the
                // replay stream carries only live completions.
                for (unsigned c = 0; c < cores; ++c) {
                    auto &sv = servCores_[c];
                    while (sv.pos < sv.boundaries.size() &&
                           sv.boundaries[sv.pos].round == k) {
                        stagedBoundaries_.push_back(
                            {stageRoundBase_ + k, c,
                             sv.boundaries[sv.pos].insts});
                        ++sv.pos;
                    }
                }
            }
        }
        stageRoundBase_ += n;

        if (timing)
            phases_.privateNs += benchNowNs(true) - t0;
        rounds -= n;
    }
}

void
System::finalizeServingRound(std::uint64_t k, bool measuring)
{
    for (unsigned c = 0; c < cfg_.numCores; ++c) {
        auto &sv = servCores_[c];
        while (sv.pos < sv.boundaries.size() &&
               sv.boundaries[sv.pos].round == k) {
            completeRequest(c, sv.boundaries[sv.pos].insts, measuring);
            ++sv.pos;
        }
    }
}

void
System::completeRequest(unsigned core, std::uint64_t instsAtDone,
                        bool measuring)
{
    // Warmup requests are ignored; the first boundary after the stats
    // reset only primes the service-time mark (the request it closes
    // spans the reset, so its duration is not a full request's).
    // The flag is the planner's per-chunk snapshot of runMeasuring_,
    // which planEpoch advances before any chunk executes.
    if (!measuring)
        return;
    auto &sv = servCores_[core];
    const double now = static_cast<double>(instsAtDone) /
                           (cfg_.baseIpc * cfg_.clockGhz) +
                       coreStallNs_[core];
    if (!sv.primed) {
        sv.primed = true;
        sv.lastMarkNs = now;
        return;
    }
    const double service = std::max(0.0, now - sv.lastMarkNs);
    sv.lastMarkNs = now;

    // Open-loop overlay (Lindley recursion): the closed-loop replay
    // supplies the per-request service time (memory stalls and rack
    // contention included), the seeded arrival process supplies the
    // arrival time, and queueing delay emerges whenever arrivals
    // outpace service.  None of this feeds back into simulated state.
    sv.arrivalNs +=
        drawInterarrivalNs(cfg_.arrival, perCoreRate_, sv.rng);
    const double start = std::max(sv.arrivalNs, sv.lastDoneNs);
    const double done = start + service;
    sv.lastDoneNs = done;
    const double latency = done - sv.arrivalNs;
    const double queue = start - sv.arrivalNs;

    ++servRequests_;
    if (latency <= sloNs_)
        ++servSloMet_;
    servLatSumNs_ += latency;
    servQueueSumNs_ += queue;
    servSvcSumNs_ += service;
    servLatency_.sample(latency);
}

void
System::resetServing()
{
    servLatency_.reset();
    servLatSumNs_ = servQueueSumNs_ = servSvcSumNs_ = 0.0;
    servRequests_ = servSloMet_ = 0;
    for (auto &sv : servCores_) {
        sv.lastMarkNs = sv.arrivalNs = sv.lastDoneNs = 0.0;
        sv.primed = false;
    }
}

void
System::resetMeasurement()
{
    resetMeasurementPrivate();
    resetMeasurementShared();
}

void
System::resetMeasurementPrivate()
{
    // Per-core half only: the instruction clocks feed the private
    // phase's serving-boundary staging, so the staged path must zero
    // them at the reset's position in the *private* pass.  Everything
    // the shared replay owns resets in resetMeasurementShared().
    hierarchy_.resetStatsPrivate();
    std::fill(coreInsts_.begin(), coreInsts_.end(), 0);
}

void
System::resetMeasurementShared()
{
    // The serving overlay resets here as a whole: its per-core
    // Lindley state (arrival/done clocks, priming) is mutated only by
    // completeRequest, i.e. by the shared replay.
    if (serving_)
        resetServing();
    hierarchy_.resetStatsShared();
    topo_.resetStats();
    engine_->stats().reset();
    if (toleoEngine_)
        toleoEngine_->stealthCache().resetStats();
    readLat_.reset();
    writebacks_ = 0;
    metaBytes_ = 0;
    // The footprint is intentionally *not* reset: it models the RSS,
    // which accumulates from process start (Section 7.2).
    std::fill(coreStallNs_.begin(), coreStallNs_.end(), 0.0);
}

void
System::epochBoundary()
{
    const double t0 = benchNowNs(cfg_.phaseTimers);
    double delta = maxCoreTimeNs() - runLastEpochNs_;
    if (delta <= 0.0)
        delta = 1.0;
    if (invisimem_)
        invisimem_->padEpoch(delta);
    // Throughput floor: if any channel needs longer than the
    // cores' latency-derived time to drain this epoch's traffic,
    // the whole node is bandwidth-bound and time stretches.
    const double required = topo_.requiredEpochNs();
    if (required > delta) {
        const double deficit = required - delta;
        for (auto &stall : coreStallNs_)
            stall += deficit;
        delta = required;
    }
    // Record the epoch observables the rack arbiter consumes before
    // endEpoch() zeroes the per-epoch channel accumulators.  The
    // bandwidth floor above guarantees epochToleoBytes_ <=
    // linkGBps * delta, which is what lets an uncontended shared
    // device always keep up (see runRack()).
    epochToleoBytes_ = topo_.toleoLink().pendingBytes();
    topo_.endEpoch(delta);
    epochWallNs_ = delta;
    ++epochsCompleted_;
    runLastEpochNs_ = maxCoreTimeNs();
    if (cfg_.phaseTimers)
        phases_.epochNs += benchNowNs(true) - t0;
}

// Rounds (one reference per core) until the next epoch boundary
// fires.  Every round adds numCores references, so the per-round
// epoch re-check of the old loop reduces to a ceiling division,
// letting stepRounds() run a check-free inner loop.
std::uint64_t
System::roundsToEpoch() const
{
    const std::uint64_t since = runGlobalRefs_ - runEpochMark_;
    const std::uint64_t remaining =
        cfg_.epochRefs > since ? cfg_.epochRefs - since : 0;
    return remaining == 0
               ? 1
               : (remaining + cfg_.numCores - 1) / cfg_.numCores;
}

void
System::beginRun(std::uint64_t warmup_refs, std::uint64_t measure_refs)
{
    runWarmupRefs_ = warmup_refs;
    runMeasureRefs_ = measure_refs;
    runGlobalRefs_ = 0;
    runEpochMark_ = 0;
    runLastEpochNs_ = 0.0;
    runPhaseRefs_ = 0;
    runSampleEvery_ = std::max<std::uint64_t>(
        1, measure_refs / cfg_.timelinePoints);
    runMeasuring_ = false;
    runActive_ = true;
    plan_.clear();
    pendingReplay_ = false;
    runStats_ = SimStats{};
    if (serving_)
        resetServing();
    epochToleoBytes_ = 0;
    epochWallNs_ = 0.0;
    epochsCompleted_ = 0;
}

bool
System::planEpoch()
{
    plan_.clear();

    // Warmup: fill caches and version state, then reset stats.  The
    // phase transition is not an epoch boundary; when warmup ends
    // mid-epoch, measurement continues the same epoch.
    while (!runMeasuring_) {
        if (runPhaseRefs_ >= runWarmupRefs_) {
            plan_.push_back({EpochPlanItem::Kind::Reset, false, 0});
            runMeasuring_ = true;
            runPhaseRefs_ = 0;
            break;
        }
        const std::uint64_t chunk = std::min(
            runWarmupRefs_ - runPhaseRefs_, roundsToEpoch());
        plan_.push_back({EpochPlanItem::Kind::Run, false, chunk});
        runGlobalRefs_ += chunk * cfg_.numCores;
        runPhaseRefs_ += chunk;
        if (runGlobalRefs_ - runEpochMark_ >= cfg_.epochRefs) {
            plan_.push_back({EpochPlanItem::Kind::Boundary, false, 0});
            runEpochMark_ = runGlobalRefs_;
            return true;
        }
    }

    // Measurement phase: batches run until the earlier of the next
    // epoch boundary and the next timeline-sample round, so neither
    // condition is tested inside the per-reference loop.
    while (runPhaseRefs_ < runMeasureRefs_) {
        std::uint64_t chunk = std::min(
            runMeasureRefs_ - runPhaseRefs_, roundsToEpoch());
        bool sample_due = false;
        if (devp_) {
            // Next round index ending in a timeline sample.
            const std::uint64_t next_sample =
                (runPhaseRefs_ + runSampleEvery_ - 1) /
                runSampleEvery_ * runSampleEvery_;
            if (next_sample < runMeasureRefs_ &&
                next_sample - runPhaseRefs_ + 1 <= chunk) {
                chunk = next_sample - runPhaseRefs_ + 1;
                sample_due = true;
            }
        }
        plan_.push_back({EpochPlanItem::Kind::Run, true, chunk});
        runGlobalRefs_ += chunk * cfg_.numCores;
        runPhaseRefs_ += chunk;
        bool fired = false;
        if (runGlobalRefs_ - runEpochMark_ >= cfg_.epochRefs) {
            plan_.push_back({EpochPlanItem::Kind::Boundary, false, 0});
            runEpochMark_ = runGlobalRefs_;
            fired = true;
        }
        // Order matters and matches the historical loop: a sample
        // due on a boundary round records *after* the boundary.
        if (sample_due)
            plan_.push_back({EpochPlanItem::Kind::Sample, false, 0});
        if (fired)
            return true;
    }

    // Window exhausted: close the final (possibly partial) epoch --
    // the same unconditional boundary the monolithic run() ended
    // with -- and report completion.
    plan_.push_back({EpochPlanItem::Kind::Boundary, false, 0});
    runActive_ = false;
    return false;
}

void
System::recordTimelineSample(std::uint64_t insts,
                             std::uint64_t footprintPages)
{
    // Usage = statically mapped flat entries for the RSS (the
    // touched footprint) + dynamic entries (Fig 12).
    const std::uint64_t usage = footprintPages * flatEntryBytes +
                                devp_->store().dynamicBytes();
    runStats_.usageTimeline.emplace_back(insts, usage);
}

bool
System::stepEpoch()
{
    if (!runActive_)
        return false;
    if (pendingReplay_)
        throw std::logic_error(
            "System::stepEpoch: a staged epoch awaits "
            "replayEpochShared()");

    const bool more = planEpoch();
    for (const EpochPlanItem &item : plan_) {
        switch (item.kind) {
          case EpochPlanItem::Kind::Run:
            stepRounds(item.rounds, item.measuring);
            break;
          case EpochPlanItem::Kind::Reset:
            resetMeasurement();
            runLastEpochNs_ = 0.0;
            break;
          case EpochPlanItem::Kind::Boundary:
            epochBoundary();
            break;
          case EpochPlanItem::Kind::Sample: {
            std::uint64_t insts = 0;
            for (unsigned c = 0; c < cfg_.numCores; ++c)
                insts += coreInsts_[c];
            recordTimelineSample(insts, footprint_.size());
            break;
          }
        }
    }
    return more;
}

bool
System::stepEpochPrivate()
{
    if (!runActive_)
        return false;
    if (pendingReplay_)
        throw std::logic_error(
            "System::stepEpochPrivate: a staged epoch awaits "
            "replayEpochShared()");

    const bool more = planEpoch();
    stagedEvents_.clear();
    stagedBoundaries_.clear();
    stagedSamples_.clear();
    stageRoundBase_ = 0;
    for (const EpochPlanItem &item : plan_) {
        switch (item.kind) {
          case EpochPlanItem::Kind::Run:
            stageRounds(item.rounds, item.measuring);
            break;
          case EpochPlanItem::Kind::Reset:
            resetMeasurementPrivate();
            break;
          case EpochPlanItem::Kind::Boundary:
            // Entirely shared work; replayed in order.
            break;
          case EpochPlanItem::Kind::Sample: {
            // Capture the private-side observables now; the replay
            // pairs them with the shared store's live dynamicBytes()
            // at exactly the serial path's device state.
            std::uint64_t insts = 0;
            for (unsigned c = 0; c < cfg_.numCores; ++c)
                insts += coreInsts_[c];
            stagedSamples_.push_back({insts, footprint_.size()});
            break;
          }
        }
    }
    pendingReplay_ = true;
    return more;
}

void
System::replayEpochShared()
{
    if (!pendingReplay_)
        throw std::logic_error(
            "System::replayEpochShared: no staged epoch (call "
            "stepEpochPrivate first)");
    pendingReplay_ = false;

    const bool timing = cfg_.phaseTimers;
    std::size_t ev = 0;
    std::size_t bd = 0;
    std::size_t sample = 0;
    std::uint64_t roundBase = 0;
    for (const EpochPlanItem &item : plan_) {
        switch (item.kind) {
          case EpochPlanItem::Kind::Run: {
            const double t0 = benchNowNs(timing);
            // Linear scan over this chunk's slice of the staged
            // logs.  Both are (round, core)-ordered; within a round
            // every shared event replays before any completion, so
            // the merge reproduces stepRounds' exact sequence.
            const std::uint64_t end = roundBase + item.rounds;
            while (true) {
                const bool haveEv = ev < stagedEvents_.size() &&
                                    stagedEvents_[ev].round < end;
                const bool haveBd =
                    bd < stagedBoundaries_.size() &&
                    stagedBoundaries_[bd].round < end;
                if (!haveEv && !haveBd)
                    break;
                if (haveEv &&
                    (!haveBd || stagedEvents_[ev].round <=
                                    stagedBoundaries_[bd].round)) {
                    const StagedSharedEvent &e = stagedEvents_[ev];
                    stepShared(e.core, e.addr, e.priv);
                    ++ev;
                } else {
                    const StagedRequestBoundary &b =
                        stagedBoundaries_[bd];
                    completeRequest(b.core, b.insts, true);
                    ++bd;
                }
            }
            roundBase = end;
            if (timing)
                phases_.sharedNs += benchNowNs(true) - t0;
            break;
          }
          case EpochPlanItem::Kind::Reset:
            resetMeasurementShared();
            runLastEpochNs_ = 0.0;
            break;
          case EpochPlanItem::Kind::Boundary:
            epochBoundary();
            break;
          case EpochPlanItem::Kind::Sample: {
            const StagedSample &s = stagedSamples_[sample++];
            recordTimelineSample(s.insts, s.footprintPages);
            break;
          }
        }
    }
}

SimStats
System::run(std::uint64_t warmup_refs, std::uint64_t measure_refs)
{
    beginRun(warmup_refs, measure_refs);
    while (stepEpoch()) {
    }
    return finishRun();
}

void
System::addRackStallNs(double ns)
{
    // Strict no-op for ns <= 0 so an uncontended rack node stays
    // bit-identical to a standalone run.
    if (ns <= 0.0)
        return;
    for (auto &stall : coreStallNs_)
        stall += ns;
}

SimStats
System::finishRun()
{
    // Collect the report.
    SimStats out = std::move(runStats_);
    out.workload = cfg_.workload;
    out.engine = engine_->name();
    for (unsigned c = 0; c < cfg_.numCores; ++c)
        out.instructions += coreInsts_[c];
    out.refs = runMeasureRefs_ * cfg_.numCores;
    out.llcMisses = hierarchy_.llcMisses();
    out.llcWritebacks = writebacks_;
    out.execSeconds = maxCoreTimeNs() * 1e-9;
    out.ipc = static_cast<double>(out.instructions) /
              (maxCoreTimeNs() * cfg_.clockGhz) / cfg_.numCores;
    out.llcMpki = 1000.0 * static_cast<double>(out.llcMisses) /
                  static_cast<double>(out.instructions);

    out.avgReadLatencyNs = readLat_.meanTotal();
    out.avgDramLatencyNs = readLat_.meanDram();
    out.avgMetaLatencyNs = readLat_.meanMeta();

    const double insts = static_cast<double>(out.instructions);
    const std::uint64_t data_bytes =
        (out.llcMisses + out.llcWritebacks) * blockSize;
    if (auto *ci = dynamic_cast<CiEngine *>(engine_.get()))
        out.macCacheHitRate = ci->macCacheHitRate();
    if (toleoEngine_)
        out.stealthCacheHitRate =
            toleoEngine_->stealthCache().hitRate();
    out.dataBpi = static_cast<double>(data_bytes) / insts;
    out.macBpi = static_cast<double>(metaBytes_) / insts;
    out.stealthBpi = static_cast<double>(topo_.toleoBytes()) / insts;
    out.dummyBpi =
        invisimem_
            ? static_cast<double>(invisimem_->dummyBytes()) / insts
            : 0.0;

    if (devp_) {
        // Page classification over the *RSS*: read-only and resident-
        // but-cold pages never leave flat (their statically mapped
        // entry), exactly as the paper derives flat usage from the
        // OS-reported RSS (Section 7.2).  With a shared rack device
        // the store-side counts aggregate every node (one version
        // store really does hold the whole rack); per-node splits
        // live in RackStats.
        const auto b = devp_->store().breakdown();
        const std::uint64_t fp = std::max<std::uint64_t>(
            footprint_.size(),
            winfo_.simFootprintBytes / pageSize * cfg_.numCores);
        out.trip.uneven = b.uneven;
        out.trip.full = b.full;
        out.trip.flat = fp >= b.uneven + b.full
                            ? fp - b.uneven - b.full
                            : 0;

        const std::uint64_t usage =
            fp * flatEntryBytes + devp_->store().dynamicBytes();
        out.toleoPeakUsageBytes = usage;

        const double pages_per_tb = 1e12 / pageSize;
        if (fp > 0) {
            out.usagePerTb.flatGb =
                pages_per_tb * flatEntryBytes / 1e9;
            out.usagePerTb.unevenGb =
                pages_per_tb *
                (static_cast<double>(b.uneven) / fp) *
                unevenEntryBytes / 1e9;
            out.usagePerTb.fullGb =
                pages_per_tb * (static_cast<double>(b.full) / fp) *
                fullEntryAllocBytes / 1e9;
        }
        out.avgEntryBytesPerPage =
            fp > 0 ? static_cast<double>(usage) / fp
                   : static_cast<double>(flatEntryBytes);
        out.toleoResets = devp_->store().resets();
        out.toleoUpgrades = devp_->store().upgradesToUneven() +
                            devp_->store().upgradesToFull();
    }

    if (serving_) {
        ServingStats &sv = out.serving;
        sv.arrival = arrivalKindName(cfg_.arrival.kind);
        sv.offeredRatePerSec = cfg_.arrival.ratePerSec;
        sv.sloUs = cfg_.arrival.sloUs;
        sv.requests = servRequests_;
        sv.sloMet = servSloMet_;
        double done_span = 0.0;
        double arrival_span = 0.0;
        for (const auto &core : servCores_) {
            done_span = std::max(done_span, core.lastDoneNs);
            arrival_span = std::max(arrival_span, core.arrivalNs);
        }
        const double req = static_cast<double>(servRequests_);
        sv.spanSeconds = done_span * 1e-9;
        sv.offeredRps =
            arrival_span > 0.0 ? req / (arrival_span * 1e-9) : 0.0;
        sv.completedRps =
            done_span > 0.0 ? req / (done_span * 1e-9) : 0.0;
        sv.goodputRps = done_span > 0.0
                            ? static_cast<double>(servSloMet_) /
                                  (done_span * 1e-9)
                            : 0.0;
        sv.sloAttainment =
            servRequests_
                ? static_cast<double>(servSloMet_) / req
                : 0.0;
        sv.meanLatencyUs =
            servRequests_ ? servLatSumNs_ / req * 1e-3 : 0.0;
        sv.meanQueueUs =
            servRequests_ ? servQueueSumNs_ / req * 1e-3 : 0.0;
        sv.meanServiceUs =
            servRequests_ ? servSvcSumNs_ / req * 1e-3 : 0.0;
        sv.p50LatencyUs = servLatency_.percentileNs(0.50) * 1e-3;
        sv.p99LatencyUs = servLatency_.percentileNs(0.99) * 1e-3;
        sv.p999LatencyUs = servLatency_.percentileNs(0.999) * 1e-3;
        sv.maxLatencyUs = servLatency_.maxNs() * 1e-3;
        sv.latency = servLatency_;
    }

    // Flush the capture (warmup + measurement) so a replay of the
    // same window consumes exactly the recorded stream.
    if (traceWriter_)
        traceWriter_->writeTo(cfg_.recordTracePath);
    return out;
}

SystemConfig
makeScaledConfig(const std::string &workload, EngineKind kind,
                 unsigned cores)
{
    SystemConfig cfg;
    cfg.workload = workload;
    cfg.engine = kind;
    cfg.numCores = cores;

    // Caches scale so the 10^5-ref windows reach eviction steady
    // state; associativities and latencies stay at paper values.
    cfg.caches.l1Bytes = 16 * KiB;
    cfg.caches.l1Assoc = 8;
    cfg.caches.l2Bytes = 64 * KiB;
    cfg.caches.l2Assoc = 16;
    cfg.caches.l3SliceBytes = 1 * MiB;
    cfg.caches.l3Assoc = 16;

    // MAC cache scales like the paper's 32 KB/core.
    cfg.ci.macCacheBytes = std::max<std::uint64_t>(
        8 * KiB, cores * 4 * KiB);
    cfg.toleo.ci = cfg.ci;

    // Channel bandwidth scales with the core count (the paper's
    // 32-core node has 3 DDR channels + one x8 CXL pool link).
    const double scale = static_cast<double>(cores) / 32.0;
    cfg.mem.ddrChannels =
        std::max(1u, static_cast<unsigned>(3 * scale + 0.5));
    cfg.mem.ddrBandwidthGBps =
        25.6 * (3.0 * scale) / cfg.mem.ddrChannels;
    cfg.mem.cxlPoolBandwidthGBps = 12.7 * scale;
    // Keep the paper's Toleo-link : data-bandwidth ratio (3.32 of
    // 89.5 GB/s = 3.7%), which is what determines whether the
    // version link ever becomes the bottleneck.
    cfg.mem.toleoLinkBandwidthGBps =
        0.037 * (cfg.mem.ddrChannels * cfg.mem.ddrBandwidthGBps +
                 cfg.mem.cxlPoolBandwidthGBps);

    return cfg;
}

Json
statsToJson(const SimStats &stats)
{
    Json j = Json::object();
    j["workload"] = stats.workload;
    j["engine"] = stats.engine;
    j["instructions"] = stats.instructions;
    j["refs"] = stats.refs;
    j["llcMisses"] = stats.llcMisses;
    j["llcWritebacks"] = stats.llcWritebacks;
    j["execSeconds"] = stats.execSeconds;
    j["ipc"] = stats.ipc;
    j["llcMpki"] = stats.llcMpki;
    j["avgReadLatencyNs"] = stats.avgReadLatencyNs;
    j["avgDramLatencyNs"] = stats.avgDramLatencyNs;
    j["avgMetaLatencyNs"] = stats.avgMetaLatencyNs;
    j["dataBpi"] = stats.dataBpi;
    j["macBpi"] = stats.macBpi;
    j["stealthBpi"] = stats.stealthBpi;
    j["dummyBpi"] = stats.dummyBpi;
    j["macCacheHitRate"] = stats.macCacheHitRate;
    j["stealthCacheHitRate"] = stats.stealthCacheHitRate;

    Json trip = Json::object();
    trip["flatPages"] = stats.trip.flat;
    trip["unevenPages"] = stats.trip.uneven;
    trip["fullPages"] = stats.trip.full;
    j["trip"] = std::move(trip);

    Json usage = Json::object();
    usage["flatGbPerTb"] = stats.usagePerTb.flatGb;
    usage["unevenGbPerTb"] = stats.usagePerTb.unevenGb;
    usage["fullGbPerTb"] = stats.usagePerTb.fullGb;
    usage["totalGbPerTb"] = stats.usagePerTb.totalGb();
    j["usagePerTb"] = std::move(usage);

    j["toleoPeakUsageBytes"] = stats.toleoPeakUsageBytes;
    j["avgEntryBytesPerPage"] = stats.avgEntryBytesPerPage;
    j["toleoResets"] = stats.toleoResets;
    j["toleoUpgrades"] = stats.toleoUpgrades;

    Json timeline = Json::array();
    for (const auto &sample : stats.usageTimeline) {
        Json point = Json::array();
        point.push_back(sample.first);
        point.push_back(sample.second);
        timeline.push_back(std::move(point));
    }
    j["usageTimeline"] = std::move(timeline);
    // Open-loop serving block: only present when the run actually
    // served, so closed-mode output stays byte-identical to the
    // goldens and the committed bench records.
    if (!stats.serving.arrival.empty())
        j["serving"] = servingStatsToJson(stats.serving);
    return j;
}

Json
servingStatsToJson(const ServingStats &stats)
{
    Json j = Json::object();
    j["arrival"] = stats.arrival;
    j["offeredRatePerSec"] = stats.offeredRatePerSec;
    j["sloUs"] = stats.sloUs;
    j["requests"] = stats.requests;
    j["sloMet"] = stats.sloMet;
    j["spanSeconds"] = stats.spanSeconds;
    j["offeredRps"] = stats.offeredRps;
    j["completedRps"] = stats.completedRps;
    j["goodputRps"] = stats.goodputRps;
    j["sloAttainment"] = stats.sloAttainment;
    j["meanLatencyUs"] = stats.meanLatencyUs;
    j["meanQueueUs"] = stats.meanQueueUs;
    j["meanServiceUs"] = stats.meanServiceUs;

    Json pct = Json::object();
    pct["p50Us"] = stats.p50LatencyUs;
    pct["p99Us"] = stats.p99LatencyUs;
    pct["p999Us"] = stats.p999LatencyUs;
    pct["maxUs"] = stats.maxLatencyUs;
    j["latencyPercentilesUs"] = std::move(pct);

    // Summary of the mergeable distribution itself (the full bucket
    // array stays in-memory only; rack aggregation merges it before
    // serializing, so rack percentiles cover all nodes' requests).
    Json lat = Json::object();
    lat["count"] = stats.latency.count();
    lat["minUs"] = stats.latency.minNs() * 1e-3;
    lat["maxUs"] = stats.latency.maxNs() * 1e-3;
    lat["meanUs"] = stats.latency.meanNs() * 1e-3;
    lat["p90Us"] = stats.latency.percentileNs(0.90) * 1e-3;
    j["latencyHistogram"] = std::move(lat);
    return j;
}

std::string
statsCsvHeader()
{
    return "workload,engine,instructions,refs,llcMisses,"
           "llcWritebacks,execSeconds,ipc,llcMpki,avgReadLatencyNs,"
           "avgDramLatencyNs,avgMetaLatencyNs,dataBpi,macBpi,"
           "stealthBpi,dummyBpi,macCacheHitRate,stealthCacheHitRate,"
           "tripFlatPages,tripUnevenPages,tripFullPages,"
           "toleoPeakUsageBytes,avgEntryBytesPerPage,toleoResets,"
           "toleoUpgrades,arrival,offeredRatePerSec,sloUs,"
           "servedRequests,sloMet,spanSeconds,offeredRps,"
           "completedRps,goodputRps,sloAttainment,meanLatencyUs,"
           "meanQueueUs,meanServiceUs,p50LatencyUs,p99LatencyUs,"
           "p999LatencyUs,maxLatencyUs";
}

std::string
statsCsvRow(const SimStats &stats)
{
    std::ostringstream os;
    os << stats.workload << ',' << stats.engine << ','
       << stats.instructions << ',' << stats.refs << ','
       << stats.llcMisses << ',' << stats.llcWritebacks << ','
       << stats.execSeconds << ',' << stats.ipc << ','
       << stats.llcMpki << ',' << stats.avgReadLatencyNs << ','
       << stats.avgDramLatencyNs << ',' << stats.avgMetaLatencyNs
       << ',' << stats.dataBpi << ',' << stats.macBpi << ','
       << stats.stealthBpi << ',' << stats.dummyBpi << ','
       << stats.macCacheHitRate << ',' << stats.stealthCacheHitRate
       << ',' << stats.trip.flat << ',' << stats.trip.uneven << ','
       << stats.trip.full << ',' << stats.toleoPeakUsageBytes << ','
       << stats.avgEntryBytesPerPage << ',' << stats.toleoResets
       << ',' << stats.toleoUpgrades << ','
       << (stats.serving.arrival.empty() ? "closed"
                                         : stats.serving.arrival)
       << ',' << stats.serving.offeredRatePerSec << ','
       << stats.serving.sloUs << ',' << stats.serving.requests << ','
       << stats.serving.sloMet << ',' << stats.serving.spanSeconds
       << ',' << stats.serving.offeredRps << ','
       << stats.serving.completedRps << ','
       << stats.serving.goodputRps << ','
       << stats.serving.sloAttainment << ','
       << stats.serving.meanLatencyUs << ','
       << stats.serving.meanQueueUs << ','
       << stats.serving.meanServiceUs << ','
       << stats.serving.p50LatencyUs << ','
       << stats.serving.p99LatencyUs << ','
       << stats.serving.p999LatencyUs << ','
       << stats.serving.maxLatencyUs;
    return os.str();
}

void
printConfig(const SystemConfig &cfg, std::ostream &os)
{
    const auto &cc = cfg.caches;
    const auto &mm = cfg.mem;
    os << "Processor        " << cfg.clockGhz << " GHz, "
       << cfg.numCores << " cores (base IPC " << cfg.baseIpc << ")\n"
       << "L1-I/D cache     " << cc.l1Bytes / KiB << " KB per core, "
       << cc.l1Assoc << "-way, " << cc.l1Latency << " cycles, LRU\n"
       << "L2 cache         " << cc.l2Bytes / MiB << " MB per core, "
       << cc.l2Assoc << "-way, " << cc.l2Latency << " cycles, LRU\n"
       << "L3 cache         " << cc.l3SliceBytes / MiB
       << " MB shared by every " << cc.coresPerL3Slice << " cores, "
       << cc.l3Assoc << "-way, " << cc.l3Latency << " cycles, LRU\n"
       << "DRAM             DDR4-3200, " << mm.ddrChannels
       << " channels x " << mm.ddrBandwidthGBps << " GB/s, "
       << mm.ddrLatencyNs << " ns\n"
       << "CXL mem pool     PCIe5 x8 " << mm.cxlPoolBandwidthGBps
       << " GB/s, +" << mm.cxlPoolLatencyNs << " ns (retimer)\n"
       << "Toleo link       CXL2.0 IDE PCIe5 x2 "
       << mm.toleoLinkBandwidthGBps << " GB/s, +"
       << mm.toleoLinkLatencyNs << " ns; HMC2 "
       << mm.toleoDramLatencyNs << " ns"
       << (mm.ideSkidMode ? " (skid mode)" : "") << "\n"
       << "AES engine       " << cfg.ci.crypto.aesLatency
       << " cycles latency, 1/cycle throughput\n"
       << "MAC cache        " << cfg.ci.macCacheBytes / KiB << " KB, "
       << cfg.ci.macCacheAssoc << "-way, LRU\n"
       << "L2 TLB ext.      " << cfg.toleo.stealth.tlbEntries
       << " entries, fully assoc, +" << cfg.toleo.stealth.tlbExtBytes
       << " B/entry\n"
       << "Stealth buf.     " << cfg.toleo.stealth.overflowBytes / KiB
       << " KB, " << cfg.toleo.stealth.overflowAssoc << "-way, "
       << cfg.toleo.stealth.overflowBlockBytes << " B blocks\n"
       << "Toleo device     "
       << cfg.device.capacityBytes / 1000000000 << " GB capacity, "
       << "protects " << cfg.device.protectedBytes / 1000000000000.0
       << " TB\n";
}

} // namespace toleo
