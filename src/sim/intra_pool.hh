/**
 * @file
 * Persistent intra-System worker pool.
 *
 * The private phase of System::stepRounds runs every core's
 * generator draws and L1/L2 accesses over structures that are
 * disjoint per core, so the per-core bodies can run on worker
 * threads without any observable reordering: the shared phase (L3,
 * topology, protection engine) still replays the exact global order
 * single-threaded afterwards.  This pool is the sanctioned home for
 * those threads (tools/toleo_lint bans raw std::thread elsewhere --
 * new parallelism must go through a pool that preserves the
 * deterministic-replay structure).
 *
 * Design constraints, in order:
 *  - determinism: work assignment is a pure function of (index,
 *    thread count); nothing about scheduling can leak into results
 *    because the per-index bodies share no mutable state;
 *  - cheap dispatch: one batch of the private phase is only a few
 *    thousand references, so a dispatch is one mutex round-trip and
 *    one condition-variable wake, with the threads kept alive across
 *    the whole run (no spawn/join per batch);
 *  - clean teardown under exceptions: a throwing body is captured
 *    and rethrown on the caller after the barrier, like the
 *    cross-cell pool in sim/sweep.cc.
 */

#ifndef TOLEO_SIM_INTRA_POOL_HH
#define TOLEO_SIM_INTRA_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace toleo {

class IntraPool
{
  public:
    /**
     * @param threads Total concurrency including the calling thread:
     * the pool spawns threads - 1 workers.  Must be >= 1; 1 spawns
     * nothing and run() degenerates to a plain loop.
     */
    explicit IntraPool(unsigned threads);
    ~IntraPool();

    IntraPool(const IntraPool &) = delete;
    IntraPool &operator=(const IntraPool &) = delete;

    /** Total concurrency (workers + the calling thread). */
    unsigned threads() const { return workers_ + 1; }

    /**
     * Run fn(i) for every i in [0, n), striped statically across the
     * pool (slot s handles i = s, s + T, ...; the caller is slot 0).
     * Blocks until every index has completed; the first exception
     * thrown by any body is rethrown here after the barrier.  The
     * bodies must touch disjoint state per index -- the pool adds no
     * locking around them.
     */
    void run(unsigned n, const std::function<void(unsigned)> &fn);

  private:
    void workerLoop(unsigned slot);
    /** Execute slot @p slot's stripe of the current task. */
    void runSlice(unsigned slot, const std::function<void(unsigned)> &fn,
                  unsigned n);

    unsigned workers_; ///< spawned threads (total - 1)
    std::vector<std::thread> pool_;

    std::mutex mutex_;
    std::condition_variable start_;
    std::condition_variable done_;
    /** Dispatch ticket: bumped once per run(); workers latch it. */
    std::uint64_t epoch_ = 0;
    /** Workers still inside the current task. */
    unsigned pending_ = 0;
    bool stop_ = false;
    unsigned taskN_ = 0;
    const std::function<void(unsigned)> *task_ = nullptr;
    std::exception_ptr firstError_;
};

} // namespace toleo

#endif // TOLEO_SIM_INTRA_POOL_HH
