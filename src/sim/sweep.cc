#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "workload/trace_file.hh"

namespace toleo {

SimStats
runSweepCell(const SweepCell &cell, const SweepOptions &opts)
{
    SystemConfig cfg =
        makeScaledConfig(cell.workload, cell.engine, opts.cores);
    cfg.seed = opts.seed;
    cfg.trace = opts.trace;
    cfg.tracePath = opts.tracePath;
    cfg.recordTracePath = opts.recordTracePath;
    System sys(cfg);
    return sys.run(opts.warmupRefs, opts.measureRefs);
}

std::vector<SweepCell>
makeSweepGrid(const std::vector<std::string> &workloads,
              const std::vector<EngineKind> &engines)
{
    std::vector<SweepCell> cells;
    cells.reserve(workloads.size() * engines.size());
    for (const auto &w : workloads)
        for (const auto e : engines)
            cells.push_back({w, e});
    return cells;
}

std::vector<SimStats>
runSweep(const std::vector<SweepCell> &cells,
         const SweepOptions &opts, const SweepProgressFn &progress,
         std::vector<double> *cellSeconds, const SweepCellFn &cellFn)
{
    // Recording writes one trace file per run(), so a multi-cell
    // grid would have every cell truncate and rewrite the same path
    // (concurrently under jobs>1).  Enforce the invariant here, not
    // just in the toleo_sim CLI, so library callers hit a clean
    // error instead of a corrupt capture.
    if (!opts.recordTracePath.empty() && cells.size() > 1)
        throw TraceError(
            "recordTracePath captures a single cell; got " +
            std::to_string(cells.size()) + " cells");

    // Honor the load-once contract (see SweepOptions::trace) for
    // every caller, not just the toleo_sim CLI: open and validate a
    // path-specified trace here so cells share one read-only
    // instance instead of re-decoding the file per cell.
    SweepOptions shared;
    const SweepOptions *optsp = &opts;
    if (!opts.tracePath.empty() && !opts.trace) {
        shared = opts;
        shared.trace = TraceFile::open(opts.tracePath);
        optsp = &shared;
    }
    const SweepOptions &effOpts = *optsp;

    std::vector<SimStats> results(cells.size());
    if (cellSeconds)
        cellSeconds->assign(cells.size(), 0.0);
    if (cells.empty())
        return results;

    const unsigned jobs = std::max(
        1u, std::min<unsigned>(opts.jobs, cells.size()));

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::mutex progressMutex;
    std::exception_ptr firstError;

    // An exception anywhere inside a cell must not escape a worker
    // thread (that would std::terminate the whole sweep with no
    // diagnostics).  Capture the first one, stop handing out new
    // cells, and rethrow once every worker has joined.
    auto worker = [&] {
        for (;;) {
            if (failed.load(std::memory_order_relaxed))
                return;
            const std::size_t i = next.fetch_add(1);
            if (i >= cells.size())
                return;
            try {
                const auto t0 = std::chrono::steady_clock::now();
                results[i] = cellFn ? cellFn(cells[i], effOpts)
                                    : runSweepCell(cells[i], effOpts);
                if (cellSeconds) {
                    (*cellSeconds)[i] =
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
                }
            } catch (...) {
                std::lock_guard<std::mutex> lock(progressMutex);
                if (!firstError)
                    firstError = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
            const std::size_t d = done.fetch_add(1) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progressMutex);
                progress(results[i], d, cells.size());
            }
        }
    };

    if (jobs == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned j = 0; j < jobs; ++j)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

bool
parseEngineKind(const std::string &name, EngineKind &out)
{
    for (const EngineKind kind : allEngineKinds()) {
        if (name == engineKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

const std::vector<EngineKind> &
allEngineKinds()
{
    static const std::vector<EngineKind> kinds = {
        EngineKind::NoProtect, EngineKind::C,         EngineKind::CI,
        EngineKind::Toleo,     EngineKind::InvisiMem, EngineKind::Merkle,
    };
    return kinds;
}

namespace {

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        if (end > start)
            parts.push_back(csv.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return parts;
}

} // namespace

std::vector<EngineKind>
parseEngineList(const std::string &csv)
{
    if (csv == "all")
        return allEngineKinds();
    std::vector<EngineKind> engines;
    for (const auto &name : splitCsv(csv)) {
        EngineKind kind;
        if (!parseEngineKind(name, kind))
            fatal("unknown engine '%s' (expected one of NoProtect, "
                  "C, CI, Toleo, InvisiMem, Merkle)",
                  name.c_str());
        engines.push_back(kind);
    }
    if (engines.empty())
        fatal("empty engine list");
    return engines;
}

std::vector<std::string>
parseWorkloadList(const std::string &csv)
{
    if (csv == "all")
        return paperWorkloads();
    std::vector<std::string> workloads = splitCsv(csv);
    if (workloads.empty())
        fatal("empty workload list");
    for (const auto &name : workloads)
        workloadInfo(name); // fatal() on unknown name
    return workloads;
}

} // namespace toleo
