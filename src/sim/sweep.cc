#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/logging.hh"
#include "workload/trace_file.hh"

namespace toleo {

SimStats
runSweepCell(const SweepCell &cell, const SweepOptions &opts,
             PhaseTimes *phases)
{
    SystemConfig cfg =
        makeScaledConfig(cell.workload, cell.engine, opts.cores);
    cfg.seed = opts.seed;
    cfg.trace = opts.trace;
    cfg.tracePath = opts.tracePath;
    cfg.recordTracePath = opts.recordTracePath;
    cfg.intraThreads = opts.intraThreads;
    cfg.arrival = opts.arrival;
    cfg.phaseTimers = phases != nullptr;
    System sys(cfg);
    SimStats stats = sys.run(opts.warmupRefs, opts.measureRefs);
    if (phases)
        *phases = sys.phaseTimes();
    return stats;
}

std::vector<SweepCell>
makeSweepGrid(const std::vector<std::string> &workloads,
              const std::vector<EngineKind> &engines)
{
    std::vector<SweepCell> cells;
    cells.reserve(workloads.size() * engines.size());
    for (const auto &w : workloads)
        for (const auto e : engines)
            cells.push_back({w, e});
    return cells;
}

namespace {

/**
 * Worker-pool core shared by runSweep and runRackSweep: run
 * work(i) for i in [0, n) on up to @p jobsOpt threads.  An exception
 * anywhere inside a cell must not escape a worker thread (that would
 * std::terminate the whole sweep with no diagnostics): the first one
 * is captured, no new cells are handed out, and it is rethrown once
 * every worker has joined.  onDone(i, completed) runs under a lock
 * after each successful cell, so progress callbacks need not be
 * thread-safe.
 */
template <typename Work, typename Done>
void
runCellPool(std::size_t n, unsigned jobsOpt, const Work &work,
            const Done &onDone)
{
    if (n == 0)
        return;
    const unsigned jobs =
        std::max(1u, std::min<unsigned>(jobsOpt, n));

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::mutex progressMutex;
    std::exception_ptr firstError;

    auto worker = [&] {
        for (;;) {
            if (failed.load(std::memory_order_relaxed))
                return;
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                work(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(progressMutex);
                if (!firstError)
                    firstError = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
            const std::size_t d = done.fetch_add(1) + 1;
            {
                std::lock_guard<std::mutex> lock(progressMutex);
                onDone(i, d);
            }
        }
    };

    if (jobs == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned j = 0; j < jobs; ++j)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    if (firstError)
        std::rethrow_exception(firstError);
}

/**
 * Honor the load-once contract (see SweepOptions::trace) for every
 * caller, not just the toleo_sim CLI: open and validate a
 * path-specified trace once so cells share one read-only instance
 * instead of re-decoding the file per cell.  Returns the effective
 * options, using @p shared as backing storage when a copy is needed.
 */
const SweepOptions &
withPreloadedTrace(const SweepOptions &opts, SweepOptions &shared)
{
    if (opts.tracePath.empty() || opts.trace)
        return opts;
    shared = opts;
    shared.trace = TraceFile::open(opts.tracePath);
    return shared;
}

} // namespace

std::vector<SimStats>
runSweep(const std::vector<SweepCell> &cells,
         const SweepOptions &opts, const SweepProgressFn &progress,
         std::vector<double> *cellSeconds, const SweepCellFn &cellFn,
         std::vector<PhaseTimes> *cellPhases)
{
    // Recording writes one trace file per run(), so a multi-cell
    // grid would have every cell truncate and rewrite the same path
    // (concurrently under jobs>1).  Enforce the invariant here, not
    // just in the toleo_sim CLI, so library callers hit a clean
    // error instead of a corrupt capture.
    if (!opts.recordTracePath.empty() && cells.size() > 1)
        throw TraceError(
            "recordTracePath captures a single cell; got " +
            std::to_string(cells.size()) + " cells");

    SweepOptions shared;
    const SweepOptions &effOpts = withPreloadedTrace(opts, shared);

    std::vector<SimStats> results(cells.size());
    if (cellSeconds)
        cellSeconds->assign(cells.size(), 0.0);
    if (cellPhases)
        cellPhases->assign(cells.size(), PhaseTimes{});

    runCellPool(
        cells.size(), opts.jobs,
        [&](std::size_t i) {
            // Cell wall-clock is perf telemetry (--bench), never an
            // input to the simulation itself.
            // toleo-lint: allow(nondeterminism)
            const auto t0 = std::chrono::steady_clock::now();
            results[i] =
                cellFn ? cellFn(cells[i], effOpts)
                       : runSweepCell(cells[i], effOpts,
                                      cellPhases ? &(*cellPhases)[i]
                                                 : nullptr);
            if (cellSeconds) {
                (*cellSeconds)[i] =
                    std::chrono::duration<double>(
                        // toleo-lint: allow(nondeterminism)
                        std::chrono::steady_clock::now() - t0)
                        .count();
            }
        },
        [&](std::size_t i, std::size_t d) {
            if (progress)
                progress(results[i], d, cells.size());
        });
    return results;
}

RackStats
runRackSweepCell(const SweepCell &cell, const SweepOptions &opts)
{
    SystemConfig base =
        makeScaledConfig(cell.workload, cell.engine, opts.cores);
    base.seed = opts.seed;
    base.trace = opts.trace;
    base.tracePath = opts.tracePath;
    // makeRackConfig clones the base config per node, so every
    // node's private phase gets the same intra-cell pool size; the
    // nodes' shared-device work still replays serially in node order
    // even when rackThreads overlaps their private halves
    // (determinism).
    base.intraThreads = opts.intraThreads;
    base.arrival = opts.arrival;
    RackConfig rc = makeRackConfig(opts.rackNodes, base);
    rc.deviceServiceGBps = opts.rackServiceGBps;
    rc.rackThreads = opts.rackThreads;
    rc.warmupRefs = opts.warmupRefs;
    rc.measureRefs = opts.measureRefs;
    return runRack(rc);
}

std::vector<RackStats>
runRackSweep(const std::vector<SweepCell> &cells,
             const SweepOptions &opts,
             const RackSweepProgressFn &progress,
             std::vector<double> *cellSeconds)
{
    if (opts.rackNodes == 0)
        throw std::invalid_argument(
            "runRackSweep: rackNodes must be positive");
    // Rack cells run N Systems; recording would have every node
    // truncate and rewrite one capture path.
    if (!opts.recordTracePath.empty())
        throw TraceError(
            "recordTracePath is not supported in rack mode");

    SweepOptions shared;
    const SweepOptions &effOpts = withPreloadedTrace(opts, shared);

    std::vector<RackStats> results(cells.size());
    if (cellSeconds)
        cellSeconds->assign(cells.size(), 0.0);

    runCellPool(
        cells.size(), opts.jobs,
        [&](std::size_t i) {
            // Perf telemetry only, as in runSweep above.
            // toleo-lint: allow(nondeterminism)
            const auto t0 = std::chrono::steady_clock::now();
            results[i] = runRackSweepCell(cells[i], effOpts);
            if (cellSeconds) {
                (*cellSeconds)[i] =
                    std::chrono::duration<double>(
                        // toleo-lint: allow(nondeterminism)
                        std::chrono::steady_clock::now() - t0)
                        .count();
            }
        },
        [&](std::size_t i, std::size_t d) {
            if (progress)
                progress(results[i], d, cells.size());
        });
    return results;
}

bool
parseEngineKind(const std::string &name, EngineKind &out)
{
    for (const EngineKind kind : allEngineKinds()) {
        if (name == engineKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

const std::vector<EngineKind> &
allEngineKinds()
{
    static const std::vector<EngineKind> kinds = {
        EngineKind::NoProtect, EngineKind::C,         EngineKind::CI,
        EngineKind::Toleo,     EngineKind::InvisiMem, EngineKind::Merkle,
    };
    return kinds;
}

namespace {

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        if (end > start)
            parts.push_back(csv.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return parts;
}

} // namespace

std::vector<EngineKind>
parseEngineList(const std::string &csv)
{
    if (csv == "all")
        return allEngineKinds();
    std::vector<EngineKind> engines;
    for (const auto &name : splitCsv(csv)) {
        EngineKind kind;
        if (!parseEngineKind(name, kind))
            fatal("unknown engine '%s' (expected one of NoProtect, "
                  "C, CI, Toleo, InvisiMem, Merkle)",
                  name.c_str());
        engines.push_back(kind);
    }
    if (engines.empty())
        fatal("empty engine list");
    return engines;
}

std::vector<std::string>
parseWorkloadList(const std::string &csv)
{
    if (csv == "all")
        return paperWorkloads();
    std::vector<std::string> workloads = splitCsv(csv);
    if (workloads.empty())
        fatal("empty workload list");
    for (const auto &name : workloads)
        workloadInfo(name); // fatal() on unknown name
    return workloads;
}

} // namespace toleo
