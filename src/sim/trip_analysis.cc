#include "sim/trip_analysis.hh"

#include <memory>
#include <sstream>
#include <unordered_set>

#include "cache/set_assoc.hh"
#include "workload/workload.hh"

namespace toleo {

double
TripAnalysisResult::flatFraction() const
{
    return footprintPages
               ? static_cast<double>(flatPages) / footprintPages
               : 1.0;
}

double
TripAnalysisResult::unevenFraction() const
{
    return footprintPages
               ? static_cast<double>(unevenPages) / footprintPages
               : 0.0;
}

double
TripAnalysisResult::fullFraction() const
{
    return footprintPages
               ? static_cast<double>(fullPages) / footprintPages
               : 0.0;
}

TripAnalysisResult
runTripAnalysis(const TripAnalysisConfig &cfg)
{
    TripStore store(cfg.trip);
    auto cache = SetAssocCache::fromCapacity(cfg.cacheBytes, blockSize,
                                             cfg.cacheAssoc);
    std::vector<std::unique_ptr<TraceGen>> gens;
    for (unsigned c = 0; c < cfg.cores; ++c)
        gens.push_back(makeWorkload(cfg.workload, c, cfg.seed));

    std::unordered_set<PageNum> footprint;

    TripAnalysisResult res;
    res.workload = cfg.workload;

    const std::uint64_t total_refs = cfg.refsPerCore * cfg.cores;
    const std::uint64_t sample_every =
        std::max<std::uint64_t>(1, total_refs / cfg.timelinePoints);
    std::uint64_t refs = 0;

    for (std::uint64_t r = 0; r < cfg.refsPerCore; ++r) {
        for (unsigned c = 0; c < cfg.cores; ++c) {
            const MemRef ref = gens[c]->next();
            footprint.insert(pageOf(ref.addr));
            auto cr = cache.access(blockOf(ref.addr), ref.isWrite);
            if (cr.writebackTag)
                store.update(*cr.writebackTag);
            if ((++refs % sample_every) == 0) {
                res.timeline.emplace_back(
                    refs, footprint.size() * flatEntryBytes +
                              store.dynamicBytes());
            }
        }
    }

    const auto b = store.breakdown();
    // Flat entries are statically allocated for the OS-reported RSS
    // (Section 7.2), which includes resident-but-cold pages the
    // window never touches (allocator arenas, cold KV values).
    const std::uint64_t declared_pages =
        workloadInfo(cfg.workload).simFootprintBytes / pageSize *
        cfg.cores;
    res.footprintPages =
        std::max<std::uint64_t>(footprint.size(), declared_pages);
    res.unevenPages = b.uneven;
    res.fullPages = b.full;
    res.flatPages = res.footprintPages >= b.uneven + b.full
                        ? res.footprintPages - b.uneven - b.full
                        : 0;
    res.updates = store.updates();
    res.resets = store.resets();

    if (res.footprintPages > 0) {
        const double fp = static_cast<double>(res.footprintPages);
        res.avgEntryBytesPerPage =
            (fp * flatEntryBytes + b.uneven * unevenEntryBytes +
             b.full * fullEntryBytes) /
            fp;
        const double pages_per_tb = 1e12 / pageSize;
        res.flatGbPerTb = pages_per_tb * flatEntryBytes / 1e9;
        res.unevenGbPerTb = pages_per_tb * (b.uneven / fp) *
                            unevenEntryBytes / 1e9;
        res.fullGbPerTb = pages_per_tb * (b.full / fp) *
                          fullEntryAllocBytes / 1e9;
    } else {
        res.avgEntryBytesPerPage = flatEntryBytes;
    }
    return res;
}

std::string
TripProfileCache::keyOf(const TripAnalysisConfig &cfg)
{
    // Every field that feeds the analysis; a new config knob must be
    // added here or equal-key configs could alias (the unit test
    // exercises each existing field).
    std::ostringstream key;
    key << cfg.workload << '|' << cfg.cores << '|' << cfg.seed << '|'
        << cfg.cacheBytes << '|' << cfg.cacheAssoc << '|'
        << cfg.refsPerCore << '|' << cfg.timelinePoints << '|'
        << cfg.trip.stealthBits << '|' << cfg.trip.uvBits << '|'
        << cfg.trip.resetLog2 << '|' << cfg.trip.offsetBits << '|'
        << cfg.trip.seed;
    return key.str();
}

const TripAnalysisResult &
TripProfileCache::get(const TripAnalysisConfig &cfg)
{
    const std::string key = keyOf(cfg);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
        ++hits_;
        return it->second;
    }
    ++misses_;
    return cache_.emplace(key, runTripAnalysis(cfg)).first->second;
}

} // namespace toleo
