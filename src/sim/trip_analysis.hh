/**
 * @file
 * Cache-only long-run Trip analysis (Section 7.2).
 *
 * The paper's Trip-format statistics come from long simulations "with
 * Sniper in cache-only mode": no timing, just the reference stream
 * filtered through a cache (which coalesces repeated writes) into the
 * version store.  This runner reproduces that methodology: millions
 * of references per core stream through a write-back filter cache;
 * dirty evictions drive TripStore updates; the touched footprint
 * models the RSS.  It is ~50x faster per reference than the timing
 * simulation, which is what lets format drift (uneven/full upgrades)
 * reach steady state the way the paper's 32-billion-instruction runs
 * do.
 */

#ifndef TOLEO_SIM_TRIP_ANALYSIS_HH
#define TOLEO_SIM_TRIP_ANALYSIS_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "toleo/trip.hh"

namespace toleo {

struct TripAnalysisConfig
{
    std::string workload = "bsw";
    unsigned cores = 8;
    std::uint64_t seed = 42;
    /** Write-coalescing filter capacity (models the cache system). */
    std::uint64_t cacheBytes = 512 * KiB;
    unsigned cacheAssoc = 16;
    std::uint64_t refsPerCore = 2'000'000;
    unsigned timelinePoints = 64;
    TripConfig trip;
};

struct TripAnalysisResult
{
    std::string workload;
    std::uint64_t footprintPages = 0;
    std::uint64_t flatPages = 0;
    std::uint64_t unevenPages = 0;
    std::uint64_t fullPages = 0;
    std::uint64_t updates = 0;
    std::uint64_t resets = 0;

    double flatFraction() const;
    double unevenFraction() const;
    double fullFraction() const;

    /** Trusted bytes per touched page (Table 4 average). */
    double avgEntryBytesPerPage = 0.0;

    /** GB of Toleo per TB protected, split by kind (Figure 11). */
    double flatGbPerTb = 0.0;
    double unevenGbPerTb = 0.0;
    double fullGbPerTb = 0.0;
    double totalGbPerTb() const
    {
        return flatGbPerTb + unevenGbPerTb + fullGbPerTb;
    }

    /** (references, usage bytes) over time (Figure 12). */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> timeline;
};

/** Run the cache-only analysis for one workload. */
TripAnalysisResult runTripAnalysis(const TripAnalysisConfig &cfg);

/**
 * Memoizing front end for runTripAnalysis.
 *
 * Capacity planners (examples/rack_scale) profile tenant lists in
 * which workloads repeat; the analysis costs millions of simulated
 * references per workload and is a pure function of its config, so
 * duplicate tenants should pay for it exactly once.  Entries are
 * keyed on every TripAnalysisConfig field that can change the
 * result, and returned by reference (stable until the cache dies).
 */
class TripProfileCache
{
  public:
    /** Profile @p cfg, running the analysis only on first sight. */
    const TripAnalysisResult &get(const TripAnalysisConfig &cfg);

    std::size_t hits() const { return hits_; }
    std::size_t misses() const { return misses_; }

  private:
    static std::string keyOf(const TripAnalysisConfig &cfg);

    std::unordered_map<std::string, TripAnalysisResult> cache_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
};

} // namespace toleo

#endif // TOLEO_SIM_TRIP_ANALYSIS_HH
