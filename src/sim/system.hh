/**
 * @file
 * Top-level trace-driven system model (Section 7 / Table 3).
 *
 * Wires per-core workload generators through a three-level cache
 * hierarchy into the memory topology and the configured protection
 * engine.  Produces the statistics every table and figure of the
 * paper's evaluation is built from: execution time, LLC MPKI,
 * metadata cache hit rates, per-category memory traffic, read-latency
 * breakdown, Trip-format page classification, and Toleo space usage
 * over time.
 *
 * Timing model: cores retire instructions at a base IPC; each LLC
 * miss stalls its core for (memory latency + metadata latency) / MLP,
 * where the workload's MLP factor models overlapped misses.  Channel
 * queueing (driven by total traffic, including metadata and dummy
 * packets) feeds back into miss latency each epoch, which is what
 * makes bandwidth-bound workloads suffer more from metadata traffic
 * -- the first-order effect behind Figures 6, 8, and 9.
 */

#ifndef TOLEO_SIM_SYSTEM_HH
#define TOLEO_SIM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/json.hh"
#include "common/stats.hh"
#include "mem/topology.hh"
#include "secmem/ci.hh"
#include "secmem/engine.hh"
#include "secmem/invisimem.hh"
#include "secmem/merkle.hh"
#include "toleo/device.hh"
#include "toleo/engine.hh"
#include "workload/request.hh"
#include "workload/workload.hh"

namespace toleo {

class IntraPool;
class TraceFile;
class TraceWriter;

/** The protection configurations evaluated in Section 7. */
enum class EngineKind
{
    NoProtect,  ///< baseline, no protection
    C,          ///< AES-XTS confidentiality only
    CI,         ///< + MAC integrity (scalable-SGX TME + integrity)
    Toleo,      ///< + CXL/PIM freshness (this paper)
    InvisiMem,  ///< all-smart-memory CIF + side-channel defense
    Merkle,     ///< client-SGX-style counter tree (ablation)
};

const char *engineKindName(EngineKind kind);

struct SystemConfig
{
    std::string workload = "bsw";
    EngineKind engine = EngineKind::Toleo;
    unsigned numCores = 32;
    double clockGhz = 2.25;
    /** Base retire rate with a perfect memory system (the paper's
     *  data-intensive workloads run near CPI 1 on the 6-wide core). */
    double baseIpc = 1.25;
    CacheHierarchyConfig caches;
    MemTopologyConfig mem;
    CiConfig ci;
    ToleoEngineConfig toleo;
    ToleoDeviceConfig device;
    InvisiMemConfig invisimem;
    MerkleConfig merkle;
    std::uint64_t seed = 42;
    /**
     * Borrowed Toleo device shared with other Systems (rack mode,
     * see sim/rack.hh); when null a Toleo-engine System owns a
     * private device built from @ref device.  The rack driver is
     * responsible for selecting the device's active initiator before
     * stepping this node.
     */
    ToleoDevice *sharedDevice = nullptr;
    /** Global references per traffic epoch. */
    std::uint64_t epochRefs = 16384;
    /** Timeline samples to keep (Figure 12). */
    unsigned timelinePoints = 64;
    /**
     * Replay per-core reference streams from this trace file (see
     * workload/trace_file.hh) instead of synthesizing them; the
     * workload name still selects the Table-2 metadata (footprint,
     * MLP) the timing model uses.
     */
    std::string tracePath;
    /**
     * Already-loaded trace to replay; takes precedence over
     * tracePath so sweep drivers can validate/decode once and share
     * the read-only instance across cells.
     */
    std::shared_ptr<const TraceFile> trace;
    /** Record every core's generated stream to this trace file. */
    std::string recordTracePath;
    /**
     * Worker threads for the core-private phase of stepRounds (the
     * calling thread counts, so 1 = today's single-threaded run).
     * Any value produces bit-identical statistics: the per-core
     * private bodies touch disjoint state, and the shared phase
     * replays the exact global order single-threaded either way.
     * Clamped to numCores; composes with cross-cell sweep jobs (the
     * drivers budget jobs x intraThreads against the host).
     */
    unsigned intraThreads = 1;
    /**
     * Accumulate the per-phase wall-time breakdown (phaseTimes()).
     * Off by default: the clock calls are pure measurement overhead,
     * and the numbers are a bench-only side channel -- they are
     * deliberately NOT part of SimStats/statsToJson, whose fixed-seed
     * output is byte-pinned by goldens.
     */
    bool phaseTimers = false;
    /**
     * Request arrival model (workload/request.hh).  The default
     * (closed) is the historical closed-loop replay with no serving
     * layer at all; open-loop models (poisson/burst) wrap every
     * generator in a RequestSource and report per-request latency and
     * SLO statistics in SimStats::serving.  The arrival overlay never
     * feeds back into simulated state, so all non-serving statistics
     * are bit-identical to the closed run of the same config.
     */
    ArrivalConfig arrival;
};

/**
 * Wall-time breakdown of a run by phase, in nanoseconds of host time.
 * Collected only when SystemConfig::phaseTimers is set, and reported
 * only through the --bench JSON -- never through statsToJson, so the
 * determinism goldens stay byte-identical.
 */
struct PhaseTimes
{
    double privateNs = 0.0; ///< generator draws + L1/L2 (threadable)
    double sharedNs = 0.0;  ///< L3 + topology + engine replay
    double epochNs = 0.0;   ///< epoch boundaries (padding, queueing)
};

/** Everything a bench needs to print one row of any paper table. */
struct SimStats
{
    std::string workload;
    std::string engine;

    std::uint64_t instructions = 0;
    std::uint64_t refs = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t llcWritebacks = 0;
    double execSeconds = 0.0;
    double ipc = 0.0;
    double llcMpki = 0.0;

    /** Average LLC-miss read latency and its parts, ns (Fig 9). */
    double avgReadLatencyNs = 0.0;
    double avgDramLatencyNs = 0.0;
    double avgMetaLatencyNs = 0.0;

    /** Bytes per instruction by category (Fig 8). */
    double dataBpi = 0.0;
    double macBpi = 0.0;
    double stealthBpi = 0.0;
    double dummyBpi = 0.0;

    double macCacheHitRate = 0.0;     ///< Fig 7
    double stealthCacheHitRate = 0.0; ///< Fig 7

    TripStore::Breakdown trip;            ///< Fig 10
    std::uint64_t toleoPeakUsageBytes = 0; ///< Fig 12 peak
    ToleoDevice::UsagePerTb usagePerTb;    ///< Fig 11
    double avgEntryBytesPerPage = 0.0;     ///< Table 4

    /** (instructions, usage bytes) samples over time (Fig 12). */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> usageTimeline;

    std::uint64_t toleoResets = 0;
    std::uint64_t toleoUpgrades = 0;

    /**
     * Open-loop serving statistics; `serving.arrival` is empty for
     * closed-loop runs and every serializer keys off that, so the
     * closed-mode JSON/CSV output stays byte-identical.
     */
    ServingStats serving;
};

/**
 * Dense two-level page bitmap tracking the set of pages ever touched
 * (the simulated RSS).  Replaces a std::unordered_set<PageNum> on the
 * per-reference hot path: membership insert is a directory index, a
 * bit test, and a branch-free count update -- no hashing, no node
 * allocation.  Leaves cover 32 K pages (128 MiB of address space)
 * and are allocated once on first touch, so the steady-state insert
 * is allocation-free.
 */
class PageFootprint
{
  public:
    void
    insert(PageNum page)
    {
        const std::uint64_t leaf = page >> leafBits;
        if (leaf >= dir_.size() || !dir_[leaf])
            addLeaf(leaf);
        std::uint64_t &word =
            dir_[leaf][(page & leafMask) >> wordBits];
        const std::uint64_t bit =
            std::uint64_t{1} << (page & (wordSize - 1));
        count_ += (word & bit) == 0;
        word |= bit;
    }

    /** Number of distinct pages inserted, O(1). */
    std::uint64_t size() const { return count_; }

  private:
    /** log2(pages per leaf): 32 K pages = 128 MiB of address space. */
    static constexpr unsigned leafBits = 15;
    static constexpr std::uint64_t leafMask =
        (std::uint64_t{1} << leafBits) - 1;
    static constexpr unsigned wordBits = 6;
    static constexpr unsigned wordSize = 64;
    static constexpr std::size_t wordsPerLeaf =
        (std::size_t{1} << leafBits) / wordSize;

    void
    addLeaf(std::uint64_t leaf)
    {
        if (leaf >= dir_.size())
            dir_.resize(leaf + 1);
        if (!dir_[leaf]) {
            // make_unique value-initializes: the leaf starts all-zero.
            dir_[leaf] =
                std::make_unique<std::uint64_t[]>(wordsPerLeaf);
        }
    }

    std::vector<std::unique_ptr<std::uint64_t[]>> dir_;
    std::uint64_t count_ = 0;
};

/**
 * Per-reference read-latency bookkeeping, kept as one plain struct
 * updated inline: the three averages (total / DRAM / metadata) are
 * always sampled together on an LLC miss, so a single counter and
 * three running sums replace three Accumulator calls.
 */
struct ReadLatencyStats
{
    std::uint64_t samples = 0;
    double totalNs = 0.0;
    double dramNs = 0.0;
    double metaNs = 0.0;

    void
    sample(double total, double dram, double meta)
    {
        ++samples;
        totalNs += total;
        dramNs += dram;
        metaNs += meta;
    }

    double meanTotal() const { return samples ? totalNs / samples : 0.0; }
    double meanDram() const { return samples ? dramNs / samples : 0.0; }
    double meanMeta() const { return samples ? metaNs / samples : 0.0; }

    void reset() { *this = ReadLatencyStats{}; }
};

class System
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System();

    /**
     * Run the workload.
     * @param warmup_refs Per-core references before stats reset.
     * @param measure_refs Per-core references measured.
     */
    SimStats run(std::uint64_t warmup_refs, std::uint64_t measure_refs);

    /**
     * Epoch-steppable run API: run() is exactly
     *
     *   beginRun(w, m); while (stepEpoch()) {} return finishRun();
     *
     * and a driver may interleave several Systems by calling their
     * stepEpoch()s round-robin (see sim/rack.hh, which arbitrates
     * the shared Toleo device at each epoch barrier).  The
     * decomposition performs the identical operation sequence to the
     * historical monolithic run(), so fixed-seed statsToJson output
     * is bit-identical either way (pinned by tests/test_rack.cc).
     */
    void beginRun(std::uint64_t warmup_refs,
                  std::uint64_t measure_refs);
    /**
     * Advance until the next traffic-epoch boundary has been closed
     * (or the measurement window is exhausted, which closes the
     * final boundary).  @return true while more work remains.
     */
    bool stepEpoch();
    /** Collect the report; call once after stepEpoch() returns false. */
    SimStats finishRun();

    /**
     * Rack-parallel split of stepEpoch().  stepEpochPrivate() runs
     * the core-private half of exactly one stepEpoch() call --
     * generator draws, L1/L2 accesses, footprint and serving-boundary
     * staging -- and stages the shared half (L3/topology/engine/
     * device events, the measurement reset, the epoch boundary, and
     * timeline samples) as an ordered log.  replayEpochShared() then
     * replays that log single-threaded, touching the shared device in
     * exactly the order the monolithic stepEpoch() would have.
     *
     *   stepEpochPrivate(); replayEpochShared();
     *
     * is bit-identical to stepEpoch() for any config, which is what
     * lets a rack driver run the private halves of all nodes
     * concurrently (one thread per node) and serialize only the
     * replays in strict node order (sim/rack.cc).  The private half
     * touches no state(shared) structure other than this node's own
     * footprint set (node-local; see the allow() grants), so the
     * phase-safety lint proves the decomposition statically.
     *
     * @return true while more work remains (same as stepEpoch()).
     * Each stepEpochPrivate() must be followed by exactly one
     * replayEpochShared() before any further stepping.
     */
    // toleo: phase(private)
    bool stepEpochPrivate();
    /** Replay the staged shared half of the last stepEpochPrivate(). */
    // toleo: phase(shared)
    void replayEpochShared();

    /**
     * External stall injection (rack mode): charge every core @p ns
     * of stall, modelling backpressure from a contended shared
     * device.  A non-positive @p ns is a strict no-op, so an
     * uncontended node's timing is bit-identical to a standalone
     * run.
     */
    void addRackStallNs(double ns);

    /** Toleo IDE-link bytes of the most recently closed epoch. */
    std::uint64_t lastEpochToleoBytes() const
    {
        return epochToleoBytes_;
    }
    /** Wall-clock length (ns) of the most recently closed epoch. */
    double lastEpochWallNs() const { return epochWallNs_; }
    /** Traffic epochs closed since beginRun(). */
    std::uint64_t epochsCompleted() const { return epochsCompleted_; }
    /** True once warmup finished and measurement began. */
    bool measuring() const { return runMeasuring_; }

    /** Phase breakdown so far; zeros unless cfg.phaseTimers. */
    PhaseTimes phaseTimes() const { return phases_; }

    const SystemConfig &config() const { return cfg_; }
    ProtectionEngine &engine() { return *engine_; }
    ToleoDevice *device() { return devp_; }

  private:
    // Phase-safety annotations (checked by toleo_lint's phase-safety
    // pass, tools/toleo_lint/phase_safety.hh): state(shared) members
    // may only be mutated by the single-threaded shared replay;
    // state(per-core) members are indexed/partitioned by core id and
    // safe for the concurrent private phase.  hierarchy_ carries its
    // discipline internally (CacheHierarchy splits l1_/l2_ from l3_).
    SystemConfig cfg_;
    // toleo: state(shared)
    MemTopology topo_;
    CacheHierarchy hierarchy_;
    std::unique_ptr<ToleoDevice> device_; ///< owned (single-node)
    // toleo: state(shared)
    ToleoDevice *devp_ = nullptr; ///< owned or cfg_.sharedDevice
    // toleo: state(shared)
    std::unique_ptr<ProtectionEngine> engine_;
    InvisiMemEngine *invisimem_ = nullptr; ///< borrowed, epoch hook
    ToleoEngine *toleoEngine_ = nullptr;   ///< borrowed, stats
    // toleo: state(per-core)
    std::vector<std::unique_ptr<TraceGen>> gens_;
    WorkloadInfo winfo_;

    /** Backing trace when cfg_.tracePath is set (shared, read-only). */
    std::shared_ptr<const TraceFile> trace_;
    /** Capture sink when cfg_.recordTracePath is set; flushed by run(). */
    std::unique_ptr<TraceWriter> traceWriter_;

    /** Per-core progress. */
    // toleo: state(per-core)
    std::vector<std::uint64_t> coreInsts_;
    /** Stall clocks are charged only by the shared replay (and rack
     *  backpressure), never by the private phase. */
    // toleo: state(shared)
    std::vector<double> coreStallNs_;

    /** Pages touched by any reference (the simulated RSS). */
    // toleo: state(shared)
    PageFootprint footprint_;
    // toleo: state(shared)
    std::uint64_t writebacks_ = 0;
    // toleo: state(shared)
    std::uint64_t metaBytes_ = 0;

    // toleo: state(shared)
    ReadLatencyStats readLat_;

    /** Per-core reference batches for stepRounds (generation phase
     *  and simulation phase run over this, not through per-ref
     *  virtual calls). */
    // toleo: state(per-core)
    std::vector<MemRef> refBuf_;

    /** One queued piece of shared work (L3/memory/engine). */
    struct SharedEvent
    {
        std::uint32_t round;
        PrivateAccessResult priv;
    };
    /** Per-core queues of shared events, in increasing round order;
     *  most references are served privately and queue nothing. */
    // toleo: state(per-core)
    std::vector<SharedEvent> evBuf_;
    // toleo: state(per-core)
    std::vector<std::uint32_t> evCount_;
    // toleo: state(per-core)
    std::vector<std::uint32_t> evPos_;

    /** Rounds of references buffered per core in one sub-batch. */
    static constexpr std::uint64_t batchRounds = 256;

    /**
     * Worker pool for the private phase; null when cfg_.intraThreads
     * (clamped to numCores) is 1, keeping the single-threaded path
     * free of any synchronization.
     */
    std::unique_ptr<IntraPool> intraPool_;
    /**
     * Per-core staging for footprint_ inserts: the one shared touch
     * in the private loop.  Each core appends its pages here (its own
     * vector, no sharing), and stepRounds merges them into footprint_
     * serially in core order -- set insertion is order-insensitive,
     * so the merged footprint is identical to the historical inline
     * inserts for any thread count.
     */
    // toleo: state(per-core)
    std::vector<std::vector<PageNum>> footprintStage_;

    /** Phase wall-time accumulators (cfg_.phaseTimers only). */
    PhaseTimes phases_;

    /** One request completion staged by privateCore for one batch. */
    struct RequestBoundary
    {
        std::uint32_t round; ///< batch-relative round index
        std::uint64_t insts; ///< absolute retired insts at completion
    };
    /**
     * Per-core open-loop serving state.  Service times come from the
     * closed-loop execution (core-time delta between request
     * boundaries); arrivals come from a dedicated seeded Rng; latency
     * follows the Lindley recursion start = max(arrival, prevDone).
     */
    struct ServingCore
    {
        Rng rng{0};              ///< arrival-process draws
        double lastMarkNs = 0.0; ///< core time at the last boundary
        double arrivalNs = 0.0;  ///< arrival time of the latest request
        double lastDoneNs = 0.0; ///< completion of the latest request
        bool primed = false;     ///< first post-reset boundary seen
        std::vector<RequestBoundary> boundaries; ///< staged this batch
        std::uint32_t pos = 0;   ///< finalize cursor into boundaries
    };

    /** Open-loop overlay active (cfg_.arrival.open()). */
    bool serving_ = false;
    double sloNs_ = 0.0;
    double perCoreRate_ = 0.0;
    // toleo: state(per-core)
    std::vector<RequestSource *> reqSrcs_; ///< borrowed views of gens_
    // toleo: state(per-core)
    std::vector<ServingCore> servCores_;
    // toleo: state(shared)
    LatencyHistogram servLatency_;
    // toleo: state(shared)
    double servLatSumNs_ = 0.0;
    // toleo: state(shared)
    double servQueueSumNs_ = 0.0;
    // toleo: state(shared)
    double servSvcSumNs_ = 0.0;
    // toleo: state(shared)
    std::uint64_t servRequests_ = 0;
    // toleo: state(shared)
    std::uint64_t servSloMet_ = 0;

    /** State of the in-flight epoch-steppable run (see beginRun). */
    std::uint64_t runWarmupRefs_ = 0;
    std::uint64_t runMeasureRefs_ = 0;
    std::uint64_t runGlobalRefs_ = 0;
    std::uint64_t runEpochMark_ = 0;
    double runLastEpochNs_ = 0.0;
    /** Rounds completed within the current phase (warmup/measure). */
    std::uint64_t runPhaseRefs_ = 0;
    std::uint64_t runSampleEvery_ = 1;
    bool runMeasuring_ = false;
    bool runActive_ = false;
    // toleo: state(shared)
    SimStats runStats_;

    /** Per-epoch observables for the rack arbiter. */
    // toleo: state(shared)
    std::uint64_t epochToleoBytes_ = 0;
    // toleo: state(shared)
    double epochWallNs_ = 0.0;
    // toleo: state(shared)
    std::uint64_t epochsCompleted_ = 0;

    /**
     * One stepEpoch() call, planned ahead of execution.  The epoch
     * control flow (chunk sizing, the warmup->measure transition,
     * epoch-boundary detection, timeline-sample scheduling) depends
     * only on the run-driver counters below -- never on simulated
     * state -- so planEpoch() advances those counters and emits the
     * ordered item list both execution paths consume: stepEpoch()
     * executes each item directly, and the staged path runs the
     * items' private halves (stepEpochPrivate) before replaying
     * their shared halves (replayEpochShared).
     */
    struct EpochPlanItem
    {
        enum class Kind : std::uint8_t
        {
            Run,      ///< stepRounds(rounds) / stageRounds(rounds)
            Reset,    ///< measurement reset (warmup -> measure)
            Boundary, ///< epochBoundary()
            Sample,   ///< record one usage-timeline point
        };
        Kind kind = Kind::Run;
        /** Run only: was the run measuring during this chunk?  The
         *  planner pre-advances runMeasuring_, so executors must use
         *  this snapshot, not the live flag. */
        bool measuring = false;
        /** Run only: rounds in the chunk. */
        std::uint64_t rounds = 0;
    };
    /** Plan the next epoch into plan_; @return stepEpoch()'s value. */
    bool planEpoch();
    std::vector<EpochPlanItem> plan_;
    /** A staged epoch is awaiting replayEpochShared(). */
    bool pendingReplay_ = false;

    /** One flattened shared-phase event of a staged epoch: the
     *  (round, core)-ordered stream replayEpochShared() feeds to
     *  stepShared, round-numbered globally across the epoch's
     *  batches. */
    struct StagedSharedEvent
    {
        std::uint64_t round;
        std::uint32_t core;
        Addr addr;
        PrivateAccessResult priv;
    };
    /** One staged request completion ((round, core)-ordered). */
    struct StagedRequestBoundary
    {
        std::uint64_t round;
        std::uint32_t core;
        std::uint64_t insts;
    };
    /** Stage-time half of one timeline sample; the device-side
     *  dynamicBytes() is read at replay time, when the shared store
     *  is in exactly the serial path's state. */
    struct StagedSample
    {
        std::uint64_t insts;
        std::uint64_t footprintPages;
    };
    std::vector<StagedSharedEvent> stagedEvents_;
    std::vector<StagedRequestBoundary> stagedBoundaries_;
    std::vector<StagedSample> stagedSamples_;
    /** Global round counter across one staged epoch's batches. */
    std::uint64_t stageRoundBase_ = 0;

    /** Shared-state part of one reference: L3, memory, engine. */
    // toleo: phase(shared)
    void stepShared(unsigned core, Addr addr,
                    const PrivateAccessResult &priv);
    /**
     * Run @p rounds rounds of one reference per core.  Each
     * sub-batch runs the core-private work (generator draws and
     * L1/L2) per core in a batch, then replays the shared work (L3,
     * memory system, protection engine) in the round-robin global
     * order of the original one-reference-at-a-time loop, so every
     * structure sees the exact operation sequence it always did.
     * The caller sizes @p rounds so no epoch boundary or timeline
     * sample falls inside a batch.  @p measuring is the planner's
     * snapshot of the measurement flag for this chunk.
     */
    void stepRounds(std::uint64_t rounds, bool measuring);
    /**
     * Private half of stepRounds for the staged path: the same
     * per-core private batches, but instead of replaying the shared
     * work it flattens the per-core event queues (and, when
     * measuring, the staged request boundaries) into the
     * (round, core)-ordered logs above.
     */
    // toleo: phase(private)
    void stageRounds(std::uint64_t rounds, bool measuring);
    /**
     * Core-private body of one stepRounds sub-batch for one core:
     * generator draw, L1/L2 accesses, shared-event queueing, and
     * footprint staging.  Touches only core-indexed state, so
     * stepRounds may run it for different cores concurrently.
     */
    // toleo: phase(private)
    void privateCore(unsigned core, std::uint64_t rounds);
    double coreTimeNs(unsigned core) const;
    double maxCoreTimeNs() const;
    /**
     * Complete every request boundary staged for round @p k: the
     * shared work of the round has been replayed, so the boundary
     * core's stall clock is final for that point in time.
     */
    // toleo: phase(shared)
    void finalizeServingRound(std::uint64_t k, bool measuring);
    /**
     * Lindley-recursion completion of one request on @p core.
     * @p measuring is the planner's snapshot: warmup boundaries are
     * ignored (the staged path never even stages them).
     */
    // toleo: phase(shared)
    void completeRequest(unsigned core, std::uint64_t instsAtDone,
                         bool measuring);
    /** Zero the serving accumulators and per-core overlay state. */
    void resetServing();
    void resetMeasurement();
    /** Measurement-reset split for the staged epoch path: the
     *  per-core half (L1/L2 counters, instruction clocks) applies at
     *  its position in the private pass, the shared half (L3,
     *  topology, engine, serving accumulators, stall clocks) at the
     *  matching position in the replay. */
    // toleo: phase(private)
    void resetMeasurementPrivate();
    // toleo: phase(shared)
    void resetMeasurementShared();
    /** Append one usage-timeline point (Fig 12); reads the shared
     *  store's dynamic bytes live, so the staged path calls it at
     *  replay position with stage-captured insts/footprint. */
    // toleo: phase(shared)
    void recordTimelineSample(std::uint64_t insts,
                              std::uint64_t footprintPages);
    /** Close the current traffic epoch (padding, bandwidth floor). */
    // toleo: phase(shared)
    void epochBoundary();
    /** Rounds until the next epoch boundary is due. */
    std::uint64_t roundsToEpoch() const;
};

/** Pretty-print the Table 3 configuration. */
void printConfig(const SystemConfig &cfg, std::ostream &os);

/**
 * Serialize the full SimStats record to JSON, including the Trip
 * breakdown, per-TB usage, and the usage timeline — the
 * machine-readable substrate for sweep drivers and perf tracking.
 */
Json statsToJson(const SimStats &stats);

/**
 * Serialize an open-loop serving record (rates, SLO attainment, the
 * percentile table, and a latency-distribution summary).  Emitted by
 * statsToJson / rackStatsToJson only when the record is non-empty.
 */
Json servingStatsToJson(const ServingStats &stats);

/** Column names of the flat (scalar-only) CSV stats record. */
std::string statsCsvHeader();

/** One CSV row matching statsCsvHeader(); no trailing newline. */
std::string statsCsvRow(const SimStats &stats);

/**
 * Build a scaled simulation node.
 *
 * The paper itself evaluates a 1/4-scale 32-core node (Table 3); we
 * scale once more so that the simulation window (10^5-10^6 references
 * per core) exercises cache evictions the way the paper's 10^8-
 * instruction windows exercise its full-size caches.  Caches,
 * channel bandwidth, and the Toleo link scale with the core count;
 * latencies, the stealth caches (the design under study), and all
 * protocol parameters stay at paper values.  All reported quantities
 * are intensive (rates and ratios), so the shapes are preserved.
 */
SystemConfig makeScaledConfig(const std::string &workload,
                              EngineKind kind, unsigned cores);

} // namespace toleo

#endif // TOLEO_SIM_SYSTEM_HH
