/**
 * @file
 * Top-level trace-driven system model (Section 7 / Table 3).
 *
 * Wires per-core workload generators through a three-level cache
 * hierarchy into the memory topology and the configured protection
 * engine.  Produces the statistics every table and figure of the
 * paper's evaluation is built from: execution time, LLC MPKI,
 * metadata cache hit rates, per-category memory traffic, read-latency
 * breakdown, Trip-format page classification, and Toleo space usage
 * over time.
 *
 * Timing model: cores retire instructions at a base IPC; each LLC
 * miss stalls its core for (memory latency + metadata latency) / MLP,
 * where the workload's MLP factor models overlapped misses.  Channel
 * queueing (driven by total traffic, including metadata and dummy
 * packets) feeds back into miss latency each epoch, which is what
 * makes bandwidth-bound workloads suffer more from metadata traffic
 * -- the first-order effect behind Figures 6, 8, and 9.
 */

#ifndef TOLEO_SIM_SYSTEM_HH
#define TOLEO_SIM_SYSTEM_HH

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/json.hh"
#include "common/stats.hh"
#include "mem/topology.hh"
#include "secmem/ci.hh"
#include "secmem/engine.hh"
#include "secmem/invisimem.hh"
#include "secmem/merkle.hh"
#include "toleo/device.hh"
#include "toleo/engine.hh"
#include "workload/workload.hh"

namespace toleo {

/** The protection configurations evaluated in Section 7. */
enum class EngineKind
{
    NoProtect,  ///< baseline, no protection
    C,          ///< AES-XTS confidentiality only
    CI,         ///< + MAC integrity (scalable-SGX TME + integrity)
    Toleo,      ///< + CXL/PIM freshness (this paper)
    InvisiMem,  ///< all-smart-memory CIF + side-channel defense
    Merkle,     ///< client-SGX-style counter tree (ablation)
};

const char *engineKindName(EngineKind kind);

struct SystemConfig
{
    std::string workload = "bsw";
    EngineKind engine = EngineKind::Toleo;
    unsigned numCores = 32;
    double clockGhz = 2.25;
    /** Base retire rate with a perfect memory system (the paper's
     *  data-intensive workloads run near CPI 1 on the 6-wide core). */
    double baseIpc = 1.25;
    CacheHierarchyConfig caches;
    MemTopologyConfig mem;
    CiConfig ci;
    ToleoEngineConfig toleo;
    ToleoDeviceConfig device;
    InvisiMemConfig invisimem;
    MerkleConfig merkle;
    std::uint64_t seed = 42;
    /** Global references per traffic epoch. */
    std::uint64_t epochRefs = 16384;
    /** Timeline samples to keep (Figure 12). */
    unsigned timelinePoints = 64;
};

/** Everything a bench needs to print one row of any paper table. */
struct SimStats
{
    std::string workload;
    std::string engine;

    std::uint64_t instructions = 0;
    std::uint64_t refs = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t llcWritebacks = 0;
    double execSeconds = 0.0;
    double ipc = 0.0;
    double llcMpki = 0.0;

    /** Average LLC-miss read latency and its parts, ns (Fig 9). */
    double avgReadLatencyNs = 0.0;
    double avgDramLatencyNs = 0.0;
    double avgMetaLatencyNs = 0.0;

    /** Bytes per instruction by category (Fig 8). */
    double dataBpi = 0.0;
    double macBpi = 0.0;
    double stealthBpi = 0.0;
    double dummyBpi = 0.0;

    double macCacheHitRate = 0.0;     ///< Fig 7
    double stealthCacheHitRate = 0.0; ///< Fig 7

    TripStore::Breakdown trip;            ///< Fig 10
    std::uint64_t toleoPeakUsageBytes = 0; ///< Fig 12 peak
    ToleoDevice::UsagePerTb usagePerTb;    ///< Fig 11
    double avgEntryBytesPerPage = 0.0;     ///< Table 4

    /** (instructions, usage bytes) samples over time (Fig 12). */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> usageTimeline;

    std::uint64_t toleoResets = 0;
    std::uint64_t toleoUpgrades = 0;
};

class System
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System();

    /**
     * Run the workload.
     * @param warmup_refs Per-core references before stats reset.
     * @param measure_refs Per-core references measured.
     */
    SimStats run(std::uint64_t warmup_refs, std::uint64_t measure_refs);

    const SystemConfig &config() const { return cfg_; }
    ProtectionEngine &engine() { return *engine_; }
    ToleoDevice *device() { return device_.get(); }

  private:
    SystemConfig cfg_;
    MemTopology topo_;
    CacheHierarchy hierarchy_;
    std::unique_ptr<ToleoDevice> device_;
    std::unique_ptr<ProtectionEngine> engine_;
    InvisiMemEngine *invisimem_ = nullptr; ///< borrowed, epoch hook
    ToleoEngine *toleoEngine_ = nullptr;   ///< borrowed, stats
    std::vector<std::unique_ptr<TraceGen>> gens_;
    WorkloadInfo winfo_;

    /** Per-core progress. */
    std::vector<std::uint64_t> coreInsts_;
    std::vector<double> coreStallNs_;

    /** Pages touched by any reference (the simulated RSS). */
    std::unordered_set<PageNum> footprint_;
    std::uint64_t writebacks_ = 0;
    std::uint64_t metaBytes_ = 0;

    Accumulator readLat_;
    Accumulator dramLat_;
    Accumulator metaLat_;

    void step(unsigned core, std::uint64_t &global_refs);
    double coreTimeNs(unsigned core) const;
    double maxCoreTimeNs() const;
    void resetMeasurement();
};

/** Pretty-print the Table 3 configuration. */
void printConfig(const SystemConfig &cfg, std::ostream &os);

/**
 * Serialize the full SimStats record to JSON, including the Trip
 * breakdown, per-TB usage, and the usage timeline — the
 * machine-readable substrate for sweep drivers and perf tracking.
 */
Json statsToJson(const SimStats &stats);

/** Column names of the flat (scalar-only) CSV stats record. */
std::string statsCsvHeader();

/** One CSV row matching statsCsvHeader(); no trailing newline. */
std::string statsCsvRow(const SimStats &stats);

/**
 * Build a scaled simulation node.
 *
 * The paper itself evaluates a 1/4-scale 32-core node (Table 3); we
 * scale once more so that the simulation window (10^5-10^6 references
 * per core) exercises cache evictions the way the paper's 10^8-
 * instruction windows exercise its full-size caches.  Caches,
 * channel bandwidth, and the Toleo link scale with the core count;
 * latencies, the stealth caches (the design under study), and all
 * protocol parameters stay at paper values.  All reported quantities
 * are intensive (rates and ratios), so the shapes are preserved.
 */
SystemConfig makeScaledConfig(const std::string &workload,
                              EngineKind kind, unsigned cores);

} // namespace toleo

#endif // TOLEO_SIM_SYSTEM_HH
