#include "sim/intra_pool.hh"

#include "common/logging.hh"

namespace toleo {

IntraPool::IntraPool(unsigned threads)
    : workers_(threads > 0 ? threads - 1 : 0)
{
    if (threads == 0)
        panic("IntraPool: thread count must be >= 1");
    pool_.reserve(workers_);
    for (unsigned s = 0; s < workers_; ++s)
        pool_.emplace_back([this, s] { workerLoop(s + 1); });
}

IntraPool::~IntraPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    start_.notify_all();
    for (auto &t : pool_)
        t.join();
}

void
IntraPool::runSlice(unsigned slot,
                    const std::function<void(unsigned)> &fn, unsigned n)
{
    const unsigned stride = workers_ + 1;
    try {
        for (unsigned i = slot; i < n; i += stride)
            fn(i);
    } catch (...) {
        // First error wins; the remaining indices of this stripe are
        // abandoned, the other stripes complete, and the caller
        // rethrows after the barrier.
        std::lock_guard<std::mutex> lock(mutex_);
        if (!firstError_)
            firstError_ = std::current_exception();
    }
}

void
IntraPool::workerLoop(unsigned slot)
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(unsigned)> *fn = nullptr;
        unsigned n = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_.wait(lock,
                        [&] { return stop_ || epoch_ != seen; });
            if (stop_)
                return;
            seen = epoch_;
            fn = task_;
            n = taskN_;
        }
        runSlice(slot, *fn, n);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --pending_;
        }
        done_.notify_one();
    }
}

void
IntraPool::run(unsigned n, const std::function<void(unsigned)> &fn)
{
    if (n == 0)
        return;
    if (workers_ == 0) {
        runSlice(0, fn, n);
    } else {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            task_ = &fn;
            taskN_ = n;
            pending_ = workers_;
            ++epoch_;
        }
        start_.notify_all();
        runSlice(0, fn, n);
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] { return pending_ == 0; });
        task_ = nullptr;
    }
    if (firstError_) {
        std::exception_ptr err;
        std::swap(err, firstError_);
        std::rethrow_exception(err);
    }
}

} // namespace toleo
