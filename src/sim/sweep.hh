/**
 * @file
 * Shared (workload x engine) sweep runner.
 *
 * Every paper figure/table binary and the toleo_sim CLI evaluate a
 * grid of cells, where each cell builds one self-contained
 * toleo::System and runs it for a warmup + measurement window.  Cells
 * share no mutable state, so the grid is embarrassingly parallel:
 * runSweep() fans cells out to a pool of worker threads and returns
 * results in deterministic row-major (workload-major) order
 * regardless of completion order.
 */

#ifndef TOLEO_SIM_SWEEP_HH
#define TOLEO_SIM_SWEEP_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/rack.hh"
#include "sim/system.hh"

namespace toleo {

/** One grid cell: a workload evaluated under one engine. */
struct SweepCell
{
    std::string workload;
    EngineKind engine = EngineKind::Toleo;
};

struct SweepOptions
{
    unsigned cores = 8;
    std::uint64_t warmupRefs = 30000;
    std::uint64_t measureRefs = 60000;
    std::uint64_t seed = 42;
    /** Worker threads; cells run serially when 1. */
    unsigned jobs = 1;
    /**
     * Private-phase threads *inside* each cell's System(s)
     * (SystemConfig::intraThreads).  Composes multiplicatively with
     * jobs: a sweep can run up to jobs x intraThreads threads at
     * once, so callers should budget the product against the host
     * (the toleo_sim CLI enforces this).  Statistics are
     * bit-identical for any value.
     */
    unsigned intraThreads = 1;
    /** Replay cells from this trace file instead of synthesizing. */
    std::string tracePath;
    /**
     * Already-loaded trace to replay; takes precedence over
     * tracePath.  Cells share the instance read-only, so a sweep
     * validates and decodes the file once, not once per cell.
     */
    std::shared_ptr<const TraceFile> trace;
    /** Record the (single) cell's generator streams to this file. */
    std::string recordTracePath;
    /**
     * Rack mode (runRackSweep): simulate each cell as this many
     * compute nodes sharing one Toleo device (node i seeds with
     * seed + i).  1 = the classic single-node cell.
     */
    unsigned rackNodes = 1;
    /** Shared-device service bandwidth, GB/s; 0 = auto (rack.hh). */
    double rackServiceGBps = 0.0;
    /**
     * Rack mode only: worker threads for the node-private epoch
     * halves inside each rack cell (RackConfig::rackThreads).  A
     * third multiplicative tier between jobs and intraThreads: a rack
     * sweep can run up to jobs x rackThreads x intraThreads threads
     * at once, and the CLI budgets that product against the host.
     * Statistics are bit-identical for any value.
     */
    unsigned rackThreads = 1;
    /**
     * Request arrival model (SystemConfig::arrival), applied to every
     * cell.  The default closed model reproduces the classic replay
     * byte-for-byte; open models add ServingStats on top.
     */
    ArrivalConfig arrival;
};

/**
 * Build and run the System for one cell.
 * @param phases If non-null, enables SystemConfig::phaseTimers and
 *        receives the cell's wall-time breakdown by phase.
 */
SimStats runSweepCell(const SweepCell &cell, const SweepOptions &opts,
                      PhaseTimes *phases = nullptr);

/**
 * Called as each cell finishes (from the worker that ran it, under a
 * lock, so implementations need not be thread-safe).
 */
using SweepProgressFn = std::function<void(
    const SimStats &stats, std::size_t done, std::size_t total)>;

/** Replacement cell runner (tests, instrumentation). */
using SweepCellFn =
    std::function<SimStats(const SweepCell &, const SweepOptions &)>;

/** Cross product in row-major order: workload-major, engine-minor. */
std::vector<SweepCell> makeSweepGrid(
    const std::vector<std::string> &workloads,
    const std::vector<EngineKind> &engines);

/**
 * Run every cell, using opts.jobs worker threads.
 *
 * A cell that throws does not tear down the process: the first
 * exception is captured, the remaining queued cells are abandoned,
 * in-flight cells finish, and the exception is rethrown on the
 * calling thread after the pool joins.
 *
 * @param cellSeconds If non-null, resized to cells.size() and filled
 *        with each cell's wall-clock seconds (perf tracking).
 * @param cellFn Cell runner override; defaults to runSweepCell.
 * @param cellPhases If non-null, resized to cells.size() and filled
 *        with each cell's per-phase wall-time breakdown (zeros when
 *        @p cellFn overrides the runner).
 * @return One SimStats per cell, in the order of @p cells.
 */
std::vector<SimStats> runSweep(const std::vector<SweepCell> &cells,
                               const SweepOptions &opts,
                               const SweepProgressFn &progress = {},
                               std::vector<double> *cellSeconds = nullptr,
                               const SweepCellFn &cellFn = {},
                               std::vector<PhaseTimes> *cellPhases = nullptr);

/** Build and run one cell as an opts.rackNodes-node rack. */
RackStats runRackSweepCell(const SweepCell &cell,
                           const SweepOptions &opts);

/** Per-cell completion callback of a rack sweep (locked, like
 *  SweepProgressFn). */
using RackSweepProgressFn = std::function<void(
    const RackStats &stats, std::size_t done, std::size_t total)>;

/**
 * Rack-mode grid runner: every cell becomes an opts.rackNodes-node
 * rack simulation (runRack).  Same worker-pool, ordering, and
 * error-surfacing contract as runSweep; cells share a preloaded
 * trace the same way.  Trace *recording* is rejected (every node
 * would clobber one capture path).
 */
std::vector<RackStats> runRackSweep(
    const std::vector<SweepCell> &cells, const SweepOptions &opts,
    const RackSweepProgressFn &progress = {},
    std::vector<double> *cellSeconds = nullptr);

/**
 * Parse an engine name as printed by engineKindName().
 * @return false if @p name is not a known engine.
 */
bool parseEngineKind(const std::string &name, EngineKind &out);

/** All six evaluated engine configurations, Table 1 order. */
const std::vector<EngineKind> &allEngineKinds();

/**
 * Parse a comma-separated engine list ("all" = every engine);
 * fatal() on an unknown name.
 */
std::vector<EngineKind> parseEngineList(const std::string &csv);

/**
 * Parse a comma-separated workload list ("all" = the 12 paper
 * workloads); fatal() on an unknown name.
 */
std::vector<std::string> parseWorkloadList(const std::string &csv);

} // namespace toleo

#endif // TOLEO_SIM_SWEEP_HH
