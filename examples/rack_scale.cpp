/**
 * @file
 * Domain example: one Toleo device serving a whole rack (Figure 1).
 *
 * Two questions an operator asks before deploying the paper's
 * headline configuration (one 168 GB device, four compute nodes,
 * 28 TB of pooled memory):
 *
 *  1. *Does the device fit?*  Capacity planning from each tenant
 *     workload's Trip-format profile (the Figure 10/11 math),
 *     memoized so duplicate tenants in the mix are profiled once.
 *
 *  2. *What does sharing cost?*  A real multi-node simulation
 *     (sim/rack.hh): four nodes step in deterministic round-robin
 *     epochs against a single shared device, whose version-store
 *     service bandwidth is arbitrated max-min fairly -- so the
 *     answer includes the device-side contention a summed
 *     single-node analysis cannot see: queueing, per-node stall
 *     time, and forced-downgrade pressure on the shared store.
 *
 *     ./build/examples/rack_scale
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/rack.hh"
#include "sim/trip_analysis.hh"

using namespace toleo;

namespace {

struct Tenant
{
    const char *workload;
    double memoryTb; ///< protected footprint in the rack
};

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Rack planning: 168 GB Toleo device, 4 nodes\n");
    std::printf("===========================================\n\n");

    // A plausible multi-tenant rack: genomics + LLM serving +
    // caches.  Workloads repeat across tenants (two Redis pools,
    // two bsw cohorts) -- the profile cache runs each analysis once.
    const std::vector<Tenant> tenants = {
        {"llama2-gen", 10.0}, {"bsw", 4.0},       {"redis", 3.0},
        {"bsw", 2.0},         {"memcached", 4.0}, {"redis", 1.0},
    };

    // --- 1. Capacity planning (Figure 10/11 methodology) ----------
    TripProfileCache profiles;
    TripAnalysisConfig prof_cfg;
    prof_cfg.refsPerCore = 1'000'000;

    const double capacity_gb = 168.0;
    double flat_gb = 0.0, dyn_gb = 0.0, total_tb = 0.0;

    std::printf("%-12s %8s %12s %12s\n", "tenant", "TB", "GB/TB",
                "GB needed");
    for (const auto &t : tenants) {
        prof_cfg.workload = t.workload;
        const TripAnalysisResult &r = profiles.get(prof_cfg);
        const double dyn_per_tb = r.unevenGbPerTb + r.fullGbPerTb;
        const double per_tb = r.flatGbPerTb + dyn_per_tb;
        std::printf("%-12s %8.1f %12.2f %12.2f\n", t.workload,
                    t.memoryTb, per_tb, per_tb * t.memoryTb);
        flat_gb += r.flatGbPerTb * t.memoryTb;
        dyn_gb += dyn_per_tb * t.memoryTb;
        total_tb += t.memoryTb;
    }
    std::printf("(%zu tenants, %zu distinct profiles simulated, "
                "%zu served from cache)\n",
                tenants.size(), profiles.misses(), profiles.hits());

    const double used = flat_gb + dyn_gb;
    std::printf("\nprotected memory: %.1f TB\n", total_tb);
    std::printf("device usage:     %.1f GB of %.0f GB "
                "(%.1f flat + %.1f dynamic)\n",
                used, capacity_gb, flat_gb, dyn_gb);
    std::printf("verdict:          %s\n",
                used <= capacity_gb ? "fits -- no forced downgrades"
                                    : "OVERSUBSCRIBED -- host OS must "
                                      "downgrade inactive pages");
    const double gb_per_tb = used / total_tb;
    std::printf("headroom:         one device could protect "
                "~%.0f TB of this mix\n", capacity_gb / gb_per_tb);
    std::printf("(paper: 4.27 GB/TB average; 168 GB protects up to "
                "~37 TB without downgrades)\n");

    // --- 2. Shared-device contention (the real simulation) --------
    std::printf("\nSimulating the shared device: 4 nodes, "
                "round-robin epochs, arbitrated version store\n");
    std::printf("--------------------------------------------"
                "-----------------------------------------\n");

    // The version-traffic-heavy slice of the tenant mix: these are
    // the nodes whose UPDATE streams actually fight for the device.
    RackConfig rc;
    const char *node_workloads[] = {"memcached", "redis", "bfs",
                                    "memcached"};
    for (unsigned i = 0; i < 4; ++i) {
        SystemConfig sc = makeScaledConfig(node_workloads[i],
                                           EngineKind::Toleo, 4);
        sc.seed = 42 + i;
        rc.nodes.push_back(sc);
    }
    rc.device = rc.nodes[0].device;
    // Provision the device's version-store pipeline at exactly one
    // node link's worth of bandwidth: enough that any node alone is
    // never throttled, so everything below is pure sharing cost.
    rc.serviceFactor = 1.0;
    rc.warmupRefs = 20000;
    rc.measureRefs = 40000;

    const RackStats rack = runRack(rc);

    std::printf("%-12s %10s %12s %12s %10s\n", "node", "ipc",
                "stall (us)", "backlog (B)", "dev reqs");
    for (std::size_t i = 0; i < rack.nodes.size(); ++i) {
        const RackNodeStats &node = rack.nodes[i];
        std::printf("%-12s %10.3f %12.1f %12llu %10llu\n",
                    node.sim.workload.c_str(), node.sim.ipc,
                    node.contentionStallNs * 1e-3,
                    static_cast<unsigned long long>(
                        node.peakBacklogBytes),
                    static_cast<unsigned long long>(
                        node.deviceRequests));
    }

    std::printf("\ndevice service:   %.3f GB/s shared across %zu "
                "links\n", rack.deviceServiceGBps, rack.nodes.size());
    std::printf("epochs:           %llu total, %llu saturated "
                "(offered > service)\n",
                static_cast<unsigned long long>(rack.epochs),
                static_cast<unsigned long long>(rack.saturatedEpochs));
    std::printf("peak backlog:     %llu B queued at the device\n",
                static_cast<unsigned long long>(
                    rack.devicePeakBacklogBytes));
    std::printf("shared store:     %llu pages touched, %llu B "
                "dynamic peak\n",
                static_cast<unsigned long long>(
                    rack.sharedTouchedPages),
                static_cast<unsigned long long>(
                    rack.sharedDynamicPeakBytes));
    std::printf("downgrade pressure: %.2e of dynamic capacity"
                "%s\n", rack.downgradePressure,
                rack.spaceRejections
                    ? " -- REJECTIONS, host OS must downgrade"
                    : "");
    std::printf("\n(a 1-node rack reproduces the single-node "
                "simulation bit-for-bit; contention above is what "
                "sharing adds)\n");
    return 0;
}
