/**
 * @file
 * Domain example: capacity planning for a rack (Figure 1).
 *
 * One 168 GB Toleo device serves four 128-core nodes with 28 TB of
 * combined memory.  This example answers the operator's question:
 * given a mix of tenant workloads, does the device fit, and how much
 * memory could it protect before forced downgrades kick in?
 *
 * Space per workload is derived from each workload's simulated
 * Trip-format fractions (the same math as Figures 10/11).
 *
 *     ./build/examples/rack_scale
 */

#include <cstdio>
#include <vector>

#include "common/logging.hh"
#include "sim/trip_analysis.hh"

using namespace toleo;

namespace {

struct Tenant
{
    const char *workload;
    double memoryTb; ///< protected footprint in the rack
};

struct Usage
{
    double flatGb, dynGb;
    double totalGb() const { return flatGb + dynGb; }
};

Usage
profile(const char *workload)
{
    // Long cache-only run: the same methodology as Figure 11.
    TripAnalysisConfig cfg;
    cfg.workload = workload;
    cfg.refsPerCore = 1'000'000;
    const auto r = runTripAnalysis(cfg);
    return {r.flatGbPerTb, r.unevenGbPerTb + r.fullGbPerTb};
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Rack capacity planning: 168 GB Toleo, 4 nodes\n");
    std::printf("=============================================\n\n");

    // A plausible multi-tenant rack: genomics + LLM serving + caches.
    const std::vector<Tenant> tenants = {
        {"llama2-gen", 10.0},
        {"bsw", 6.0},
        {"redis", 4.0},
        {"pr", 5.0},
        {"fmi", 3.0},
    };

    const double capacity_gb = 168.0;
    double flat_gb = 0.0, dyn_gb = 0.0, total_tb = 0.0;

    std::printf("%-12s %8s %12s %12s\n", "tenant", "TB", "GB/TB",
                "GB needed");
    for (const auto &t : tenants) {
        const auto u = profile(t.workload);
        const double per_tb = u.totalGb();
        std::printf("%-12s %8.1f %12.2f %12.2f\n", t.workload,
                    t.memoryTb, per_tb, per_tb * t.memoryTb);
        flat_gb += u.flatGb * t.memoryTb;
        dyn_gb += u.dynGb * t.memoryTb;
        total_tb += t.memoryTb;
    }

    const double used = flat_gb + dyn_gb;
    std::printf("\nprotected memory: %.1f TB\n", total_tb);
    std::printf("device usage:     %.1f GB of %.0f GB "
                "(%.1f flat + %.1f dynamic)\n",
                used, capacity_gb, flat_gb, dyn_gb);
    std::printf("verdict:          %s\n",
                used <= capacity_gb ? "fits -- no forced downgrades"
                                    : "OVERSUBSCRIBED -- host OS must "
                                      "downgrade inactive pages");

    const double gb_per_tb = used / total_tb;
    std::printf("headroom:         one device could protect "
                "~%.0f TB of this mix\n", capacity_gb / gb_per_tb);
    std::printf("(paper: 4.27 GB/TB average; 168 GB protects up to "
                "~37 TB without downgrades)\n");
    return 0;
}
