/**
 * @file
 * Quickstart: protect a memory region with Toleo in ~30 lines.
 *
 * Builds a functional Toleo-protected memory (real AES-XTS, real
 * MACs, real version tracking in the simulated PIM device), writes
 * and reads data, and shows that a replayed stale value is caught.
 *
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "toleo/secure_memory.hh"

using namespace toleo;

int
main()
{
    // 1. Provision a Toleo device: 168 GB of trusted smart memory
    //    protecting a (here: scaled-down) conventional-memory pool.
    ToleoDeviceConfig dev_cfg;
    dev_cfg.capacityBytes = 1 * GiB;
    dev_cfg.protectedBytes = 64 * GiB;
    ToleoDevice device(dev_cfg);

    // 2. Attach a secure memory to it (keys would come from
    //    attestation + TDISP key exchange in a real deployment).
    AesKey data_key{}, tweak_key{}, mac_key{};
    data_key[0] = 1;
    tweak_key[0] = 2;
    mac_key[0] = 3;
    SecureMemory mem(device, data_key, tweak_key, mac_key);

    // 3. Use it like memory.
    Bytes secret(blockSize, 0x42);
    mem.write(0x1000, secret);
    auto loaded = mem.read(0x1000);
    std::printf("read-after-write ok:   %s\n",
                loaded && *loaded == secret ? "yes" : "NO");

    // 4. An adversary with physical access records the bus...
    auto recorded = mem.snoop(0x1000);

    // ...the program overwrites the secret...
    Bytes updated(blockSize, 0x43);
    mem.write(0x1000, updated);

    // ...and the adversary replays the stale ciphertext+MAC+UV.
    mem.inject(0x1000, recorded);
    auto replayed = mem.read(0x1000);
    std::printf("replay detected:       %s\n",
                !replayed && mem.killed() ? "yes (kill switch)" : "NO");

    // 5. The device state behind it all:
    std::printf("device: %llu pages tracked, %llu updates, "
                "%llu B in use\n",
                static_cast<unsigned long long>(
                    device.store().touchedPages()),
                static_cast<unsigned long long>(
                    device.store().updates()),
                static_cast<unsigned long long>(device.usageBytes()));
    return 0;
}
