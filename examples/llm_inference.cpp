/**
 * @file
 * Domain example: confidential LLM inference (the paper's headline
 * motivation -- tera-scale models need tera-scale *fresh* memory).
 *
 * Runs the llama2-gen workload through the timing simulator under
 * four protection configurations and reports what freshness costs on
 * top of confidentiality+integrity -- the paper's core claim is that
 * this line is ~1-2%.
 *
 *     ./build/examples/llm_inference
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/system.hh"

using namespace toleo;

namespace {

SimStats
runConfig(EngineKind kind)
{
    // Scaled-down node; all reported rates are intensive.
    SystemConfig cfg =
        makeScaledConfig("llama2-gen", kind, 8);
    System sys(cfg);
    return sys.run(20000, 40000);
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Confidential LLM inference (llama2-gen)\n");
    std::printf("========================================\n\n");

    const auto np = runConfig(EngineKind::NoProtect);
    const auto ci = runConfig(EngineKind::CI);
    const auto tol = runConfig(EngineKind::Toleo);
    const auto inv = runConfig(EngineKind::InvisiMem);

    auto row = [&](const char *name, const SimStats &st) {
        std::printf("%-10s exec %.3f ms   overhead %+6.1f%%   "
                    "read lat %6.1f ns   traffic %5.2f B/inst\n",
                    name, st.execSeconds * 1e3,
                    (st.execSeconds / np.execSeconds - 1.0) * 100.0,
                    st.avgReadLatencyNs,
                    st.dataBpi + st.macBpi + st.stealthBpi +
                        st.dummyBpi);
    };
    row("NoProtect", np);
    row("CI", ci);
    row("Toleo", tol);
    row("InvisiMem", inv);

    const double fresh_cost =
        (tol.execSeconds - ci.execSeconds) / np.execSeconds * 100.0;
    std::printf("\nfreshness on top of CI costs %.2f%% "
                "(paper: 1-2%% average)\n", fresh_cost);
    std::printf("stealth cache hit rate: %.1f%%  (paper: ~98%%)\n",
                tol.stealthCacheHitRate * 100.0);

    const auto total =
        tol.trip.flat + tol.trip.uneven + tol.trip.full;
    if (total > 0)
        std::printf("Trip pages: %.1f%% flat / %.1f%% uneven / "
                    "%.2f%% full (weights: uniform activation "
                    "rewrites keep pages flat)\n",
                    100.0 * tol.trip.flat / total,
                    100.0 * tol.trip.uneven / total,
                    100.0 * tol.trip.full / total);
    return 0;
}
