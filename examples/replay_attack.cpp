/**
 * @file
 * Adversary walkthrough: every attack the threat model allows
 * (Section 2.1/6), mounted against the functional model.
 *
 *  1. replay of a stale (ciphertext, MAC, UV) tuple;
 *  2. replay with UV rollback after many updates;
 *  3. ciphertext bit-flip;
 *  4. MAC forgery attempt;
 *  5. malicious-OS page free followed by a read of old contents;
 *  6. traffic analysis on same-value rewrites.
 *
 * Each one must end in a kill switch (or, for #6, in distinct
 * ciphertexts).
 */

#include <cstdio>

#include "toleo/secure_memory.hh"

using namespace toleo;

namespace {

ToleoDevice
makeDevice()
{
    ToleoDeviceConfig cfg;
    cfg.capacityBytes = 1 * GiB;
    cfg.protectedBytes = 64 * GiB;
    return ToleoDevice(cfg);
}

SecureMemory
makeMemory(ToleoDevice &dev)
{
    AesKey dk{}, tk{}, mk{};
    dk[0] = 11;
    tk[0] = 22;
    mk[0] = 33;
    return SecureMemory(dev, dk, tk, mk);
}

void
report(const char *attack, bool detected)
{
    std::printf("  %-42s %s\n", attack,
                detected ? "DETECTED (kill switch)" : "** MISSED **");
}

} // namespace

int
main()
{
    std::printf("Toleo adversary drill\n");
    std::printf("=====================\n");

    {   // 1. plain replay
        auto dev = makeDevice();
        auto mem = makeMemory(dev);
        mem.write(0x1000, Bytes(blockSize, 0xAA));
        auto old = mem.snoop(0x1000);
        mem.write(0x1000, Bytes(blockSize, 0xBB));
        mem.inject(0x1000, old);
        report("replay stale tuple", !mem.read(0x1000) && mem.killed());
    }
    {   // 2. replay with UV rollback
        auto dev = makeDevice();
        auto mem = makeMemory(dev);
        mem.write(0x2000, Bytes(blockSize, 0x01));
        auto old = mem.snoop(0x2000);
        for (int i = 0; i < 1000; ++i)
            mem.write(0x2000, Bytes(blockSize,
                                    static_cast<std::uint8_t>(i)));
        mem.inject(0x2000, old);
        report("replay with UV rollback",
               !mem.read(0x2000) && mem.killed());
    }
    {   // 3. ciphertext tamper
        auto dev = makeDevice();
        auto mem = makeMemory(dev);
        mem.write(0x3000, Bytes(blockSize, 0xCC));
        mem.flipCipherBit(0x3000, 100);
        report("ciphertext bit-flip",
               !mem.read(0x3000) && mem.killed());
    }
    {   // 4. MAC forgery (random tag)
        auto dev = makeDevice();
        auto mem = makeMemory(dev);
        mem.write(0x4000, Bytes(blockSize, 0xDD));
        auto b = mem.snoop(0x4000);
        b.mac ^= 0xdeadbeef;
        mem.inject(0x4000, b);
        report("forged MAC", !mem.read(0x4000) && mem.killed());
    }
    {   // 5. malicious OS frees an active page, then reads it
        auto dev = makeDevice();
        auto mem = makeMemory(dev);
        mem.write(0x5000, Bytes(blockSize, 0xEE));
        mem.freePage(pageOf(0x5000));
        report("read-after-malicious-free (scramble)",
               !mem.read(0x5000) && mem.killed());
    }
    {   // 6. traffic analysis on same-value rewrites
        auto dev = makeDevice();
        auto mem = makeMemory(dev);
        mem.write(0x6000, Bytes(blockSize, 0x77));
        auto c1 = mem.snoop(0x6000);
        mem.write(0x6000, Bytes(blockSize, 0x77)); // same value!
        auto c2 = mem.snoop(0x6000);
        std::printf("  %-42s %s\n", "same-value rewrite ciphertexts",
                    c1.cipher != c2.cipher ? "DISTINCT (no leak)"
                                           : "** IDENTICAL **");
    }

    std::printf("\nAll attacks covered. See tests/test_secure_memory.cc"
                " for the assert-backed versions.\n");
    return 0;
}
