/**
 * @file
 * Boot-time protocol walkthrough (Sections 3.1, 4.1): the host
 * attests the Toleo device via TDISP, derives the IDE session key,
 * and carries version traffic over the protected channel -- then the
 * same flow against a counterfeit device and a man-in-the-middle.
 *
 *     ./build/examples/attested_boot
 */

#include <cstdio>

#include "common/rng.hh"
#include "toleo/attestation.hh"
#include "toleo/device.hh"
#include "toleo/ide_channel.hh"

using namespace toleo;

namespace {

AesKey
keyFrom(std::uint64_t seed)
{
    Rng rng(seed);
    AesKey k{};
    for (auto &b : k)
        b = static_cast<std::uint8_t>(rng.next());
    return k;
}

Bytes
encodeStealth(std::uint64_t stealth)
{
    Bytes b(16, 0);
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(stealth >> (8 * i));
    return b;
}

} // namespace

int
main()
{
    const AesKey ek = keyFrom(0xE1);
    const std::uint64_t dev_id = 0x70;

    std::printf("1. TDISP attestation\n");
    DeviceIdentity device_ep(ek, dev_id);
    HostVerifier host(ek, dev_id);

    const auto challenge = host.challenge();
    const auto response = device_ep.attest(challenge);
    const auto session = host.verify(response);
    std::printf("   genuine device:    %s\n",
                session ? "ATTESTED, session key derived" : "** rejected **");

    {
        DeviceIdentity fake(keyFrom(0xBAD), dev_id);
        const auto bad = fake.attest(host.challenge());
        std::printf("   counterfeit:       %s\n",
                    host.verify(bad) ? "** accepted **" : "rejected");
    }

    std::printf("\n2. IDE channel (skid mode) carries stealth versions\n");
    ToleoDeviceConfig dcfg;
    dcfg.capacityBytes = 1 * GiB;
    dcfg.protectedBytes = 64 * GiB;
    ToleoDevice device(dcfg);

    IdeStream dev_tx(*session, /*skid=*/4), host_rx(*session, 4);

    // Host writes a block; device returns the new stealth version
    // over the encrypted link.
    auto upd = device.update(0x40);
    auto flit = dev_tx.send(encodeStealth(upd.version));
    auto got = host_rx.receive(flit);
    std::printf("   version delivered: %s\n",
                got && *got == encodeStealth(upd.version) ? "yes"
                                                          : "** no **");

    // Same stealth version resent: ciphertext differs (the property
    // that makes short stealth versions safe, Section 4.2).
    auto flit2 = dev_tx.send(encodeStealth(upd.version));
    std::printf("   non-deterministic: %s\n",
                flit.cipher != flit2.cipher ? "yes (no value leak)"
                                            : "** leak **");
    (void)host_rx.receive(flit2);

    // A man-in-the-middle replays an old flit.  In skid mode the
    // payload may be released, but the deferred check poisons the
    // stream within the skid window -- drain it and observe.
    (void)host_rx.receive(flit);
    for (int i = 0; i < 4 && !host_rx.poisoned(); ++i)
        (void)host_rx.receive(dev_tx.send(encodeStealth(i)));
    std::printf("   flit replay:       %s\n",
                host_rx.poisoned() ? "poisoned within skid window"
                                   : "** accepted **");

    std::printf("\nsee tests/test_attestation.cc and "
                "tests/test_ide_channel.cc for the assert-backed "
                "versions\n");
    return 0;
}
