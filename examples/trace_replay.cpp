/**
 * @file
 * Trace capture and replay, end to end.
 *
 * 1. Runs a synthetic bsw cell with capture enabled, writing every
 *    core's reference stream to a TOLEOTRC trace file.
 * 2. Replays that file through a fresh System and shows the stats
 *    are byte-identical to the live run -- the file-backed stream
 *    is a faithful stand-in for the generator.
 * 3. Replays the same capture under a different protection engine,
 *    the workflow real application traces enable: one capture,
 *    every engine of the grid.
 *
 *     ./build/examples/trace_replay [trace-path]
 */

#include <cstdio>
#include <string>

#include "sim/sweep.hh"
#include "sim/system.hh"
#include "workload/trace_file.hh"

using namespace toleo;

int
main(int argc, char **argv)
{
    const std::string path =
        argc > 1 ? argv[1] : "trace_replay_demo.trc";

    SweepOptions opts;
    opts.cores = 4;
    opts.warmupRefs = 5000;
    opts.measureRefs = 20000;

    // 1. Capture: the synthetic generators run as usual; a
    //    transparent wrapper streams their output to disk.
    opts.recordTracePath = path;
    const SimStats live =
        runSweepCell({"bsw", EngineKind::Toleo}, opts);
    opts.recordTracePath.clear();

    const auto trace = TraceFile::open(path);
    std::printf("captured %s: %u streams x %llu records -> %s\n",
                trace->workload().c_str(), trace->streamCount(),
                static_cast<unsigned long long>(
                    trace->recordCount(0)),
                path.c_str());

    // 2. Replay through the identical window and compare.
    opts.tracePath = path;
    const SimStats replay =
        runSweepCell({"bsw", EngineKind::Toleo}, opts);

    const std::string a = statsToJson(live).dump(2);
    const std::string b = statsToJson(replay).dump(2);
    std::printf("live   ipc %.4f  mpki %.2f\n", live.ipc,
                live.llcMpki);
    std::printf("replay ipc %.4f  mpki %.2f\n", replay.ipc,
                replay.llcMpki);
    std::printf("statsToJson byte-identical: %s\n",
                a == b ? "yes" : "NO");

    // 3. One capture, any engine: the replayed stream feeds the
    //    Merkle ablation without re-deriving the workload.
    const SimStats merkle =
        runSweepCell({"bsw", EngineKind::Merkle}, opts);
    std::printf("same trace under Merkle: ipc %.4f (%.2fx slower "
                "than Toleo)\n",
                merkle.ipc, replay.ipc / merkle.ipc);

    return a == b ? 0 : 1;
}
