/**
 * @file
 * Walkthrough of a page's life in the Trip store (Section 4.3):
 * flat -> uneven -> full transitions, normalization, probabilistic
 * reset, and OS free, narrated with the real version numbers.
 *
 *     ./build/examples/page_lifecycle
 */

#include <cstdio>

#include "toleo/trip.hh"

using namespace toleo;

namespace {

BlockNum
blk(PageNum pg, unsigned idx)
{
    return (pg << (pageBits - blockBits)) | idx;
}

void
show(const TripStore &t, PageNum pg, const char *what)
{
    std::printf("%-46s fmt=%-6s  v[0]=%#9llx v[1]=%#9llx uv=%llu  "
                "dyn=%lluB\n",
                what, tripFormatName(t.formatOf(pg)),
                static_cast<unsigned long long>(t.stealth(blk(pg, 0))),
                static_cast<unsigned long long>(t.stealth(blk(pg, 1))),
                static_cast<unsigned long long>(t.upperVersion(pg)),
                static_cast<unsigned long long>(t.dynamicBytes()));
}

} // namespace

int
main()
{
    TripConfig cfg;
    cfg.resetLog2 = 63; // manual control below
    TripStore t(cfg);
    const PageNum pg = 7;

    std::printf("Trip page lifecycle (page %llu)\n",
                static_cast<unsigned long long>(pg));
    std::printf("--------------------------------\n");

    show(t, pg, "fresh page (random base)");

    t.update(blk(pg, 0));
    show(t, pg, "write block 0 (bit set, still flat)");

    for (unsigned i = 1; i < blocksPerPage; ++i)
        t.update(blk(pg, i));
    show(t, pg, "uniform sweep (bitvec full -> base++)");

    t.update(blk(pg, 0));
    t.update(blk(pg, 0));
    show(t, pg, "block 0 written twice -> UNEVEN (56B)");

    for (int i = 0; i < 130; ++i)
        t.update(blk(pg, 0));
    show(t, pg, "offset past 128 -> FULL (4x56B)");

    std::printf("  upgrades: %llu->uneven, %llu->full, "
                "%llu normalizations\n",
                static_cast<unsigned long long>(t.upgradesToUneven()),
                static_cast<unsigned long long>(t.upgradesToFull()),
                static_cast<unsigned long long>(t.normalizations()));

    t.freePage(pg);
    show(t, pg, "OS frees the page -> downgrade + UV++");

    // Show a stealth reset with a forced-probability store.
    TripConfig reset_cfg;
    reset_cfg.resetLog2 = 0; // reset on every leading increment
    TripStore rt(reset_cfg);
    rt.update(blk(3, 0));
    std::printf("\nforced stealth reset demo: resets=%llu, page fmt=%s"
                " (re-randomized, UV=%llu)\n",
                static_cast<unsigned long long>(rt.resets()),
                tripFormatName(rt.formatOf(3)),
                static_cast<unsigned long long>(rt.upperVersion(3)));

    std::printf("\nentry sizes: flat=%lluB (1:%.0f), uneven=+%lluB "
                "(1:%.0f), full=+%lluB (1:%.0f)\n",
                static_cast<unsigned long long>(flatEntryBytes),
                static_cast<double>(pageSize) / flatEntryBytes,
                static_cast<unsigned long long>(unevenEntryBytes),
                static_cast<double>(pageSize) /
                    (flatEntryBytes + unevenEntryBytes),
                static_cast<unsigned long long>(fullEntryBytes),
                static_cast<double>(pageSize) /
                    (flatEntryBytes + fullEntryBytes));
    return 0;
}
