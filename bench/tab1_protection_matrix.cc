/**
 * @file
 * Table 1: memory-protection guarantee comparison.
 *
 * Queried from the engine implementations rather than hard-coded, so
 * the table is a living property of the code.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.hh"
#include "secmem/ci.hh"
#include "secmem/invisimem.hh"
#include "secmem/merkle.hh"
#include "secmem/noprotect.hh"
#include "toleo/engine.hh"

using namespace toleo;

int
main()
{
    setVerbose(false);
    printHeader("Table 1: Memory Protection Comparison");

    MemTopology topo({});
    ToleoDeviceConfig dcfg;
    dcfg.capacityBytes = 1 * GiB;
    dcfg.protectedBytes = 64 * GiB;
    ToleoDevice dev(dcfg);

    // Client SGX == Merkle-tree engine over a 128 MB EPC.
    MerkleConfig client_sgx;
    client_sgx.protectedBytes = 128 * MiB;

    std::vector<std::unique_ptr<ProtectionEngine>> engines;
    engines.push_back(
        std::make_unique<MerkleTreeEngine>(topo, client_sgx));
    engines.push_back(std::make_unique<CiEngine>(topo, CiConfig{}));
    engines.push_back(
        std::make_unique<ToleoEngine>(topo, dev, ToleoEngineConfig{}));

    const char *labels[] = {"Client SGX (Merkle, 128MB EPC)",
                            "Scalable SGX (CI)", "Toleo"};

    std::printf("%-32s %-12s %-16s %-10s %-10s\n", "Protects",
                "Full memory", "Confidentiality", "Integrity",
                "Freshness");
    for (std::size_t i = 0; i < engines.size(); ++i) {
        const auto &e = *engines[i];
        std::printf("%-32s %-12s %-16s %-10s %-10s\n", labels[i],
                    e.fullMemory() ? "Yes" : "No",
                    e.confidentiality()
                        ? (e.integrity() ? "Yes" : "Partial")
                        : "No",
                    e.integrity() ? "Yes" : "No",
                    e.freshness() ? "Yes" : "No");
    }
    std::printf("\npaper: Client SGX = yes/yes/yes but only 128 MB;\n"
                "       Scalable SGX = full memory, partial C, no I/F;"
                "\n       Toleo = full memory, all three.\n");
    return 0;
}
