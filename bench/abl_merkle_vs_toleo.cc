/**
 * @file
 * Ablation: Merkle-tree freshness vs Toleo as protected memory
 * scales (the paper's motivating argument, Sections 1-2).
 *
 * The Merkle walk deepens with protected size (8-ary tree: ~13
 * levels at 28 TB) and its version-cache hit rate degrades, while
 * Toleo's cost is size-independent.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "secmem/merkle.hh"

using namespace toleo;

int
main()
{
    setVerbose(false);
    printHeader("Ablation: Merkle Tree vs Toleo at Scale");

    const std::uint64_t sizes[] = {128 * MiB, 64 * GiB, 1 * TiB,
                                   28 * TiB};

    const auto np = runExperiment("bfs", EngineKind::NoProtect);
    const auto tol = runExperiment("bfs", EngineKind::Toleo);

    std::printf("%-14s %8s %14s %12s\n", "protected", "levels",
                "extra acc/rd", "overhead");
    for (auto size : sizes) {
        SystemConfig cfg = benchConfig("bfs", EngineKind::Merkle, 8);
        cfg.merkle.protectedBytes = size;
        System sys(cfg);
        const auto st = sys.run(20000, 40000);
        auto &merkle = dynamic_cast<MerkleTreeEngine &>(sys.engine());
        std::printf("%10.3f TB %8u %14.2f %11.1f%%\n",
                    static_cast<double>(size) / TiB,
                    merkle.numLevels(),
                    merkle.avgExtraAccessesPerRead(),
                    (st.execSeconds / np.execSeconds - 1) * 100);
    }
    std::printf("%-14s %8s %14s %11.1f%%  <- size-independent\n",
                "Toleo (28TB)", "-", "~0.02",
                (tol.execSeconds / np.execSeconds - 1) * 100);
    std::printf("\npaper: up to 13 dependent accesses for 28 TB "
                "8-ary tree; version-cache hit rates 60-70%% vs "
                "Toleo's 98%%\n");
    return 0;
}
