/**
 * @file
 * Microbenchmarks of the crypto substrate (google-benchmark).
 * These measure the *functional* implementation's software speed --
 * the timing model uses the hardware-engine parameters from Table 3,
 * so these numbers are for development hygiene, not paper claims.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "crypto/modes.hh"

using namespace toleo;

namespace {

AesKey
keyFrom(std::uint64_t seed)
{
    Rng rng(seed);
    AesKey k{};
    for (auto &b : k)
        b = static_cast<std::uint8_t>(rng.next());
    return k;
}

Bytes
block(std::uint64_t seed)
{
    Rng rng(seed);
    Bytes b(blockSize);
    for (auto &x : b)
        x = static_cast<std::uint8_t>(rng.next());
    return b;
}

} // namespace

static void
BM_AesEncryptBlock(benchmark::State &state)
{
    Aes128 aes(keyFrom(1));
    AesBlock b{};
    for (auto _ : state) {
        b = aes.encrypt(b);
        benchmark::DoNotOptimize(b);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesEncryptBlock);

static void
BM_XtsEncryptCacheBlock(benchmark::State &state)
{
    AesXts xts(keyFrom(1), keyFrom(2));
    Bytes p = block(3);
    std::uint64_t v = 0;
    for (auto _ : state) {
        auto c = xts.encrypt(p, ++v, 0x1000);
        benchmark::DoNotOptimize(c);
    }
    state.SetBytesProcessed(state.iterations() * blockSize);
}
BENCHMARK(BM_XtsEncryptCacheBlock);

static void
BM_XtsRoundTrip(benchmark::State &state)
{
    AesXts xts(keyFrom(1), keyFrom(2));
    Bytes p = block(3);
    for (auto _ : state) {
        auto c = xts.encrypt(p, 7, 0x1000);
        auto d = xts.decrypt(c, 7, 0x1000);
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_XtsRoundTrip);

static void
BM_Mac56CacheBlock(benchmark::State &state)
{
    Mac56 mac(keyFrom(4));
    Bytes c = block(5);
    std::uint64_t v = 0;
    for (auto _ : state) {
        auto tag = mac.compute(++v, 0x1000, c);
        benchmark::DoNotOptimize(tag);
    }
    state.SetBytesProcessed(state.iterations() * blockSize);
}
BENCHMARK(BM_Mac56CacheBlock);

static void
BM_CtrCacheBlock(benchmark::State &state)
{
    AesCtr ctr(keyFrom(6));
    Bytes p = block(7);
    std::uint64_t v = 0;
    for (auto _ : state) {
        auto c = ctr.apply(p, ++v, 0x2000);
        benchmark::DoNotOptimize(c);
    }
    state.SetBytesProcessed(state.iterations() * blockSize);
}
BENCHMARK(BM_CtrCacheBlock);
