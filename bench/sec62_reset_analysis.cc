/**
 * @file
 * Section 6.2: stealth-space exhaustion analysis.
 *
 * Reproduces the paper's probability argument both analytically
 * (exact formulas with the paper's parameters) and by Monte-Carlo on
 * a shrunken configuration where the event is observable.
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_util.hh"
#include "common/rng.hh"
#include "toleo/trip.hh"

using namespace toleo;

int
main()
{
    setVerbose(false);
    printHeader("Section 6.2: Full-Version Non-Repetition Analysis");

    // Analytic reproduction of the paper's numbers.
    // P(no reset in one stealth interval of 2^26 updates), reset
    // probability 2^-20 per update.
    const double p_reset = std::pow(2.0, -20);
    const double log_no_reset = std::pow(2.0, 26) * std::log1p(-p_reset);
    const double p_no_reset_interval = std::exp(log_no_reset);
    std::printf("P(no reset in a 2^26-update interval) = %.2e  "
                "(paper: 1.6e-26)\n", p_no_reset_interval);

    // P(any of 2^30 intervals has no reset) ~ 2^30 * p (union bound /
    // complement as in the paper).
    const double p_exhaust = -std::expm1(
        std::pow(2.0, 30) * std::log1p(-p_no_reset_interval));
    std::printf("P(stealth exhaustion in 2^56 updates)  = %.2e  "
                "(paper: 1.7e-19)\n", p_exhaust);

    // Replay success probability with 27 confidential bits.
    std::printf("P(single replay guess succeeds)        = 2^-27 = "
                "%.2e\n", std::pow(2.0, -27));

    // Monte-Carlo on a shrunken store: stealth 10 bits, reset 2^-5.
    // Expected interval-without-reset probability:
    // (1-2^-5)^(2^9) = ~9e-8; run many intervals and count resets to
    // confirm the reset-rate calibration end to end.
    printHeader("Monte-Carlo (shrunken: stealth=10b, reset=2^-5)");
    TripConfig cfg;
    cfg.stealthBits = 10;
    cfg.resetLog2 = 5;
    TripStore store(cfg);
    const BlockNum b = 0;
    const std::uint64_t updates = 2'000'000;
    std::uint64_t collisions = 0;
    std::uint64_t last_reset_count = 0;
    std::uint64_t max_interval = 0, cur_interval = 0;
    std::uint64_t prev_version = store.fullVersion(b);
    for (std::uint64_t i = 0; i < updates; ++i) {
        auto res = store.update(b);
        if (res.version == prev_version)
            ++collisions;
        prev_version = res.version;
        if (store.resets() != last_reset_count) {
            last_reset_count = store.resets();
            max_interval = std::max(max_interval, cur_interval);
            cur_interval = 0;
        } else {
            ++cur_interval;
        }
    }
    std::printf("updates:            %llu\n",
                static_cast<unsigned long long>(updates));
    std::printf("resets observed:    %llu (expect ~updates/32 = "
                "%llu)\n",
                static_cast<unsigned long long>(store.resets()),
                static_cast<unsigned long long>(updates / 32));
    std::printf("longest interval:   %llu updates (stealth space "
                "2^10 = 1024)\n",
                static_cast<unsigned long long>(max_interval));
    std::printf("interval exhausted: %s\n",
                max_interval >= 1024 ? "YES (would repeat)" : "never");
    return 0;
}
