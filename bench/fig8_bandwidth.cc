/**
 * @file
 * Figure 8: memory bandwidth overhead -- bytes fetched per
 * instruction, decomposed into data / MAC+UV / stealth / dummy, for
 * the four configurations.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace toleo;

int
main()
{
    setVerbose(false);
    printHeader(
        "Figure 8: Bytes Fetched per Instruction (data/MAC/stealth/dummy)");

    const EngineKind kinds[] = {EngineKind::NoProtect, EngineKind::CI,
                                EngineKind::Toleo,
                                EngineKind::InvisiMem};

    std::printf("%-12s %-10s %8s %8s %8s %8s %8s\n", "bench", "config",
                "data", "mac+uv", "stealth", "dummy", "total");
    for (const auto &name : paperWorkloads()) {
        for (auto kind : kinds) {
            const auto st = runExperiment(name, kind);
            const double total =
                st.dataBpi + st.macBpi + st.stealthBpi + st.dummyBpi;
            std::printf("%-12s %-10s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
                        name.c_str(), st.engine.c_str(), st.dataBpi,
                        st.macBpi, st.stealthBpi, st.dummyBpi, total);
        }
    }
    std::printf("\npaper shape: MAC traffic dominates CI's overhead; "
                "stealth adds ~1-2%%; InvisiMem pads with dummy "
                "packets\n");
    return 0;
}
