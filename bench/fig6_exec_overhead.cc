/**
 * @file
 * Figure 6: execution-time overhead of CI, Toleo, and InvisiMem over
 * NoProtect, for all 12 workloads plus the geometric mean.
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_util.hh"

using namespace toleo;

int
main()
{
    setVerbose(false);
    printHeader("Figure 6: Execution Time Overhead vs NoProtect (%)");

    std::printf("%-12s %8s %8s %10s\n", "bench", "CI", "Toleo",
                "InvisiMem");

    double gm_ci = 0, gm_tol = 0, gm_inv = 0;
    for (const auto &name : paperWorkloads()) {
        const auto np = runExperiment(name, EngineKind::NoProtect);
        const auto ci = runExperiment(name, EngineKind::CI);
        const auto tol = runExperiment(name, EngineKind::Toleo);
        const auto inv = runExperiment(name, EngineKind::InvisiMem);

        const double o_ci = ci.execSeconds / np.execSeconds - 1.0;
        const double o_tol = tol.execSeconds / np.execSeconds - 1.0;
        const double o_inv = inv.execSeconds / np.execSeconds - 1.0;
        std::printf("%-12s %7.1f%% %7.1f%% %9.1f%%\n", name.c_str(),
                    o_ci * 100, o_tol * 100, o_inv * 100);
        gm_ci += std::log1p(o_ci);
        gm_tol += std::log1p(o_tol);
        gm_inv += std::log1p(o_inv);
    }
    const double n = paperWorkloads().size();
    std::printf("%-12s %7.1f%% %7.1f%% %9.1f%%\n", "geomean",
                std::expm1(gm_ci / n) * 100,
                std::expm1(gm_tol / n) * 100,
                std::expm1(gm_inv / n) * 100);

    std::printf("\npaper: CI avg 18%% (worst for pr/bfs/llama2); "
                "Toleo adds 1-2%% over CI (memcached +11%%); "
                "InvisiMem avg 29%%\n");
    return 0;
}
