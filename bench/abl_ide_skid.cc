/**
 * @file
 * Ablation: CXL IDE skid mode (Sections 3.1, 4.1).
 *
 * Skid mode releases data before the link integrity check completes,
 * making IDE's latency contribution near zero; without it every Toleo
 * access serializes behind the flit MAC check.  The paper adopts skid
 * mode and parallelizes memory-security and IDE checks -- this sweep
 * shows what that choice is worth.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace toleo;

int
main()
{
    setVerbose(false);
    printHeader("Ablation: CXL IDE Skid Mode");

    std::printf("%-12s %14s %14s %12s\n", "bench", "skid lat(ns)",
                "no-skid lat", "exec delta");
    for (const char *wl : {"bsw", "pr", "redis", "memcached"}) {
        SystemConfig skid = benchConfig(wl, EngineKind::Toleo, 8);
        skid.mem.ideSkidMode = true;
        SystemConfig strict = skid;
        strict.mem.ideSkidMode = false;

        System a(skid), b(strict);
        const auto sa = a.run(30000, 60000);
        const auto sb = b.run(30000, 60000);
        std::printf("%-12s %14.1f %14.1f %+11.2f%%\n", wl,
                    sa.avgReadLatencyNs, sb.avgReadLatencyNs,
                    (sb.execSeconds / sa.execSeconds - 1.0) * 100.0);
    }
    std::printf("\npaper: skid mode makes IDE's latency/bandwidth "
                "overhead negligible; the non-skid penalty lands on "
                "every stealth-cache miss\n");
    return 0;
}
