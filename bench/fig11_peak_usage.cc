/**
 * @file
 * Figure 11: peak Toleo usage per TB of protected data, split into
 * flat / uneven / full contributions (long cache-only runs).
 */

#include <cstdio>
#include <string>

#include "bench/bench_util.hh"
#include "sim/trip_analysis.hh"

using namespace toleo;

int
main()
{
    setVerbose(false);
    printHeader("Figure 11: Peak Toleo Usage (GB per TB protected)");

    std::printf("%-12s %8s %8s %8s %8s\n", "bench", "flat", "uneven",
                "full", "total");

    double worst = 0, sum = 0;
    std::string worst_name;
    for (const auto &name : paperWorkloads()) {
        TripAnalysisConfig cfg;
        cfg.workload = name;
        const auto r = runTripAnalysis(cfg);
        std::printf("%-12s %8.2f %8.2f %8.2f %8.2f\n", name.c_str(),
                    r.flatGbPerTb, r.unevenGbPerTb, r.fullGbPerTb,
                    r.totalGbPerTb());
        sum += r.totalGbPerTb();
        if (r.totalGbPerTb() > worst) {
            worst = r.totalGbPerTb();
            worst_name = name;
        }
    }
    const double avg = sum / paperWorkloads().size();
    std::printf("%-12s %35.2f\n", "average", avg);
    std::printf("\n168 GB device protects ~%.0f TB at the average "
                "rate (paper: 4.27 GB/TB avg -> ~37 TB; fmi worst "
                "7.6 GB/TB)\n", 168.0 / avg);
    std::printf("worst locality here: %s (%.2f GB/TB)\n",
                worst_name.c_str(), worst);
    return 0;
}
