/**
 * @file
 * Table 3: simulation configuration dump (what the model actually
 * uses, in the paper's format).
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace toleo;

int
main()
{
    setVerbose(false);
    printHeader("Table 3: Simulation Configuration");
    SystemConfig cfg; // paper defaults
    printConfig(cfg, std::cout);
    std::cout << "\nbench binaries run a 8-core scaled node "
                 "(intensive rates are preserved; see bench_util.hh)\n";
    return 0;
}
