/**
 * @file
 * Ablation: the stealth reset probability (Section 4.2).
 *
 * A more aggressive reset (2^-12) wastes bandwidth on page
 * re-encryptions; a laxer one (2^-28) stretches stealth intervals
 * and erodes the non-repetition margin.  The sweep shows the paper's
 * 2^-20 sits where re-encryption cost is negligible while exhaustion
 * probability stays astronomically small.
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_util.hh"

using namespace toleo;

int
main()
{
    setVerbose(false);
    printHeader("Ablation: Stealth Reset Probability");

    std::printf("%-10s %10s %14s %18s\n", "reset p", "resets",
                "reenc B/inst", "P(exhaust 2^56)");

    for (unsigned log2p : {12u, 16u, 20u, 24u, 28u}) {
        SystemConfig cfg = benchConfig("bsw", EngineKind::Toleo, 8);
        cfg.device.trip.resetLog2 = log2p;
        System sys(cfg);
        const auto st = sys.run(20000, 60000);

        // Analytic exhaustion probability for this reset rate with
        // the paper's 27-bit stealth space (Section 6.2 math).
        const double p = std::pow(2.0, -double(log2p));
        const double log_no_reset =
            std::pow(2.0, 26) * std::log1p(-p);
        const double p_noreset = std::exp(log_no_reset);
        const double p_exhaust = -std::expm1(
            std::pow(2.0, 30) * std::log1p(-p_noreset));

        const double reenc_bpi =
            static_cast<double>(
                sys.engine().stats()
                    .counter("page_reencryptions").value()) *
            2 * blocksPerPage * blockSize / st.instructions;

        std::printf("2^-%-7u %10llu %14.6f %18.2e\n", log2p,
                    static_cast<unsigned long long>(st.toleoResets),
                    reenc_bpi, p_exhaust);
    }
    std::printf("\npaper design point: 2^-20 -> exhaustion 1.7e-19 "
                "with re-encryption cost amortized over ~2^20 "
                "writes\n");
    return 0;
}
