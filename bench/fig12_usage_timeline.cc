/**
 * @file
 * Figure 12: Toleo usage over time per workload, as an ASCII series
 * (flat entries grow with the touched footprint; uneven/full entries
 * accumulate with write irregularity).  Long cache-only runs.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/trip_analysis.hh"

using namespace toleo;

int
main()
{
    setVerbose(false);
    printHeader("Figure 12: Toleo Usage over Time");

    for (const auto &name : paperWorkloads()) {
        TripAnalysisConfig cfg;
        cfg.workload = name;
        cfg.refsPerCore = 1'000'000;
        const auto r = runTripAnalysis(cfg);
        if (r.timeline.empty())
            continue;
        const double peak =
            static_cast<double>(r.timeline.back().second);
        std::printf("%-12s peak %8.2f KB | ", name.c_str(),
                    peak / 1024.0);
        // 48-column sparkline of usage vs time.
        const auto &tl = r.timeline;
        const unsigned cols = 48;
        for (unsigned c = 0; c < cols; ++c) {
            const std::size_t i = c * (tl.size() - 1) / (cols - 1);
            const double frac =
                peak > 0 ? static_cast<double>(tl[i].second) / peak
                         : 0.0;
            const char *ramp = " .:-=+*#%@";
            std::printf("%c", ramp[static_cast<int>(frac * 9.0)]);
        }
        std::printf(" |\n");
    }
    std::printf("\npaper shape: monotone growth dominated by flat "
                "entries; irregular workloads (fmi, graphs) keep "
                "allocating uneven/full entries over time\n");
    return 0;
}
