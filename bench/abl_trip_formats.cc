/**
 * @file
 * Ablation: Trip compression vs alternatives.
 *
 * Compares trusted-memory bytes per touched page under:
 *  - naive: a full 27-bit stealth version per cache block (1:19);
 *  - flat-only: pages that would upgrade are stored uncompressed;
 *  - Trip (flat/uneven/full) as measured per workload.
 *
 * This regenerates the "what if we had no Trip" argument behind
 * Table 4 and Section 4.3.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/trip_analysis.hh"
#include "toleo/version.hh"

using namespace toleo;

int
main()
{
    setVerbose(false);
    printHeader("Ablation: Version Compression Schemes (B per page)");

    // Naive representation: 64 blocks x 27 bits = 216 B/page.
    const double naive = 64.0 * 27 / 8;

    std::printf("%-12s %8s %10s %10s %12s\n", "bench", "naive",
                "flat-only", "Trip", "Trip ratio");

    double sum_trip = 0;
    for (const auto &name : paperWorkloads()) {
        TripAnalysisConfig cfg;
        cfg.workload = name;
        cfg.refsPerCore = 1'000'000;
        const auto r = runTripAnalysis(cfg);
        // flat-only: any page that needed uneven/full falls back to
        // the naive full list.
        const double frac_irregular =
            r.unevenFraction() + r.fullFraction();
        const double flat_only =
            flatEntryBytes + frac_irregular * fullEntryBytes;
        std::printf("%-12s %8.0f %10.2f %10.2f %9.0f:1\n",
                    name.c_str(), naive, flat_only,
                    r.avgEntryBytesPerPage,
                    pageSize / r.avgEntryBytesPerPage);
        sum_trip += r.avgEntryBytesPerPage;
    }
    const double avg = sum_trip / paperWorkloads().size();
    std::printf("%-12s %8.0f %10s %10.2f %9.0f:1\n", "average", naive,
                "-", avg, pageSize / avg);
    std::printf("\npaper: naive 1:19 vs Trip 1:240 average "
                "(uneven as a middle tier buys ~%.0f%% of pages a "
                "4x cheaper fallback than full)\n",
                100.0 * (unevenEntryBytes * 1.0 / fullEntryBytes));
    return 0;
}
