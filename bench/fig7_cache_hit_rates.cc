/**
 * @file
 * Figure 7: stealth-version cache and MAC cache hit rates under the
 * Toleo configuration.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace toleo;

int
main()
{
    setVerbose(false);
    printHeader("Figure 7: Metadata Cache Hit Rates (Toleo config)");

    std::printf("%-12s %14s %12s\n", "bench", "StealthCache",
                "MACCache");

    double sum_s = 0, sum_m = 0;
    BenchWindow w;
    w.measureRefs = 60000;
    for (const auto &name : paperWorkloads()) {
        const auto st = runExperiment(name, EngineKind::Toleo, w);
        std::printf("%-12s %13.1f%% %11.1f%%\n", name.c_str(),
                    st.stealthCacheHitRate * 100,
                    st.macCacheHitRate * 100);
        sum_s += st.stealthCacheHitRate;
        sum_m += st.macCacheHitRate;
    }
    const double n = paperWorkloads().size();
    std::printf("%-12s %13.1f%% %11.1f%%\n", "average",
                sum_s / n * 100, sum_m / n * 100);

    std::printf("\npaper: stealth avg 98%% (redis 67%%, memcached "
                "85%%); MAC avg 67%% (worst 11%%)\n");
    return 0;
}
