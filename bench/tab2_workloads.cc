/**
 * @file
 * Table 2: benchmark characteristics -- paper RSS/MPKI next to the
 * simulated LLC MPKI of our synthetic stand-ins (NoProtect config, so
 * MPKI is a pure workload property).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace toleo;

int
main()
{
    setVerbose(false);
    printHeader("Table 2: Benchmarks (paper vs simulated)");

    std::printf("%-12s %-14s %10s %12s %12s\n", "bench", "suite",
                "RSS(paper)", "MPKI(paper)", "MPKI(sim)");

    BenchWindow w;
    w.measureRefs = 60000;
    for (const auto &name : paperWorkloads()) {
        const auto info = workloadInfo(name);
        const auto st = runExperiment(name, EngineKind::NoProtect, w);
        std::printf("%-12s %-14s %8.2fGB %12.2f %12.2f\n",
                    name.c_str(), info.suite.c_str(),
                    static_cast<double>(info.paperRssBytes) / GiB,
                    info.paperLlcMpki, st.llcMpki);
    }
    std::printf("\nshape check: pr >> llama2 > bfs >> "
                "{memcached,hyrise,sssp} > {bsw} > rest\n");
    return 0;
}
