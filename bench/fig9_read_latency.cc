/**
 * @file
 * Figure 9: average memory read latency under NoProtect, C, CI,
 * CI+Toleo, and InvisiMem, plus the zero-load DRAM reference line.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace toleo;

int
main()
{
    setVerbose(false);
    printHeader("Figure 9: Average Memory Read Latency (ns)");

    const EngineKind kinds[] = {EngineKind::NoProtect, EngineKind::C,
                                EngineKind::CI, EngineKind::Toleo,
                                EngineKind::InvisiMem};

    MemTopologyConfig mem;
    std::printf("zero-load local DRAM: %.0f ns\n\n", mem.ddrLatencyNs);

    std::printf("%-12s %10s %10s %10s %10s %10s\n", "bench",
                "NoProtect", "C", "CI", "CI+Toleo", "InvisiMem");
    double sums[5] = {0, 0, 0, 0, 0};
    for (const auto &name : paperWorkloads()) {
        std::printf("%-12s", name.c_str());
        int i = 0;
        for (auto kind : kinds) {
            const auto st = runExperiment(name, kind);
            std::printf(" %10.1f", st.avgReadLatencyNs);
            sums[i++] += st.avgReadLatencyNs;
        }
        std::printf("\n");
    }
    std::printf("%-12s", "average");
    for (double s : sums)
        std::printf(" %10.1f", s / paperWorkloads().size());
    std::printf("\n\npaper shape: C +18.6%%, I +36.9%% more, Toleo "
                "<5%% more (redis/memcached outliers), InvisiMem "
                "~2.1x NoProtect\n");
    return 0;
}
