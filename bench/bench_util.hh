/**
 * @file
 * Shared helpers for the experiment harnesses in bench/.
 *
 * Every paper table/figure binary uses runExperiment() with a common
 * scaled-node configuration: 8 cores (the paper itself scales its
 * 128-core node down 4x; we scale once more to keep each binary in
 * seconds), default warmup/measure windows sized so rates (MPKI, hit
 * rates, bytes/instruction) are stable.  Absolute times are not
 * comparable to the paper's testbed; shapes and ratios are.
 */

#ifndef TOLEO_BENCH_BENCH_UTIL_HH
#define TOLEO_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "sim/system.hh"

namespace toleo {

struct BenchWindow
{
    std::uint64_t warmupRefs = 30000;
    std::uint64_t measureRefs = 60000;
    unsigned cores = 8;
};

inline SystemConfig
benchConfig(const std::string &workload, EngineKind kind,
            unsigned cores)
{
    return makeScaledConfig(workload, kind, cores);
}

inline SimStats
runExperiment(const std::string &workload, EngineKind kind,
              const BenchWindow &w = {})
{
    System sys(benchConfig(workload, kind, w.cores));
    return sys.run(w.warmupRefs, w.measureRefs);
}

inline void
printHeader(const char *title)
{
    std::printf("\n%s\n", title);
    for (const char *p = title; *p; ++p)
        std::printf("=");
    std::printf("\n");
}

} // namespace toleo

#endif // TOLEO_BENCH_BENCH_UTIL_HH
