/**
 * @file
 * Shared helpers for the experiment harnesses in bench/.
 *
 * Every paper table/figure binary uses runExperiment() with a common
 * scaled-node configuration: 8 cores (the paper itself scales its
 * 128-core node down 4x; we scale once more to keep each binary in
 * seconds), default warmup/measure windows sized so rates (MPKI, hit
 * rates, bytes/instruction) are stable.  Absolute times are not
 * comparable to the paper's testbed; shapes and ratios are.
 */

#ifndef TOLEO_BENCH_BENCH_UTIL_HH
#define TOLEO_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"

namespace toleo {

/** The common experiment window; maps onto SweepOptions. */
struct BenchWindow
{
    std::uint64_t warmupRefs = 30000;
    std::uint64_t measureRefs = 60000;
    unsigned cores = 8;
    std::uint64_t seed = 42;

    SweepOptions sweepOptions() const
    {
        SweepOptions opts;
        opts.cores = cores;
        opts.warmupRefs = warmupRefs;
        opts.measureRefs = measureRefs;
        opts.seed = seed;
        return opts;
    }
};

inline SystemConfig
benchConfig(const std::string &workload, EngineKind kind,
            unsigned cores)
{
    return makeScaledConfig(workload, kind, cores);
}

/** Run one cell with the shared sweep API (see sim/sweep.hh). */
inline SimStats
runExperiment(const std::string &workload, EngineKind kind,
              const BenchWindow &w = {})
{
    return runSweepCell({workload, kind}, w.sweepOptions());
}

inline void
printHeader(const char *title)
{
    std::printf("\n%s\n", title);
    for (const char *p = title; *p; ++p)
        std::printf("=");
    std::printf("\n");
}

} // namespace toleo

#endif // TOLEO_BENCH_BENCH_UTIL_HH
