/**
 * @file
 * Section 7.3: on-chip area/SRAM overhead accounting and the
 * freshness share of off-chip traffic.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "toleo/stealth_cache.hh"

using namespace toleo;

int
main()
{
    setVerbose(false);
    printHeader("Section 7.3: Area and Traffic Overhead");

    StealthCacheConfig sc;
    StealthCache cache(sc);
    std::printf("L2 TLB stealth extension: %u entries x %u B = %llu "
                "KB\n", sc.tlbEntries, sc.tlbExtBytes,
                static_cast<unsigned long long>(
                    sc.tlbEntries * sc.tlbExtBytes / KiB));
    std::printf("stealth overflow buffer:  %llu KB (%.1f%% of the "
                "1 MB MAC cache)\n",
                static_cast<unsigned long long>(sc.overflowBytes / KiB),
                100.0 * sc.overflowBytes / (1.0 * MiB));
    std::printf("total added SRAM:         %llu KB "
                "(paper: 31 KB for 32 cores)\n",
                static_cast<unsigned long long>(cache.sramBytes() /
                                                KiB));

    // Freshness share of off-chip bytes across the workloads.
    printHeader("Freshness share of off-chip traffic (Toleo config)");
    double worst = 0;
    for (const auto &name : paperWorkloads()) {
        const auto st = runExperiment(name, EngineKind::Toleo);
        const double total =
            st.dataBpi + st.macBpi + st.stealthBpi;
        const double share = total > 0 ? st.stealthBpi / total : 0;
        std::printf("%-12s stealth %6.3f B/inst = %5.2f%% of "
                    "off-chip bytes\n",
                    name.c_str(), st.stealthBpi, share * 100);
        worst = std::max(worst, share);
    }
    std::printf("\nworst case %.2f%% (paper: ~1%% of bytes fetched "
                "off-chip are for freshness)\n", worst * 100);
    return 0;
}
