/**
 * @file
 * Figure 10: pages classified by Trip format after a long cache-only
 * run (the paper's Sniper cache-only methodology, Section 7.2).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/trip_analysis.hh"

using namespace toleo;

int
main()
{
    setVerbose(false);
    printHeader("Figure 10: Pages Classified by Trip Format");

    std::printf("%-12s %9s %9s %9s %10s\n", "bench", "flat%",
                "uneven%", "full%", "RSS pages");

    double sum_flat = 0, sum_uneven = 0, sum_full = 0;
    for (const auto &name : paperWorkloads()) {
        TripAnalysisConfig cfg;
        cfg.workload = name;
        const auto r = runTripAnalysis(cfg);
        std::printf("%-12s %8.1f%% %8.1f%% %8.2f%% %10llu\n",
                    name.c_str(), 100 * r.flatFraction(),
                    100 * r.unevenFraction(), 100 * r.fullFraction(),
                    static_cast<unsigned long long>(r.footprintPages));
        sum_flat += r.flatFraction();
        sum_uneven += r.unevenFraction();
        sum_full += r.fullFraction();
    }
    const double n = paperWorkloads().size();
    std::printf("%-12s %8.1f%% %8.1f%% %8.2f%%\n", "average",
                100 * sum_flat / n, 100 * sum_uneven / n,
                100 * sum_full / n);

    std::printf("\npaper: 92%% flat / 7.5%% uneven / 0.32%% full "
                "average; fmi worst; dbg/pileup/redis/memcached 98%% "
                "flat; bsw/chain/llama2 >96%% flat\n");
    return 0;
}
