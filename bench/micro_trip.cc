/**
 * @file
 * Microbenchmarks of the Trip store and stealth caches: these run on
 * the Toleo device's simple in-order core in hardware, so software
 * throughput here bounds how fast the simulated device model can be
 * driven.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "toleo/device.hh"
#include "toleo/stealth_cache.hh"
#include "toleo/trip.hh"

using namespace toleo;

static void
BM_TripUpdateUniform(benchmark::State &state)
{
    TripConfig cfg;
    TripStore store(cfg);
    BlockNum blk = 0;
    for (auto _ : state) {
        auto r = store.update(blk);
        benchmark::DoNotOptimize(r);
        blk = (blk + 1) % (1 << 20);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TripUpdateUniform);

static void
BM_TripUpdateIrregular(benchmark::State &state)
{
    TripConfig cfg;
    TripStore store(cfg);
    Rng rng(3);
    for (auto _ : state) {
        auto r = store.update(rng.nextBounded(1 << 18));
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TripUpdateIrregular);

static void
BM_TripReadVersion(benchmark::State &state)
{
    TripConfig cfg;
    TripStore store(cfg);
    for (BlockNum b = 0; b < 4096; ++b)
        store.update(b);
    BlockNum blk = 0;
    for (auto _ : state) {
        auto v = store.fullVersion(blk);
        benchmark::DoNotOptimize(v);
        blk = (blk + 1) % 4096;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TripReadVersion);

static void
BM_StealthCacheLookup(benchmark::State &state)
{
    StealthCache sc({});
    Rng rng(9);
    for (auto _ : state) {
        auto r = sc.access(rng.nextBounded(1 << 16), TripFormat::Flat,
                           false);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StealthCacheLookup);

static void
BM_DeviceUpdatePath(benchmark::State &state)
{
    ToleoDeviceConfig cfg;
    cfg.capacityBytes = 4ULL * GiB;
    cfg.protectedBytes = 256ULL * GiB;
    ToleoDevice dev(cfg);
    Rng rng(11);
    for (auto _ : state) {
        auto r = dev.update(rng.nextBounded(1 << 20));
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeviceUpdatePath);
