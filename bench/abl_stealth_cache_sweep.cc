/**
 * @file
 * Ablation: stealth-cache sizing.  Sweeps the TLB-extension entry
 * count and the overflow-buffer size and reports hit rate and the
 * resulting freshness latency -- justifying the paper's 256-entry /
 * 28 KB design point (Section 4.4).
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace toleo;

namespace {

SimStats
runWith(const std::string &wl, unsigned tlb_entries,
        std::uint64_t overflow_bytes)
{
    SystemConfig cfg = benchConfig(wl, EngineKind::Toleo, 8);
    cfg.toleo.stealth.tlbEntries = tlb_entries;
    cfg.toleo.stealth.overflowBytes = overflow_bytes;
    System sys(cfg);
    return sys.run(20000, 40000);
}

} // namespace

int
main()
{
    setVerbose(false);
    printHeader("Ablation: Stealth Cache Sizing");

    const unsigned tlb_sizes[] = {32, 64, 128, 256, 512};
    const char *wls[] = {"bsw", "pr", "redis"};

    for (const char *wl : wls) {
        std::printf("\n%s:\n", wl);
        std::printf("  %-28s %10s %12s\n", "config", "hit rate",
                    "meta lat ns");
        for (unsigned t : tlb_sizes) {
            const auto st = runWith(wl, t, 28 * KiB);
            std::printf("  tlb=%4u ovf=28KB            %9.1f%% %12.2f\n",
                        t, st.stealthCacheHitRate * 100,
                        st.avgMetaLatencyNs);
        }
        // Overflow-buffer sweep at the paper's TLB size.
        for (std::uint64_t ov : {std::uint64_t(7) * KiB,
                                 std::uint64_t(56) * KiB}) {
            const auto st = runWith(wl, 256, ov);
            std::printf("  tlb= 256 ovf=%2lluKB            %9.1f%% %12.2f\n",
                        static_cast<unsigned long long>(ov / KiB),
                        st.stealthCacheHitRate * 100,
                        st.avgMetaLatencyNs);
        }
    }
    std::printf("\ntakeaway: hit rate saturates near the paper's "
                "256-entry / 28 KB point for regular workloads; "
                "redis stays capacity-limited (matches Fig 7 "
                "outliers)\n");
    return 0;
}
