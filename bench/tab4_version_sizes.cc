/**
 * @file
 * Table 4: freshness-protected version size comparison.
 *
 * Static rows (Client SGX / VAULT / MorphCtr / Toleo formats) are
 * arithmetic over the representations; the "Toleo Stealth Avg." row
 * is *measured*: the Trip-entry bytes per page averaged over all 12
 * workloads' touched pages, weighted equally like the paper.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/trip_analysis.hh"
#include "toleo/version.hh"

using namespace toleo;

namespace {

void
row(const char *name, double rep_bytes, double data_bytes)
{
    std::printf("%-26s %10.2fB %12.0fB %12.1f:1\n", name, rep_bytes,
                data_bytes, data_bytes / rep_bytes);
}

} // namespace

int
main()
{
    setVerbose(false);
    printHeader("Table 4: Freshness-Protected Version Size Comparison");

    std::printf("%-26s %11s %13s %14s\n", "Representation", "VerSize",
                "DataPerEntry", "Data:Version");

    // Static rows.
    row("Client SGX (leaf)", 7, 64);
    row("VAULT (leaf)", 64, 4096);
    row("MorphCtr-128 (leaf)", 64, 8192);
    row("Toleo Stealth Flat", flatEntryBytes, pageSize);
    row("Toleo Stealth Uneven",
        flatEntryBytes + unevenEntryBytes, pageSize);
    row("Toleo Stealth Full",
        flatEntryBytes + fullEntryBytes, pageSize);

    // Measured average across the 12 workloads (long cache-only
    // runs, the paper's methodology for Trip statistics).
    double sum = 0.0;
    for (const auto &name : paperWorkloads()) {
        TripAnalysisConfig cfg;
        cfg.workload = name;
        cfg.refsPerCore = 1'000'000;
        sum += runTripAnalysis(cfg).avgEntryBytesPerPage;
    }
    const double avg = sum / paperWorkloads().size();
    row("Toleo Stealth Avg. (meas)", avg, pageSize);

    std::printf("\npaper: flat 341:1, uneven 60:1, full 18:1, "
                "avg 17.08B -> 240:1\n");
    return 0;
}
