/**
 * @file
 * Tests for the CXL IDE secure-channel model: round trips,
 * non-deterministic ciphertexts, replay/tamper detection, and the
 * skid-mode deferred-check window (Section 3.1).
 */

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "toleo/ide_channel.hh"

using namespace toleo;

namespace {

AesKey
keyFrom(std::uint64_t seed)
{
    Rng rng(seed);
    AesKey k{};
    for (auto &b : k)
        b = static_cast<std::uint8_t>(rng.next());
    return k;
}

Bytes
payload(std::uint8_t seed)
{
    Bytes b(16);
    for (unsigned i = 0; i < b.size(); ++i)
        b[i] = static_cast<std::uint8_t>(seed + i);
    return b;
}

} // namespace

TEST(IdeChannel, RoundTrip)
{
    IdeStream tx(keyFrom(1)), rx(keyFrom(1));
    for (int i = 0; i < 32; ++i) {
        auto flit = tx.send(payload(static_cast<std::uint8_t>(i)));
        auto out = rx.receive(flit);
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(*out, payload(static_cast<std::uint8_t>(i)));
    }
    EXPECT_FALSE(rx.poisoned());
}

TEST(IdeChannel, SamePayloadDifferentCipher)
{
    // Non-deterministic stream cipher: the property that lets short
    // stealth versions repeat without leaking (Section 4.2).
    IdeStream tx(keyFrom(1));
    auto f1 = tx.send(payload(7));
    auto f2 = tx.send(payload(7));
    EXPECT_NE(f1.cipher, f2.cipher);
    EXPECT_NE(f1.mac, f2.mac);
}

TEST(IdeChannel, ReplayedFlitPoisons)
{
    IdeStream tx(keyFrom(1)), rx(keyFrom(1));
    auto f1 = tx.send(payload(1));
    ASSERT_TRUE(rx.receive(f1).has_value());
    // Replaying the same flit: sequence number advanced -> MAC fails.
    EXPECT_FALSE(rx.receive(f1).has_value());
    EXPECT_TRUE(rx.poisoned());
}

TEST(IdeChannel, DroppedFlitPoisons)
{
    IdeStream tx(keyFrom(1)), rx(keyFrom(1));
    (void)tx.send(payload(1)); // lost on the wire
    auto f2 = tx.send(payload(2));
    EXPECT_FALSE(rx.receive(f2).has_value());
}

TEST(IdeChannel, TamperedCipherPoisons)
{
    IdeStream tx(keyFrom(1)), rx(keyFrom(1));
    auto f = tx.send(payload(1));
    f.cipher[3] ^= 0x40;
    EXPECT_FALSE(rx.receive(f).has_value());
    EXPECT_TRUE(rx.poisoned());
}

TEST(IdeChannel, PoisonLatches)
{
    IdeStream tx(keyFrom(1)), rx(keyFrom(1));
    auto f = tx.send(payload(1));
    f.mac ^= 1;
    EXPECT_FALSE(rx.receive(f).has_value());
    // Even a good flit is refused afterwards.
    auto g = tx.send(payload(2));
    EXPECT_FALSE(rx.receive(g).has_value());
}

TEST(IdeChannel, WrongKeyCannotRead)
{
    IdeStream tx(keyFrom(1)), rx(keyFrom(2));
    auto f = tx.send(payload(5));
    EXPECT_FALSE(rx.receive(f).has_value());
}

TEST(IdeChannel, SkidModeReleasesBeforeCheck)
{
    // Skid mode: a tampered flit's payload escapes, but the stream
    // poisons within the skid window (paper: data is withheld from
    // the CPU until both checks complete, so this is safe).
    IdeStream tx(keyFrom(1)), rx(keyFrom(1), /*skid_depth=*/2);
    auto bad = tx.send(payload(1));
    bad.cipher[0] ^= 1;
    auto out = rx.receive(bad);
    EXPECT_TRUE(out.has_value());  // released before verification
    EXPECT_FALSE(rx.poisoned());   // check still in flight
    EXPECT_EQ(rx.pendingChecks(), 1u);

    // Within two more flits the deferred check lands.
    (void)rx.receive(tx.send(payload(2)));
    auto late = rx.receive(tx.send(payload(3)));
    EXPECT_TRUE(rx.poisoned());
    EXPECT_FALSE(late.has_value());
}

TEST(IdeChannel, SkidModeCleanStreamFlows)
{
    IdeStream tx(keyFrom(1)), rx(keyFrom(1), 4);
    for (int i = 0; i < 100; ++i) {
        auto out = rx.receive(tx.send(payload(i & 0xff)));
        ASSERT_TRUE(out.has_value());
    }
    EXPECT_FALSE(rx.poisoned());
    EXPECT_LE(rx.pendingChecks(), 4u);
}

TEST(IdeChannel, BidirectionalSessionFromAttestationKey)
{
    // The full stack: handshake-derived key protects both directions.
    const AesKey session = keyFrom(42);
    IdeStream host_tx(session), dev_rx(session);
    IdeStream dev_tx(session), host_rx(session);

    auto req = dev_rx.receive(host_tx.send(payload(0x11)));
    ASSERT_TRUE(req.has_value());
    auto resp = host_rx.receive(dev_tx.send(payload(0x22)));
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(*resp, payload(0x22));
}

namespace {

std::uint64_t
drained(IdeLinkArbiter &arb, unsigned port)
{
    return arb.grantedLastEpoch(port);
}

} // namespace

TEST(IdeLinkArbiter, SinglePortGetsFullCapacity)
{
    IdeLinkArbiter arb(1);
    arb.enqueue(0, 1000);
    EXPECT_EQ(arb.serveEpoch(1000), 1000u);
    EXPECT_EQ(arb.pendingBytes(0), 0u);
    EXPECT_EQ(arb.peakBacklogBytes(), 0u);

    // Under-capacity epoch leaves backlog that carries over.
    arb.enqueue(0, 300);
    EXPECT_EQ(arb.serveEpoch(100), 100u);
    EXPECT_EQ(arb.pendingBytes(0), 200u);
    EXPECT_EQ(arb.peakBacklogBytes(), 200u);
    EXPECT_EQ(arb.serveEpoch(1000), 200u);
    EXPECT_EQ(arb.totalGrantedBytes(), 1300u);
}

TEST(IdeLinkArbiter, MaxMinFairShares)
{
    // A short queue donates its surplus to the backlogged ports.
    IdeLinkArbiter arb(3);
    arb.enqueue(0, 10);
    arb.enqueue(1, 500);
    arb.enqueue(2, 500);
    EXPECT_EQ(arb.serveEpoch(310), 310u);
    EXPECT_EQ(drained(arb, 0), 10u);
    EXPECT_EQ(drained(arb, 1), 150u);
    EXPECT_EQ(drained(arb, 2), 150u);
    EXPECT_EQ(arb.totalPendingBytes(), 700u);
}

TEST(IdeLinkArbiter, RemainderRotatesAcrossPorts)
{
    // 3 backlogged ports, capacity 3k+1: the odd byte must not
    // always land on port 0.
    IdeLinkArbiter arb(3);
    for (unsigned p = 0; p < 3; ++p)
        arb.enqueue(p, 1000);
    EXPECT_EQ(arb.serveEpoch(4), 4u);
    const std::uint64_t first[] = {drained(arb, 0), drained(arb, 1),
                                   drained(arb, 2)};
    EXPECT_EQ(first[0] + first[1] + first[2], 4u);
    EXPECT_EQ(arb.serveEpoch(4), 4u);
    const std::uint64_t second[] = {drained(arb, 0), drained(arb, 1),
                                    drained(arb, 2)};
    // The extra byte moved to a different port.
    EXPECT_NE(first[0] * 100 + first[1] * 10 + first[2],
              second[0] * 100 + second[1] * 10 + second[2]);
}

TEST(IdeLinkArbiter, DeterministicReplay)
{
    // Identical enqueue/serve sequences must produce identical
    // grants -- the rack golden stats depend on it.
    auto runOnce = [] {
        IdeLinkArbiter arb(4);
        std::vector<std::uint64_t> grants;
        for (unsigned e = 0; e < 50; ++e) {
            for (unsigned p = 0; p < 4; ++p)
                arb.enqueue(p, (e * 37 + p * 11) % 97);
            arb.serveEpoch(90 + (e % 7));
            for (unsigned p = 0; p < 4; ++p)
                grants.push_back(arb.grantedLastEpoch(p));
        }
        grants.push_back(arb.peakBacklogBytes());
        grants.push_back(arb.totalGrantedBytes());
        return grants;
    };
    EXPECT_EQ(runOnce(), runOnce());
}
