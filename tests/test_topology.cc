/**
 * @file
 * Tests for the rack memory topology (Figure 1 page placement and
 * channel selection).
 */

#include <gtest/gtest.h>

#include "mem/topology.hh"

using namespace toleo;

TEST(Topology, PoolFractionIsBandwidthProportional)
{
    MemTopologyConfig cfg;
    MemTopology topo(cfg);
    const double expect = cfg.cxlPoolBandwidthGBps /
                          (cfg.ddrChannels * cfg.ddrBandwidthGBps +
                           cfg.cxlPoolBandwidthGBps);
    EXPECT_NEAR(topo.poolFraction(), expect, 1e-12);
}

TEST(Topology, PagePlacementMatchesFraction)
{
    MemTopology topo({});
    const int n = 100000;
    int pool = 0;
    for (PageNum p = 0; p < n; ++p)
        pool += (topo.targetFor(p) == MemTarget::CxlPool);
    const double frac = static_cast<double>(pool) / n;
    EXPECT_NEAR(frac, topo.poolFraction(), 0.01);
}

TEST(Topology, PlacementIsDeterministic)
{
    MemTopology a({}), b({});
    for (PageNum p = 0; p < 1000; ++p)
        EXPECT_EQ(a.targetFor(p) == MemTarget::CxlPool,
                  b.targetFor(p) == MemTarget::CxlPool);
}

TEST(Topology, CxlPagesHaveHigherLatency)
{
    MemTopologyConfig cfg;
    MemTopology topo(cfg);
    PageNum local = 0, remote = 0;
    for (PageNum p = 0; p < 10000; ++p) {
        if (topo.targetFor(p) == MemTarget::CxlPool)
            remote = p;
        else
            local = p;
    }
    EXPECT_GT(topo.dataLatencyNs(remote), topo.dataLatencyNs(local));
    EXPECT_NEAR(topo.dataLatencyNs(remote) - topo.dataLatencyNs(local),
                cfg.cxlPoolLatencyNs, 1e-9);
}

TEST(Topology, ToleoLatencyIncludesLinkAndHmc)
{
    MemTopologyConfig cfg;
    MemTopology topo(cfg);
    EXPECT_NEAR(topo.toleoLatencyNs(),
                cfg.toleoLinkLatencyNs + cfg.toleoDramLatencyNs, 1e-9);
}

TEST(Topology, NonSkidModeAddsPenalty)
{
    MemTopologyConfig cfg;
    cfg.ideSkidMode = false;
    MemTopology topo(cfg);
    MemTopologyConfig skid;
    MemTopology stopo(skid);
    EXPECT_NEAR(topo.toleoLatencyNs() - stopo.toleoLatencyNs(),
                cfg.ideNonSkidPenaltyNs, 1e-9);
}

TEST(Topology, TrafficRoutedToOwningChannel)
{
    MemTopology topo({});
    // Find one local page and one pooled page.
    PageNum local = 0, remote = 0;
    for (PageNum p = 0; p < 10000; ++p) {
        if (topo.targetFor(p) == MemTarget::CxlPool)
            remote = p;
        else
            local = p;
    }
    topo.addDataTraffic(remote, 640);
    EXPECT_EQ(topo.cxlPool().totalBytes(), 640u);
    topo.addDataTraffic(local, 64);
    EXPECT_EQ(topo.totalDataBytes(), 704u);
}

TEST(Topology, ToleoTrafficSeparate)
{
    MemTopology topo({});
    topo.addToleoTraffic(128);
    EXPECT_EQ(topo.toleoBytes(), 128u);
    EXPECT_EQ(topo.totalDataBytes(), 0u);
}

TEST(Topology, LoadInflatesDataLatency)
{
    MemTopology topo({});
    PageNum local = 0;
    for (PageNum p = 0; p < 1000; ++p)
        if (topo.targetFor(p) != MemTarget::CxlPool) {
            local = p;
            break;
        }
    const double before = topo.dataLatencyNs(local);
    topo.addDataTraffic(local, 20000000); // saturate
    topo.endEpoch(1000.0);
    EXPECT_GT(topo.dataLatencyNs(local), before);
}
