/**
 * @file
 * Tests for the TripStore -- the heart of the reproduction.
 *
 * Covers: flat/uneven/full format transitions (Section 4.3), version
 * arithmetic under each format, offset normalization, the
 * probabilistic reset policy (Section 4.2), page free/downgrade, and
 * the critical security invariant that full versions never repeat
 * for a block within a run (Section 6.2), checked exhaustively with
 * shrunken parameters.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "toleo/trip.hh"

using namespace toleo;

namespace {

/** A block address inside page `pg` at index `idx`. */
BlockNum
blk(PageNum pg, unsigned idx)
{
    return (pg << (pageBits - blockBits)) | idx;
}

TripConfig
noResetConfig()
{
    TripConfig cfg;
    cfg.resetLog2 = 63; // effectively never reset
    return cfg;
}

} // namespace

TEST(Trip, UntouchedPageIsFlat)
{
    TripStore t(noResetConfig());
    EXPECT_EQ(t.formatOf(42), TripFormat::Flat);
    EXPECT_EQ(t.touchedPages(), 0u);
}

TEST(Trip, FirstWriteBumpsBlockVersionByOne)
{
    TripStore t(noResetConfig());
    auto r = t.update(blk(1, 3));
    EXPECT_EQ(r.fmtBefore, TripFormat::Flat);
    EXPECT_EQ(r.fmtAfter, TripFormat::Flat);
    // Written block is one ahead of untouched neighbours.
    const auto v_written = t.stealth(blk(1, 3));
    const auto v_other = t.stealth(blk(1, 4));
    const auto mask = (1u << 27) - 1;
    EXPECT_EQ(v_written, (v_other + 1) & mask);
}

TEST(Trip, UniformPageWriteStaysFlat)
{
    TripStore t(noResetConfig());
    for (unsigned i = 0; i < blocksPerPage; ++i)
        t.update(blk(2, i));
    EXPECT_EQ(t.formatOf(2), TripFormat::Flat);
    // Bit-vector folded into the base: all blocks share one version.
    const auto v0 = t.stealth(blk(2, 0));
    for (unsigned i = 1; i < blocksPerPage; ++i)
        EXPECT_EQ(t.stealth(blk(2, i)), v0);
    EXPECT_EQ(t.unevenCount(), 0u);
}

TEST(Trip, ManyUniformSweepsStayFlat)
{
    TripStore t(noResetConfig());
    const auto v_start = t.stealth(blk(3, 0));
    (void)v_start;
    for (int sweep = 0; sweep < 10; ++sweep)
        for (unsigned i = 0; i < blocksPerPage; ++i)
            t.update(blk(3, i));
    EXPECT_EQ(t.formatOf(3), TripFormat::Flat);
    EXPECT_EQ(t.upgradesToUneven(), 0u);
}

TEST(Trip, RepeatedBlockWriteUpgradesToUneven)
{
    TripStore t(noResetConfig());
    t.update(blk(4, 7));
    auto r = t.update(blk(4, 7)); // stride 2 > 1
    EXPECT_TRUE(r.upgraded);
    EXPECT_EQ(r.fmtAfter, TripFormat::Uneven);
    EXPECT_EQ(t.unevenCount(), 1u);
    // Version arithmetic is preserved across the upgrade.
    const auto mask = (1u << 27) - 1;
    EXPECT_EQ(t.stealth(blk(4, 7)),
              (t.stealth(blk(4, 8)) + 2) & mask);
}

TEST(Trip, UnevenTracksPerBlockStrides)
{
    TripStore t(noResetConfig());
    // Block 0 written 5 times, block 1 written twice, rest once.
    t.update(blk(5, 0));
    t.update(blk(5, 0));
    for (int i = 0; i < 3; ++i)
        t.update(blk(5, 0));
    t.update(blk(5, 1));
    t.update(blk(5, 1));
    const auto mask = (1u << 27) - 1;
    const auto base = t.stealth(blk(5, 9)); // untouched block
    EXPECT_EQ(t.stealth(blk(5, 0)), (base + 5) & mask);
    EXPECT_EQ(t.stealth(blk(5, 1)), (base + 2) & mask);
    EXPECT_EQ(t.formatOf(5), TripFormat::Uneven);
}

TEST(Trip, OffsetOverflowNormalizesWhenMinPositive)
{
    TripStore t(noResetConfig());
    // Raise every block past 1 so MIN > 0 can absorb an overflow.
    for (unsigned i = 0; i < blocksPerPage; ++i) {
        t.update(blk(6, i));
        t.update(blk(6, i));
        t.update(blk(6, i)); // all offsets ~3
    }
    ASSERT_EQ(t.formatOf(6), TripFormat::Uneven);
    // Now hammer one block to offset overflow; MIN=3 can be folded.
    for (int i = 0; i < 126; ++i)
        t.update(blk(6, 0));
    EXPECT_EQ(t.formatOf(6), TripFormat::Uneven);
    EXPECT_GE(t.normalizations(), 1u);
    EXPECT_EQ(t.upgradesToFull(), 0u);
}

TEST(Trip, StrideBeyond128UpgradesToFull)
{
    TripStore t(noResetConfig());
    t.update(blk(7, 0));
    t.update(blk(7, 0)); // uneven
    // Other blocks untouched -> MIN stays 0; hammering block 0 must
    // overflow 7 bits and go full.
    for (int i = 0; i < 130; ++i)
        t.update(blk(7, 0));
    EXPECT_EQ(t.formatOf(7), TripFormat::Full);
    EXPECT_EQ(t.fullCount(), 1u);
    EXPECT_EQ(t.unevenCount(), 0u); // uneven entry released
}

TEST(Trip, FullPreservesVersionArithmetic)
{
    TripStore t(noResetConfig());
    const auto mask = (1u << 27) - 1;
    const auto base = t.stealth(blk(8, 20));
    t.update(blk(8, 0));
    for (int i = 0; i < 200; ++i)
        t.update(blk(8, 0));
    ASSERT_EQ(t.formatOf(8), TripFormat::Full);
    EXPECT_EQ(t.stealth(blk(8, 0)), (base + 201) & mask);
    // An untouched block keeps the original base.
    EXPECT_EQ(t.stealth(blk(8, 20)), base);
}

TEST(Trip, FullVersionComposesUvAndStealth)
{
    TripConfig cfg = noResetConfig();
    TripStore t(cfg);
    t.update(blk(9, 0));
    const auto full = t.fullVersion(blk(9, 0));
    EXPECT_EQ(full & ((1ULL << cfg.stealthBits) - 1),
              t.stealth(blk(9, 0)));
    EXPECT_EQ(full >> cfg.stealthBits, t.upperVersion(9));
}

TEST(Trip, ResetRerandomizesAndBumpsUv)
{
    TripConfig cfg;
    cfg.resetLog2 = 0; // reset on every leading increment
    TripStore t(cfg);
    const auto uv_before = t.upperVersion(10);
    auto r = t.update(blk(10, 0));
    EXPECT_TRUE(r.reset);
    EXPECT_EQ(t.upperVersion(10), uv_before + 1);
    EXPECT_EQ(t.formatOf(10), TripFormat::Flat);
}

TEST(Trip, ResetDowngradesDynamicEntries)
{
    TripConfig cfg = noResetConfig();
    TripStore t(cfg);
    t.update(blk(11, 0));
    t.update(blk(11, 0));
    ASSERT_EQ(t.formatOf(11), TripFormat::Uneven);
    t.freePage(11);
    EXPECT_EQ(t.formatOf(11), TripFormat::Flat);
    EXPECT_EQ(t.unevenCount(), 0u);
    EXPECT_EQ(t.frees(), 1u);
}

TEST(Trip, FreePageBumpsUv)
{
    TripStore t(noResetConfig());
    t.update(blk(12, 0));
    const auto uv = t.upperVersion(12);
    t.freePage(12);
    EXPECT_EQ(t.upperVersion(12), uv + 1);
}

TEST(Trip, FreeUntouchedPageIsNoop)
{
    TripStore t(noResetConfig());
    t.freePage(999);
    EXPECT_EQ(t.frees(), 0u);
    EXPECT_EQ(t.touchedPages(), 0u);
}

TEST(Trip, DynamicBytesAccounting)
{
    TripStore t(noResetConfig());
    EXPECT_EQ(t.dynamicBytes(), 0u);
    t.update(blk(13, 0));
    t.update(blk(13, 0)); // uneven
    EXPECT_EQ(t.dynamicBytes(), unevenEntryBytes);
    for (int i = 0; i < 130; ++i)
        t.update(blk(13, 0)); // full
    EXPECT_EQ(t.dynamicBytes(), fullEntryAllocBytes);
}

TEST(Trip, BreakdownCountsFormats)
{
    TripStore t(noResetConfig());
    t.update(blk(20, 0));            // flat
    t.update(blk(21, 0));
    t.update(blk(21, 0));            // uneven
    t.update(blk(22, 0));
    for (int i = 0; i < 140; ++i)
        t.update(blk(22, 0));        // full
    auto b = t.breakdown();
    EXPECT_EQ(b.flat, 1u);
    EXPECT_EQ(b.uneven, 1u);
    EXPECT_EQ(b.full, 1u);
}

TEST(Trip, AvgEntryBytesMatchesTable4Formulas)
{
    TripStore t(noResetConfig());
    // One flat page only: 12 B.
    t.update(blk(30, 0));
    EXPECT_DOUBLE_EQ(t.avgEntryBytesPerPage(), 12.0);
    // Add one uneven page: (12 + 12+56)/2 = 40.
    t.update(blk(31, 0));
    t.update(blk(31, 0));
    EXPECT_DOUBLE_EQ(t.avgEntryBytesPerPage(), 40.0);
}

TEST(Trip, ResetProbabilityIsCalibrated)
{
    // With resetLog2 = 8 and N leading increments, expect ~N/256
    // resets.
    TripConfig cfg;
    cfg.resetLog2 = 8;
    TripStore t(cfg);
    const int n = 100000;
    // Each write to a fresh page is a leading increment.
    for (int i = 0; i < n; ++i)
        t.update(blk(100 + i, 0));
    const double expected = n / 256.0;
    EXPECT_GT(t.resets(), expected * 0.7);
    EXPECT_LT(t.resets(), expected * 1.3);
}

TEST(Trip, NonLeadingWritesDoNotDrawResets)
{
    TripConfig cfg;
    cfg.resetLog2 = 0; // every leading increment resets
    TripStore t(cfg);
    // First write: leading increment -> reset fires.
    auto r1 = t.update(blk(40, 0));
    EXPECT_TRUE(r1.reset);
    // Page is now flat with empty bitvec again.  Writes to *other*
    // blocks in the same stealth cycle: first one leads (resets),
    // after which remaining writes in a fresh cycle follow the same
    // pattern -- every write that does not advance the leading
    // version must not reset.  Construct that case: after a reset,
    // write block 1 (leads, resets), then block 2 write *in the new
    // cycle* leads again.  To get a non-leading write we need two
    // blocks at the same level: impossible with resetLog2=0 since
    // every leading write resets.  Use resetLog2=63 and count: zero
    // resets regardless.
    TripConfig cfg2;
    cfg2.resetLog2 = 63;
    TripStore t2(cfg2);
    for (unsigned i = 0; i < blocksPerPage; ++i)
        t2.update(blk(41, i));
    EXPECT_EQ(t2.resets(), 0u);
}

// ---------------------------------------------------------------------------
// Security invariant (Section 6.2): the full version of a block never
// repeats within a run.  Exercised with shrunken widths so the modular
// stealth counter wraps many times.
// ---------------------------------------------------------------------------

class TripNonRepeat : public ::testing::TestWithParam<unsigned>
{};

TEST_P(TripNonRepeat, FullVersionNeverRepeats)
{
    TripConfig cfg;
    cfg.stealthBits = 8;           // tiny stealth space: wraps fast
    cfg.uvBits = 40;
    cfg.resetLog2 = GetParam();    // reset probability 2^-p
    cfg.seed = 1234 + GetParam();
    TripStore t(cfg);

    std::set<std::uint64_t> seen;
    const BlockNum b = blk(50, 0);
    bool collided = false;
    for (int i = 0; i < 30000; ++i) {
        t.update(b);
        const auto v = t.fullVersion(b);
        if (!seen.insert(v).second)
            collided = true;
    }
    // With reset probability 2^-p and stealth space 2^8, the chance
    // of running a full wrap without reset is (1-2^-p)^256 -- for
    // p <= 4 this is < 1e-7 per wrap, so 30000 updates are safe.
    EXPECT_FALSE(collided);
}

INSTANTIATE_TEST_SUITE_P(ResetRates, TripNonRepeat,
                         ::testing::Values(2u, 3u, 4u));

TEST(Trip, StealthWrapWithoutResetWouldCollide)
{
    // Negative control: disable resets entirely and wrap the tiny
    // stealth space -- the full version *must* collide, demonstrating
    // why the reset policy is load-bearing.
    TripConfig cfg;
    cfg.stealthBits = 8;
    cfg.resetLog2 = 63;
    TripStore t(cfg);
    std::set<std::uint64_t> seen;
    const BlockNum b = blk(60, 0);
    bool collided = false;
    for (int i = 0; i < 1000; ++i) {
        t.update(b);
        if (!seen.insert(t.fullVersion(b)).second)
            collided = true;
    }
    EXPECT_TRUE(collided);
}

TEST(Trip, RandomizedInitialStealthDiffersAcrossPages)
{
    // Address-side-channel defense (Section 4.2): bases must not all
    // start at the same value.
    TripStore t(noResetConfig());
    std::set<std::uint64_t> bases;
    for (PageNum p = 0; p < 64; ++p) {
        t.update(blk(70 + p, 0));
        bases.insert(t.stealth(blk(70 + p, 1)));
    }
    EXPECT_GT(bases.size(), 32u);
}

TEST(Trip, DeterministicAcrossRuns)
{
    TripConfig cfg;
    cfg.seed = 77;
    TripStore a(cfg), b(cfg);
    for (int i = 0; i < 1000; ++i) {
        const BlockNum x = blk(i % 7, (i * 13) % blocksPerPage);
        auto ra = a.update(x);
        auto rb = b.update(x);
        EXPECT_EQ(ra.version, rb.version);
        EXPECT_EQ(ra.fmtAfter, rb.fmtAfter);
    }
}
