/**
 * @file
 * Unit tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include "cache/set_assoc.hh"
#include "cache/tlb.hh"

using namespace toleo;

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache c(16, 4);
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssocCache, FromCapacityGeometry)
{
    auto c = SetAssocCache::fromCapacity(32 * KiB, 64, 8);
    EXPECT_EQ(c.numSets(), 64u);
    EXPECT_EQ(c.assoc(), 8u);
}

TEST(SetAssocCache, LruEvictsOldest)
{
    // Fully associative, 2 ways: the LRU key must be the victim.
    SetAssocCache c(1, 2);
    c.access(1, false);
    c.access(2, false);
    c.access(1, false);      // 2 becomes LRU
    auto r = c.access(3, false);
    EXPECT_FALSE(r.hit);
    ASSERT_TRUE(r.evictedTag.has_value());
    EXPECT_EQ(*r.evictedTag, 2u);
    EXPECT_TRUE(c.contains(1));
    EXPECT_FALSE(c.contains(2));
}

TEST(SetAssocCache, DirtyVictimReportsWriteback)
{
    SetAssocCache c(1, 1);
    c.access(7, true);
    auto r = c.access(8, false);
    ASSERT_TRUE(r.writebackTag.has_value());
    EXPECT_EQ(*r.writebackTag, 7u);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(SetAssocCache, CleanVictimNoWriteback)
{
    SetAssocCache c(1, 1);
    c.access(7, false);
    auto r = c.access(8, false);
    EXPECT_FALSE(r.writebackTag.has_value());
    ASSERT_TRUE(r.evictedTag.has_value());
    EXPECT_EQ(*r.evictedTag, 7u);
}

TEST(SetAssocCache, WriteHitMarksDirty)
{
    SetAssocCache c(1, 1);
    c.access(7, false);
    c.access(7, true); // hit, now dirty
    auto r = c.access(8, false);
    ASSERT_TRUE(r.writebackTag.has_value());
}

TEST(SetAssocCache, InvalidateReturnsDirtiness)
{
    SetAssocCache c(4, 2);
    c.access(1, true);
    c.access(2, false);
    EXPECT_TRUE(c.invalidate(1));
    EXPECT_FALSE(c.invalidate(2));
    EXPECT_FALSE(c.invalidate(99)); // absent
    EXPECT_FALSE(c.contains(1));
}

TEST(SetAssocCache, MarkDirtyOnResident)
{
    SetAssocCache c(1, 2);
    c.access(1, false);
    EXPECT_TRUE(c.markDirtyIfPresent(1));
    EXPECT_TRUE(c.invalidate(1)); // invalidate reports it was dirty
    EXPECT_FALSE(c.markDirtyIfPresent(99));
}

TEST(SetAssocCache, HitRateMath)
{
    SetAssocCache c(16, 4);
    c.access(1, false);
    c.access(1, false);
    c.access(1, false);
    c.access(2, false);
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.5);
    c.resetStats();
    EXPECT_EQ(c.accesses(), 0u);
}

TEST(SetAssocCache, HalfCapacityWorkingSetMostlyFits)
{
    // A working set at half capacity should mostly hit after warmup
    // (the hashed index still allows a few conflict misses).
    auto c = SetAssocCache::fromCapacity(4 * KiB, 64, 4);
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t k = 0; k < 32; ++k)
            c.access(k, false);
    c.resetStats();
    for (std::uint64_t k = 0; k < 32; ++k)
        c.access(k, false);
    EXPECT_GT(c.hitRate(), 0.8);
}

TEST(SetAssocCache, ThrashingWorkingSetMisses)
{
    auto c = SetAssocCache::fromCapacity(4 * KiB, 64, 4);
    for (std::uint64_t k = 0; k < 4096; ++k)
        c.access(k, false);
    c.resetStats();
    for (std::uint64_t k = 0; k < 4096; ++k)
        c.access(k, false);
    EXPECT_LT(c.hitRate(), 0.2);
}

TEST(SharedTlb, BasicHitMiss)
{
    SharedTlb tlb(4, 12);
    EXPECT_FALSE(tlb.access(1));
    EXPECT_TRUE(tlb.access(1));
    EXPECT_EQ(tlb.extensionBytes(), 48u);
}

TEST(SharedTlb, FullyAssociativeLru)
{
    SharedTlb tlb(2, 12);
    tlb.access(1);
    tlb.access(2);
    tlb.access(1);
    tlb.access(3); // evicts 2
    EXPECT_TRUE(tlb.contains(1));
    EXPECT_FALSE(tlb.contains(2));
}
