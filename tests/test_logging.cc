/**
 * @file
 * Unit tests for the logging/report helpers.
 *
 * warn()/inform() write printf-formatted lines to stderr; panic()
 * aborts and fatal() exits(1).  These are the error paths everything
 * else leans on (every accessor guard in Json, every config check),
 * so their contracts -- tag prefix, formatting, verbosity gate, and
 * the two distinct termination modes -- get pinned here.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"

using namespace toleo;

namespace {

/** Run @p fn with stderr captured; returns what it wrote. */
template <typename Fn>
std::string
captureStderr(Fn &&fn)
{
    ::testing::internal::CaptureStderr();
    fn();
    return ::testing::internal::GetCapturedStderr();
}

} // namespace

TEST(Logging, WarnIsTaggedAndFormatted)
{
    const std::string out = captureStderr(
        [] { warn("bad value %d in %s", 7, "cfg"); });
    EXPECT_EQ(out, "warn: bad value 7 in cfg\n");
}

TEST(Logging, InformIsTaggedAndFormatted)
{
    setVerbose(true);
    const std::string out =
        captureStderr([] { inform("cell %u done", 3u); });
    EXPECT_EQ(out, "info: cell 3 done\n");
}

TEST(Logging, SetVerboseGatesInformOnly)
{
    setVerbose(false);
    const std::string quiet = captureStderr([] {
        inform("suppressed");
        warn("still shown");
    });
    setVerbose(true);
    EXPECT_EQ(quiet, "warn: still shown\n");

    // Re-enabling restores inform().
    const std::string loud = captureStderr([] { inform("back"); });
    EXPECT_EQ(loud, "info: back\n");
}

TEST(LoggingDeath, PanicAbortsWithTaggedMessage)
{
    EXPECT_DEATH(panic("invariant %s broke", "X"),
                 "panic: invariant X broke");
}

TEST(LoggingDeath, FatalExitsWithStatusOne)
{
    // fatal() is a clean exit(1), not an abort -- callers rely on the
    // distinction (fatal for user error, panic for internal bugs).
    EXPECT_EXIT(fatal("no such file %s", "a.json"),
                ::testing::ExitedWithCode(1),
                "fatal: no such file a.json");
}
