/**
 * @file
 * Parameterized invariant sweep across all 12 paper workloads: every
 * property here must hold for *every* benchmark, under quick 4-core
 * runs.  These are the structural guarantees the paper's evaluation
 * relies on, independent of calibration.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "sim/trip_analysis.hh"

using namespace toleo;

class WorkloadInvariants
    : public ::testing::TestWithParam<std::string>
{
  protected:
    SimStats
    run(EngineKind kind)
    {
        System sys(makeScaledConfig(GetParam(), kind, 4));
        return sys.run(10000, 20000);
    }
};

TEST_P(WorkloadInvariants, ToleoNeverLosesGuarantees)
{
    System sys(makeScaledConfig(GetParam(), EngineKind::Toleo, 4));
    EXPECT_TRUE(sys.engine().confidentiality());
    EXPECT_TRUE(sys.engine().integrity());
    EXPECT_TRUE(sys.engine().freshness());
    EXPECT_TRUE(sys.engine().fullMemory());
}

TEST_P(WorkloadInvariants, RatesAreProbabilities)
{
    const auto st = run(EngineKind::Toleo);
    EXPECT_GE(st.stealthCacheHitRate, 0.0);
    EXPECT_LE(st.stealthCacheHitRate, 1.0);
    EXPECT_GE(st.macCacheHitRate, 0.0);
    EXPECT_LE(st.macCacheHitRate, 1.0);
}

TEST_P(WorkloadInvariants, LatencyDecomposes)
{
    const auto st = run(EngineKind::Toleo);
    EXPECT_NEAR(st.avgReadLatencyNs,
                st.avgDramLatencyNs + st.avgMetaLatencyNs, 1e-6);
    EXPECT_GE(st.avgDramLatencyNs, 30.0);
}

TEST_P(WorkloadInvariants, ProtectionNeverSpeedsUp)
{
    const auto np = run(EngineKind::NoProtect);
    const auto tol = run(EngineKind::Toleo);
    EXPECT_GE(tol.execSeconds, np.execSeconds * 0.999);
    // NoProtect must not carry metadata traffic.
    EXPECT_DOUBLE_EQ(np.macBpi, 0.0);
    EXPECT_DOUBLE_EQ(np.stealthBpi, 0.0);
}

TEST_P(WorkloadInvariants, MpkiIndependentOfEngine)
{
    // The protection engine must not perturb the workload itself.
    const auto np = run(EngineKind::NoProtect);
    const auto ci = run(EngineKind::CI);
    EXPECT_NEAR(np.llcMpki, ci.llcMpki, 1e-9);
}

TEST_P(WorkloadInvariants, TripFractionsConsistent)
{
    TripAnalysisConfig cfg;
    cfg.workload = GetParam();
    cfg.cores = 4;
    cfg.refsPerCore = 100000;
    const auto r = runTripAnalysis(cfg);
    EXPECT_EQ(r.flatPages + r.unevenPages + r.fullPages,
              r.footprintPages);
    EXPECT_GE(r.avgEntryBytesPerPage,
              static_cast<double>(flatEntryBytes));
}

TEST_P(WorkloadInvariants, VersionsAdvanceUnderWriteback)
{
    System sys(makeScaledConfig(GetParam(), EngineKind::Toleo, 4));
    auto st = sys.run(10000, 20000);
    // Any workload that writes must advance versions in the device.
    // The braces matter: gtest's EXPECT_* macros expand to an
    // if/else, which a brace-less enclosing if turns into
    // -Wdangling-else.
    if (st.llcWritebacks > 0) {
        EXPECT_GT(sys.device()->store().updates(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperWorkloads, WorkloadInvariants,
    ::testing::ValuesIn(paperWorkloads()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });
