/**
 * @file
 * Unit tests for the Json value type's error paths.
 *
 * The happy paths are exercised constantly (every sweep report and
 * golden fixture round-trips through Json); what was untested is the
 * failure surface -- parse errors, accessor type mismatches, and the
 * uint64 range guard on asUint() -- which is exactly where a malformed
 * config or fixture must die loudly instead of corrupting a run.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/json.hh"

using namespace toleo;

namespace {

/** Parse expecting failure; returns the error message. */
std::string
parseError(const std::string &text)
{
    std::string err;
    const Json j = Json::parse(text, &err);
    EXPECT_TRUE(j.isNull()) << text;
    EXPECT_FALSE(err.empty()) << text;
    return err;
}

} // namespace

TEST(JsonParse, RoundTrip)
{
    const std::string doc =
        R"({"name":"toleo","n":3,"pi":0.25,"flag":true,)"
        R"("none":null,"arr":[1,2,3]})";
    std::string err;
    const Json j = Json::parse(doc, &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(j.get("name")->asString(), "toleo");
    EXPECT_EQ(j.get("n")->asUint(), 3u);
    EXPECT_EQ(j.get("pi")->asDouble(), 0.25);
    EXPECT_TRUE(j.get("flag")->asBool());
    EXPECT_TRUE(j.get("none")->isNull());
    EXPECT_EQ(j.get("arr")->size(), 3u);
    EXPECT_EQ(j.dump(), doc);
}

TEST(JsonParse, ErrorsCarryOffset)
{
    EXPECT_NE(parseError("").find("unexpected end of input"),
              std::string::npos);
    EXPECT_NE(parseError("@").find("unexpected character"),
              std::string::npos);
    EXPECT_NE(parseError("[1,2").find("expected ',' or ']'"),
              std::string::npos);
    EXPECT_NE(parseError("{\"a\" 1}").find("expected ':'"),
              std::string::npos);
    EXPECT_NE(parseError("{1: 2}").find("expected object key"),
              std::string::npos);
    EXPECT_NE(parseError("{\"a\":1 \"b\":2}")
                  .find("expected ',' or '}'"),
              std::string::npos);
    EXPECT_NE(parseError("\"abc").find("unterminated string"),
              std::string::npos);
    EXPECT_NE(parseError("\"\\q\"").find("bad escape"),
              std::string::npos);
    EXPECT_NE(parseError("\"\\u12g4\"").find("bad hex digit"),
              std::string::npos);
    EXPECT_NE(parseError("\"\\u12").find("truncated \\u escape"),
              std::string::npos);
    EXPECT_NE(parseError("1 2").find("trailing characters"),
              std::string::npos);
    // The offset in the message points at the failure site.
    EXPECT_NE(parseError("[1,2").find("offset 4"), std::string::npos);
}

TEST(JsonParse, UnicodeEscapes)
{
    std::string err;
    // 1-, 2-, and 3-byte UTF-8 encodings from \u escapes.
    const Json j = Json::parse(R"(["\u0041","\u00e9","\u20ac"])", &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(j.at(0).asString(), "A");
    EXPECT_EQ(j.at(1).asString(), "\xc3\xa9");
    EXPECT_EQ(j.at(2).asString(), "\xe2\x82\xac");
}

TEST(JsonParse, MalformedNumber)
{
    // A lone '-' matches the number grammar's entry but stod rejects
    // it; the parser must surface that, not throw.
    EXPECT_NE(parseError("-").find("malformed number"),
              std::string::npos);
}

TEST(JsonParse, ErrOutParamIsCleared)
{
    std::string err = "stale";
    const Json j = Json::parse("[1, 2]", &err);
    EXPECT_TRUE(err.empty());
    EXPECT_EQ(j.size(), 2u);
}

TEST(JsonDeath, AccessorTypeMismatchPanics)
{
    const Json num(3.5);
    const Json str("abc");
    EXPECT_DEATH(num.asBool(), "asBool\\(\\) on non-bool");
    EXPECT_DEATH(str.asDouble(), "asDouble\\(\\) on non-number");
    EXPECT_DEATH(num.asString(), "asString\\(\\) on non-string");
    EXPECT_DEATH(num.size(), "size\\(\\) on non-container");
    EXPECT_DEATH(num.at(0), "at\\(\\) on non-array");
    EXPECT_DEATH(num.items(), "items\\(\\) on non-object");
    Json notArr(1);
    EXPECT_DEATH(notArr.push_back(Json(2)),
                 "push_back\\(\\) on non-array");
    Json notObj(1);
    EXPECT_DEATH(notObj["k"], "operator\\[\\] on non-object");
}

TEST(JsonDeath, AsUintGuards)
{
    EXPECT_DEATH(Json(-1).asUint(), "non-number or negative");
    EXPECT_DEATH(Json("5").asUint(), "non-number or negative");
    // 2^64 and above are not representable; the cast would be UB.
    EXPECT_DEATH(Json(0x1p64).asUint(), "out of uint64 range");
    EXPECT_DEATH(Json(1e300).asUint(), "out of uint64 range");
    const double nan = std::nan("");
    EXPECT_DEATH(Json(nan).asUint(), "out of uint64 range");
}

TEST(Json, AsUintBoundary)
{
    // The largest double below 2^64 must pass the guard.
    const double maxOk = std::nextafter(0x1p64, 0.0);
    EXPECT_EQ(Json(maxOk).asUint(), 18446744073709549568ull);
    EXPECT_EQ(Json(0.0).asUint(), 0u);
}

TEST(Json, ArrayIndexOutOfRangePanics)
{
    Json arr = Json::array();
    arr.push_back(Json(1));
    EXPECT_DEATH(arr.at(5), "out of range");
}

TEST(Json, DumpEscapesControlCharacters)
{
    const Json j(std::string("a\"b\\c\nd\te\x01" "f"));
    EXPECT_EQ(j.dump(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
}

TEST(Json, DumpNonFiniteNumbersAsNull)
{
    EXPECT_EQ(Json(std::nan("")).dump(), "null");
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(),
              "null");
}

TEST(Json, GetOnNonObjectReturnsNull)
{
    EXPECT_EQ(Json(1).get("k"), nullptr);
    EXPECT_FALSE(Json().has("k"));
}
