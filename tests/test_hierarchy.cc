/**
 * @file
 * Tests for the three-level cache hierarchy.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/hierarchy.hh"

using namespace toleo;

namespace {

CacheHierarchyConfig
smallConfig()
{
    CacheHierarchyConfig cfg;
    cfg.numCores = 2;
    cfg.coresPerL3Slice = 2;
    cfg.l1Bytes = 1 * KiB;
    cfg.l1Assoc = 2;
    cfg.l2Bytes = 4 * KiB;
    cfg.l2Assoc = 4;
    cfg.l3SliceBytes = 16 * KiB;
    cfg.l3Assoc = 4;
    return cfg;
}

} // namespace

TEST(Hierarchy, ColdMissGoesToMemory)
{
    CacheHierarchy h(smallConfig());
    auto r = h.access(0, 0x1000, false);
    EXPECT_TRUE(r.llcMiss);
    EXPECT_EQ(r.servedBy, 4u);
    EXPECT_EQ(h.llcMisses(), 1u);
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    CacheHierarchy h(smallConfig());
    h.access(0, 0x1000, false);
    auto r = h.access(0, 0x1000, false);
    EXPECT_FALSE(r.llcMiss);
    EXPECT_EQ(r.servedBy, 1u);
}

TEST(Hierarchy, OnChipLatencyAccumulates)
{
    auto cfg = smallConfig();
    CacheHierarchy h(cfg);
    auto miss = h.access(0, 0x2000, false);
    EXPECT_EQ(miss.onChipLatency,
              cfg.l1Latency + cfg.l2Latency + cfg.l3Latency);
    auto hit = h.access(0, 0x2000, false);
    EXPECT_EQ(hit.onChipLatency, cfg.l1Latency);
}

TEST(Hierarchy, CoresShareL3Slice)
{
    CacheHierarchy h(smallConfig());
    h.access(0, 0x3000, false); // core 0 fills L3
    auto r = h.access(1, 0x3000, false);
    EXPECT_FALSE(r.llcMiss);     // core 1 finds it in shared L3
    EXPECT_EQ(r.servedBy, 3u);
}

TEST(Hierarchy, DirtyEvictionReachesMemoryEventually)
{
    auto cfg = smallConfig();
    CacheHierarchy h(cfg);
    // Write a block, then stream enough blocks to push it out of all
    // levels; a writeback must surface.
    h.access(0, 0x9999, true);
    for (BlockNum b = 0; b < 4096; ++b)
        h.access(0, b, false);
    EXPECT_GE(h.llcWritebacks(), 1u);
}

TEST(Hierarchy, WritebacksCarryPreviouslyWrittenBlocks)
{
    CacheHierarchy h(smallConfig());
    std::set<BlockNum> written, evicted;
    for (BlockNum b = 0; b < 1024; ++b) {
        auto r = h.access(0, b, true);
        written.insert(b);
        for (BlockNum v : r.memWritebacks) {
            EXPECT_TRUE(written.count(v)) << "evicted unwritten " << v;
            evicted.insert(v);
        }
    }
    EXPECT_GT(evicted.size(), 0u);
}

TEST(Hierarchy, MissRateStreamingIsHigh)
{
    CacheHierarchy h(smallConfig());
    for (BlockNum b = 0; b < 100000; ++b)
        h.access(0, b, false);
    EXPECT_GT(h.llcMissRate(), 0.95);
}

TEST(Hierarchy, ResidentWorkingSetBarelyMisses)
{
    CacheHierarchy h(smallConfig());
    // Working set fits in L1 (16 lines): loop it many times.  Only
    // compulsory (and a handful of conflict) misses may reach
    // memory over 8000 accesses.
    for (int it = 0; it < 1000; ++it)
        for (BlockNum b = 0; b < 8; ++b)
            h.access(0, b, false);
    EXPECT_LT(h.llcMisses(), 50u);
}

TEST(Hierarchy, InvalidCoreIsFatal)
{
    CacheHierarchy h(smallConfig());
    EXPECT_DEATH(h.access(7, 0, false), "out of range");
}

TEST(Hierarchy, StatsReset)
{
    CacheHierarchy h(smallConfig());
    h.access(0, 1, false);
    h.resetStats();
    EXPECT_EQ(h.llcMisses(), 0u);
    EXPECT_EQ(h.llcAccesses(), 0u);
}
