/**
 * @file
 * Integration tests on the full System: the end-to-end properties the
 * paper's evaluation rests on -- protection overhead ordering
 * (NoProtect < Toleo-extra < CI-extra ... InvisiMem worst), stealth
 * cache behaviour, Trip classification, and traffic decomposition.
 * Uses few cores / short windows so the suite stays fast.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "sim/trip_analysis.hh"

using namespace toleo;

namespace {

SystemConfig
smallConfig(const std::string &workload, EngineKind kind)
{
    SystemConfig cfg = makeScaledConfig(workload, kind, 4);
    cfg.epochRefs = 4096;
    return cfg;
}

SimStats
runSmall(const std::string &workload, EngineKind kind,
         std::uint64_t refs = 30000)
{
    System sys(smallConfig(workload, kind));
    return sys.run(refs / 3, refs);
}

} // namespace

TEST(System, RunsAndCountsInstructions)
{
    auto st = runSmall("bsw", EngineKind::NoProtect, 10000);
    EXPECT_GT(st.instructions, 10000u * 4);
    EXPECT_GT(st.execSeconds, 0.0);
    EXPECT_GT(st.llcMisses, 0u);
    EXPECT_EQ(st.engine, std::string("NoProtect"));
}

TEST(System, DeterministicAcrossRuns)
{
    auto a = runSmall("pr", EngineKind::Toleo, 8000);
    auto b = runSmall("pr", EngineKind::Toleo, 8000);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_DOUBLE_EQ(a.execSeconds, b.execSeconds);
}

TEST(System, ProtectionCostsOrdering)
{
    const auto np = runSmall("pr", EngineKind::NoProtect);
    const auto c = runSmall("pr", EngineKind::C);
    const auto ci = runSmall("pr", EngineKind::CI);
    const auto tol = runSmall("pr", EngineKind::Toleo);

    // Each added guarantee costs more time.
    EXPECT_GT(c.execSeconds, np.execSeconds);
    EXPECT_GT(ci.execSeconds, c.execSeconds);
    EXPECT_GE(tol.execSeconds, ci.execSeconds * 0.999);

    // ...but Toleo's freshness is nearly free on top of CI.
    const double ci_over = ci.execSeconds / np.execSeconds - 1.0;
    const double tol_over = tol.execSeconds / np.execSeconds - 1.0;
    EXPECT_LT(tol_over - ci_over, 0.10);
    EXPECT_GT(ci_over, 0.02);
}

TEST(System, InvisiMemCostsMoreThanToleo)
{
    const auto tol = runSmall("bsw", EngineKind::Toleo);
    const auto inv = runSmall("bsw", EngineKind::InvisiMem);
    EXPECT_GT(inv.execSeconds, tol.execSeconds);
    EXPECT_GT(inv.dummyBpi, 0.0);
}

TEST(System, ReadLatencyBreakdownIsConsistent)
{
    const auto st = runSmall("bfs", EngineKind::Toleo);
    EXPECT_GT(st.avgReadLatencyNs, 0.0);
    EXPECT_NEAR(st.avgReadLatencyNs,
                st.avgDramLatencyNs + st.avgMetaLatencyNs, 1e-6);
    EXPECT_GT(st.avgDramLatencyNs, 30.0); // at least zero-load DRAM
}

TEST(System, StealthCacheHitRateHighForStreaming)
{
    const auto st = runSmall("bsw", EngineKind::Toleo, 60000);
    EXPECT_GT(st.stealthCacheHitRate, 0.90);
}

TEST(System, StealthCacheWorseForKvStore)
{
    // The KV-store outlier behaviour (Fig 7) needs the full-scale
    // node: 8 cores sharing the 256-entry TLB extension.
    auto run8 = [](const char *wl) {
        System sys(makeScaledConfig(wl, EngineKind::Toleo, 8));
        return sys.run(30000, 60000);
    };
    const auto redis = run8("redis");
    const auto bsw = run8("bsw");
    EXPECT_LT(redis.stealthCacheHitRate, bsw.stealthCacheHitRate);
    EXPECT_LT(redis.stealthCacheHitRate, 0.95);
}

TEST(System, TripMostPagesFlatForDp)
{
    const auto st = runSmall("bsw", EngineKind::Toleo, 60000);
    const auto total = st.trip.flat + st.trip.uneven + st.trip.full;
    ASSERT_GT(total, 0u);
    EXPECT_GT(static_cast<double>(st.trip.flat) / total, 0.9);
}

TEST(System, TripUnevenShowsUpForFmi)
{
    // Format drift needs the long cache-only mode (Section 7.2);
    // fmi must show the worst version locality of the suite.
    TripAnalysisConfig cfg;
    cfg.workload = "fmi";
    cfg.refsPerCore = 300000;
    const auto r = runTripAnalysis(cfg);
    EXPECT_GT(r.unevenPages, 0u);
    EXPECT_GT(r.unevenFraction(), 0.03);
}

TEST(System, TrafficDecompositionSane)
{
    const auto st = runSmall("pr", EngineKind::Toleo);
    EXPECT_GT(st.dataBpi, 0.0);
    EXPECT_GT(st.macBpi, 0.0);
    // Stealth traffic must be a small fraction of data traffic
    // (Section 7.1: ~1% of off-chip bytes).
    EXPECT_LT(st.stealthBpi, st.dataBpi * 0.2);
    EXPECT_DOUBLE_EQ(st.dummyBpi, 0.0); // only InvisiMem pads
}

TEST(System, NoProtectHasNoMetadataTraffic)
{
    const auto st = runSmall("pr", EngineKind::NoProtect);
    EXPECT_DOUBLE_EQ(st.macBpi, 0.0);
    EXPECT_DOUBLE_EQ(st.stealthBpi, 0.0);
}

TEST(System, ToleoUsageTimelineMonotoneFootprint)
{
    const auto st = runSmall("bsw", EngineKind::Toleo);
    ASSERT_GT(st.usageTimeline.size(), 4u);
    // Touched-page usage can only grow during a run (no frees).
    for (std::size_t i = 1; i < st.usageTimeline.size(); ++i)
        EXPECT_GE(st.usageTimeline[i].second,
                  st.usageTimeline[i - 1].second);
    EXPECT_GT(st.toleoPeakUsageBytes, 0u);
}

TEST(System, MerkleWorseThanToleo)
{
    const auto merkle = runSmall("bfs", EngineKind::Merkle);
    const auto tol = runSmall("bfs", EngineKind::Toleo);
    EXPECT_GT(merkle.execSeconds, tol.execSeconds);
    EXPECT_GT(merkle.macBpi + merkle.dataBpi, tol.dataBpi);
}

TEST(System, WarmupIsExcludedFromStats)
{
    System sys(smallConfig("bsw", EngineKind::Toleo));
    auto st = sys.run(20000, 10000);
    // Instructions counted only for the measurement phase.
    EXPECT_LT(st.instructions, 10000u * 4 * 20);
}

TEST(System, ConfigPrinterMentionsKeyParts)
{
    std::ostringstream os;
    printConfig({}, os);
    const auto s = os.str();
    EXPECT_NE(s.find("DDR4-3200"), std::string::npos);
    EXPECT_NE(s.find("Toleo"), std::string::npos);
    EXPECT_NE(s.find("skid"), std::string::npos);
}
