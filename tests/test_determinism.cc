/**
 * @file
 * Determinism regression tests for the sweep pipeline.
 *
 * The per-reference hot loop is heavily restructured for speed
 * (per-core private batching, shared-event replay, MRU shortcuts,
 * reciprocal-based bounded draws); these tests pin down the contract
 * that none of it is observable: a fixed seed produces byte-identical
 * statsToJson output across repeated runs and across worker-thread
 * counts, and a sweep survives a throwing cell with a real exception
 * instead of std::terminate.
 */

#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rack.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"

using namespace toleo;

namespace {

SweepOptions
tinyWindow(unsigned jobs)
{
    SweepOptions opts;
    opts.cores = 2;
    opts.warmupRefs = 1000;
    opts.measureRefs = 3000;
    opts.jobs = jobs;
    return opts;
}

std::vector<SweepCell>
smallGrid()
{
    // One engine of each flavor that exercises distinct machinery.
    return makeSweepGrid({"bsw", "redis"},
                         {EngineKind::NoProtect, EngineKind::Toleo,
                          EngineKind::Merkle});
}

std::vector<std::string>
dumpAll(const std::vector<SimStats> &results)
{
    std::vector<std::string> dumps;
    dumps.reserve(results.size());
    for (const auto &stats : results)
        dumps.push_back(statsToJson(stats).dump(2));
    return dumps;
}

} // namespace

TEST(Determinism, SameSeedSameBytesAcrossRuns)
{
    const auto cells = smallGrid();
    const auto a = dumpAll(runSweep(cells, tinyWindow(1)));
    const auto b = dumpAll(runSweep(cells, tinyWindow(1)));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << cells[i].workload << "/"
                              << engineKindName(cells[i].engine);
}

TEST(Determinism, SameSeedSameBytesAcrossJobCounts)
{
    const auto cells = smallGrid();
    const auto serial = dumpAll(runSweep(cells, tinyWindow(1)));
    const auto parallel = dumpAll(runSweep(cells, tinyWindow(4)));
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i])
            << cells[i].workload << "/"
            << engineKindName(cells[i].engine);
}

TEST(Determinism, DifferentSeedsDiffer)
{
    // Sanity check that the byte-compare above is not vacuous.
    SweepOptions a = tinyWindow(1);
    SweepOptions b = tinyWindow(1);
    b.seed = 43;
    const SweepCell cell{"bsw", EngineKind::Toleo};
    EXPECT_NE(statsToJson(runSweepCell(cell, a)).dump(2),
              statsToJson(runSweepCell(cell, b)).dump(2));
}

TEST(SweepErrors, CellExceptionSurfacesAfterJoin)
{
    const auto cells = smallGrid();
    const auto boom = [](const SweepCell &cell,
                         const SweepOptions &opts) -> SimStats {
        if (cell.engine == EngineKind::Merkle)
            throw std::runtime_error("injected cell failure");
        return runSweepCell(cell, opts);
    };
    // Parallel: the exception must cross the worker-thread boundary
    // instead of calling std::terminate.
    EXPECT_THROW(runSweep(cells, tinyWindow(4), {}, nullptr, boom),
                 std::runtime_error);
    // Serial path takes the same capture-and-rethrow route.
    EXPECT_THROW(runSweep(cells, tinyWindow(1), {}, nullptr, boom),
                 std::runtime_error);
}

TEST(SweepErrors, FirstErrorWinsAndStopsDispatch)
{
    const auto cells = smallGrid();
    try {
        runSweep(cells, tinyWindow(1), {}, nullptr,
                 [](const SweepCell &, const SweepOptions &)
                     -> SimStats {
                     throw std::runtime_error("cell 0 failed");
                 });
        FAIL() << "expected runSweep to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "cell 0 failed");
    }
}

namespace {

/**
 * A rack grid covering a contended Toleo cell (memcached runs its
 * device link near saturation, so the arbiter really queues) and a
 * no-device engine, at 3 nodes so the round-robin order matters.
 */
std::vector<SweepCell>
rackGrid()
{
    return makeSweepGrid({"memcached", "bsw"},
                         {EngineKind::Toleo, EngineKind::NoProtect});
}

SweepOptions
rackWindow(unsigned jobs)
{
    SweepOptions opts;
    opts.cores = 2;
    opts.warmupRefs = 2000;
    opts.measureRefs = 6000;
    opts.jobs = jobs;
    opts.rackNodes = 3;
    return opts;
}

std::vector<std::string>
dumpAllRacks(const std::vector<RackStats> &results)
{
    std::vector<std::string> dumps;
    dumps.reserve(results.size());
    for (const auto &stats : results)
        dumps.push_back(rackStatsToJson(stats).dump(2));
    return dumps;
}

} // namespace

TEST(RackDeterminism, SameSeedSameBytesAcrossRuns)
{
    const auto cells = rackGrid();
    const auto a = dumpAllRacks(runRackSweep(cells, rackWindow(1)));
    const auto b = dumpAllRacks(runRackSweep(cells, rackWindow(1)));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << cells[i].workload << "/"
                              << engineKindName(cells[i].engine);
}

TEST(RackDeterminism, SameSeedSameBytesAcrossJobCounts)
{
    // Rack cells are self-contained (each builds its own shared
    // device and arbiter), so worker-thread interleaving must be
    // invisible just like in the single-node sweep.
    const auto cells = rackGrid();
    const auto serial = dumpAllRacks(runRackSweep(cells, rackWindow(1)));
    const auto parallel =
        dumpAllRacks(runRackSweep(cells, rackWindow(4)));
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i])
            << cells[i].workload << "/"
            << engineKindName(cells[i].engine);
}

TEST(RackDeterminism, DifferentSeedsDiffer)
{
    SweepOptions a = rackWindow(1);
    SweepOptions b = rackWindow(1);
    b.seed = 43;
    const SweepCell cell{"memcached", EngineKind::Toleo};
    EXPECT_NE(rackStatsToJson(runRackSweepCell(cell, a)).dump(2),
              rackStatsToJson(runRackSweepCell(cell, b)).dump(2));
}

TEST(SweepTiming, CellSecondsReported)
{
    const auto cells = smallGrid();
    std::vector<double> seconds;
    const auto results = runSweep(cells, tinyWindow(2), {}, &seconds);
    ASSERT_EQ(seconds.size(), cells.size());
    ASSERT_EQ(results.size(), cells.size());
    for (std::size_t i = 0; i < seconds.size(); ++i) {
        EXPECT_GT(seconds[i], 0.0);
        EXPECT_LT(seconds[i], 60.0);
    }
}

namespace {

/** tinyWindow with enough cores that an 8-thread intra-cell pool is
 *  not clamped down to the core count. */
SweepOptions
intraWindow(unsigned jobs, unsigned intra)
{
    SweepOptions opts = tinyWindow(jobs);
    opts.cores = 8;
    opts.intraThreads = intra;
    return opts;
}

} // namespace

// ---------------------------------------------------------------------
// Intra-cell (private-phase) threading: SystemConfig::intraThreads
// runs each core's generator draws and L1/L2 accesses on a worker
// pool, with the shared phase replaying the exact global order.  The
// contract is the same as for --jobs: not observable in the stats.
// ---------------------------------------------------------------------

TEST(IntraThreadDeterminism, SameSeedSameBytesAcrossThreadCounts)
{
    const auto cells = smallGrid();
    const auto one = dumpAll(runSweep(cells, intraWindow(1, 1)));
    const auto two = dumpAll(runSweep(cells, intraWindow(1, 2)));
    const auto eight = dumpAll(runSweep(cells, intraWindow(1, 8)));
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, eight);
}

TEST(IntraThreadDeterminism, ComposesWithCrossCellJobs)
{
    // jobs x intraThreads: every cell gets its own pool while the
    // cells themselves run on the cross-cell pool.
    const auto cells = smallGrid();
    const auto serial = dumpAll(runSweep(cells, intraWindow(1, 1)));
    const auto composed = dumpAll(runSweep(cells, intraWindow(4, 2)));
    EXPECT_EQ(serial, composed);
}

TEST(IntraThreadDeterminism, RackNodesSameBytesAcrossThreadCounts)
{
    const auto cells = rackGrid();
    SweepOptions w1 = rackWindow(1);
    SweepOptions w2 = rackWindow(1);
    w2.intraThreads = 2;
    SweepOptions w8 = rackWindow(1);
    w8.intraThreads = 8; // clamped to the per-node core count
    const auto one = dumpAllRacks(runRackSweep(cells, w1));
    const auto two = dumpAllRacks(runRackSweep(cells, w2));
    const auto eight = dumpAllRacks(runRackSweep(cells, w8));
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, eight);
}

namespace {

/** An open-loop grid: request-shaped apps plus a classic mix
 *  workload, all under a Poisson arrival process. */
std::vector<SweepCell>
openGrid()
{
    return makeSweepGrid({"kvs", "nat", "redis"},
                         {EngineKind::NoProtect, EngineKind::Toleo});
}

SweepOptions
openWindow(unsigned jobs, unsigned intra = 1)
{
    SweepOptions opts;
    opts.cores = 8;
    opts.warmupRefs = 1000;
    opts.measureRefs = 3000;
    opts.jobs = jobs;
    opts.intraThreads = intra;
    opts.arrival.kind = ArrivalKind::Poisson;
    opts.arrival.ratePerSec = 2e6;
    return opts;
}

} // namespace

// ---------------------------------------------------------------------
// Open-loop serving: the arrival overlay (per-request latency, SLO
// attainment, the latency histogram) obeys the exact same determinism
// contract as the rest of the stats -- fixed seed => byte-identical
// serving block across runs, worker counts, and intra-cell pools.
// ---------------------------------------------------------------------

TEST(ServingDeterminism, SameSeedSameBytesAcrossRuns)
{
    const auto cells = openGrid();
    const auto a = dumpAll(runSweep(cells, openWindow(1)));
    const auto b = dumpAll(runSweep(cells, openWindow(1)));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << cells[i].workload << "/"
                              << engineKindName(cells[i].engine);
        // Not vacuous: every dump really carries a serving block.
        EXPECT_NE(a[i].find("\"serving\""), std::string::npos);
    }
}

TEST(ServingDeterminism, SameSeedSameBytesAcrossJobCounts)
{
    const auto cells = openGrid();
    EXPECT_EQ(dumpAll(runSweep(cells, openWindow(1))),
              dumpAll(runSweep(cells, openWindow(4))));
}

TEST(ServingDeterminism, SameSeedSameBytesAcrossIntraThreadCounts)
{
    // Request boundaries are staged in the parallel private phase but
    // finalized in deterministic shared-phase round order, so the
    // intra-cell pool size must be invisible here too.
    const auto cells = openGrid();
    EXPECT_EQ(dumpAll(runSweep(cells, openWindow(1, 1))),
              dumpAll(runSweep(cells, openWindow(1, 8))));
}

TEST(ServingDeterminism, RackSameBytesAcrossRunsAndThreads)
{
    const auto cells =
        makeSweepGrid({"kvs"}, {EngineKind::Toleo});
    SweepOptions w = openWindow(1);
    w.rackNodes = 2;
    SweepOptions w8 = openWindow(1, 8);
    w8.rackNodes = 2;
    const auto a = dumpAllRacks(runRackSweep(cells, w));
    const auto b = dumpAllRacks(runRackSweep(cells, w));
    const auto c = dumpAllRacks(runRackSweep(cells, w8));
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
    ASSERT_EQ(a.size(), 1u);
    EXPECT_NE(a[0].find("\"serving\""), std::string::npos);
}

TEST(SweepTiming, PhaseBreakdownReported)
{
    const auto cells = smallGrid();
    std::vector<PhaseTimes> phases;
    const auto results =
        runSweep(cells, tinyWindow(1), {}, nullptr, {}, &phases);
    ASSERT_EQ(phases.size(), cells.size());
    for (const auto &ph : phases) {
        // Every cell simulates real work in both phases; the epoch
        // accumulator can be arbitrarily small but never negative.
        EXPECT_GT(ph.privateNs, 0.0);
        EXPECT_GT(ph.sharedNs, 0.0);
        EXPECT_GE(ph.epochNs, 0.0);
    }
    // Enabling the timers must not perturb the simulation itself.
    EXPECT_EQ(dumpAll(results), dumpAll(runSweep(cells, tinyWindow(1))));
}
