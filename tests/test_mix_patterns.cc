/**
 * @file
 * Tests for the workload pattern primitives added for the paper's
 * locality structure: PageLocalRandom (frontier/community locality),
 * clustered Zipf (tree layouts), and burst semantics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <unordered_set>
#include <utility>

#include "workload/mix.hh"

using namespace toleo;

namespace {

WorkloadInfo
info()
{
    return {"t", "t", 0, 0.0, 4 * MiB, 1.0};
}

MixWorkload
single(const StreamSpec &s, std::uint64_t seed = 1)
{
    return MixWorkload(info(), {{s}, 4.0}, 0, seed);
}

} // namespace

TEST(PageLocal, AccessesConcentrateOnActivePages)
{
    StreamSpec s;
    s.pattern = Pattern::PageLocalRandom;
    s.regionBytes = 4 * MiB;
    s.activePages = 8;
    s.pageTurnover = 0.0; // frozen active set
    auto w = single(s);
    std::unordered_set<PageNum> pages;
    for (int i = 0; i < 10000; ++i)
        pages.insert(pageOf(w.next().addr));
    EXPECT_LE(pages.size(), 8u);
}

TEST(PageLocal, TurnoverGrowsFootprint)
{
    StreamSpec s;
    s.pattern = Pattern::PageLocalRandom;
    s.regionBytes = 4 * MiB;
    s.activePages = 8;
    s.pageTurnover = 0.05;
    auto w = single(s);
    std::unordered_set<PageNum> pages;
    for (int i = 0; i < 50000; ++i)
        pages.insert(pageOf(w.next().addr));
    EXPECT_GT(pages.size(), 100u);
}

TEST(PageLocal, HigherTurnoverTouchesMorePages)
{
    auto count = [](double turnover) {
        StreamSpec s;
        s.pattern = Pattern::PageLocalRandom;
        s.regionBytes = 4 * MiB;
        s.activePages = 8;
        s.pageTurnover = turnover;
        auto w = single(s, 5);
        std::unordered_set<PageNum> pages;
        for (int i = 0; i < 30000; ++i)
            pages.insert(pageOf(w.next().addr));
        return pages.size();
    };
    EXPECT_GT(count(0.1), count(0.01));
}

TEST(PageLocal, BurstStaysInPage)
{
    StreamSpec s;
    s.pattern = Pattern::PageLocalRandom;
    s.regionBytes = 4 * MiB;
    s.activePages = 4;
    s.pageTurnover = 0.02;
    s.burstBlocks = 4;
    auto w = single(s);
    for (int i = 0; i < 4000; i += 4) {
        const PageNum page = pageOf(w.next().addr);
        for (int j = 1; j < 4; ++j)
            EXPECT_EQ(pageOf(w.next().addr), page);
    }
}

TEST(PageLocal, BurstBlocksAreAdjacent)
{
    StreamSpec s;
    s.pattern = Pattern::PageLocalRandom;
    s.regionBytes = 1 * MiB;
    s.activePages = 2;
    s.burstBlocks = 3;
    auto w = single(s);
    for (int i = 0; i < 300; i += 3) {
        const Addr a0 = w.next().addr;
        EXPECT_EQ(w.next().addr, blockAlign(a0) + blockSize);
        EXPECT_EQ(w.next().addr, blockAlign(a0) + 2 * blockSize);
    }
}

TEST(ZipfClustered, HotRanksAreContiguousBlocks)
{
    StreamSpec s;
    s.pattern = Pattern::Zipf;
    s.regionBytes = 4 * MiB;
    s.theta = 1.2;
    s.clustered = true;
    auto w = single(s);
    // With a clustered (tree) layout, the bulk of accesses land in
    // the first pages of the region.
    std::map<PageNum, int> counts;
    PageNum first = ~PageNum{0};
    for (int i = 0; i < 20000; ++i) {
        const PageNum p = pageOf(w.next().addr);
        first = std::min(first, p);
        ++counts[p];
    }
    int head = 0, total = 0;
    for (auto &[p, n] : counts) {
        total += n;
        if (p < first + 4)
            head += n;
    }
    EXPECT_GT(static_cast<double>(head) / total, 0.5);
}

TEST(ZipfScattered, HotRanksSpreadAcrossPages)
{
    StreamSpec s;
    s.pattern = Pattern::Zipf;
    s.regionBytes = 4 * MiB;
    s.theta = 1.2;
    s.clustered = false;
    auto w = single(s);
    std::unordered_set<PageNum> pages;
    for (int i = 0; i < 20000; ++i)
        pages.insert(pageOf(w.next().addr));
    // Hash layout: even the hot head spans many pages.
    EXPECT_GT(pages.size(), 50u);
}

namespace {

/** Observed [min, max] of instGap over @p draws references. */
std::pair<std::uint32_t, std::uint32_t>
gapRange(double meanGap, int draws = 20000)
{
    StreamSpec s;
    s.pattern = Pattern::HotSeq;
    s.regionBytes = 64 * KiB;
    MixWorkload w(info(), {{s}, meanGap}, 0, 7);
    std::uint32_t lo = ~std::uint32_t{0}, hi = 0;
    for (int i = 0; i < draws; ++i) {
        const std::uint32_t g = w.next().instGap;
        lo = std::min(lo, g);
        hi = std::max(hi, g);
    }
    return {lo, hi};
}

} // namespace

TEST(MixGap, JitterSpansHalfToOneAndAHalfTimesTheMean)
{
    // The nominal case every paper workload uses: meanGap 8 jitters
    // uniformly over [4, 12], and a long run hits both endpoints.
    const auto [lo, hi] = gapRange(8.0);
    EXPECT_EQ(lo, 4u);
    EXPECT_EQ(hi, 12u);
}

TEST(MixGap, SmallMeanGapStaysWellFormed)
{
    // llama2-gen runs with meanGap 1: truncation collapses the
    // jitter to [0, 1], which must stay a valid (non-inverted)
    // range rather than feed the RNG an empty interval.
    const auto [lo1, hi1] = gapRange(1.0);
    EXPECT_EQ(lo1, 0u);
    EXPECT_EQ(hi1, 1u);

    // Sub-unit and zero gaps degenerate to always-0, not a panic.
    const auto [lo_half, hi_half] = gapRange(0.5, 2000);
    EXPECT_EQ(lo_half, 0u);
    EXPECT_EQ(hi_half, 0u);
    const auto [lo0, hi0] = gapRange(0.0, 2000);
    EXPECT_EQ(lo0, 0u);
    EXPECT_EQ(hi0, 0u);
}

TEST(MixGap, NegativeMeanGapIsClampedToZero)
{
    // A negative meanGap used to reach a float->unsigned cast (UB)
    // and could invert the range; it now clamps to gap 0.
    const auto [lo, hi] = gapRange(-3.0, 2000);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 0u);
}

TEST(MixGap, NonFiniteAndOversizedMeanGapsAreGuarded)
{
    // +inf and NaN would also hit the float->unsigned UB cast; they
    // degrade to gap 0.
    const auto [ilo, ihi] =
        gapRange(std::numeric_limits<double>::infinity(), 500);
    EXPECT_EQ(ilo, 0u);
    EXPECT_EQ(ihi, 0u);
    const auto [nlo, nhi] = gapRange(std::nan(""), 500);
    EXPECT_EQ(nlo, 0u);
    EXPECT_EQ(nhi, 0u);

    // A finite but absurd mean is capped so 1.5g still fits the u32
    // instGap field and the range stays well-formed.
    const auto [blo, bhi] = gapRange(1e18, 500);
    EXPECT_LE(blo, bhi);
    EXPECT_GE(blo, std::uint32_t{1} << 29);
}

TEST(MixWorkload, StreamStrideRespected)
{
    StreamSpec s;
    s.pattern = Pattern::StreamSeq;
    s.regionBytes = 1 * MiB;
    s.strideBytes = 64;
    auto w = single(s);
    const Addr a0 = w.next().addr;
    EXPECT_EQ(w.next().addr, a0 + 64);
    EXPECT_EQ(w.next().addr, a0 + 128);
}
