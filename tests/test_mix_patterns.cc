/**
 * @file
 * Tests for the workload pattern primitives added for the paper's
 * locality structure: PageLocalRandom (frontier/community locality),
 * clustered Zipf (tree layouts), and burst semantics.
 */

#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

#include "workload/mix.hh"

using namespace toleo;

namespace {

WorkloadInfo
info()
{
    return {"t", "t", 0, 0.0, 4 * MiB, 1.0};
}

MixWorkload
single(const StreamSpec &s, std::uint64_t seed = 1)
{
    return MixWorkload(info(), {{s}, 4.0}, 0, seed);
}

} // namespace

TEST(PageLocal, AccessesConcentrateOnActivePages)
{
    StreamSpec s;
    s.pattern = Pattern::PageLocalRandom;
    s.regionBytes = 4 * MiB;
    s.activePages = 8;
    s.pageTurnover = 0.0; // frozen active set
    auto w = single(s);
    std::unordered_set<PageNum> pages;
    for (int i = 0; i < 10000; ++i)
        pages.insert(pageOf(w.next().addr));
    EXPECT_LE(pages.size(), 8u);
}

TEST(PageLocal, TurnoverGrowsFootprint)
{
    StreamSpec s;
    s.pattern = Pattern::PageLocalRandom;
    s.regionBytes = 4 * MiB;
    s.activePages = 8;
    s.pageTurnover = 0.05;
    auto w = single(s);
    std::unordered_set<PageNum> pages;
    for (int i = 0; i < 50000; ++i)
        pages.insert(pageOf(w.next().addr));
    EXPECT_GT(pages.size(), 100u);
}

TEST(PageLocal, HigherTurnoverTouchesMorePages)
{
    auto count = [](double turnover) {
        StreamSpec s;
        s.pattern = Pattern::PageLocalRandom;
        s.regionBytes = 4 * MiB;
        s.activePages = 8;
        s.pageTurnover = turnover;
        auto w = single(s, 5);
        std::unordered_set<PageNum> pages;
        for (int i = 0; i < 30000; ++i)
            pages.insert(pageOf(w.next().addr));
        return pages.size();
    };
    EXPECT_GT(count(0.1), count(0.01));
}

TEST(PageLocal, BurstStaysInPage)
{
    StreamSpec s;
    s.pattern = Pattern::PageLocalRandom;
    s.regionBytes = 4 * MiB;
    s.activePages = 4;
    s.pageTurnover = 0.02;
    s.burstBlocks = 4;
    auto w = single(s);
    for (int i = 0; i < 4000; i += 4) {
        const PageNum page = pageOf(w.next().addr);
        for (int j = 1; j < 4; ++j)
            EXPECT_EQ(pageOf(w.next().addr), page);
    }
}

TEST(PageLocal, BurstBlocksAreAdjacent)
{
    StreamSpec s;
    s.pattern = Pattern::PageLocalRandom;
    s.regionBytes = 1 * MiB;
    s.activePages = 2;
    s.burstBlocks = 3;
    auto w = single(s);
    for (int i = 0; i < 300; i += 3) {
        const Addr a0 = w.next().addr;
        EXPECT_EQ(w.next().addr, blockAlign(a0) + blockSize);
        EXPECT_EQ(w.next().addr, blockAlign(a0) + 2 * blockSize);
    }
}

TEST(ZipfClustered, HotRanksAreContiguousBlocks)
{
    StreamSpec s;
    s.pattern = Pattern::Zipf;
    s.regionBytes = 4 * MiB;
    s.theta = 1.2;
    s.clustered = true;
    auto w = single(s);
    // With a clustered (tree) layout, the bulk of accesses land in
    // the first pages of the region.
    std::map<PageNum, int> counts;
    PageNum first = ~PageNum{0};
    for (int i = 0; i < 20000; ++i) {
        const PageNum p = pageOf(w.next().addr);
        first = std::min(first, p);
        ++counts[p];
    }
    int head = 0, total = 0;
    for (auto &[p, n] : counts) {
        total += n;
        if (p < first + 4)
            head += n;
    }
    EXPECT_GT(static_cast<double>(head) / total, 0.5);
}

TEST(ZipfScattered, HotRanksSpreadAcrossPages)
{
    StreamSpec s;
    s.pattern = Pattern::Zipf;
    s.regionBytes = 4 * MiB;
    s.theta = 1.2;
    s.clustered = false;
    auto w = single(s);
    std::unordered_set<PageNum> pages;
    for (int i = 0; i < 20000; ++i)
        pages.insert(pageOf(w.next().addr));
    // Hash layout: even the hot head spans many pages.
    EXPECT_GT(pages.size(), 50u);
}

TEST(MixWorkload, StreamStrideRespected)
{
    StreamSpec s;
    s.pattern = Pattern::StreamSeq;
    s.regionBytes = 1 * MiB;
    s.strideBytes = 64;
    auto w = single(s);
    const Addr a0 = w.next().addr;
    EXPECT_EQ(w.next().addr, a0 + 64);
    EXPECT_EQ(w.next().addr, a0 + 128);
}
