/**
 * @file
 * Tests for the workload generators: determinism, footprint
 * containment, pattern properties, and the qualitative orderings of
 * Table 2 (which workloads are memory-intensive, which are
 * write-heavy).
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "workload/mix.hh"
#include "workload/workload.hh"

using namespace toleo;

TEST(Workload, AllPaperWorkloadsExist)
{
    EXPECT_EQ(paperWorkloads().size(), 12u);
    for (const auto &name : paperWorkloads()) {
        auto gen = makeWorkload(name, 0, 1);
        ASSERT_NE(gen, nullptr);
        EXPECT_EQ(gen->info().name, name);
    }
}

TEST(Workload, UnknownNameIsFatal)
{
    EXPECT_DEATH((void)makeWorkload("nope", 0, 1), "unknown workload");
}

TEST(Workload, Deterministic)
{
    auto a = makeWorkload("pr", 0, 7);
    auto b = makeWorkload("pr", 0, 7);
    for (int i = 0; i < 10000; ++i) {
        auto ra = a->next();
        auto rb = b->next();
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.isWrite, rb.isWrite);
        EXPECT_EQ(ra.instGap, rb.instGap);
    }
}

TEST(Workload, CoresUseDisjointRegions)
{
    auto a = makeWorkload("bsw", 0, 7);
    auto b = makeWorkload("bsw", 1, 7);
    std::unordered_set<PageNum> pa, pb;
    for (int i = 0; i < 20000; ++i) {
        pa.insert(pageOf(a->next().addr));
        pb.insert(pageOf(b->next().addr));
    }
    for (auto p : pa)
        EXPECT_EQ(pb.count(p), 0u);
}

TEST(Workload, Table2MetadataPresent)
{
    for (const auto &name : paperWorkloads()) {
        auto info = workloadInfo(name);
        EXPECT_GT(info.paperRssBytes, 1 * GiB) << name;
        EXPECT_GT(info.paperLlcMpki, 0.0) << name;
        EXPECT_GT(info.mlp, 0.0) << name;
    }
}

TEST(Workload, PrIsMostMemoryIntensivePerPaper)
{
    double pr = workloadInfo("pr").paperLlcMpki;
    for (const auto &name : paperWorkloads())
        EXPECT_LE(workloadInfo(name).paperLlcMpki, pr) << name;
}

TEST(Workload, StreamingWorkloadsAreWriteRegular)
{
    // bsw writes must be overwhelmingly sequential: consecutive write
    // addresses in the same or next block.
    auto gen = makeWorkload("bsw", 0, 3);
    Addr last_write = 0;
    int seq = 0, total = 0;
    for (int i = 0; i < 200000; ++i) {
        auto r = gen->next();
        if (!r.isWrite)
            continue;
        if (last_write != 0) {
            ++total;
            const auto delta = r.addr - last_write;
            if (r.addr >= last_write && delta <= blockSize)
                ++seq;
        }
        last_write = r.addr;
    }
    ASSERT_GT(total, 100);
    EXPECT_GT(static_cast<double>(seq) / total, 0.9);
}

TEST(Workload, KvStoreSpreadsBeyondHotSet)
{
    auto gen = makeWorkload("redis", 0, 3);
    std::unordered_set<PageNum> pages;
    for (int i = 0; i < 400000; ++i)
        pages.insert(pageOf(gen->next().addr));
    // Gaussian draws plus the background scan cover far more pages
    // than the hot metadata region (6 pages) alone.
    EXPECT_GT(pages.size(), 40u);
    // The declared RSS (cold value space) is much larger than the
    // in-window touch set -- that gap is what keeps 98% of KV pages
    // flat in Fig 10.
    const auto info = workloadInfo("redis");
    EXPECT_GT(info.simFootprintBytes / pageSize, 4 * pages.size());
}

TEST(Workload, GapsMatchConfiguredMean)
{
    auto gen = makeWorkload("llama2-gen", 0, 3);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += gen->next().instGap;
    // llama2-gen mean gap is 1.0, jitter [0.5g, 1.5g].
    EXPECT_NEAR(sum / n, 1.0, 0.5);
}

TEST(Workload, FootprintWithinDeclaredRegion)
{
    for (const auto &name : paperWorkloads()) {
        auto info = workloadInfo(name);
        auto gen = makeWorkload(name, 2, 9);
        Addr lo = ~Addr{0}, hi = 0;
        for (int i = 0; i < 50000; ++i) {
            auto r = gen->next();
            lo = std::min(lo, r.addr);
            hi = std::max(hi, r.addr);
        }
        // All refs stay in core 2's 1 TiB slice.
        EXPECT_GE(lo, Addr{3} << 40) << name;
        EXPECT_LT(hi, Addr{4} << 40) << name;
        (void)info;
    }
}

TEST(MixWorkload, HotSeqWrapsAround)
{
    StreamSpec s;
    s.pattern = Pattern::HotSeq;
    s.regionBytes = 1024;
    s.strideBytes = 512;
    MixSpec mix{{s}, 4.0};
    WorkloadInfo info{"t", "t", 0, 0, 1024, 1.0};
    MixWorkload w(info, mix, 0, 1);
    std::set<Addr> addrs;
    for (int i = 0; i < 8; ++i)
        addrs.insert(w.next().addr);
    EXPECT_EQ(addrs.size(), 2u); // only two stride positions
}

TEST(MixWorkload, WriteProbRespected)
{
    StreamSpec s;
    s.pattern = Pattern::UniformRandom;
    s.regionBytes = 1 * MiB;
    s.writeProb = 0.25;
    MixSpec mix{{s}, 4.0};
    WorkloadInfo info{"t", "t", 0, 0, 1 * MiB, 1.0};
    MixWorkload w(info, mix, 0, 1);
    int writes = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        writes += w.next().isWrite;
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.25, 0.02);
}

TEST(MixWorkload, GaussBurstStaysInPage)
{
    StreamSpec s;
    s.pattern = Pattern::GaussPage;
    s.regionBytes = 1 * MiB;
    s.sigmaPages = 16;
    s.burstBlocks = 4;
    MixSpec mix{{s}, 4.0};
    WorkloadInfo info{"t", "t", 0, 0, 1 * MiB, 1.0};
    MixWorkload w(info, mix, 0, 1);
    PageNum cur_page = 0;
    for (int i = 0; i < 10000; ++i) {
        auto r = w.next();
        if (i % 4 == 0)
            cur_page = pageOf(r.addr);
        else
            EXPECT_EQ(pageOf(r.addr), cur_page);
    }
}
