cmake_minimum_required(VERSION 3.16)

# Include-convention lint, run as the ctest "include_convention"
# test.  Quoted includes must resolve against one of the two include
# roots the build defines:
#   - src-relative for library headers:  "common/logging.hh"
#   - repo-root-relative outside src/:   "bench/bench_util.hh"
# Anything else ("bench_util.hh", "../sim/system.hh") would compile
# only by accident of the including file's directory.
set(repo_root "${CMAKE_CURRENT_LIST_DIR}/..")
set(allowed_prefixes
    cache common crypto mem secmem sim toleo workload bench)

file(GLOB_RECURSE sources
  "${repo_root}/src/*.cc" "${repo_root}/src/*.hh"
  "${repo_root}/tests/*.cc" "${repo_root}/bench/*.cc"
  "${repo_root}/bench/*.hh" "${repo_root}/examples/*.cpp"
  "${repo_root}/tools/*.cc")

set(bad "")
foreach(source IN LISTS sources)
  file(STRINGS "${source}" lines REGEX "^#include \"")
  foreach(line IN LISTS lines)
    string(REGEX MATCH "#include \"([^\"]+)\"" _ "${line}")
    set(path "${CMAKE_MATCH_1}")
    string(REGEX MATCH "^([^/]+)/" _ "${path}")
    set(prefix "${CMAKE_MATCH_1}")
    if(NOT prefix IN_LIST allowed_prefixes)
      list(APPEND bad "${source}: ${line}")
    endif()
  endforeach()
endforeach()

if(bad)
  list(JOIN bad "\n  " bad_text)
  message(FATAL_ERROR
    "non-conforming #include paths (want src-relative or "
    "repo-root-relative):\n  ${bad_text}")
endif()
