/**
 * @file
 * Tests for the protection engines: guarantee matrix (Table 1),
 * MAC-cache behaviour of CI, Merkle walk depth, InvisiMem padding,
 * and the Toleo engine's stealth-cache / device interaction.
 */

#include <gtest/gtest.h>

#include "secmem/ci.hh"
#include "secmem/invisimem.hh"
#include "secmem/merkle.hh"
#include "secmem/noprotect.hh"
#include "toleo/engine.hh"

using namespace toleo;

namespace {

BlockNum
blk(PageNum pg, unsigned idx)
{
    return (pg << (pageBits - blockBits)) | idx;
}

ToleoDeviceConfig
devConfig()
{
    ToleoDeviceConfig cfg;
    cfg.capacityBytes = 100 * MiB;
    cfg.protectedBytes = 1 * GiB;
    cfg.trip.resetLog2 = 63;
    return cfg;
}

} // namespace

TEST(GuaranteeMatrix, MatchesTable1)
{
    MemTopology topo({});
    NoProtectEngine np(topo);
    CiConfig c_only;
    c_only.integrity = false;
    CiEngine c(topo, c_only);
    CiEngine ci(topo, {});
    ToleoDevice dev(devConfig());
    ToleoEngine tol(topo, dev, {});
    InvisiMemEngine inv(topo, {});

    // NoProtect: nothing.
    EXPECT_FALSE(np.confidentiality());
    EXPECT_FALSE(np.integrity());
    EXPECT_FALSE(np.freshness());

    // Scalable-SGX-like CI: C+I over full memory, no freshness.
    EXPECT_TRUE(ci.confidentiality());
    EXPECT_TRUE(ci.integrity());
    EXPECT_FALSE(ci.freshness());
    EXPECT_TRUE(ci.fullMemory());
    EXPECT_FALSE(c.integrity());

    // Toleo: all three over full memory (the paper's row).
    EXPECT_TRUE(tol.confidentiality());
    EXPECT_TRUE(tol.integrity());
    EXPECT_TRUE(tol.freshness());
    EXPECT_TRUE(tol.fullMemory());

    // InvisiMem: CIF but not economically full-memory.
    EXPECT_TRUE(inv.freshness());
    EXPECT_FALSE(inv.fullMemory());

    // Client-SGX-style Merkle at 28 TB is not feasible.
    MerkleConfig mcfg;
    MerkleTreeEngine merkle(topo, mcfg);
    EXPECT_TRUE(merkle.freshness());
    EXPECT_FALSE(merkle.fullMemory());
}

TEST(CiEngine, ReadAddsAesLatency)
{
    MemTopology topo({});
    CiConfig cfg;
    cfg.integrity = false;
    CiEngine c(topo, cfg);
    auto cost = c.onRead(blk(1, 0));
    EXPECT_NEAR(cost.latencyNs, 40.0 / 2.25, 1e-9);
    EXPECT_EQ(cost.metaBytes, 0u);
}

TEST(CiEngine, MacMissFetchesMacBlock)
{
    MemTopology topo({});
    CiEngine ci(topo, {});
    auto cost = ci.onRead(blk(1, 0));
    EXPECT_EQ(cost.metaBytes, blockSize); // cold MAC block
    // Adjacent blocks share the MAC block: second read hits.
    auto cost2 = ci.onRead(blk(1, 1));
    EXPECT_EQ(cost2.metaBytes, 0u);
    EXPECT_GT(ci.macCacheHitRate(), 0.0);
}

TEST(CiEngine, MacCacheMissLatencyExceedsHit)
{
    MemTopology topo({});
    CiEngine ci(topo, {});
    auto miss = ci.onRead(blk(5, 0));
    auto hit = ci.onRead(blk(5, 1));
    EXPECT_GT(miss.latencyNs, hit.latencyNs);
}

TEST(CiEngine, EightBlocksPerMacBlock)
{
    MemTopology topo({});
    CiEngine ci(topo, {});
    // Blocks 0..7 share one MAC block; block 8 starts a new one.
    ci.onRead(blk(0, 0));
    for (unsigned i = 1; i < 8; ++i)
        EXPECT_EQ(ci.onRead(blk(0, i)).metaBytes, 0u);
    EXPECT_EQ(ci.onRead(blk(0, 8)).metaBytes, blockSize);
}

TEST(CiEngine, DirtyMacBlocksWriteBack)
{
    MemTopology topo({});
    CiConfig cfg;
    cfg.macCacheBytes = 2 * blockSize; // 2-entry MAC cache
    cfg.macCacheAssoc = 2;
    CiEngine ci(topo, cfg);
    ci.onWriteback(blk(0, 0));  // dirty MAC block 0
    ci.onWriteback(blk(10, 0)); // dirty MAC block for page 10
    auto cost = ci.onRead(blk(20, 0)); // evicts a dirty victim
    EXPECT_GE(cost.metaBytes, 2 * blockSize); // fetch + writeback
    EXPECT_GE(ci.stats().counter("mac_writebacks").value(), 1u);
}

TEST(Merkle, LevelCountGrowsWithProtectedMemory)
{
    MemTopology topo({});
    MerkleConfig small;
    small.protectedBytes = 128 * MiB;
    MerkleConfig big;
    big.protectedBytes = 28 * TiB;
    MerkleTreeEngine se(topo, small), be(topo, big);
    EXPECT_GT(be.numLevels(), se.numLevels());
    // 28 TB, 8-ary: the paper quotes ~13 dependent accesses.
    EXPECT_GE(be.numLevels(), 12u);
    EXPECT_LE(be.numLevels(), 15u);
}

TEST(Merkle, ColdReadWalksManyLevels)
{
    MemTopology topo({});
    MerkleConfig cfg;
    cfg.protectedBytes = 28 * TiB;
    MerkleTreeEngine m(topo, cfg);
    auto cost = m.onRead(blk(123456, 0));
    EXPECT_GE(cost.metaBytes, 12 * blockSize);
    // Warm read stops at the first cached level.
    auto cost2 = m.onRead(blk(123456, 1));
    EXPECT_LE(cost2.metaBytes, blockSize);
}

TEST(Merkle, SharedAncestorsShortenWalks)
{
    MemTopology topo({});
    MerkleConfig cfg;
    cfg.protectedBytes = 28 * TiB;
    MerkleTreeEngine m(topo, cfg);
    m.onRead(blk(1000, 0));
    // A neighbouring page shares upper levels: shorter walk.
    auto cost = m.onRead(blk(1001, 0));
    EXPECT_LT(cost.metaBytes, 12 * blockSize);
}

TEST(InvisiMem, PacketPaddingOnEveryAccess)
{
    MemTopology topo({});
    InvisiMemConfig cfg;
    InvisiMemEngine inv(topo, cfg);
    EXPECT_EQ(inv.onRead(blk(1, 0)).metaBytes, cfg.packetOverheadBytes);
    EXPECT_EQ(inv.onWriteback(blk(1, 0)).metaBytes,
              cfg.packetOverheadBytes);
}

TEST(InvisiMem, DummyPacketsPadIdleEpochs)
{
    MemTopology topo({});
    InvisiMemEngine inv(topo, {});
    inv.onRead(blk(1, 0));
    const auto pad = inv.padEpoch(1000.0);
    EXPECT_GT(pad, 0u); // one access nowhere near the constant rate
    EXPECT_EQ(inv.dummyBytes(), pad);
}

TEST(InvisiMem, BusyEpochsNeedLessPadding)
{
    MemTopology topo({});
    InvisiMemEngine a(topo, {}), b(topo, {});
    a.onRead(blk(1, 0));
    for (int i = 0; i < 200; ++i)
        b.onRead(blk(1, i % 64));
    EXPECT_GT(a.padEpoch(100.0), b.padEpoch(100.0));
}

TEST(ToleoEngine, StealthMissFetchesFromDevice)
{
    MemTopology topo({});
    ToleoDevice dev(devConfig());
    ToleoEngine eng(topo, dev, {});
    auto cost = eng.onRead(blk(1, 0));
    EXPECT_GT(cost.toleoBytes, 0u); // cold stealth miss
    auto cost2 = eng.onRead(blk(1, 1));
    EXPECT_EQ(cost2.toleoBytes, 0u); // flat entry now cached
}

TEST(ToleoEngine, WritebackUpdatesDeviceVersion)
{
    MemTopology topo({});
    ToleoDevice dev(devConfig());
    ToleoEngine eng(topo, dev, {});
    const auto v0 = dev.fullVersion(blk(2, 0));
    eng.onWriteback(blk(2, 0));
    EXPECT_NE(dev.fullVersion(blk(2, 0)), v0);
    EXPECT_EQ(dev.stats().counter("update_reqs").value(), 1u);
}

TEST(ToleoEngine, UpgradeInvalidatesCachedEntries)
{
    MemTopology topo({});
    ToleoDevice dev(devConfig());
    ToleoEngine eng(topo, dev, {});
    eng.onWriteback(blk(3, 0));
    eng.onWriteback(blk(3, 0)); // upgrade flat -> uneven
    EXPECT_EQ(dev.formatOf(3), TripFormat::Uneven);
    // Next read must miss (stale overflow entry dropped).
    auto cost = eng.onRead(blk(3, 0));
    EXPECT_GT(cost.toleoBytes, 0u);
}

TEST(ToleoEngine, ResetChargesReencryption)
{
    MemTopology topo({});
    auto dcfg = devConfig();
    dcfg.trip.resetLog2 = 0; // reset on every leading increment
    ToleoDevice dev(dcfg);
    ToleoEngine eng(topo, dev, {});
    auto cost = eng.onWriteback(blk(4, 0));
    EXPECT_GE(cost.metaBytes, 2 * blocksPerPage * blockSize);
    EXPECT_EQ(eng.stats().counter("page_reencryptions").value(), 1u);
}

TEST(ToleoEngine, AddedSramMatchesPaper)
{
    MemTopology topo({});
    ToleoDevice dev(devConfig());
    ToleoEngine eng(topo, dev, {});
    EXPECT_EQ(eng.addedSramBytes(), 31 * KiB); // Section 7.3
}
