/**
 * @file
 * Tests for the scaled-node construction (makeScaledConfig) and the
 * channel throughput floor -- the two pieces of simulation
 * methodology the calibrated results depend on.
 */

#include <gtest/gtest.h>

#include "mem/topology.hh"
#include "sim/system.hh"

using namespace toleo;

TEST(ScaledConfig, BandwidthScalesWithCores)
{
    const auto c8 = makeScaledConfig("bsw", EngineKind::Toleo, 8);
    const auto c16 = makeScaledConfig("bsw", EngineKind::Toleo, 16);
    const double bw8 = c8.mem.ddrChannels * c8.mem.ddrBandwidthGBps +
                       c8.mem.cxlPoolBandwidthGBps;
    const double bw16 =
        c16.mem.ddrChannels * c16.mem.ddrBandwidthGBps +
        c16.mem.cxlPoolBandwidthGBps;
    EXPECT_NEAR(bw16 / bw8, 2.0, 0.05);
}

TEST(ScaledConfig, ToleoLinkKeepsPaperRatio)
{
    // 3.32 GB/s of 89.5 GB/s data bandwidth = 3.7% in Table 3; the
    // ratio decides whether the version link can bottleneck.
    for (unsigned cores : {4u, 8u, 16u, 32u}) {
        const auto cfg =
            makeScaledConfig("bsw", EngineKind::Toleo, cores);
        const double data =
            cfg.mem.ddrChannels * cfg.mem.ddrBandwidthGBps +
            cfg.mem.cxlPoolBandwidthGBps;
        EXPECT_NEAR(cfg.mem.toleoLinkBandwidthGBps / data, 0.037,
                    1e-6)
            << cores;
    }
}

TEST(ScaledConfig, DesignConstantsStayAtPaperValues)
{
    const auto cfg = makeScaledConfig("bsw", EngineKind::Toleo, 8);
    // The design under study must not be scaled away.
    EXPECT_EQ(cfg.toleo.stealth.tlbEntries, 256u);
    EXPECT_EQ(cfg.toleo.stealth.tlbExtBytes, 12u);
    EXPECT_EQ(cfg.toleo.stealth.overflowBytes, 28 * KiB);
    EXPECT_EQ(cfg.device.trip.stealthBits, 27u);
    EXPECT_EQ(cfg.device.trip.uvBits, 37u);
    EXPECT_EQ(cfg.device.trip.resetLog2, 20u);
    EXPECT_EQ(cfg.ci.crypto.aesLatency, 40u);
    EXPECT_DOUBLE_EQ(cfg.mem.toleoLinkLatencyNs, 95.0);
}

TEST(ScaledConfig, MacCacheTracksToleoEngineConfig)
{
    const auto cfg = makeScaledConfig("bsw", EngineKind::Toleo, 8);
    EXPECT_EQ(cfg.toleo.ci.macCacheBytes, cfg.ci.macCacheBytes);
}

TEST(ScaledConfig, HierarchyIsWellOrdered)
{
    const auto cfg = makeScaledConfig("bsw", EngineKind::Toleo, 8);
    EXPECT_LT(cfg.caches.l1Bytes, cfg.caches.l2Bytes);
    EXPECT_LT(cfg.caches.l2Bytes, cfg.caches.l3SliceBytes);
}

TEST(ThroughputFloor, RequiredNsMatchesArithmetic)
{
    Channel ch("t", 10.0, 50.0); // 10 B/ns
    ch.addTraffic(5000);
    EXPECT_DOUBLE_EQ(ch.requiredNs(), 500.0);
    EXPECT_EQ(ch.pendingBytes(), 5000u);
    ch.endEpoch(1000.0);
    EXPECT_DOUBLE_EQ(ch.requiredNs(), 0.0);
}

TEST(ThroughputFloor, TopologyTakesMaxOverChannels)
{
    MemTopologyConfig cfg;
    MemTopology topo(cfg);
    topo.addToleoTraffic(1000);
    const double req = topo.requiredEpochNs();
    EXPECT_NEAR(req, 1000.0 / cfg.toleoLinkBandwidthGBps, 1e-9);
}

TEST(ThroughputFloor, BandwidthBoundWorkloadStretchesTime)
{
    // A saturating stream must run slower on a narrower channel.
    auto narrow = makeScaledConfig("micro-seq-read",
                                   EngineKind::NoProtect, 4);
    auto wide = narrow;
    narrow.mem.ddrBandwidthGBps = 2.0;
    wide.mem.ddrBandwidthGBps = 50.0;
    System a(narrow), b(wide);
    const auto sa = a.run(5000, 20000);
    const auto sb = b.run(5000, 20000);
    EXPECT_GT(sa.execSeconds, sb.execSeconds * 1.5);
}
