/**
 * @file
 * Tests for the ToleoDevice: request handling, space management
 * (Section 4.4), and the Figure 11 usage-normalization math.
 */

#include <gtest/gtest.h>

#include "toleo/device.hh"

using namespace toleo;

namespace {

BlockNum
blk(PageNum pg, unsigned idx)
{
    return (pg << (pageBits - blockBits)) | idx;
}

ToleoDeviceConfig
smallConfig()
{
    ToleoDeviceConfig cfg;
    cfg.capacityBytes = 1000000; // 1 MB device
    cfg.protectedBytes = 64ULL * MiB;
    cfg.trip.resetLog2 = 63;
    return cfg;
}

} // namespace

TEST(Device, FlatArraySizedForProtectedMemory)
{
    auto cfg = smallConfig();
    ToleoDevice dev(cfg);
    EXPECT_EQ(dev.flatArrayBytes(),
              cfg.protectedBytes / pageSize * flatEntryBytes);
    EXPECT_EQ(dev.dynamicCapacityBytes(),
              cfg.capacityBytes - dev.flatArrayBytes());
}

TEST(Device, PaperScaleFlatArrayIs74GB)
{
    // Section 4.4: the flat array for 24.8 TB occupies 74.6 GB.
    ToleoDeviceConfig cfg; // paper defaults
    ToleoDevice dev(cfg);
    const double gb = static_cast<double>(dev.flatArrayBytes()) / GiB;
    EXPECT_NEAR(gb, 74.6, 1.0);
}

TEST(Device, OversizedProtectedMemoryIsFatal)
{
    ToleoDeviceConfig cfg;
    cfg.capacityBytes = 1 * MiB;
    cfg.protectedBytes = 1 * TiB; // needs 3 GB of flat entries
    EXPECT_DEATH({ ToleoDevice dev(cfg); }, "flat array");
}

TEST(Device, UpdateIncrementsVersion)
{
    ToleoDevice dev(smallConfig());
    const auto v0 = dev.fullVersion(blk(1, 0));
    auto res = dev.update(blk(1, 0));
    EXPECT_EQ(res.version, dev.fullVersion(blk(1, 0)));
    EXPECT_NE(res.version, v0);
}

TEST(Device, ReadReturnsStealthOnly)
{
    auto cfg = smallConfig();
    ToleoDevice dev(cfg);
    dev.update(blk(1, 0));
    const auto stealth = dev.read(blk(1, 0));
    EXPECT_LT(stealth, 1ULL << cfg.trip.stealthBits);
    EXPECT_EQ(stealth,
              dev.fullVersion(blk(1, 0)) &
                  ((1ULL << cfg.trip.stealthBits) - 1));
}

TEST(Device, ResetRequestDowngradesPage)
{
    ToleoDevice dev(smallConfig());
    dev.update(blk(2, 5));
    dev.update(blk(2, 5)); // uneven
    ASSERT_EQ(dev.formatOf(2), TripFormat::Uneven);
    dev.reset(2);
    EXPECT_EQ(dev.formatOf(2), TripFormat::Flat);
    EXPECT_EQ(dev.stats().counter("reset_reqs").value(), 1u);
}

TEST(Device, UsageGrowsWithTouchedPagesAndEntries)
{
    ToleoDevice dev(smallConfig());
    EXPECT_EQ(dev.usageBytes(), 0u);
    dev.update(blk(1, 0));
    EXPECT_EQ(dev.usageBytes(), flatEntryBytes);
    dev.update(blk(1, 0)); // uneven entry allocated
    EXPECT_EQ(dev.usageBytes(), flatEntryBytes + unevenEntryBytes);
}

TEST(Device, PeakUsageIsMonotone)
{
    ToleoDevice dev(smallConfig());
    dev.update(blk(1, 0));
    dev.update(blk(1, 0));
    const auto peak = dev.peakUsageBytes();
    dev.reset(1); // usage drops, peak must not
    EXPECT_LE(dev.usageBytes(), peak);
    EXPECT_EQ(dev.peakUsageBytes(), peak);
}

TEST(Device, SpaceExhaustionDetected)
{
    ToleoDeviceConfig cfg = smallConfig();
    // Flat array for 64 MiB = 16384 pages x 12 B = 196608 B; leave
    // room for exactly one uneven entry.
    cfg.capacityBytes = 196608 + unevenEntryBytes;
    ToleoDevice dev(cfg);
    EXPECT_FALSE(dev.spaceExhausted());
    dev.update(blk(1, 0));
    dev.update(blk(1, 0)); // first uneven entry: fills dynamic space
    EXPECT_TRUE(dev.spaceExhausted());
    // Host downgrade frees the space.
    dev.reset(1);
    EXPECT_FALSE(dev.spaceExhausted());
}

TEST(Device, UsagePerTbAllFlatMatchesArithmetic)
{
    ToleoDevice dev(smallConfig());
    for (PageNum p = 0; p < 100; ++p)
        dev.update(blk(p, 0));
    auto u = dev.usagePerTbProtected();
    // All pages flat: 1e12/4096 * 12 B = 2.93 GB per TB.
    EXPECT_NEAR(u.flatGb, 1e12 / 4096 * 12 / 1e9, 1e-9);
    EXPECT_DOUBLE_EQ(u.unevenGb, 0.0);
    EXPECT_DOUBLE_EQ(u.fullGb, 0.0);
}

TEST(Device, UsagePerTbCountsUnevenFraction)
{
    ToleoDevice dev(smallConfig());
    for (PageNum p = 0; p < 100; ++p)
        dev.update(blk(p, 0));
    for (PageNum p = 0; p < 10; ++p)
        dev.update(blk(p, 0)); // 10% of pages uneven
    auto u = dev.usagePerTbProtected();
    EXPECT_NEAR(u.unevenGb, 1e12 / 4096 * 0.10 * 56 / 1e9, 1e-3);
}

TEST(Device, StatCountersTrackRequests)
{
    ToleoDevice dev(smallConfig());
    dev.read(blk(1, 0));
    dev.update(blk(1, 0));
    dev.update(blk(1, 0));
    EXPECT_EQ(dev.stats().counter("read_reqs").value(), 1u);
    EXPECT_EQ(dev.stats().counter("update_reqs").value(), 2u);
    EXPECT_EQ(dev.stats().counter("upgrades").value(), 1u);
}

TEST(DeviceInitiators, AddressSpacesArePartitioned)
{
    // Two rack nodes updating the "same" local block must land on
    // disjoint shared-store entries.
    ToleoDevice dev(smallConfig());
    const unsigned other = dev.addInitiator();
    ASSERT_EQ(other, 1u);
    EXPECT_EQ(dev.initiatorCount(), 2u);

    const BlockNum b = blk(5, 3);
    dev.setActiveInitiator(0);
    dev.update(b);
    dev.update(b);
    const std::uint64_t v0 = dev.fullVersion(b);

    dev.setActiveInitiator(other);
    // Initiator 1 never touched its slice: versions independent.
    const std::uint64_t v1_before = dev.fullVersion(b);
    dev.update(b);
    const std::uint64_t v1_after = dev.fullVersion(b);
    EXPECT_NE(v1_before, v1_after);

    dev.setActiveInitiator(0);
    EXPECT_EQ(dev.fullVersion(b), v0);

    // Both slices landed as distinct pages in the one shared store.
    EXPECT_EQ(dev.store().touchedPages(), 2u);
}

TEST(DeviceInitiators, EpochRequestAccounting)
{
    ToleoDevice dev(smallConfig());
    dev.addInitiator();

    dev.setActiveInitiator(0);
    dev.update(blk(1, 0));
    dev.read(blk(1, 0));
    dev.setActiveInitiator(1);
    dev.reset(7);

    EXPECT_EQ(dev.epochRequests(0), 2u);
    EXPECT_EQ(dev.epochRequests(1), 1u);

    dev.beginInitiatorEpoch();
    EXPECT_EQ(dev.epochRequests(0), 0u);
    EXPECT_EQ(dev.epochRequests(1), 0u);
    // Lifetime counts survive the epoch reset.
    EXPECT_EQ(dev.totalRequests(0), 2u);
    EXPECT_EQ(dev.totalRequests(1), 1u);

    // The classic single-initiator device still counts as id 0.
    ToleoDevice solo(smallConfig());
    solo.update(blk(2, 0));
    EXPECT_EQ(solo.totalRequests(0), 1u);
    EXPECT_EQ(solo.activeInitiator(), 0u);
}
