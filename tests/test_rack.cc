/**
 * @file
 * Regression harness for the multi-node rack simulation
 * (sim/rack.hh): the golden-stats fixture pinning a fixed-seed
 * 4-node cell byte-for-byte, the 1-node bit-identity invariant
 * against a plain System::run, the epoch-steppable run API, and the
 * error paths that keep a rack config honest.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sim/rack.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"
#include "workload/trace_file.hh"

using namespace toleo;

namespace {

/**
 * The pinned rack cell: memcached is the most version-traffic-bound
 * workload (its Toleo link runs near saturation), so four nodes
 * behind one device exercise real queueing, and the window is long
 * enough for the stealth caches to reach eviction steady state.
 */
const SweepCell goldenCell{"memcached", EngineKind::Toleo};

SweepOptions
rackWindow(unsigned nodes)
{
    SweepOptions opts;
    opts.cores = 4;
    opts.warmupRefs = 20000;
    opts.measureRefs = 40000;
    opts.rackNodes = nodes;
    return opts;
}

std::string
dump(const SimStats &stats)
{
    return statsToJson(stats).dump(2);
}

} // namespace

TEST(Rack, OneNodeRackIsBitIdenticalToSingleSystemRun)
{
    // The rack path reroutes everything through the shared device,
    // the epoch-stepped loop, and the arbiter; with one node all of
    // it must be an exact no-op.  Cover a version-heavy and a
    // version-light workload plus a non-Toleo engine.
    struct Case
    {
        const char *workload;
        EngineKind engine;
    };
    for (const Case &c :
         {Case{"bsw", EngineKind::Toleo},
          Case{"memcached", EngineKind::Toleo},
          Case{"redis", EngineKind::NoProtect}}) {
        SystemConfig base = makeScaledConfig(c.workload, c.engine, 2);
        base.seed = 42;
        RackConfig rc = makeRackConfig(1, base);
        rc.warmupRefs = 2000;
        rc.measureRefs = 6000;
        const RackStats rack = runRack(rc);

        System solo(base);
        const SimStats ref = solo.run(2000, 6000);

        ASSERT_EQ(rack.nodes.size(), 1u);
        EXPECT_EQ(dump(rack.nodes[0].sim), dump(ref))
            << c.workload << "/" << engineKindName(c.engine);
        EXPECT_EQ(rack.nodes[0].contentionStallNs, 0.0);
        EXPECT_EQ(rack.nodes[0].peakBacklogBytes, 0u);
        EXPECT_EQ(rack.saturatedEpochs, 0u);
        EXPECT_EQ(rack.devicePeakBacklogBytes, 0u);
    }
}

TEST(Rack, EpochSteppedLoopMatchesMonolithicRun)
{
    // The beginRun/stepEpoch/finishRun decomposition must perform
    // the identical operation sequence to run().
    SystemConfig cfg = makeScaledConfig("redis", EngineKind::Toleo, 2);
    cfg.seed = 7;

    System a(cfg);
    const SimStats ra = a.run(1500, 4500);

    System b(cfg);
    b.beginRun(1500, 4500);
    std::uint64_t steps = 0;
    while (b.stepEpoch())
        ++steps;
    const SimStats rb = b.finishRun();

    EXPECT_EQ(dump(ra), dump(rb));
    // Every true return closed one boundary; the final (false)
    // step closed the run-ending boundary on top.
    EXPECT_EQ(b.epochsCompleted(), steps + 1);
    EXPECT_TRUE(b.measuring());
}

TEST(Rack, FourNodeContentionIsVisibleAndCharged)
{
    const RackStats rack = runRackSweepCell(goldenCell, rackWindow(4));
    ASSERT_EQ(rack.nodes.size(), 4u);

    // The shared device saturates in some (not all) epochs...
    EXPECT_GT(rack.saturatedEpochs, 0u);
    EXPECT_LT(rack.saturatedEpochs, rack.epochs);
    EXPECT_GT(rack.devicePeakBacklogBytes, 0u);

    // ...and the queueing lands on the nodes as core stall.
    double total_stall = 0.0;
    for (const RackNodeStats &node : rack.nodes) {
        EXPECT_GT(node.deviceRequests, 0u);
        EXPECT_GT(node.toleoLinkBytes, 0u);
        total_stall += node.contentionStallNs;
    }
    EXPECT_GT(total_stall, 0.0);

    // Node 0 seeds identically to a lone run; contention can only
    // slow it down, never speed it up.
    const RackStats solo = runRackSweepCell(goldenCell, rackWindow(1));
    EXPECT_EQ(solo.nodes[0].contentionStallNs, 0.0);
    EXPECT_GE(rack.nodes[0].sim.execSeconds,
              solo.nodes[0].sim.execSeconds);

    // One store really holds the whole rack: four nodes' slices
    // touch more pages than one node's.
    EXPECT_GT(rack.sharedTouchedPages, solo.sharedTouchedPages);
    EXPECT_GT(rack.deviceGrantedBytes, solo.deviceGrantedBytes);
}

TEST(Rack, InvalidConfigsThrow)
{
    EXPECT_THROW(runRack(RackConfig{}), std::invalid_argument);

    // A device slower than a node's own link would stall even an
    // uncontended node: reject instead of silently breaking the
    // 1-node invariant.
    SystemConfig base = makeScaledConfig("bsw", EngineKind::Toleo, 2);
    RackConfig rc = makeRackConfig(2, base);
    rc.deviceServiceGBps = 0.5 * base.mem.toleoLinkBandwidthGBps;
    EXPECT_THROW(runRack(rc), std::invalid_argument);

    const std::vector<SweepCell> cell = {
        {"bsw", EngineKind::Toleo}};
    SweepOptions opts = rackWindow(0);
    EXPECT_THROW(runRackSweep(cell, opts), std::invalid_argument);

    opts = rackWindow(2);
    opts.recordTracePath = "unused.trc";
    EXPECT_THROW(runRackSweep(cell, opts), TraceError);
}

namespace {

std::size_t
commas(const std::string &s)
{
    std::size_t n = 0;
    for (char c : s)
        n += c == ',' ? 1u : 0u;
    return n;
}

} // namespace

TEST(Rack, CsvRowsMatchHeaderAndDenormalizeRackScalars)
{
    RackStats stats;
    stats.nodes.resize(2);
    stats.nodes[0].sim.workload = "bsw";
    stats.nodes[0].sim.engine = "toleo";
    stats.nodes[1].sim.workload = "bsw";
    stats.nodes[1].sim.engine = "toleo";
    stats.nodes[1].deviceRequests = 7;
    stats.epochs = 11;
    stats.deviceServiceGBps = 3.5;

    // Every row lines up with the header, column for column.
    const std::string header = rackCsvHeader();
    const std::string r0 = rackCsvRow(stats, 0);
    const std::string r1 = rackCsvRow(stats, 1);
    EXPECT_EQ(commas(header), commas(r0));
    EXPECT_EQ(commas(header), commas(r1));

    // The node index is the first column; the single-sim columns are
    // embedded unchanged.
    EXPECT_EQ(r0.rfind("0,", 0), 0u);
    EXPECT_EQ(r1.rfind("1,", 0), 0u);
    EXPECT_NE(r0.find(statsCsvRow(stats.nodes[0].sim)),
              std::string::npos);

    // Rack-level scalars are denormalized onto every node row, so a
    // concatenated sweep stays filterable without a join.
    EXPECT_NE(r0.find(",11,"), std::string::npos);
    EXPECT_NE(r1.find(",11,"), std::string::npos);
    EXPECT_NE(r1.find(",3.5,"), std::string::npos);

    EXPECT_THROW(rackCsvRow(stats, 2), std::out_of_range);
}

#ifdef TOLEO_RACK_GOLDEN

TEST(RackGolden, FourNodeFixedSeedStatsArePinned)
{
    // The full RackStats record of the fixed-seed 4-node cell,
    // byte-for-byte.  Any drift in the hot loop, the arbiter, the
    // shared store, or the serializers shows up here first.  After
    // an *intended* change, regenerate with
    //
    //   TOLEO_UPDATE_GOLDEN=1 ./tests/test_rack
    //       --gtest_filter=RackGolden.*
    //
    // and commit the refreshed tests/data/golden_rack4.json.
    const RackStats stats =
        runRackSweepCell(goldenCell, rackWindow(4));
    const std::string got = rackStatsToJson(stats).dump(2) + "\n";

    // Golden-regeneration entry point, never read during a normal
    // test run.  toleo-lint: allow(nondeterminism)
    if (const char *update = std::getenv("TOLEO_UPDATE_GOLDEN");
        update && *update) {
        std::ofstream out(TOLEO_RACK_GOLDEN,
                          std::ios::binary | std::ios::trunc);
        out << got;
        ASSERT_TRUE(out.good())
            << "cannot write " << TOLEO_RACK_GOLDEN;
    }

    std::ifstream in(TOLEO_RACK_GOLDEN, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden fixture " << TOLEO_RACK_GOLDEN
        << " (regenerate as described above)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str())
        << "fixed-seed RackStats drifted from the committed golden";
}

#endif // TOLEO_RACK_GOLDEN
