/**
 * @file
 * Regression harness for the multi-node rack simulation
 * (sim/rack.hh): the golden-stats fixture pinning a fixed-seed
 * 4-node cell byte-for-byte, the 1-node bit-identity invariant
 * against a plain System::run, the epoch-steppable run API, and the
 * error paths that keep a rack config honest.
 */

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "sim/intra_pool.hh"
#include "sim/rack.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"
#include "workload/trace_file.hh"

using namespace toleo;

namespace {

/**
 * The pinned rack cell: memcached is the most version-traffic-bound
 * workload (its Toleo link runs near saturation), so four nodes
 * behind one device exercise real queueing, and the window is long
 * enough for the stealth caches to reach eviction steady state.
 */
const SweepCell goldenCell{"memcached", EngineKind::Toleo};

SweepOptions
rackWindow(unsigned nodes)
{
    SweepOptions opts;
    opts.cores = 4;
    opts.warmupRefs = 20000;
    opts.measureRefs = 40000;
    opts.rackNodes = nodes;
    return opts;
}

std::string
dump(const SimStats &stats)
{
    return statsToJson(stats).dump(2);
}

} // namespace

TEST(Rack, OneNodeRackIsBitIdenticalToSingleSystemRun)
{
    // The rack path reroutes everything through the shared device,
    // the epoch-stepped loop, and the arbiter; with one node all of
    // it must be an exact no-op.  Cover a version-heavy and a
    // version-light workload plus a non-Toleo engine.
    struct Case
    {
        const char *workload;
        EngineKind engine;
    };
    for (const Case &c :
         {Case{"bsw", EngineKind::Toleo},
          Case{"memcached", EngineKind::Toleo},
          Case{"redis", EngineKind::NoProtect}}) {
        SystemConfig base = makeScaledConfig(c.workload, c.engine, 2);
        base.seed = 42;
        RackConfig rc = makeRackConfig(1, base);
        rc.warmupRefs = 2000;
        rc.measureRefs = 6000;
        const RackStats rack = runRack(rc);

        System solo(base);
        const SimStats ref = solo.run(2000, 6000);

        ASSERT_EQ(rack.nodes.size(), 1u);
        EXPECT_EQ(dump(rack.nodes[0].sim), dump(ref))
            << c.workload << "/" << engineKindName(c.engine);
        EXPECT_EQ(rack.nodes[0].contentionStallNs, 0.0);
        EXPECT_EQ(rack.nodes[0].peakBacklogBytes, 0u);
        EXPECT_EQ(rack.saturatedEpochs, 0u);
        EXPECT_EQ(rack.devicePeakBacklogBytes, 0u);
    }
}

TEST(Rack, EpochSteppedLoopMatchesMonolithicRun)
{
    // The beginRun/stepEpoch/finishRun decomposition must perform
    // the identical operation sequence to run().
    SystemConfig cfg = makeScaledConfig("redis", EngineKind::Toleo, 2);
    cfg.seed = 7;

    System a(cfg);
    const SimStats ra = a.run(1500, 4500);

    System b(cfg);
    b.beginRun(1500, 4500);
    std::uint64_t steps = 0;
    while (b.stepEpoch())
        ++steps;
    const SimStats rb = b.finishRun();

    EXPECT_EQ(dump(ra), dump(rb));
    // Every true return closed one boundary; the final (false)
    // step closed the run-ending boundary on top.
    EXPECT_EQ(b.epochsCompleted(), steps + 1);
    EXPECT_TRUE(b.measuring());
}

TEST(Rack, FourNodeContentionIsVisibleAndCharged)
{
    const RackStats rack = runRackSweepCell(goldenCell, rackWindow(4));
    ASSERT_EQ(rack.nodes.size(), 4u);

    // The shared device saturates in some (not all) epochs...
    EXPECT_GT(rack.saturatedEpochs, 0u);
    EXPECT_LT(rack.saturatedEpochs, rack.epochs);
    EXPECT_GT(rack.devicePeakBacklogBytes, 0u);

    // ...and the queueing lands on the nodes as core stall.
    double total_stall = 0.0;
    for (const RackNodeStats &node : rack.nodes) {
        EXPECT_GT(node.deviceRequests, 0u);
        EXPECT_GT(node.toleoLinkBytes, 0u);
        total_stall += node.contentionStallNs;
    }
    EXPECT_GT(total_stall, 0.0);

    // Node 0 seeds identically to a lone run; contention can only
    // slow it down, never speed it up.
    const RackStats solo = runRackSweepCell(goldenCell, rackWindow(1));
    EXPECT_EQ(solo.nodes[0].contentionStallNs, 0.0);
    EXPECT_GE(rack.nodes[0].sim.execSeconds,
              solo.nodes[0].sim.execSeconds);

    // One store really holds the whole rack: four nodes' slices
    // touch more pages than one node's.
    EXPECT_GT(rack.sharedTouchedPages, solo.sharedTouchedPages);
    EXPECT_GT(rack.deviceGrantedBytes, solo.deviceGrantedBytes);
}

TEST(Rack, StagedEpochHalvesMatchMonolithicStep)
{
    // The tentpole decomposition at System level: for every epoch,
    // stepEpochPrivate() + replayEpochShared() must be bit-identical
    // to one stepEpoch() -- same return values, same epoch count,
    // same final stats.  Covered for a version-heavy Toleo node and
    // an open-loop serving node (the staged request boundaries are
    // the subtle part).
    for (const bool serving : {false, true}) {
        SystemConfig cfg =
            makeScaledConfig("memcached", EngineKind::Toleo, 2);
        cfg.seed = 11;
        if (serving) {
            std::string err;
            ASSERT_TRUE(
                parseArrivalSpec("burst:1e6,2", cfg.arrival, err));
        }

        System mono(cfg);
        mono.beginRun(2000, 6000);
        System staged(cfg);
        staged.beginRun(2000, 6000);

        bool moreMono = true, moreStaged = true;
        while (moreMono) {
            moreMono = mono.stepEpoch();
            moreStaged = staged.stepEpochPrivate();
            staged.replayEpochShared();
            ASSERT_EQ(moreMono, moreStaged) << "serving=" << serving;
            ASSERT_EQ(mono.epochsCompleted(),
                      staged.epochsCompleted());
        }
        EXPECT_EQ(dump(mono.finishRun()), dump(staged.finishRun()))
            << "serving=" << serving;
    }
}

TEST(Rack, StagedEpochMisuseThrows)
{
    SystemConfig cfg = makeScaledConfig("bsw", EngineKind::Toleo, 2);
    // Several epochs per run window, so a staged epoch is never the
    // run-closing one and every step below returns true.
    cfg.epochRefs = 1000;
    System sys(cfg);
    sys.beginRun(1000, 2000);

    // Replay with nothing staged.
    EXPECT_THROW(sys.replayEpochShared(), std::logic_error);

    // Staging (or stepping) twice without replaying in between.
    ASSERT_TRUE(sys.stepEpochPrivate());
    EXPECT_THROW(sys.stepEpochPrivate(), std::logic_error);
    EXPECT_THROW(sys.stepEpoch(), std::logic_error);

    // The staged epoch is still intact: replay and carry on.
    sys.replayEpochShared();
    EXPECT_THROW(sys.replayEpochShared(), std::logic_error);
    EXPECT_TRUE(sys.stepEpoch());

    // beginRun clears a pending replay.
    ASSERT_TRUE(sys.stepEpochPrivate());
    sys.beginRun(1000, 2000);
    EXPECT_THROW(sys.replayEpochShared(), std::logic_error);
    EXPECT_TRUE(sys.stepEpoch());
}

TEST(Rack, RackThreadsAreBitIdentical)
{
    // The headline determinism contract of --rack-threads: the full
    // RackStats record (per-node sims, contention counters, device
    // scalars) is byte-identical for any thread count, and across
    // repeated runs of the same count.
    const SweepOptions base = rackWindow(4);
    SweepOptions opts = base;
    const std::string serial =
        rackStatsToJson(runRackSweepCell(goldenCell, opts)).dump(2);
    for (const unsigned threads : {2u, 8u}) {
        opts = base;
        opts.rackThreads = threads;
        EXPECT_EQ(
            serial,
            rackStatsToJson(runRackSweepCell(goldenCell, opts)).dump(2))
            << "rackThreads=" << threads;
    }
    // Repeat at 8 (well past the 4-node clamp): run-to-run identity.
    opts = base;
    opts.rackThreads = 8;
    EXPECT_EQ(
        serial,
        rackStatsToJson(runRackSweepCell(goldenCell, opts)).dump(2));
}

TEST(Rack, RackThreadsComposeWithIntraThreadsAndServing)
{
    // All three tiers at once -- rack workers outside, per-node intra
    // pools inside, plus the open-loop overlay whose staged request
    // boundaries ride the private phase -- must still reproduce the
    // serial record byte-for-byte.
    SweepOptions opts = rackWindow(3);
    std::string err;
    ASSERT_TRUE(parseArrivalSpec("poisson:2e6", opts.arrival, err));
    const std::string serial =
        rackStatsToJson(runRackSweepCell(goldenCell, opts)).dump(2);
    opts.rackThreads = 3;
    opts.intraThreads = 2;
    EXPECT_EQ(
        serial,
        rackStatsToJson(runRackSweepCell(goldenCell, opts)).dump(2));
}

TEST(Rack, OneNodeRackWithRackThreadsKeepsSoloInvariant)
{
    // rackThreads clamps to the node count, so a 1-node rack takes
    // the serial path and the 1-node == System::run invariant must
    // hold no matter what was requested.
    SystemConfig base = makeScaledConfig("bsw", EngineKind::Toleo, 2);
    base.seed = 42;
    RackConfig rc = makeRackConfig(1, base);
    rc.warmupRefs = 2000;
    rc.measureRefs = 6000;
    rc.rackThreads = 8;
    const RackStats rack = runRack(rc);

    System solo(base);
    EXPECT_EQ(dump(rack.nodes[0].sim), dump(solo.run(2000, 6000)));
    EXPECT_EQ(rack.nodes[0].contentionStallNs, 0.0);
}

TEST(Rack, WorkerExceptionsPropagateToTheCaller)
{
    // The rack node pool is an IntraPool: a throwing node body must
    // surface on the caller after the barrier (not terminate), and
    // the pool must stay usable for the next epoch.
    IntraPool pool(4);
    std::atomic<unsigned> ran{0};
    try {
        pool.run(8, [&](unsigned i) {
            if (i == 5)
                throw std::runtime_error("node 5 failed");
            ++ran;
        });
        FAIL() << "worker exception was swallowed";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "node 5 failed");
    }
    // Everything except the throwing index still ran exactly once.
    EXPECT_EQ(ran.load(), 7u);

    ran = 0;
    pool.run(8, [&](unsigned) { ++ran; });
    EXPECT_EQ(ran.load(), 8u);
}

TEST(Rack, MixedArrivalConfigsAreRejected)
{
    // The rack serving aggregate is only meaningful when every node
    // runs the same arrival model against the same SLO; anything
    // mixed must throw instead of reporting whichever node was
    // aggregated last (the historical bug).
    SystemConfig base = makeScaledConfig("kvs", EngineKind::Toleo, 2);
    std::string err;

    RackConfig rc = makeRackConfig(2, base);
    ASSERT_TRUE(
        parseArrivalSpec("poisson:1e6", rc.nodes[0].arrival, err));
    EXPECT_THROW(runRack(rc), std::invalid_argument); // open + closed

    ASSERT_TRUE(
        parseArrivalSpec("burst:1e6,2", rc.nodes[1].arrival, err));
    EXPECT_THROW(runRack(rc), std::invalid_argument); // poisson+burst

    ASSERT_TRUE(
        parseArrivalSpec("poisson:1e6", rc.nodes[1].arrival, err));
    rc.nodes[1].arrival.sloUs = rc.nodes[0].arrival.sloUs * 2;
    EXPECT_THROW(runRack(rc), std::invalid_argument); // mixed SLO

    // Different *rates* under one model are legal: they sum.
    rc.nodes[1].arrival.sloUs = rc.nodes[0].arrival.sloUs;
    rc.nodes[1].arrival.ratePerSec = 2e6;
    rc.warmupRefs = 1000;
    rc.measureRefs = 3000;
    const RackStats rack = runRack(rc);
    EXPECT_DOUBLE_EQ(rack.serving.offeredRatePerSec, 3e6);
}

TEST(Rack, InvalidConfigsThrow)
{
    EXPECT_THROW(runRack(RackConfig{}), std::invalid_argument);

    // A device slower than a node's own link would stall even an
    // uncontended node: reject instead of silently breaking the
    // 1-node invariant.
    SystemConfig base = makeScaledConfig("bsw", EngineKind::Toleo, 2);
    RackConfig rc = makeRackConfig(2, base);
    rc.deviceServiceGBps = 0.5 * base.mem.toleoLinkBandwidthGBps;
    EXPECT_THROW(runRack(rc), std::invalid_argument);

    const std::vector<SweepCell> cell = {
        {"bsw", EngineKind::Toleo}};
    SweepOptions opts = rackWindow(0);
    EXPECT_THROW(runRackSweep(cell, opts), std::invalid_argument);

    opts = rackWindow(2);
    opts.recordTracePath = "unused.trc";
    EXPECT_THROW(runRackSweep(cell, opts), TraceError);
}

namespace {

std::size_t
commas(const std::string &s)
{
    std::size_t n = 0;
    for (char c : s)
        n += c == ',' ? 1u : 0u;
    return n;
}

} // namespace

TEST(Rack, CsvRowsMatchHeaderAndDenormalizeRackScalars)
{
    RackStats stats;
    stats.nodes.resize(2);
    stats.nodes[0].sim.workload = "bsw";
    stats.nodes[0].sim.engine = "toleo";
    stats.nodes[1].sim.workload = "bsw";
    stats.nodes[1].sim.engine = "toleo";
    stats.nodes[1].deviceRequests = 7;
    stats.epochs = 11;
    stats.deviceServiceGBps = 3.5;

    // Every row lines up with the header, column for column.
    const std::string header = rackCsvHeader();
    const std::string r0 = rackCsvRow(stats, 0);
    const std::string r1 = rackCsvRow(stats, 1);
    EXPECT_EQ(commas(header), commas(r0));
    EXPECT_EQ(commas(header), commas(r1));

    // The node index is the first column; the single-sim columns are
    // embedded unchanged.
    EXPECT_EQ(r0.rfind("0,", 0), 0u);
    EXPECT_EQ(r1.rfind("1,", 0), 0u);
    EXPECT_NE(r0.find(statsCsvRow(stats.nodes[0].sim)),
              std::string::npos);

    // Rack-level scalars are denormalized onto every node row, so a
    // concatenated sweep stays filterable without a join.
    EXPECT_NE(r0.find(",11,"), std::string::npos);
    EXPECT_NE(r1.find(",11,"), std::string::npos);
    EXPECT_NE(r1.find(",3.5,"), std::string::npos);

    EXPECT_THROW(rackCsvRow(stats, 2), std::out_of_range);
}

#ifdef TOLEO_RACK_GOLDEN

TEST(RackGolden, FourNodeFixedSeedStatsArePinned)
{
    // The full RackStats record of the fixed-seed 4-node cell,
    // byte-for-byte.  Any drift in the hot loop, the arbiter, the
    // shared store, or the serializers shows up here first.  After
    // an *intended* change, regenerate with
    //
    //   TOLEO_UPDATE_GOLDEN=1 ./tests/test_rack
    //       --gtest_filter=RackGolden.*
    //
    // and commit the refreshed tests/data/golden_rack4.json.
    const RackStats stats =
        runRackSweepCell(goldenCell, rackWindow(4));
    const std::string got = rackStatsToJson(stats).dump(2) + "\n";

    // Golden-regeneration entry point, never read during a normal
    // test run.  toleo-lint: allow(nondeterminism)
    if (const char *update = std::getenv("TOLEO_UPDATE_GOLDEN");
        update && *update) {
        std::ofstream out(TOLEO_RACK_GOLDEN,
                          std::ios::binary | std::ios::trunc);
        out << got;
        ASSERT_TRUE(out.good())
            << "cannot write " << TOLEO_RACK_GOLDEN;
    }

    std::ifstream in(TOLEO_RACK_GOLDEN, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden fixture " << TOLEO_RACK_GOLDEN
        << " (regenerate as described above)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str())
        << "fixed-seed RackStats drifted from the committed golden";
}

#endif // TOLEO_RACK_GOLDEN
