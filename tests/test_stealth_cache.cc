/**
 * @file
 * Tests for the stealth-version caches (TLB extension + overflow
 * buffer, Figure 5).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "toleo/stealth_cache.hh"

using namespace toleo;

namespace {

BlockNum
blk(PageNum pg, unsigned idx)
{
    return (pg << (pageBits - blockBits)) | idx;
}

StealthCacheConfig
paperConfig()
{
    return {};
}

} // namespace

TEST(StealthCache, ColdMissThenHit)
{
    StealthCache sc(paperConfig());
    EXPECT_FALSE(sc.access(blk(1, 0), TripFormat::Flat, false).hit);
    EXPECT_TRUE(sc.access(blk(1, 0), TripFormat::Flat, false).hit);
}

TEST(StealthCache, FlatHitsTrackPageResidency)
{
    StealthCache sc(paperConfig());
    sc.access(blk(1, 0), TripFormat::Flat, false);
    // Any block of the same page hits: flat entries are per page.
    EXPECT_TRUE(sc.access(blk(1, 63), TripFormat::Flat, false).hit);
}

TEST(StealthCache, UnevenNeedsOverflowEntryToo)
{
    StealthCache sc(paperConfig());
    sc.access(blk(2, 0), TripFormat::Flat, false); // TLB now has page 2
    // First uneven access misses (overflow entry not resident).
    EXPECT_FALSE(sc.access(blk(2, 0), TripFormat::Uneven, false).hit);
    EXPECT_TRUE(sc.access(blk(2, 0), TripFormat::Uneven, false).hit);
}

TEST(StealthCache, FullEntrySpansFourChunks)
{
    StealthCache sc(paperConfig());
    sc.access(blk(3, 0), TripFormat::Full, false);
    // Same 16-block chunk: hit.
    EXPECT_TRUE(sc.access(blk(3, 15), TripFormat::Full, false).hit);
    // Different chunk: the chunk itself misses.
    EXPECT_FALSE(sc.access(blk(3, 16), TripFormat::Full, false).hit);
}

TEST(StealthCache, InvalidatePageDropsEverything)
{
    StealthCache sc(paperConfig());
    sc.access(blk(4, 0), TripFormat::Uneven, false);
    sc.access(blk(4, 0), TripFormat::Uneven, false);
    sc.invalidatePage(4);
    EXPECT_FALSE(sc.access(blk(4, 0), TripFormat::Uneven, false).hit);
}

TEST(StealthCache, DirtyEvictionsReportWritebackBytes)
{
    StealthCacheConfig cfg;
    cfg.tlbEntries = 2;
    StealthCache sc(cfg);
    // Allocate via the read path, then dirty via an update hit.
    sc.access(blk(1, 0), TripFormat::Flat, false);
    sc.access(blk(1, 0), TripFormat::Flat, true); // touch: dirty
    sc.access(blk(2, 0), TripFormat::Flat, false);
    auto r = sc.access(blk(3, 0), TripFormat::Flat, false); // evicts 1
    EXPECT_EQ(r.writebackBytes, cfg.tlbExtBytes);
}

TEST(StealthCache, UpdatesDoNotAllocate)
{
    // Version updates for long-cold pages must not displace the read
    // path's working set (fire-and-forget to the device).
    StealthCacheConfig cfg;
    cfg.tlbEntries = 2;
    StealthCache sc(cfg);
    sc.access(blk(1, 0), TripFormat::Flat, false);
    sc.access(blk(2, 0), TripFormat::Flat, false);
    auto up = sc.access(blk(9, 0), TripFormat::Flat, true); // miss
    EXPECT_FALSE(up.hit);
    // Read-path entries survived.
    EXPECT_TRUE(sc.access(blk(1, 0), TripFormat::Flat, false).hit);
    EXPECT_TRUE(sc.access(blk(2, 0), TripFormat::Flat, false).hit);
    EXPECT_EQ(sc.updateMisses(), 1u);
}

TEST(StealthCache, SequentialPageSweepHas98PercentHits)
{
    // The paper's key caching claim: block-granularity misses sweep
    // 64 blocks per page, so the flat entry misses once per page ->
    // ~63/64 = 98.4% hit rate.
    StealthCache sc(paperConfig());
    for (PageNum pg = 0; pg < 200; ++pg)
        for (unsigned b = 0; b < blocksPerPage; ++b)
            sc.access(blk(pg, b), TripFormat::Flat, false);
    EXPECT_GT(sc.hitRate(), 0.975);
    EXPECT_LT(sc.hitRate(), 0.99);
}

TEST(StealthCache, RandomPageAccessHasLowHitRate)
{
    // redis-like behaviour: one block per random page.
    StealthCache sc(paperConfig());
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        const PageNum pg = rng.nextBounded(4096);
        sc.access(blk(pg, 0), TripFormat::Flat, false);
    }
    EXPECT_LT(sc.hitRate(), 0.3);
}

TEST(StealthCache, SramBudgetMatchesPaper)
{
    // Section 7.3: 12 B x 256 entries = 3 KB TLB extension plus the
    // 28 KB overflow buffer = 31 KB total added SRAM.
    StealthCache sc(paperConfig());
    EXPECT_EQ(sc.sramBytes(), 3 * KiB + 28 * KiB);
}

TEST(StealthCache, ResetStatsClears)
{
    StealthCache sc(paperConfig());
    sc.access(blk(1, 0), TripFormat::Flat, false);
    sc.resetStats();
    EXPECT_EQ(sc.hits(), 0u);
    EXPECT_EQ(sc.misses(), 0u);
}

TEST(StealthCache, ResetStatsDropsCombineBufferState)
{
    // Regression: resetStats() used to leave the write-combining
    // buffer populated, so warmup-phase entries counted as measured
    // update hits they never earned.
    StealthCache sc(paperConfig());
    // Update miss to a cold page allocates its combine entry.
    EXPECT_FALSE(sc.access(blk(7, 0), TripFormat::Flat, true).hit);
    sc.resetStats();
    // After the reset the same update must miss again: the combine
    // entry from the pre-reset phase is gone.
    auto r = sc.access(blk(7, 0), TripFormat::Flat, true);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(sc.updateMisses(), 1u);
    EXPECT_EQ(sc.updateHits(), 0u);
}

TEST(StealthCache, InvalidatePageDropsCombineEntry)
{
    // Regression: invalidatePage() used to leave the page's combine
    // entry behind, so updates to a reset page falsely coalesced
    // against the stale pre-reset entry.
    StealthCache sc(paperConfig());
    EXPECT_FALSE(sc.access(blk(8, 0), TripFormat::Flat, true).hit);
    sc.invalidatePage(8);
    // A fresh update to the reset page must not hit the stale entry.
    EXPECT_FALSE(sc.access(blk(8, 0), TripFormat::Flat, true).hit);
    EXPECT_EQ(sc.updateHits(), 0u);
    EXPECT_EQ(sc.updateMisses(), 2u);
}
