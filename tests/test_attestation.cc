/**
 * @file
 * Tests for the TDISP-style attestation handshake and IDE session-key
 * derivation (Sections 3.1, 4.1): genuine devices attest, forgeries
 * and replays fail, both sides derive the same session key.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "toleo/attestation.hh"

using namespace toleo;

namespace {

AesKey
keyFrom(std::uint64_t seed)
{
    Rng rng(seed);
    AesKey k{};
    for (auto &b : k)
        b = static_cast<std::uint8_t>(rng.next());
    return k;
}

constexpr std::uint64_t deviceId = 0x70;

} // namespace

TEST(Attestation, GenuineDevicePasses)
{
    DeviceIdentity dev(keyFrom(1), deviceId);
    HostVerifier host(keyFrom(1), deviceId);

    const auto ch = host.challenge();
    const auto resp = dev.attest(ch);
    const auto key = host.verify(resp);
    ASSERT_TRUE(key.has_value());
}

TEST(Attestation, BothSidesDeriveSameSessionKey)
{
    DeviceIdentity dev(keyFrom(1), deviceId);
    HostVerifier host(keyFrom(1), deviceId);

    const auto ch = host.challenge();
    const auto resp = dev.attest(ch);
    const auto host_key = host.verify(resp);
    ASSERT_TRUE(host_key.has_value());
    EXPECT_EQ(*host_key, dev.sessionKey(ch, resp.deviceNonce));
}

TEST(Attestation, CounterfeitDeviceFails)
{
    // Device holds the wrong endorsement key.
    DeviceIdentity fake(keyFrom(99), deviceId);
    HostVerifier host(keyFrom(1), deviceId);
    const auto resp = fake.attest(host.challenge());
    EXPECT_FALSE(host.verify(resp).has_value());
}

TEST(Attestation, WrongDeviceIdFails)
{
    DeviceIdentity dev(keyFrom(1), deviceId + 1);
    HostVerifier host(keyFrom(1), deviceId);
    const auto resp = dev.attest(host.challenge());
    EXPECT_FALSE(host.verify(resp).has_value());
}

TEST(Attestation, ReplayedTranscriptFails)
{
    DeviceIdentity dev(keyFrom(1), deviceId);
    HostVerifier host(keyFrom(1), deviceId);

    const auto ch1 = host.challenge();
    const auto resp1 = dev.attest(ch1);
    ASSERT_TRUE(host.verify(resp1).has_value());

    // Adversary replays the old response against a new challenge.
    (void)host.challenge();
    EXPECT_FALSE(host.verify(resp1).has_value());
}

TEST(Attestation, UnsolicitedResponseFails)
{
    DeviceIdentity dev(keyFrom(1), deviceId);
    HostVerifier host(keyFrom(1), deviceId);
    const auto resp = dev.attest(0x1234);
    // No outstanding challenge at all.
    EXPECT_FALSE(host.verify(resp).has_value());
}

TEST(Attestation, TamperedSignatureFails)
{
    DeviceIdentity dev(keyFrom(1), deviceId);
    HostVerifier host(keyFrom(1), deviceId);
    auto resp = dev.attest(host.challenge());
    resp.signature ^= 1;
    EXPECT_FALSE(host.verify(resp).has_value());
}

TEST(Attestation, SessionKeysDifferAcrossHandshakes)
{
    DeviceIdentity dev(keyFrom(1), deviceId);
    HostVerifier host(keyFrom(1), deviceId);

    const auto r1 = dev.attest(host.challenge());
    // Consume first handshake.
    auto k1 = host.verify(r1);
    const auto r2 = dev.attest(host.challenge());
    auto k2 = host.verify(r2);
    ASSERT_TRUE(k1 && k2);
    EXPECT_NE(*k1, *k2);
}

TEST(Attestation, KdfDependsOnAllInputs)
{
    const AesKey ek = keyFrom(3);
    EXPECT_NE(deriveSessionKey(ek, 1, 2), deriveSessionKey(ek, 1, 3));
    EXPECT_NE(deriveSessionKey(ek, 1, 2), deriveSessionKey(ek, 2, 2));
    EXPECT_NE(deriveSessionKey(keyFrom(4), 1, 2),
              deriveSessionKey(ek, 1, 2));
}
