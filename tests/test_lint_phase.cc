/**
 * @file
 * Unit tests for the toleo_lint phase-safety substrate: the
 * tokenizer, the declaration/member indexer, qualified-name and
 * override resolution in the call graph, and the degradation
 * contract (template/macro constructs must surface as unknown-callee
 * warnings, never as silent certainty).
 *
 * The end-to-end rule behavior (violation shapes, suppression) is
 * covered by `toleo_lint --self-test`; these tests pin the analysis
 * APIs the rule is built on, so a refactor that breaks resolution
 * fails here with a named expectation instead of a blind self-test.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/toleo_lint/lint_source.hh"
#include "tools/toleo_lint/phase_safety.hh"

namespace {

using toleo_lint::buildIndex;
using toleo_lint::CodeIndex;
using toleo_lint::FunctionInfo;
using toleo_lint::makeSourceFile;
using toleo_lint::PhaseKind;
using toleo_lint::PhaseReport;
using toleo_lint::SourceFile;
using toleo_lint::StateKind;
using toleo_lint::Token;
using toleo_lint::tokenize;

std::vector<SourceFile>
corpus(std::vector<std::pair<std::string, std::string>> files)
{
    std::vector<SourceFile> out;
    for (auto &[path, text] : files)
        out.push_back(makeSourceFile(path, text));
    return out;
}

std::vector<std::string>
tokenTexts(const std::vector<Token> &toks)
{
    std::vector<std::string> texts;
    for (const auto &t : toks)
        texts.push_back(t.text);
    return texts;
}

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

TEST(LintTokenizer, MultiCharPunctsAndLines)
{
    const auto files =
        corpus({{"src/a.hh", "a::b->c += d >>= e;\nx != y;\n"}});
    const auto toks = tokenize(files[0]);
    const auto texts = tokenTexts(toks);
    const std::vector<std::string> expect = {
        "a", "::", "b", "->", "c", "+=", "d", ">>=",
        "e", ";",  "x", "!=", "y", ";"};
    EXPECT_EQ(texts, expect);
    // Line numbers are 1-based and track the split.
    EXPECT_EQ(toks.front().line, 1u);
    EXPECT_EQ(toks.back().line, 2u);
}

TEST(LintTokenizer, SkipsPreprocessorLinesAndContinuations)
{
    const auto files = corpus({{"src/a.hh",
                                "#define BAD broken(tokens\n"
                                "#define MORE continued \\\n"
                                "    still_directive\n"
                                "int kept = 1;\n"}});
    const auto texts = tokenTexts(tokenize(files[0]));
    const std::vector<std::string> expect = {"int", "kept", "=", "1",
                                             ";"};
    EXPECT_EQ(texts, expect);
}

TEST(LintTokenizer, CommentsAndStringsAlreadyBlanked)
{
    // makeSourceFile strips comments/strings before tokenize sees
    // the text: nothing inside them can produce tokens.
    const auto files = corpus(
        {{"src/a.cc",
          "int x = 0; // trailing = junk\n"
          "const char *s = \"if (while) ::\"; /* int y; */\n"}});
    const auto texts = tokenTexts(tokenize(files[0]));
    for (const auto &t : texts) {
        EXPECT_NE(t, "junk");
        EXPECT_NE(t, "while");
        EXPECT_NE(t, "y");
    }
}

// ---------------------------------------------------------------------
// Indexer: classes, members, annotations
// ---------------------------------------------------------------------

TEST(LintIndex, MembersAndAnnotations)
{
    const auto files = corpus({{"src/sys.hh",
                                "class System {\n"
                                "  public:\n"
                                "    // toleo: phase(private)\n"
                                "    void privateCore(unsigned core);\n"
                                "    // toleo: phase(shared)\n"
                                "    void stepShared();\n"
                                "  private:\n"
                                "    // toleo: state(shared)\n"
                                "    unsigned long footprint_ = 0;\n"
                                "    // toleo: state(per-core)\n"
                                "    std::vector<int> perCore_;\n"
                                "    double plain_ = 0.0;\n"
                                "};\n"}});
    const CodeIndex idx = buildIndex(files);

    ASSERT_TRUE(idx.classes.count("System"));
    const auto *fp = idx.findMember("System", "footprint_");
    ASSERT_NE(fp, nullptr);
    EXPECT_EQ(fp->state, StateKind::Shared);
    const auto *pc = idx.findMember("System", "perCore_");
    ASSERT_NE(pc, nullptr);
    EXPECT_EQ(pc->state, StateKind::PerCore);
    const auto *pl = idx.findMember("System", "plain_");
    ASSERT_NE(pl, nullptr);
    EXPECT_EQ(pl->state, StateKind::None);

    const auto *priv = idx.findMethodInherited("System", "privateCore");
    ASSERT_NE(priv, nullptr);
    EXPECT_EQ(priv->phase, PhaseKind::Private);
    const auto *sh = idx.findMethodInherited("System", "stepShared");
    ASSERT_NE(sh, nullptr);
    EXPECT_EQ(sh->phase, PhaseKind::Shared);
    EXPECT_TRUE(idx.classes.at("System").hasSharedState);
}

TEST(LintIndex, MemberTypeResolvesToIndexedClass)
{
    const auto files = corpus(
        {{"src/a.hh", "struct Pool { void reset(); };\n"
                      "struct Sys {\n"
                      "  Pool direct_;\n"
                      "  Pool *viaPtr_;\n"
                      "  std::unique_ptr<Pool> viaUnique_;\n"
                      "  std::vector<std::unique_ptr<Pool>> many_;\n"
                      "  int scalar_ = 0;\n"
                      "};\n"}});
    const CodeIndex idx = buildIndex(files);
    EXPECT_EQ(idx.findMember("Sys", "direct_")->typeClass, "Pool");
    EXPECT_EQ(idx.findMember("Sys", "viaPtr_")->typeClass, "Pool");
    EXPECT_EQ(idx.findMember("Sys", "viaUnique_")->typeClass, "Pool");
    EXPECT_EQ(idx.findMember("Sys", "many_")->typeClass, "Pool");
    EXPECT_EQ(idx.findMember("Sys", "scalar_")->typeClass, "");
}

// ---------------------------------------------------------------------
// Indexer: qualified-name resolution, out-of-line definitions
// ---------------------------------------------------------------------

TEST(LintIndex, OutOfLineDefinitionResolvedAcrossFiles)
{
    // .cc sorts before .hh: the definition is indexed before the
    // class declaration exists, so resolution must be a post-pass.
    const auto files = corpus(
        {{"src/sys.cc", "#include \"sys.hh\"\n"
                        "void System::privateCore(unsigned core) {\n"
                        "  (void)core;\n"
                        "}\n"},
         {"src/sys.hh", "class System {\n"
                        "  public:\n"
                        "    // toleo: phase(private)\n"
                        "    void privateCore(unsigned core);\n"
                        "};\n"}});
    const CodeIndex idx = buildIndex(files);
    auto it = idx.functionsByQual.find("System::privateCore");
    ASSERT_NE(it, idx.functionsByQual.end());
    bool sawBody = false;
    bool sawPhase = false;
    for (std::size_t fi : it->second) {
        sawBody = sawBody || idx.functions[fi].hasBody;
        sawPhase =
            sawPhase || idx.functions[fi].phase == PhaseKind::Private;
    }
    EXPECT_TRUE(sawBody) << "out-of-line body not attached";
    EXPECT_TRUE(sawPhase) << "declaration annotation not indexed";
}

TEST(LintIndex, OverloadsShareTheQualifiedName)
{
    const auto files = corpus(
        {{"src/a.hh", "struct S {\n"
                      "  void put(int v);\n"
                      "  void put(double v);\n"
                      "};\n"
                      "void S::put(int v) { (void)v; }\n"
                      "void S::put(double v) { (void)v; }\n"}});
    const CodeIndex idx = buildIndex(files);
    auto it = idx.functionsByQual.find("S::put");
    ASSERT_NE(it, idx.functionsByQual.end());
    std::size_t bodies = 0;
    for (std::size_t fi : it->second)
        bodies += idx.functions[fi].hasBody ? 1u : 0u;
    // Both overload bodies are indexed under one qualified name: the
    // walker visits every overload rather than guessing which one a
    // call site means.
    EXPECT_EQ(bodies, 2u);
}

// ---------------------------------------------------------------------
// Indexer: inheritance and override sets
// ---------------------------------------------------------------------

TEST(LintIndex, TransitiveDerivedAndInheritedLookup)
{
    const auto files = corpus(
        {{"src/gen.hh",
          "struct Gen { virtual int next(); virtual ~Gen(); };\n"
          "struct ShapedGen : Gen { int next() override; };\n"
          "struct TraceGen : public ShapedGen { int next() override; "
          "};\n"}});
    const CodeIndex idx = buildIndex(files);
    auto derived = idx.transitiveDerived("Gen");
    std::sort(derived.begin(), derived.end());
    const std::vector<std::string> expect = {"ShapedGen", "TraceGen"};
    EXPECT_EQ(derived, expect);

    // A method declared only on the base resolves through the chain.
    const auto *m = idx.findMethodInherited("TraceGen", "next");
    ASSERT_NE(m, nullptr);
    EXPECT_TRUE(m->isVirtual);
}

TEST(LintWalk, VirtualRootFansOutToOverrides)
{
    // Annotating the *base* draw path covers every generator: the
    // walker must reach an override's body through a base-typed call.
    const auto files = corpus(
        {{"src/gen.hh",
          "struct Counters {\n"
          "  // toleo: state(shared)\n"
          "  unsigned long hits = 0;\n"
          "};\n"
          "struct Gen {\n"
          "  // toleo: phase(private)\n"
          "  virtual void fill();\n"
          "  virtual ~Gen();\n"
          "};\n"
          "struct CleanGen : Gen { void fill() override; };\n"
          "struct BadGen : Gen {\n"
          "  Counters *shared_;\n"
          "  void fill() override;\n"
          "};\n"
          "void CleanGen::fill() {}\n"
          "void BadGen::fill() { shared_->hits += 1; }\n"}});
    const PhaseReport rep = toleo_lint::analyzePhaseSafety(files);
    ASSERT_EQ(rep.violations.size(), 1u);
    EXPECT_NE(rep.violations[0].message.find("BadGen::fill"),
              std::string::npos)
        << rep.violations[0].message;
}

TEST(LintWalk, TwoDeepChainCarriesRootContext)
{
    const auto files = corpus(
        {{"src/sys.hh",
          "struct Sys {\n"
          "  // toleo: state(shared)\n"
          "  unsigned long total_ = 0;\n"
          "  // toleo: phase(private)\n"
          "  void privateCore(unsigned core);\n"
          "  void helpA(unsigned c);\n"
          "  void helpB(unsigned c);\n"
          "};\n"
          "void Sys::privateCore(unsigned core) { helpA(core); }\n"
          "void Sys::helpA(unsigned c) { helpB(c); }\n"
          "void Sys::helpB(unsigned c) { total_ = c; }\n"}});
    const PhaseReport rep = toleo_lint::analyzePhaseSafety(files);
    ASSERT_EQ(rep.violations.size(), 1u);
    // The finding names both the write and the private root it is
    // reachable from, so the report is actionable without a replay
    // of the walk.
    EXPECT_NE(rep.violations[0].message.find("total_"),
              std::string::npos);
    EXPECT_NE(rep.violations[0].message.find("Sys::privateCore"),
              std::string::npos)
        << rep.violations[0].message;
}

TEST(LintWalk, ReportNamesEveryRootInSortedOrder)
{
    // CI greps the summary for specific roots (the rack node-step
    // path), so the report must carry every phase(private) root's
    // qualified name, deterministically ordered.
    const auto files = corpus(
        {{"src/sys.hh",
          "struct Sys {\n"
          "  // toleo: phase(private)\n"
          "  void zetaCore();\n"
          "  // toleo: phase(private)\n"
          "  void alphaCore();\n"
          "};\n"
          "void Sys::zetaCore() {}\n"
          "void Sys::alphaCore() {}\n"
          "// toleo: phase(private)\n"
          "void freeRoot(Sys &sys) { sys.alphaCore(); }\n"}});
    const PhaseReport rep = toleo_lint::analyzePhaseSafety(files);
    EXPECT_TRUE(rep.violations.empty());
    ASSERT_EQ(rep.roots, 3u);
    ASSERT_EQ(rep.rootNames.size(), 3u);
    EXPECT_EQ(rep.rootNames[0], "Sys::alphaCore");
    EXPECT_EQ(rep.rootNames[1], "Sys::zetaCore");
    EXPECT_EQ(rep.rootNames[2], "freeRoot");
}

TEST(LintWalk, SharedPhaseMayMutateSharedState)
{
    const auto files = corpus(
        {{"src/sys.hh", "struct Sys {\n"
                        "  // toleo: state(shared)\n"
                        "  unsigned long total_ = 0;\n"
                        "  // toleo: phase(shared)\n"
                        "  void replay();\n"
                        "};\n"
                        "void Sys::replay() { total_ += 1; }\n"}});
    const PhaseReport rep = toleo_lint::analyzePhaseSafety(files);
    EXPECT_TRUE(rep.violations.empty());
    EXPECT_EQ(rep.roots, 0u);
}

TEST(LintWalk, ContainerCallsClassifiedNotElementResolved)
{
    // A method called directly on a container member is a container
    // operation, not a missing element-class method: mutating ops on
    // a state(shared) container violate, const ops are clean, and
    // neither degrades to an unknown-callee warning.
    const auto files = corpus(
        {{"src/sys.hh",
          "struct Entry { void touch(); };\n"
          "struct Sys {\n"
          "  // toleo: state(shared)\n"
          "  std::vector<Entry> log_;\n"
          "  // toleo: phase(private)\n"
          "  void core();\n"
          "};\n"
          "void Sys::core() {\n"
          "  if (log_.empty()) return;\n"
          "  log_.push_back(Entry{});\n"
          "}\n"}});
    const PhaseReport rep = toleo_lint::analyzePhaseSafety(files);
    ASSERT_EQ(rep.violations.size(), 1u);
    EXPECT_NE(rep.violations[0].message.find("push_back"),
              std::string::npos)
        << rep.violations[0].message;
    for (const auto &w : rep.warnings)
        EXPECT_EQ(w.message.find("empty"), std::string::npos)
            << "const container op degraded to a warning: "
            << w.message;
}

// ---------------------------------------------------------------------
// Degradation: the resolver must fail loud, not silent
// ---------------------------------------------------------------------

TEST(LintDegrade, MacroLikeCallWarnsNeverSilent)
{
    const auto files =
        corpus({{"src/a.hh", "struct Sys {\n"
                             "  // toleo: phase(private)\n"
                             "  void core();\n"
                             "};\n"
                             "void Sys::core() { TOLEO_COUNT(1); }\n"}});
    const PhaseReport rep = toleo_lint::analyzePhaseSafety(files);
    EXPECT_TRUE(rep.violations.empty());
    ASSERT_FALSE(rep.warnings.empty());
    EXPECT_NE(rep.warnings[0].message.find("TOLEO_COUNT"),
              std::string::npos)
        << rep.warnings[0].message;
}

TEST(LintDegrade, UnresolvedReceiverShadowingSharedMethodWarns)
{
    // `obj` has no resolvable type, but some indexed class has a
    // phase(shared) method of the called name: the walker cannot
    // prove the call safe, so it must warn.
    const auto files = corpus(
        {{"src/a.hh", "struct Replayer {\n"
                      "  // toleo: phase(shared)\n"
                      "  void replay();\n"
                      "};\n"
                      "struct Sys {\n"
                      "  // toleo: phase(private)\n"
                      "  void core();\n"
                      "};\n"
                      "void Sys::core() { mystery().replay(); }\n"}});
    const PhaseReport rep = toleo_lint::analyzePhaseSafety(files);
    EXPECT_TRUE(rep.violations.empty());
    bool warned = false;
    for (const auto &w : rep.warnings)
        warned = warned ||
                 w.message.find("replay") != std::string::npos;
    EXPECT_TRUE(warned)
        << "unresolved receiver call shadowing a phase(shared) "
           "method produced no warning";
}

TEST(LintDegrade, TemplateHelperDegradesWithoutFalseCertainty)
{
    // A dependent-template helper the indexer cannot model: the call
    // must not be silently treated as proven-safe AND must not be
    // invented as a violation.
    const auto files = corpus(
        {{"src/a.hh",
          "template <typename T>\n"
          "void apply(T &t) { t.mutateEverything(); }\n"
          "struct Sys {\n"
          "  // toleo: state(shared)\n"
          "  unsigned long total_ = 0;\n"
          "  // toleo: phase(private)\n"
          "  void core();\n"
          "};\n"
          "void Sys::core() { apply(*this); }\n"}});
    const PhaseReport rep = toleo_lint::analyzePhaseSafety(files);
    // No violation is *proven* here (the write happens only through
    // template instantiation the analyzer does not perform)...
    for (const auto &v : rep.violations)
        EXPECT_EQ(v.message.find("mutateEverything"),
                  std::string::npos)
            << "invented a violation from an uninstantiated template";
}

TEST(LintWalk, AllowCommentSuppressesButAnalyzerStillReports)
{
    // The analyzer itself reports every violation; suppression is the
    // Linter sink's job.  This pins the layering: an allow() on the
    // offending line does not change the analysis result.
    const auto files = corpus(
        {{"src/sys.hh",
          "struct Sys {\n"
          "  // toleo: state(shared)\n"
          "  unsigned long total_ = 0;\n"
          "  // toleo: phase(private)\n"
          "  void core();\n"
          "};\n"
          "void Sys::core() {\n"
          // Literal split so the linter's raw-line allow() scanner
          // does not mistake this fixture for a suppression in THIS
          // file when it scans the tests directory.
          "  total_ += 1; // toleo-lint: al"
          "low(phase-safety)\n"
          "}\n"}});
    const PhaseReport rep = toleo_lint::analyzePhaseSafety(files);
    ASSERT_EQ(rep.violations.size(), 1u);
    // ...and the SourceFile carries the grant for the sink to apply.
    EXPECT_TRUE(files[0].allowed(8, "phase-safety"));
}

} // namespace
