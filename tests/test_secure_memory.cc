/**
 * @file
 * End-to-end security tests on the functional SecureMemory model --
 * the paper's Section 6 claims demonstrated with real crypto:
 * replay attacks fail, tampering fails, page free scrambles, and the
 * kill switch stops further service.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "toleo/secure_memory.hh"

using namespace toleo;

namespace {

AesKey
keyFrom(std::uint64_t seed)
{
    Rng rng(seed);
    AesKey k{};
    for (auto &b : k)
        b = static_cast<std::uint8_t>(rng.next());
    return k;
}

Bytes
pattern(std::uint8_t seed)
{
    Bytes b(blockSize);
    for (unsigned i = 0; i < blockSize; ++i)
        b[i] = static_cast<std::uint8_t>(seed + i);
    return b;
}

class SecureMemoryTest : public ::testing::Test
{
  protected:
    SecureMemoryTest()
        : device_([] {
              ToleoDeviceConfig cfg;
              cfg.capacityBytes = 100 * MiB;
              cfg.protectedBytes = 1 * GiB;
              cfg.trip.resetLog2 = 63; // keep tests deterministic
              return cfg;
          }()),
          mem_(device_, keyFrom(1), keyFrom(2), keyFrom(3))
    {}

    ToleoDevice device_;
    SecureMemory mem_;
};

} // namespace

TEST_F(SecureMemoryTest, WriteThenReadRoundTrips)
{
    mem_.write(0x1000, pattern(7));
    auto r = mem_.read(0x1000);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, pattern(7));
    EXPECT_FALSE(mem_.killed());
}

TEST_F(SecureMemoryTest, OverwriteReturnsLatestValue)
{
    mem_.write(0x1000, pattern(1));
    mem_.write(0x1000, pattern(2));
    auto r = mem_.read(0x1000);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, pattern(2));
}

TEST_F(SecureMemoryTest, UnwrittenBlockReadsNothing)
{
    EXPECT_FALSE(mem_.read(0x9000).has_value());
    EXPECT_FALSE(mem_.killed()); // not an attack
}

TEST_F(SecureMemoryTest, SameValueWritesYieldDifferentCipher)
{
    // The full version in the XTS tweak makes rewrites of the same
    // value produce different ciphertexts (defeats traffic analysis,
    // Section 2.2 / 6.3).
    mem_.write(0x1000, pattern(5));
    auto c1 = mem_.snoop(0x1000);
    mem_.write(0x1000, pattern(5));
    auto c2 = mem_.snoop(0x1000);
    EXPECT_NE(c1.cipher, c2.cipher);
    EXPECT_NE(c1.mac, c2.mac);
}

TEST_F(SecureMemoryTest, ReplayAttackIsDetected)
{
    mem_.write(0x2000, pattern(1));
    auto old = mem_.snoop(0x2000); // adversary records the tuple
    mem_.write(0x2000, pattern(2));
    mem_.inject(0x2000, old);      // ...and replays it
    EXPECT_FALSE(mem_.read(0x2000).has_value());
    EXPECT_TRUE(mem_.killed());
}

TEST_F(SecureMemoryTest, ReplayWithUvRollbackIsDetected)
{
    // The adversary controls the UV (it lives in untrusted memory);
    // replaying both ciphertext and UV still fails because the
    // stealth version advanced.
    mem_.write(0x3000, pattern(1));
    auto old = mem_.snoop(0x3000);
    for (int i = 0; i < 10; ++i)
        mem_.write(0x3000, pattern(static_cast<std::uint8_t>(2 + i)));
    mem_.inject(0x3000, old);
    EXPECT_FALSE(mem_.read(0x3000).has_value());
    EXPECT_TRUE(mem_.killed());
}

TEST_F(SecureMemoryTest, TamperingCipherIsDetected)
{
    mem_.write(0x4000, pattern(9));
    mem_.flipCipherBit(0x4000, 13);
    EXPECT_FALSE(mem_.read(0x4000).has_value());
    EXPECT_TRUE(mem_.killed());
}

TEST_F(SecureMemoryTest, TamperingMacIsDetected)
{
    mem_.write(0x5000, pattern(9));
    auto b = mem_.snoop(0x5000);
    b.mac ^= 1;
    mem_.inject(0x5000, b);
    EXPECT_FALSE(mem_.read(0x5000).has_value());
    EXPECT_TRUE(mem_.killed());
}

TEST_F(SecureMemoryTest, KillSwitchStopsService)
{
    mem_.write(0x1000, pattern(1));
    mem_.write(0x6000, pattern(9));
    mem_.flipCipherBit(0x6000, 0);
    EXPECT_FALSE(mem_.read(0x6000).has_value());
    ASSERT_TRUE(mem_.killed());
    // Even intact blocks refuse service after the kill switch.
    EXPECT_FALSE(mem_.read(0x1000).has_value());
}

TEST_F(SecureMemoryTest, FreePageScramblesContents)
{
    // Section 4.3: a freed page's version resets and UV bumps without
    // re-encryption, so old contents fail their MAC check.
    mem_.write(0x7000, pattern(3));
    mem_.freePage(pageOf(0x7000));
    EXPECT_FALSE(mem_.read(0x7000).has_value());
    EXPECT_TRUE(mem_.killed());
}

TEST_F(SecureMemoryTest, OtherPagesSurvivePageFree)
{
    mem_.write(0x7000, pattern(3));
    mem_.write(0x10000, pattern(4));
    mem_.freePage(pageOf(0x7000));
    auto r = mem_.read(0x10000);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, pattern(4));
}

TEST_F(SecureMemoryTest, ManyBlocksManyPagesRoundTrip)
{
    Rng rng(42);
    for (int i = 0; i < 200; ++i) {
        const Addr a = (rng.nextBounded(4096)) * blockSize;
        mem_.write(a, pattern(static_cast<std::uint8_t>(i)));
        auto r = mem_.read(a);
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(*r, pattern(static_cast<std::uint8_t>(i)));
    }
    EXPECT_FALSE(mem_.killed());
}

TEST(SecureMemoryReset, SurvivesStealthResetsViaReencryption)
{
    // With an aggressive reset probability every write triggers a
    // UV_UPDATE + page re-encryption; reads must keep verifying.
    ToleoDeviceConfig cfg;
    cfg.capacityBytes = 100 * MiB;
    cfg.protectedBytes = 1 * GiB;
    cfg.trip.resetLog2 = 1; // reset with p = 1/2
    ToleoDevice device(cfg);
    SecureMemory mem(device, keyFrom(1), keyFrom(2), keyFrom(3));

    for (int i = 0; i < 100; ++i) {
        const Addr a = 0x8000 + (i % 8) * blockSize;
        mem.write(a, pattern(static_cast<std::uint8_t>(i)));
        auto r = mem.read(a);
        ASSERT_TRUE(r.has_value()) << "iteration " << i;
        EXPECT_EQ(*r, pattern(static_cast<std::uint8_t>(i)));
    }
    EXPECT_GT(device.store().resets(), 0u);
    EXPECT_FALSE(mem.killed());
}
