/**
 * @file
 * Tests for the device-side write-frequency guard (Section 2.1's
 * Rowhammer rate-limiting assumption).
 */

#include <gtest/gtest.h>

#include "toleo/rowhammer.hh"

using namespace toleo;

namespace {

RowhammerConfig
smallConfig()
{
    RowhammerConfig cfg;
    cfg.threshold = 100;
    cfg.windowUpdates = 10000;
    cfg.throttleNs = 500.0;
    return cfg;
}

} // namespace

TEST(Rowhammer, BenignPagesNotThrottled)
{
    RowhammerGuard g(smallConfig());
    for (PageNum p = 0; p < 500; ++p)
        EXPECT_DOUBLE_EQ(g.onUpdate(p), 0.0);
    EXPECT_EQ(g.throttledUpdates(), 0u);
}

TEST(Rowhammer, HammeredPageThrottled)
{
    RowhammerGuard g(smallConfig());
    double delay = 0.0;
    for (int i = 0; i < 150; ++i)
        delay = g.onUpdate(7);
    EXPECT_DOUBLE_EQ(delay, 500.0);
    EXPECT_TRUE(g.isHammered(7));
    EXPECT_FALSE(g.isHammered(8));
    EXPECT_GT(g.throttledUpdates(), 0u);
}

TEST(Rowhammer, ThresholdIsExact)
{
    auto cfg = smallConfig();
    RowhammerGuard g(cfg);
    for (std::uint64_t i = 1; i < cfg.threshold; ++i)
        EXPECT_DOUBLE_EQ(g.onUpdate(3), 0.0) << "update " << i;
    EXPECT_DOUBLE_EQ(g.onUpdate(3), cfg.throttleNs);
}

TEST(Rowhammer, CountersDecayOverWindow)
{
    auto cfg = smallConfig();
    RowhammerGuard g(cfg);
    // 80 updates (below threshold), then a full window of other
    // traffic: the counter halves, so 60 more stay below threshold.
    for (int i = 0; i < 80; ++i)
        g.onUpdate(5);
    for (std::uint64_t i = 0; i < cfg.windowUpdates; ++i)
        g.onUpdate(1000 + (i % 700));
    for (int i = 0; i < 55; ++i)
        EXPECT_DOUBLE_EQ(g.onUpdate(5), 0.0);
}

TEST(Rowhammer, ColdPagesAreForgotten)
{
    auto cfg = smallConfig();
    RowhammerGuard g(cfg);
    g.onUpdate(9); // count 1
    // Two decay windows: 1 -> 0 -> erased.
    for (std::uint64_t i = 0; i < 2 * cfg.windowUpdates; ++i)
        g.onUpdate(2000 + (i % 300));
    EXPECT_FALSE(g.isHammered(9));
    // Tracked set stays bounded by the active working set.
    EXPECT_LT(g.trackedPages(), 1000u);
}

TEST(Rowhammer, SustainedAttackKeepsBeingThrottled)
{
    auto cfg = smallConfig();
    RowhammerGuard g(cfg);
    std::uint64_t throttled = 0;
    for (int i = 0; i < 5000; ++i)
        throttled += g.onUpdate(42) > 0.0;
    // After warmup the attacker is throttled essentially always.
    EXPECT_GT(throttled, 4500u);
}
