/**
 * @file
 * Unit tests for the deterministic RNG and Zipf sampler.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hh"

using namespace toleo;

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        auto v = r.nextBounded(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, BoundedIsRoughlyUniform)
{
    Rng r(11);
    std::vector<int> counts(8, 0);
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++counts[r.nextBounded(8)];
    for (int c : counts) {
        EXPECT_GT(c, n / 8 * 0.9);
        EXPECT_LT(c, n / 8 * 1.1);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        auto v = r.nextRange(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, Pow2DrawProbability)
{
    Rng r(13);
    // p = 2^-8; expect ~390 successes in 100k draws.
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.nextPow2Draw(8);
    const double expected = n / 256.0;
    EXPECT_GT(hits, expected * 0.7);
    EXPECT_LT(hits, expected * 1.3);
}

TEST(Rng, Pow2DrawEdges)
{
    Rng r(17);
    EXPECT_TRUE(r.nextPow2Draw(0));   // p = 1
    EXPECT_FALSE(r.nextPow2Draw(64)); // p = 0
}

TEST(Rng, GaussianMoments)
{
    Rng r(21);
    const int n = 200000;
    double sum = 0, sq = 0;
    for (int i = 0; i < n; ++i) {
        double g = r.nextGaussian();
        sum += g;
        sq += g * g;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, GaussianScaled)
{
    Rng r(22);
    const int n = 100000;
    double sum = 0;
    for (int i = 0; i < n; ++i)
        sum += r.nextGaussian(10.0, 3.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Zipf, DomainRespected)
{
    ZipfSampler z(100, 0.99, 3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(z.next(), 100u);
}

TEST(Zipf, HeadIsHot)
{
    ZipfSampler z(10000, 0.99, 5);
    std::map<std::uint64_t, int> counts;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[z.next()];
    // Rank 0 should be drawn far more often than a mid-tail rank.
    EXPECT_GT(counts[0], n / 100);
    int tail = 0;
    for (auto &[k, v] : counts)
        if (k > 5000)
            tail += v;
    EXPECT_LT(tail, counts[0] * 5);
}

TEST(Zipf, HigherThetaIsMoreSkewed)
{
    ZipfSampler lo(10000, 0.5, 7), hi(10000, 1.2, 7);
    int lo_head = 0, hi_head = 0;
    for (int i = 0; i < 50000; ++i) {
        lo_head += (lo.next() < 10);
        hi_head += (hi.next() < 10);
    }
    EXPECT_GT(hi_head, lo_head);
}

TEST(Rng, BoundedMatchesPlainRejectionModulo)
{
    // nextBounded's fast paths (power-of-two mask, memoized
    // Granlund-Montgomery reciprocal) must reproduce the plain
    // threshold-rejection + modulo algorithm draw for draw.
    const std::uint64_t bounds[] = {
        1,       2,          3,     7,      9,    64,   100,
        1000,    4096,       12289, 786432, 1u << 20,
        (1u << 20) + 1,      0xffffffffull,
        0x100000001ull,      0xfffffffffffffffull,
    };
    for (const std::uint64_t bound : bounds) {
        Rng fast(99), ref(99);
        for (int i = 0; i < 2000; ++i) {
            const std::uint64_t got = fast.nextBounded(bound);
            std::uint64_t want;
            const std::uint64_t threshold = -bound % bound;
            for (;;) {
                const std::uint64_t r = ref.next();
                if (r >= threshold) {
                    want = r % bound;
                    break;
                }
            }
            ASSERT_EQ(got, want) << "bound=" << bound << " i=" << i;
        }
        // Interleaving different bounds exercises the memo reload.
        ASSERT_EQ(fast.nextBounded(3), [&] {
            for (;;) {
                const std::uint64_t r = ref.next();
                if (r >= (-std::uint64_t{3} % 3))
                    return r % 3;
            }
        }());
    }
}

// -- Fixed-seed pinning -------------------------------------------------
//
// The generators below are determinism-critical: sweep results, golden
// stats, and record/replay all assume a given (seed, algorithm) pair
// reproduces bit-identical draws forever.  These tests pin short
// fixed-seed prefixes so any change to the draw algorithms -- including
// a well-meaning UB fix that subtly reorders the float math -- fails
// loudly here instead of silently shifting every downstream golden.

TEST(RngPinned, RawSequenceSeed42)
{
    Rng r(42);
    const std::uint64_t want[] = {
        1546998764402558742ull, 6990951692964543102ull,
        12544586762248559009ull, 17057574109182124193ull,
    };
    for (const std::uint64_t w : want)
        EXPECT_EQ(r.next(), w);
}

TEST(RngPinned, BoundedPow2PathSeed42)
{
    // 4096 is a power of two: the mask fast path.
    Rng r(42);
    const std::uint64_t want[] = {
        1814ull, 2686ull, 2465ull, 161ull, 3684ull, 568ull,
    };
    for (const std::uint64_t w : want)
        EXPECT_EQ(r.nextBounded(4096), w);
}

TEST(RngPinned, BoundedReciprocalPathSeed42)
{
    // 12289 is not a power of two: the memoized Granlund-Montgomery
    // reciprocal path.
    Rng r(42);
    const std::uint64_t want[] = {
        9763ull, 4472ull, 2417ull, 2325ull, 5823ull, 11398ull,
    };
    for (const std::uint64_t w : want)
        EXPECT_EQ(r.nextBounded(12289), w);
}

TEST(RngPinned, DoubleSeed42)
{
    Rng r(42);
    EXPECT_EQ(r.nextDouble(), 0.083862971059882163);
    EXPECT_EQ(r.nextDouble(), 0.37898025066266861);
}

TEST(ZipfPinned, SequenceSeed42)
{
    // Covers the rank-0 / rank-1 shortcuts and the pow() tail,
    // including the clamp-before-cast shape in ZipfSampler::next().
    ZipfSampler z(100000, 0.99, 42);
    const std::uint64_t want[] = {
        1ull, 55ull, 2260ull, 41515ull,
        90909ull, 6636ull, 3624ull, 17227ull,
    };
    for (const std::uint64_t w : want)
        EXPECT_EQ(z.next(), w);
}
