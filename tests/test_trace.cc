/**
 * @file
 * Trace subsystem tests: binary round-trip through the TOLEOTRC
 * writer/reader, looped-replay semantics, transparency of capture
 * mode (a recorded run and its replay must both match the plain
 * synthetic run byte-for-byte in statsToJson), corrupt/truncated
 * file error paths, the text importer, and the committed fixture.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"
#include "workload/trace_file.hh"

using namespace toleo;

namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

WorkloadInfo
anyInfo()
{
    return {"t", "t", 0, 0.0, 4 * MiB, 4.0};
}

/** A stream of references exercising every encoding regime. */
std::vector<MemRef>
sampleRefs(unsigned salt)
{
    std::vector<MemRef> refs;
    Addr addr = (Addr{salt} + 1) << 40; // TB-range first delta
    for (unsigned i = 0; i < 400; ++i) {
        MemRef r;
        // Forward strides, page jumps, and backward deltas.
        if (i % 7 == 0)
            addr -= 3 * pageSize;
        else if (i % 3 == 0)
            addr += pageSize * (i % 11);
        else
            addr += blockSize;
        r.addr = addr;
        r.isWrite = (i % 5 == 0);
        r.instGap = (i % 13 == 0) ? 0xffffffffu : i % 17;
        refs.push_back(r);
    }
    return refs;
}

} // namespace

TEST(TraceRoundTrip, WriterReaderPreserveEveryRecord)
{
    const std::string path = tempPath("trace_roundtrip.trc");
    const auto s0 = sampleRefs(0);
    const auto s1 = sampleRefs(7);

    TraceWriter writer(2, "bsw", 1234);
    writer.append(0, s0.data(), s0.size());
    writer.append(1, s1.data(), s1.size());
    EXPECT_EQ(writer.recordCount(0), s0.size());
    writer.writeTo(path);

    const auto trace = TraceFile::open(path);
    EXPECT_EQ(trace->workload(), "bsw");
    EXPECT_EQ(trace->seed(), 1234u);
    ASSERT_EQ(trace->streamCount(), 2u);
    EXPECT_EQ(trace->recordCount(0), s0.size());
    EXPECT_EQ(trace->recordCount(1), s1.size());

    for (unsigned stream = 0; stream < 2; ++stream) {
        const auto &want = stream == 0 ? s0 : s1;
        TraceReplayGen gen(anyInfo(), trace, stream);
        std::vector<MemRef> got(want.size());
        gen.nextBatch(got.data(), got.size());
        for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(got[i].addr, want[i].addr) << i;
            EXPECT_EQ(got[i].isWrite, want[i].isWrite) << i;
            EXPECT_EQ(got[i].instGap, want[i].instGap) << i;
        }
    }
    std::remove(path.c_str());
}

TEST(TraceRoundTrip, ReplayLoopsPastTheCapturedWindow)
{
    const std::string path = tempPath("trace_loop.trc");
    const auto refs = sampleRefs(3);
    TraceWriter writer(1, "t", 0);
    writer.append(0, refs.data(), refs.size());
    writer.writeTo(path);

    const auto trace = TraceFile::open(path);
    TraceReplayGen gen(anyInfo(), trace, 0);
    // Core 5 of a replayed System maps onto stream 5 % 1 == 0.
    TraceReplayGen wrapped(anyInfo(), trace, 5);

    // Drain two and a half laps one reference at a time: every lap
    // must replay the identical sequence (delta state resets at the
    // wrap).
    for (unsigned lap = 0; lap < 2; ++lap) {
        for (std::size_t i = 0; i < refs.size(); ++i) {
            const MemRef a = gen.next();
            const MemRef b = wrapped.next();
            EXPECT_EQ(a.addr, refs[i].addr) << lap << ":" << i;
            EXPECT_EQ(b.addr, refs[i].addr) << lap << ":" << i;
            EXPECT_EQ(a.instGap, refs[i].instGap);
            EXPECT_EQ(a.isWrite, refs[i].isWrite);
        }
    }
    std::remove(path.c_str());
}

namespace {

SweepOptions
tinyWindow()
{
    SweepOptions opts;
    opts.cores = 2;
    opts.warmupRefs = 500;
    opts.measureRefs = 1500;
    return opts;
}

} // namespace

TEST(TraceCapture, RecordedAndReplayedRunsMatchLiveByteForByte)
{
    const std::string path = tempPath("trace_capture.trc");
    const SweepCell cell{"bsw", EngineKind::Toleo};

    // Plain synthetic run: the reference result.
    const std::string live =
        statsToJson(runSweepCell(cell, tinyWindow())).dump(2);

    // Same run with capture enabled: recording must be transparent.
    SweepOptions rec = tinyWindow();
    rec.recordTracePath = path;
    const std::string recorded =
        statsToJson(runSweepCell(cell, rec)).dump(2);
    EXPECT_EQ(live, recorded);

    // The capture holds warmup + measurement for every core.
    const auto trace = TraceFile::open(path);
    EXPECT_EQ(trace->workload(), "bsw");
    ASSERT_EQ(trace->streamCount(), 2u);
    EXPECT_EQ(trace->recordCount(0), 2000u);
    EXPECT_EQ(trace->recordCount(1), 2000u);

    // Replaying the capture through the same window reproduces the
    // live generator's stats byte-for-byte -- the acceptance
    // contract of the trace subsystem.
    SweepOptions rep = tinyWindow();
    rep.tracePath = path;
    const std::string replayed =
        statsToJson(runSweepCell(cell, rep)).dump(2);
    EXPECT_EQ(live, replayed);

    std::remove(path.c_str());
}

TEST(TraceCapture, ReplayUnderADifferentEngineStillRuns)
{
    const std::string path = tempPath("trace_engines.trc");
    SweepOptions rec = tinyWindow();
    rec.recordTracePath = path;
    runSweepCell({"bsw", EngineKind::NoProtect}, rec);

    // The same capture drives any engine in the grid (the CI smoke
    // cell relies on this), with a shorter and a longer window than
    // the capture (the latter wraps).
    SweepOptions rep = tinyWindow();
    rep.tracePath = path;
    rep.measureRefs = 500;
    EXPECT_GT(runSweepCell({"bsw", EngineKind::Merkle}, rep).ipc, 0.0);
    rep.measureRefs = 6000;
    EXPECT_GT(runSweepCell({"bsw", EngineKind::Toleo}, rep).ipc, 0.0);

    std::remove(path.c_str());
}

TEST(TraceErrors, OversizedWorkloadNameIsRejected)
{
    // The header name field is 32 bytes NUL-padded; silent
    // truncation would round-trip a different name.
    EXPECT_THROW(TraceWriter(1, std::string(32, 'x'), 0), TraceError);
    EXPECT_NO_THROW(TraceWriter(1, std::string(31, 'x'), 0));
}

TEST(TraceCapture, ReplayAndRecordAtOnceThrows)
{
    SweepOptions opts = tinyWindow();
    opts.tracePath = "whatever.trc";
    opts.recordTracePath = tempPath("trace_conflict.trc");
    EXPECT_THROW(runSweepCell({"bsw", EngineKind::Toleo}, opts),
                 TraceError);
}

TEST(TraceCapture, RecordingAMultiCellSweepThrows)
{
    // One capture file per run(): a multi-cell grid would have every
    // cell rewrite the same path, so runSweep itself (not just the
    // toleo_sim CLI) must refuse.
    SweepOptions rec = tinyWindow();
    rec.recordTracePath = tempPath("trace_multicell.trc");
    const std::vector<SweepCell> grid = {
        {"bsw", EngineKind::NoProtect}, {"bsw", EngineKind::Toleo}};
    EXPECT_THROW(runSweep(grid, rec), TraceError);
}

TEST(TraceErrors, LoadFailuresThrowTraceError)
{
    const std::string good = tempPath("trace_good.trc");
    const auto refs = sampleRefs(1);
    TraceWriter writer(1, "bsw", 42);
    writer.append(0, refs.data(), refs.size());
    writer.writeTo(good);
    const std::string bytes = readFile(good);
    ASSERT_GT(bytes.size(), 64u);

    const std::string bad = tempPath("trace_bad.trc");
    auto expectThrows = [&](const std::string &contents,
                            const char *what) {
        writeFile(bad, contents);
        EXPECT_THROW(TraceFile::open(bad), TraceError) << what;
    };

    // Missing file.
    EXPECT_THROW(TraceFile::open(tempPath("no_such_trace.trc")),
                 TraceError);

    // Truncated header (empty and mid-header).
    expectThrows("", "empty file");
    expectThrows(bytes.substr(0, 10), "mid-header truncation");

    // Bad magic.
    {
        std::string b = bytes;
        b[0] = 'X';
        expectThrows(b, "bad magic");
    }
    // Unsupported version.
    {
        std::string b = bytes;
        b[8] = 99;
        expectThrows(b, "bad version");
    }
    // Zero streams.
    {
        std::string b = bytes;
        b[12] = 0;
        expectThrows(b, "zero streams");
    }
    // Stream table runs past the end of the file.
    {
        std::string b = bytes;
        b[12] = 100;
        expectThrows(b, "oversized stream table");
    }
    // Truncated payload: the stream decodes to fewer records than
    // the table declares.
    expectThrows(bytes.substr(0, bytes.size() - 1),
                 "truncated payload");
    // Corrupt payload: a varint with its continuation bit stuck runs
    // off the end of the stream.
    {
        std::string b = bytes;
        b[b.size() - 1] = static_cast<char>(
            static_cast<unsigned char>(b[b.size() - 1]) | 0x80);
        expectThrows(b, "non-terminating varint");
    }
    // Corrupt record count in the stream table (offset 64 + 16).
    {
        std::string b = bytes;
        b[64 + 16] = static_cast<char>(b[64 + 16] + 1);
        expectThrows(b, "record count mismatch");
    }

    // An empty stream cannot provide infinite replay.
    const std::string empty = tempPath("trace_empty.trc");
    TraceWriter(1, "t", 0).writeTo(empty);
    EXPECT_THROW(TraceFile::open(empty), TraceError);

    std::remove(good.c_str());
    std::remove(bad.c_str());
    std::remove(empty.c_str());
}

TEST(TraceErrors, WriterOutputCarriesAVerifiableChecksum)
{
    const std::string path = tempPath("trace_checksum.trc");
    const auto refs = sampleRefs(2);
    TraceWriter writer(1, "bsw", 42);
    writer.append(0, refs.data(), refs.size());
    writer.writeTo(path);

    std::string bytes = readFile(path);
    ASSERT_GT(bytes.size(), 64u);
    // The checksum field (offset 56) is nonzero...
    bool nonzero = false;
    for (int i = 0; i < 8; ++i)
        nonzero = nonzero || bytes[56 + i] != 0;
    EXPECT_TRUE(nonzero);
    // ...and a freshly written file verifies.
    EXPECT_NO_THROW(TraceFile::open(path));

    // Zeroing the field turns the file into an unchecksummed legacy
    // capture, which must still load on structural validation alone
    // (pre-checksum traces stay replayable).
    for (int i = 0; i < 8; ++i)
        bytes[56 + i] = 0;
    writeFile(path, bytes);
    EXPECT_NO_THROW(TraceFile::open(path));

    std::remove(path.c_str());
}

#ifdef TOLEO_TRACE_FIXTURE

TEST(TraceFuzz, AnySingleByteCorruptionOfTheFixtureThrows)
{
    // Property test for the reader: flip one byte anywhere in the
    // committed fixture and the load must raise TraceError -- never
    // crash, never silently succeed with a different stream.  The
    // structural checks alone cannot promise this (a flipped bit
    // inside a varint can still decode cleanly); the whole-file
    // checksum closes exactly that hole.  Seeded draws keep the run
    // deterministic.
    const std::string pristine = readFile(TOLEO_TRACE_FIXTURE);
    ASSERT_GT(pristine.size(), 64u);
    ASSERT_NO_THROW(TraceFile::open(TOLEO_TRACE_FIXTURE));

    const std::string bad = tempPath("trace_fuzz.trc");
    Rng rng(0xf00dfeed);
    for (int iter = 0; iter < 300; ++iter) {
        // First iterations sweep the header + stream table byte by
        // byte (the structured region where a lucky flip is most
        // likely to stay parseable); the rest sample the payload.
        const std::size_t off =
            iter < 112 ? static_cast<std::size_t>(iter)
                       : rng.nextBounded(pristine.size());
        const std::uint8_t flip = static_cast<std::uint8_t>(
            1 + rng.nextBounded(255));
        std::string corrupt = pristine;
        corrupt[off] = static_cast<char>(
            static_cast<std::uint8_t>(corrupt[off]) ^ flip);

        writeFile(bad, corrupt);
        EXPECT_THROW(TraceFile::open(bad), TraceError)
            << "offset " << off << " xor "
            << static_cast<unsigned>(flip);
    }
    std::remove(bad.c_str());
}

TEST(TraceFixture, CommittedFixtureLoadsAndReplays)
{
    const auto trace = TraceFile::open(TOLEO_TRACE_FIXTURE);
    EXPECT_EQ(trace->workload(), "bsw");
    ASSERT_EQ(trace->streamCount(), 2u);
    EXPECT_GT(trace->recordCount(0), 0u);
    EXPECT_GT(trace->recordCount(1), 0u);

    SweepOptions opts = tinyWindow();
    opts.tracePath = TOLEO_TRACE_FIXTURE;
    const SimStats stats =
        runSweepCell({"bsw", EngineKind::Toleo}, opts);
    EXPECT_GT(stats.ipc, 0.0);
    EXPECT_GT(stats.llcMpki, 0.0);
}

#endif // TOLEO_TRACE_FIXTURE

#ifdef TOLEO_TRACE_CONVERT_BIN

TEST(TraceConvert, TextImportRoundTrip)
{
    const std::string txt = tempPath("trace_convert_in.txt");
    const std::string trc = tempPath("trace_convert_out.trc");
    writeFile(txt,
              "# addr,rw,gap\n"
              "0x10040,R,3\n"
              "0x10080, W, 1\n"
              "\n"
              "65728 r\n"             // decimal, no gap
              "0x100c0,w,7 # store\n" // trailing comment
              "0x20000,R,2\n"
              "0x20040,W,0\n");

    const std::string cmd =
        std::string("\"") + TOLEO_TRACE_CONVERT_BIN +
        "\" --workload bsw --streams 2 --seed 9 \"" + txt + "\" \"" +
        trc + "\" 2> /dev/null";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

    const auto trace = TraceFile::open(trc);
    EXPECT_EQ(trace->workload(), "bsw");
    EXPECT_EQ(trace->seed(), 9u);
    ASSERT_EQ(trace->streamCount(), 2u);
    // 6 references dealt round-robin onto 2 streams.
    EXPECT_EQ(trace->recordCount(0), 3u);
    EXPECT_EQ(trace->recordCount(1), 3u);

    // Stream 0 got lines 1, 3, 5: check full decode.
    TraceReplayGen gen(anyInfo(), trace, 0);
    MemRef refs[3];
    gen.nextBatch(refs, 3);
    EXPECT_EQ(refs[0].addr, 0x10040u);
    EXPECT_FALSE(refs[0].isWrite);
    EXPECT_EQ(refs[0].instGap, 3u);
    EXPECT_EQ(refs[1].addr, 65728u);
    EXPECT_FALSE(refs[1].isWrite);
    EXPECT_EQ(refs[1].instGap, 0u);
    EXPECT_EQ(refs[2].addr, 0x20000u);
    EXPECT_FALSE(refs[2].isWrite);
    EXPECT_EQ(refs[2].instGap, 2u);

    // Malformed input fails loudly instead of emitting a trace:
    // a bad access type, and extra fields (e.g. two joined records)
    // that silently dropping would turn into a corrupted import.
    for (const char *junk :
         {"0x1000,Q,1\n", "0x1000 R 3 0x2000 W 1\n"}) {
        writeFile(txt, junk);
        const std::string bad =
            std::string("\"") + TOLEO_TRACE_CONVERT_BIN + "\" \"" +
            txt + "\" \"" + trc + "\" > /dev/null 2>&1";
        EXPECT_NE(std::system(bad.c_str()), 0) << junk;
    }

    std::remove(txt.c_str());
    std::remove(trc.c_str());
}

#endif // TOLEO_TRACE_CONVERT_BIN
