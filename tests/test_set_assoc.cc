/**
 * @file
 * SetAssocCache tag-scan equivalence tests.
 *
 * findInSet dispatches to an AVX2 probe over the per-set key slab
 * when the host supports it (cache/set_assoc.hh).  The cache's
 * behavior -- and through it every golden fixture -- must not depend
 * on which implementation ran, so these tests drive the public
 * static scan entry points over randomized slabs and require the
 * dispatcher to agree with the scalar reference on every probe,
 * including the adversarial shapes: stale duplicate keys parked on
 * invalidated lines, multiple valid duplicates (lowest way must
 * win), and tail ways past the last full SIMD group.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "cache/set_assoc.hh"
#include "common/rng.hh"

using namespace toleo;

namespace {

/** One randomized set: keys, metadata, and a pool of probe needles. */
struct RandomSet
{
    std::vector<std::uint64_t> keys;
    std::vector<std::uint64_t> meta;
    std::vector<std::uint64_t> needles;
};

RandomSet
makeRandomSet(Rng &rng, unsigned assoc)
{
    RandomSet set;
    set.keys.resize(assoc);
    set.meta.resize(assoc);
    for (unsigned w = 0; w < assoc; ++w) {
        // Small key space so duplicates across ways are common.
        set.keys[w] = rng.nextBounded(assoc + 4);
        const bool valid = rng.nextBool(0.75);
        const bool dirty = valid && rng.nextBool(0.5);
        // Metadata word: (lastUse << 2) | dirty | valid, exactly as
        // the cache packs it; invalid lines keep a stale key but a
        // zero word.
        set.meta[w] = valid ? (rng.nextBounded(1000) << 2) |
                                  (dirty ? SetAssocCache::kDirty : 0) |
                                  SetAssocCache::kValid
                            : 0;
    }
    // Probe every key that appears in the set (present on valid
    // and/or invalid lines) plus a few guaranteed absentees.
    set.needles = set.keys;
    for (unsigned i = 0; i < 4; ++i)
        set.needles.push_back(assoc + 4 + i);
    return set;
}

} // namespace

TEST(SetAssocScan, DispatcherMatchesScalarOnRandomSets)
{
    Rng rng(0xdecafbad);
    for (unsigned assoc = 1; assoc <= 24; ++assoc) {
        for (unsigned trial = 0; trial < 200; ++trial) {
            const RandomSet set = makeRandomSet(rng, assoc);
            for (const std::uint64_t needle : set.needles) {
                const unsigned expect = SetAssocCache::scanWaysScalar(
                    set.keys.data(), set.meta.data(), assoc, needle);
                const unsigned got = SetAssocCache::scanWays(
                    set.keys.data(), set.meta.data(), assoc, needle);
                ASSERT_EQ(expect, got)
                    << "assoc " << assoc << " trial " << trial
                    << " needle " << needle;
            }
        }
    }
}

#if TOLEO_SET_ASSOC_SIMD
TEST(SetAssocScan, Avx2MatchesScalarOnRandomSets)
{
    if (!SetAssocCache::haveAvx2())
        GTEST_SKIP() << "host has no AVX2; dispatcher test covers "
                        "the scalar path";
    Rng rng(0xfeedface);
    // Below the dispatcher's assoc >= 8 gate too: the AVX2 scan must
    // be correct for ANY width so the gate stays a pure perf knob.
    for (unsigned assoc = 1; assoc <= 24; ++assoc) {
        for (unsigned trial = 0; trial < 200; ++trial) {
            const RandomSet set = makeRandomSet(rng, assoc);
            for (const std::uint64_t needle : set.needles) {
                const unsigned expect = SetAssocCache::scanWaysScalar(
                    set.keys.data(), set.meta.data(), assoc, needle);
                const unsigned got = SetAssocCache::scanWaysAvx2(
                    set.keys.data(), set.meta.data(), assoc, needle);
                ASSERT_EQ(expect, got)
                    << "assoc " << assoc << " trial " << trial
                    << " needle " << needle;
            }
        }
    }
}
#endif

TEST(SetAssocScan, ValidDuplicateResolvesToLowestWay)
{
    // Duplicate *valid* keys cannot arise from cache operation, but
    // the scan contract (lowest matching way) is what makes the SIMD
    // and scalar paths interchangeable, so pin it directly.
    const std::uint64_t keys[8] = {9, 7, 7, 3, 7, 1, 2, 7};
    std::uint64_t meta[8];
    for (auto &m : meta)
        m = (100 << 2) | SetAssocCache::kValid;
    EXPECT_EQ(1u, SetAssocCache::scanWays(keys, meta, 8, 7));
    EXPECT_EQ(1u, SetAssocCache::scanWaysScalar(keys, meta, 8, 7));

    // The first duplicate invalidated: the next valid one wins.
    meta[1] = 0;
    EXPECT_EQ(2u, SetAssocCache::scanWays(keys, meta, 8, 7));
    EXPECT_EQ(2u, SetAssocCache::scanWaysScalar(keys, meta, 8, 7));
}

TEST(SetAssocScan, StaleKeyOnInvalidLineDoesNotHit)
{
    const std::uint64_t keys[8] = {5, 6, 7, 8, 9, 10, 11, 12};
    std::uint64_t meta[8];
    for (auto &m : meta)
        m = (50 << 2) | SetAssocCache::kValid;
    meta[2] = 0; // key 7 is stale
    EXPECT_EQ(SetAssocCache::wayNone,
              SetAssocCache::scanWays(keys, meta, 8, 7));
    EXPECT_EQ(6u, SetAssocCache::scanWays(keys, meta, 8, 11));
    EXPECT_EQ(SetAssocCache::wayNone,
              SetAssocCache::scanWays(keys, meta, 8, 42));
}
