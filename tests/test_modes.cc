/**
 * @file
 * Tests for AES-CTR, AES-XTS, and the 56-bit MAC -- including the
 * cipher properties the paper's security argument relies on
 * (Section 2.2, 4.2): nonce-unique ciphertexts under CTR/XTS-with-
 * version, deterministic ciphertexts under plain XTS, and MAC
 * sensitivity to version, address, and ciphertext.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "crypto/modes.hh"

using namespace toleo;

namespace {

Bytes
randomBlock(Rng &rng)
{
    Bytes b(blockSize);
    for (auto &x : b)
        x = static_cast<std::uint8_t>(rng.next());
    return b;
}

AesKey
keyFrom(std::uint64_t seed)
{
    Rng rng(seed);
    AesKey k{};
    for (auto &b : k)
        b = static_cast<std::uint8_t>(rng.next());
    return k;
}

} // namespace

class ModesTest : public ::testing::Test
{
  protected:
    Rng rng{42};
    AesCtr ctr{keyFrom(1)};
    AesXts xts{keyFrom(2), keyFrom(3)};
    Mac56 mac{keyFrom(4)};
};

TEST_F(ModesTest, CtrIsInvolution)
{
    for (int i = 0; i < 50; ++i) {
        Bytes p = randomBlock(rng);
        Bytes c = ctr.apply(p, 7, 0x1000);
        EXPECT_NE(c, p);
        EXPECT_EQ(ctr.apply(c, 7, 0x1000), p);
    }
}

TEST_F(ModesTest, CtrDifferentVersionsDifferentCipher)
{
    Bytes p = randomBlock(rng);
    EXPECT_NE(ctr.apply(p, 1, 0x1000), ctr.apply(p, 2, 0x1000));
}

TEST_F(ModesTest, XtsRoundTrip)
{
    for (int i = 0; i < 50; ++i) {
        Bytes p = randomBlock(rng);
        std::uint64_t v = rng.next();
        Addr a = rng.next() & ~0x3fULL;
        Bytes c = xts.encrypt(p, v, a);
        EXPECT_NE(c, p);
        EXPECT_EQ(xts.decrypt(c, v, a), p);
    }
}

TEST_F(ModesTest, XtsSameValueSameTweakIsDeterministic)
{
    // Scalable SGX's weakness: without a nonce, identical writes
    // yield identical ciphertexts (traffic analysis, Section 2.2).
    Bytes p = randomBlock(rng);
    EXPECT_EQ(xts.encrypt(p, 0, 0x40), xts.encrypt(p, 0, 0x40));
}

TEST_F(ModesTest, XtsVersionTweakBreaksDeterminism)
{
    // Toleo's full version in the tweak restores uniqueness.
    Bytes p = randomBlock(rng);
    EXPECT_NE(xts.encrypt(p, 1, 0x40), xts.encrypt(p, 2, 0x40));
}

TEST_F(ModesTest, XtsAddressBindsCipher)
{
    Bytes p = randomBlock(rng);
    EXPECT_NE(xts.encrypt(p, 5, 0x40), xts.encrypt(p, 5, 0x80));
}

TEST_F(ModesTest, XtsWrongVersionFailsToDecrypt)
{
    Bytes p = randomBlock(rng);
    Bytes c = xts.encrypt(p, 9, 0x100);
    EXPECT_NE(xts.decrypt(c, 10, 0x100), p);
}

TEST_F(ModesTest, MacIsDeterministic)
{
    Bytes c = randomBlock(rng);
    EXPECT_EQ(mac.compute(3, 0x40, c), mac.compute(3, 0x40, c));
}

TEST_F(ModesTest, MacFitsIn56Bits)
{
    for (int i = 0; i < 100; ++i) {
        Bytes c = randomBlock(rng);
        EXPECT_EQ(mac.compute(i, 0x40, c) >> 56, 0u);
    }
}

TEST_F(ModesTest, MacDependsOnVersion)
{
    Bytes c = randomBlock(rng);
    EXPECT_NE(mac.compute(1, 0x40, c), mac.compute(2, 0x40, c));
}

TEST_F(ModesTest, MacDependsOnAddress)
{
    Bytes c = randomBlock(rng);
    EXPECT_NE(mac.compute(1, 0x40, c), mac.compute(1, 0x80, c));
}

TEST_F(ModesTest, MacDependsOnCipherText)
{
    Bytes c = randomBlock(rng);
    const std::uint64_t m1 = mac.compute(1, 0x40, c);
    c[13] ^= 0x20;
    EXPECT_NE(mac.compute(1, 0x40, c), m1);
}

TEST_F(ModesTest, MacKeySeparation)
{
    Mac56 other{keyFrom(5)};
    Bytes c = randomBlock(rng);
    EXPECT_NE(mac.compute(1, 0x40, c), other.compute(1, 0x40, c));
}

// Parameterized sweep: round-trip must hold across version/address
// combinations (property-style check of the tweak construction).
class XtsSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Addr>>
{};

TEST_P(XtsSweep, RoundTrip)
{
    auto [version, addr] = GetParam();
    AesXts xts{keyFrom(2), keyFrom(3)};
    Rng rng(version ^ addr);
    Bytes p = randomBlock(rng);
    EXPECT_EQ(xts.decrypt(xts.encrypt(p, version, addr), version, addr),
              p);
}

INSTANTIATE_TEST_SUITE_P(
    VersionsAndAddresses, XtsSweep,
    ::testing::Combine(
        ::testing::Values(0ULL, 1ULL, (1ULL << 27) - 1, 1ULL << 27,
                          (1ULL << 63) + 5),
        ::testing::Values(0x0ULL, 0x40ULL, 0xfffc0ULL,
                          0x7fffffffffc0ULL)));
