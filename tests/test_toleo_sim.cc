/**
 * @file
 * Smoke tests for the toleo_sim sweep driver: the JSON library it
 * emits with, the shared sweep API it drives, and the installed
 * binary end-to-end (exec'd, output parsed back).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"

using namespace toleo;

TEST(Json, RoundTrip)
{
    Json doc = Json::object();
    doc["name"] = "toleo";
    doc["pi"] = 3.25;
    doc["count"] = std::uint64_t{42};
    doc["ok"] = true;
    doc["none"] = Json();
    Json arr = Json::array();
    arr.push_back(1);
    arr.push_back("two");
    doc["arr"] = std::move(arr);

    for (const int indent : {-1, 2}) {
        std::string err;
        const Json back = Json::parse(doc.dump(indent), &err);
        ASSERT_TRUE(err.empty()) << err;
        EXPECT_EQ(back.get("name")->asString(), "toleo");
        EXPECT_DOUBLE_EQ(back.get("pi")->asDouble(), 3.25);
        EXPECT_EQ(back.get("count")->asUint(), 42u);
        EXPECT_TRUE(back.get("ok")->asBool());
        EXPECT_TRUE(back.get("none")->isNull());
        EXPECT_EQ(back.get("arr")->size(), 2u);
        EXPECT_EQ(back.get("arr")->at(1).asString(), "two");
    }
}

TEST(Json, StringEscapes)
{
    const Json doc("a\"b\\c\nd\te");
    std::string err;
    const Json back = Json::parse(doc.dump(), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(back.asString(), "a\"b\\c\nd\te");

    const Json uni = Json::parse("\"\\u0041\\u00e9\"", &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(uni.asString(), "A\xc3\xa9");
}

TEST(Json, NonFiniteNumbersSerializeAsNull)
{
    // JSON has no NaN/Inf literals; %.17g's "nan"/"inf" spellings
    // would make the document unparseable, so non-finite doubles
    // must degrade to null.
    const double nan = std::nan("");
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(Json(nan).dump(), "null");
    EXPECT_EQ(Json(inf).dump(), "null");
    EXPECT_EQ(Json(-inf).dump(), "null");

    Json doc = Json::object();
    doc["a"] = nan;
    doc["b"] = inf;
    doc["c"] = -inf;
    doc["fine"] = 1.5;
    Json arr = Json::array();
    arr.push_back(nan);
    arr.push_back(2.5);
    doc["arr"] = std::move(arr);

    for (const int indent : {-1, 2}) {
        const std::string text = doc.dump(indent);
        EXPECT_EQ(text.find("nan"), std::string::npos) << text;
        EXPECT_EQ(text.find("inf"), std::string::npos) << text;

        std::string err;
        const Json back = Json::parse(text, &err);
        ASSERT_TRUE(err.empty()) << err;
        EXPECT_TRUE(back.get("a")->isNull());
        EXPECT_TRUE(back.get("b")->isNull());
        EXPECT_TRUE(back.get("c")->isNull());
        EXPECT_DOUBLE_EQ(back.get("fine")->asDouble(), 1.5);
        EXPECT_TRUE(back.get("arr")->at(0).isNull());
        EXPECT_DOUBLE_EQ(back.get("arr")->at(1).asDouble(), 2.5);
    }
}

TEST(Json, ParseErrors)
{
    std::string err;
    EXPECT_TRUE(Json::parse("{\"a\":", &err).isNull());
    EXPECT_FALSE(err.empty());
    EXPECT_TRUE(Json::parse("[1,2,]x", &err).isNull());
    EXPECT_FALSE(err.empty());
    EXPECT_TRUE(Json::parse("tru", &err).isNull());
    EXPECT_FALSE(err.empty());
}

TEST(SweepApi, EngineAndWorkloadParsing)
{
    EngineKind kind;
    ASSERT_TRUE(parseEngineKind("Toleo", kind));
    EXPECT_EQ(kind, EngineKind::Toleo);
    EXPECT_FALSE(parseEngineKind("toleo", kind));
    EXPECT_FALSE(parseEngineKind("", kind));

    EXPECT_EQ(parseEngineList("all").size(), 6u);
    const auto two = parseEngineList("NoProtect,Merkle");
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0], EngineKind::NoProtect);
    EXPECT_EQ(two[1], EngineKind::Merkle);

    EXPECT_EQ(parseWorkloadList("all"), paperWorkloads());
    const auto w = parseWorkloadList("bsw,dbg");
    ASSERT_EQ(w.size(), 2u);
    EXPECT_EQ(w[0], "bsw");
    EXPECT_EQ(w[1], "dbg");
}

TEST(SweepApi, GridIsRowMajor)
{
    const auto cells = makeSweepGrid(
        {"bsw", "dbg"}, {EngineKind::NoProtect, EngineKind::Toleo});
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0].workload, "bsw");
    EXPECT_EQ(cells[0].engine, EngineKind::NoProtect);
    EXPECT_EQ(cells[1].workload, "bsw");
    EXPECT_EQ(cells[1].engine, EngineKind::Toleo);
    EXPECT_EQ(cells[3].workload, "dbg");
    EXPECT_EQ(cells[3].engine, EngineKind::Toleo);
}

namespace {

SweepOptions
tinyWindow()
{
    SweepOptions opts;
    opts.cores = 2;
    opts.warmupRefs = 500;
    opts.measureRefs = 2000;
    return opts;
}

} // namespace

TEST(SweepApi, ParallelMatchesSerial)
{
    const auto cells = makeSweepGrid(
        {"bsw", "dbg"}, {EngineKind::NoProtect, EngineKind::Toleo});

    SweepOptions serial = tinyWindow();
    serial.jobs = 1;
    SweepOptions parallel = tinyWindow();
    parallel.jobs = 4;

    std::size_t calls = 0;
    const auto a = runSweep(cells, serial,
                            [&](const SimStats &, std::size_t done,
                                std::size_t total) {
                                ++calls;
                                EXPECT_LE(done, total);
                            });
    const auto b = runSweep(cells, parallel);

    EXPECT_EQ(calls, cells.size());
    ASSERT_EQ(a.size(), cells.size());
    ASSERT_EQ(b.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        // Cells are deterministic given the seed, so thread fan-out
        // must not change any result.
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].engine, b[i].engine);
        EXPECT_EQ(a[i].instructions, b[i].instructions);
        EXPECT_EQ(a[i].llcMisses, b[i].llcMisses);
        EXPECT_DOUBLE_EQ(a[i].ipc, b[i].ipc);
        EXPECT_GT(a[i].ipc, 0.0);
        EXPECT_GT(a[i].llcMpki, 0.0);
    }
}

TEST(SweepApi, StatsSerializeRoundTrip)
{
    SweepOptions opts = tinyWindow();
    const SimStats stats =
        runSweepCell({"bsw", EngineKind::Toleo}, opts);

    std::string err;
    const Json j = Json::parse(statsToJson(stats).dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(j.get("workload")->asString(), "bsw");
    EXPECT_EQ(j.get("engine")->asString(), "Toleo");
    EXPECT_DOUBLE_EQ(j.get("ipc")->asDouble(), stats.ipc);
    EXPECT_EQ(j.get("llcMisses")->asUint(), stats.llcMisses);
    EXPECT_EQ(j.get("usageTimeline")->size(),
              stats.usageTimeline.size());

    const std::string row = statsCsvRow(stats);
    EXPECT_NE(row.find("bsw,Toleo,"), std::string::npos);
    // Header and row have the same number of columns.
    const auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(statsCsvHeader()), commas(row));
}

#ifdef TOLEO_SIM_BIN

TEST(ToleoSimBinary, TinySweepEmitsValidJson)
{
    const std::string out =
        ::testing::TempDir() + "/toleo_sim_smoke.json";
    const std::string cmd =
        std::string("\"") + TOLEO_SIM_BIN +
        "\" --workloads bsw,dbg --engines NoProtect,Toleo"
        " --cores 2 --warmup 500 --measure 2000 --jobs 4 --quiet"
        " --out \"" + out + "\"";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

    std::ifstream in(out);
    ASSERT_TRUE(in.good()) << "missing output file " << out;
    std::ostringstream text;
    text << in.rdbuf();

    std::string err;
    const Json doc = Json::parse(text.str(), &err);
    ASSERT_TRUE(err.empty()) << err;

    ASSERT_TRUE(doc.has("config"));
    EXPECT_EQ(doc.get("config")->get("jobs")->asUint(), 4u);
    EXPECT_EQ(doc.get("config")->get("cells")->asUint(), 4u);

    const Json *results = doc.get("results");
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->size(), 4u);
    for (std::size_t i = 0; i < results->size(); ++i) {
        const Json &r = results->at(i);
        EXPECT_GT(r.get("ipc")->asDouble(), 0.0);
        EXPECT_GT(r.get("llcMpki")->asDouble(), 0.0);
        EXPECT_GT(r.get("instructions")->asUint(), 0u);
    }
    // Row-major cell order survives the parallel run.
    EXPECT_EQ(results->at(0).get("workload")->asString(), "bsw");
    EXPECT_EQ(results->at(0).get("engine")->asString(), "NoProtect");
    EXPECT_EQ(results->at(3).get("workload")->asString(), "dbg");
    EXPECT_EQ(results->at(3).get("engine")->asString(), "Toleo");

    std::remove(out.c_str());
}

TEST(ToleoSimBinary, CsvAndBadArgs)
{
    const std::string out =
        ::testing::TempDir() + "/toleo_sim_smoke.csv";
    const std::string cmd =
        std::string("\"") + TOLEO_SIM_BIN +
        "\" --workloads bsw --engines Toleo --cores 2"
        " --warmup 500 --measure 2000 --format csv --quiet"
        " --out \"" + out + "\"";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

    std::ifstream in(out);
    ASSERT_TRUE(in.good());
    std::string header, row;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, row));
    EXPECT_EQ(header, statsCsvHeader());
    EXPECT_EQ(row.rfind("bsw,Toleo,", 0), 0u);
    std::remove(out.c_str());

    // Unknown engines must fail loudly, not emit empty results.
    const std::string bad =
        std::string("\"") + TOLEO_SIM_BIN +
        "\" --engines Bogus --quiet > /dev/null 2>&1";
    EXPECT_NE(std::system(bad.c_str()), 0);
}

TEST(ToleoSimBinary, OpenLoopServingCell)
{
    const std::string out =
        ::testing::TempDir() + "/toleo_sim_serving.json";
    const std::string cmd =
        std::string("\"") + TOLEO_SIM_BIN +
        "\" --workloads kvs --engines Toleo --cores 2"
        " --warmup 500 --measure 2000 --arrival poisson:1e6"
        " --slo-us 50 --quiet --out \"" + out + "\"";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

    std::ifstream in(out);
    ASSERT_TRUE(in.good()) << "missing output file " << out;
    std::ostringstream text;
    text << in.rdbuf();
    std::string err;
    const Json doc = Json::parse(text.str(), &err);
    ASSERT_TRUE(err.empty()) << err;

    const Json *results = doc.get("results");
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->size(), 1u);
    const Json *sv = results->at(0).get("serving");
    ASSERT_NE(sv, nullptr);
    EXPECT_EQ(sv->get("arrival")->asString(), "poisson");
    EXPECT_DOUBLE_EQ(sv->get("offeredRatePerSec")->asDouble(), 1e6);
    EXPECT_DOUBLE_EQ(sv->get("sloUs")->asDouble(), 50.0);
    EXPECT_GT(sv->get("requests")->asUint(), 0u);
    EXPECT_GE(sv->get("sloAttainment")->asDouble(), 0.0);
    EXPECT_LE(sv->get("sloAttainment")->asDouble(), 1.0);
    const Json *pct = sv->get("latencyPercentilesUs");
    ASSERT_NE(pct, nullptr);
    EXPECT_LE(pct->get("p50Us")->asDouble(),
              pct->get("p99Us")->asDouble());
    std::remove(out.c_str());
}

TEST(ToleoSimBinary, ServingGuardsFailFast)
{
    const auto fails = [](const std::string &args) {
        const std::string cmd = std::string("\"") + TOLEO_SIM_BIN +
                                "\" " + args +
                                " --quiet > /dev/null 2>&1";
        return std::system(cmd.c_str()) != 0;
    };
    // Malformed arrival specs die at the parser, not mid-sweep.
    EXPECT_TRUE(fails("--arrival bogus"));
    EXPECT_TRUE(fails("--arrival poisson:0"));
    EXPECT_TRUE(fails("--arrival poisson:inf"));
    EXPECT_TRUE(fails("--arrival burst:1e6"));
    EXPECT_TRUE(fails("--slo-us 0"));
    EXPECT_TRUE(fails("--slo-us -3"));
    // Open arrival excludes the closed-loop-only modes.
    EXPECT_TRUE(fails("--arrival poisson:1e6 --bench"));
    EXPECT_TRUE(fails("--arrival poisson:1e6 --record-trace x.trc"
                      " --workloads kvs --engines Toleo"));
    // --rack-service guards: inf and a bandwidth below the node link
    // both fail at argument-validation speed (the latter used to
    // surface as an std::invalid_argument deep inside runRack).
    EXPECT_TRUE(fails("--rack 2 --rack-service inf --workloads bsw"
                      " --engines Toleo"));
    EXPECT_TRUE(fails("--rack 2 --rack-service 0.001 --workloads bsw"
                      " --engines Toleo"));
}

TEST(ToleoSimBinary, RackThreadsGuardsAndBitIdentity)
{
    const auto fails = [](const std::string &args) {
        const std::string cmd = std::string("\"") + TOLEO_SIM_BIN +
                                "\" " + args +
                                " --quiet > /dev/null 2>&1";
        return std::system(cmd.c_str()) != 0;
    };
    // Bad values die at the parser.
    EXPECT_TRUE(fails("--rack 2 --rack-threads 0 --workloads bsw"
                      " --engines Toleo"));
    // --rack-threads without rack mode is a misuse, not a no-op.
    EXPECT_TRUE(fails("--rack-threads 2 --workloads bsw"
                      " --engines Toleo"));
    EXPECT_TRUE(fails("--rack 1 --rack-threads 2 --workloads bsw"
                      " --engines Toleo"));
    // The oversubscription guard covers the three-way product (an
    // explicit --jobs x --rack-threads x --threads-per-cell budget
    // no host satisfies).
    EXPECT_TRUE(fails("--rack 2 --rack-threads 1000 --jobs 1000"
                      " --workloads bsw --engines Toleo"));
    EXPECT_TRUE(fails("--rack 2 --rack-threads 500"
                      " --threads-per-cell 500 --jobs 1000"
                      " --workloads bsw --engines Toleo"));

    // A threaded rack cell emits byte-identical *results* to the
    // serial one (the config block differs by design: it records
    // rackThreads), and --allow-oversubscribe lets the product
    // through on any host.
    const auto runRackCli = [](const std::string &extra,
                               const std::string &out) {
        const std::string cmd =
            std::string("\"") + TOLEO_SIM_BIN +
            "\" --workloads bsw --engines Toleo --rack 2 --cores 2"
            " --warmup 500 --measure 2000 --jobs 1 --quiet " +
            extra + " --out \"" + out + "\"";
        return std::system(cmd.c_str());
    };
    const std::string serialOut =
        ::testing::TempDir() + "/toleo_sim_rack_serial.json";
    const std::string threadedOut =
        ::testing::TempDir() + "/toleo_sim_rack_threaded.json";
    ASSERT_EQ(runRackCli("--rack-threads 1", serialOut), 0);
    ASSERT_EQ(runRackCli("--rack-threads 2 --allow-oversubscribe",
                         threadedOut),
              0);

    const auto parse = [](const std::string &path) {
        std::ifstream in(path);
        std::ostringstream text;
        text << in.rdbuf();
        std::string err;
        Json doc = Json::parse(text.str(), &err);
        EXPECT_TRUE(err.empty()) << path << ": " << err;
        return doc;
    };
    const Json serial = parse(serialOut);
    const Json threaded = parse(threadedOut);
    EXPECT_EQ(serial.get("config")->get("rackThreads")->asUint(), 1u);
    EXPECT_EQ(threaded.get("config")->get("rackThreads")->asUint(),
              2u);
    ASSERT_NE(serial.get("results"), nullptr);
    ASSERT_NE(threaded.get("results"), nullptr);
    EXPECT_EQ(serial.get("results")->dump(2),
              threaded.get("results")->dump(2));
    std::remove(serialOut.c_str());
    std::remove(threadedOut.c_str());
}

TEST(ToleoSimBinary, BenchModeEmitsPerfRecord)
{
    const std::string out =
        ::testing::TempDir() + "/toleo_sim_bench.json";
    const std::string cmd =
        std::string("\"") + TOLEO_SIM_BIN +
        "\" --bench --workloads bsw,dbg --engines NoProtect,Toleo"
        " --cores 2 --warmup 500 --measure 2000 --jobs 2 --quiet"
        " --out \"" + out + "\"";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

    std::ifstream in(out);
    ASSERT_TRUE(in.good()) << "missing bench output " << out;
    std::ostringstream text;
    text << in.rdbuf();

    std::string err;
    const Json doc = Json::parse(text.str(), &err);
    ASSERT_TRUE(err.empty()) << err;

    EXPECT_EQ(doc.get("mode")->asString(), "bench");
    EXPECT_GT(doc.get("wallSeconds")->asDouble(), 0.0);
    EXPECT_GT(doc.get("refsPerSec")->asDouble(), 0.0);
    // 4 cells x (500 warmup + 2000 measured) x 2 cores.
    EXPECT_EQ(doc.get("totalRefs")->asUint(), 4u * 2500 * 2);

    const Json *cells = doc.get("cells");
    ASSERT_NE(cells, nullptr);
    ASSERT_EQ(cells->size(), 4u);
    for (std::size_t i = 0; i < cells->size(); ++i) {
        EXPECT_GT(cells->at(i).get("wallSeconds")->asDouble(), 0.0);
        EXPECT_GT(cells->at(i).get("refsPerSec")->asDouble(), 0.0);
    }

    // A like-for-like second run reports the before/after delta.
    const std::string out2 =
        ::testing::TempDir() + "/toleo_sim_bench2.json";
    const std::string cmd2 =
        std::string("\"") + TOLEO_SIM_BIN +
        "\" --bench --workloads bsw,dbg --engines NoProtect,Toleo"
        " --cores 2 --warmup 500 --measure 2000 --jobs 2 --quiet"
        " --bench-prev \"" + out + "\" --out \"" + out2 + "\"";
    ASSERT_EQ(std::system(cmd2.c_str()), 0) << cmd2;
    std::ifstream in2(out2);
    std::ostringstream text2;
    text2 << in2.rdbuf();
    const Json doc2 = Json::parse(text2.str(), &err);
    ASSERT_TRUE(err.empty()) << err;
    ASSERT_TRUE(doc2.has("previous"));
    EXPECT_GT(doc2.get("previous")->get("wallSeconds")->asDouble(),
              0.0);
    ASSERT_TRUE(doc2.has("speedupVsPrevious"));
    EXPECT_GT(doc2.get("speedupVsPrevious")->asDouble(), 0.0);

    // A mismatched grid embeds 'previous' but omits the wall-clock
    // ratio (comparing different amounts of work is meaningless).
    const std::string out3 =
        ::testing::TempDir() + "/toleo_sim_bench3.json";
    const std::string cmd3 =
        std::string("\"") + TOLEO_SIM_BIN +
        "\" --bench --workloads bsw --engines NoProtect"
        " --cores 2 --warmup 500 --measure 2000 --jobs 1 --quiet"
        " --bench-prev \"" + out + "\" --out \"" + out3 + "\"";
    ASSERT_EQ(std::system(cmd3.c_str()), 0) << cmd3;
    std::ifstream in3(out3);
    std::ostringstream text3;
    text3 << in3.rdbuf();
    const Json doc3 = Json::parse(text3.str(), &err);
    ASSERT_TRUE(err.empty()) << err;
    ASSERT_TRUE(doc3.has("previous"));
    EXPECT_FALSE(doc3.has("speedupVsPrevious"));

    // bench mode is JSON-only: an explicit CSV request must fail.
    const std::string bad_fmt =
        std::string("\"") + TOLEO_SIM_BIN +
        "\" --bench --format csv --quiet > /dev/null 2>&1";
    EXPECT_NE(std::system(bad_fmt.c_str()), 0);

    std::remove(out.c_str());
    std::remove(out2.c_str());
    std::remove(out3.c_str());
}

#endif // TOLEO_SIM_BIN
