/**
 * @file
 * Tests for the bandwidth/latency channel model.
 */

#include <gtest/gtest.h>

#include "mem/channel.hh"

using namespace toleo;

TEST(Channel, ZeroLoadLatencyIsBase)
{
    Channel ch("t", 25.6, 60.0);
    EXPECT_DOUBLE_EQ(ch.latencyNs(), 60.0);
}

TEST(Channel, IdleEpochKeepsBaseLatency)
{
    Channel ch("t", 25.6, 60.0);
    ch.endEpoch(1000.0);
    EXPECT_DOUBLE_EQ(ch.utilization(), 0.0);
    EXPECT_DOUBLE_EQ(ch.latencyNs(), 60.0);
}

TEST(Channel, UtilizationComputedFromTraffic)
{
    Channel ch("t", 10.0, 50.0); // 10 bytes/ns
    ch.addTraffic(5000);
    ch.endEpoch(1000.0); // capacity 10000 B -> u = 0.5
    EXPECT_NEAR(ch.utilization(), 0.5, 1e-9);
}

TEST(Channel, QueueDelayGrowsWithLoad)
{
    Channel a("a", 10.0, 50.0), b("b", 10.0, 50.0);
    a.addTraffic(2000);
    b.addTraffic(9000);
    a.endEpoch(1000.0);
    b.endEpoch(1000.0);
    EXPECT_GT(b.latencyNs(), a.latencyNs());
    EXPECT_GT(a.latencyNs(), 50.0);
}

TEST(Channel, UtilizationIsCapped)
{
    Channel ch("t", 10.0, 50.0);
    ch.addTraffic(1000000); // 100x capacity
    ch.endEpoch(1000.0);
    EXPECT_LE(ch.utilization(), 0.95);
    EXPECT_LT(ch.latencyNs(), 10000.0); // finite
}

TEST(Channel, TotalBytesAccumulateAcrossEpochs)
{
    Channel ch("t", 10.0, 50.0);
    ch.addTraffic(100);
    ch.endEpoch(10.0);
    ch.addTraffic(200);
    ch.endEpoch(10.0);
    EXPECT_EQ(ch.totalBytes(), 300u);
}

TEST(Channel, ResetStatsClears)
{
    Channel ch("t", 10.0, 50.0);
    ch.addTraffic(100);
    ch.endEpoch(10.0);
    ch.resetStats();
    EXPECT_EQ(ch.totalBytes(), 0u);
    EXPECT_DOUBLE_EQ(ch.latencyNs(), 50.0);
}
