/**
 * @file
 * Tests for the host-OS downgrade policy (Section 4.3's space-
 * exhaustion handling): pressure triggers LRU downgrades, the device
 * recovers capacity, and hot pages are preserved over cold ones.
 */

#include <gtest/gtest.h>

#include "toleo/downgrade.hh"

using namespace toleo;

namespace {

BlockNum
blk(PageNum pg, unsigned idx)
{
    return (pg << (pageBits - blockBits)) | idx;
}

/** Device with room for exactly `n` uneven entries. */
ToleoDevice
deviceWithDynamicRoom(unsigned n)
{
    ToleoDeviceConfig cfg;
    cfg.protectedBytes = 64ULL * MiB; // flat array 196608 B
    cfg.capacityBytes = 196608 + n * unevenEntryBytes;
    cfg.trip.resetLog2 = 63;
    return ToleoDevice(cfg);
}

/** Make page pg uneven via the policy-instrumented path. */
void
makeUneven(ToleoDevice &dev, DowngradePolicy &pol, PageNum pg)
{
    dev.update(blk(pg, 0));
    pol.onUpdate(blk(pg, 0));
    dev.update(blk(pg, 0));
    pol.onUpdate(blk(pg, 0));
}

} // namespace

TEST(Downgrade, NoActionBelowWatermark)
{
    auto dev = deviceWithDynamicRoom(10);
    DowngradePolicy pol(dev);
    makeUneven(dev, pol, 1);
    EXPECT_EQ(pol.maintain(), 0u);
    EXPECT_EQ(dev.formatOf(1), TripFormat::Uneven);
}

TEST(Downgrade, PressureTriggersDowngrades)
{
    auto dev = deviceWithDynamicRoom(10);
    DowngradePolicyConfig cfg;
    cfg.highWatermark = 0.8;
    cfg.lowWatermark = 0.4;
    DowngradePolicy pol(dev, cfg);

    for (PageNum p = 1; p <= 9; ++p)
        makeUneven(dev, pol, p); // 9/10 entries used
    const auto freed = pol.maintain();
    EXPECT_GT(freed, 0u);
    EXPECT_LE(static_cast<double>(dev.dynamicBytesUsed()),
              0.4 * dev.dynamicCapacityBytes() + unevenEntryBytes);
}

TEST(Downgrade, LruVictimSelection)
{
    auto dev = deviceWithDynamicRoom(10);
    DowngradePolicyConfig cfg;
    cfg.highWatermark = 0.8;
    cfg.lowWatermark = 0.75;
    DowngradePolicy pol(dev, cfg);

    for (PageNum p = 1; p <= 9; ++p)
        makeUneven(dev, pol, p);
    // Re-touch page 1 so page 2 is the LRU victim.
    dev.update(blk(1, 0));
    pol.onUpdate(blk(1, 0));

    ASSERT_GT(pol.maintain(), 0u);
    EXPECT_EQ(dev.formatOf(1), TripFormat::Uneven);  // hot: kept
    EXPECT_EQ(dev.formatOf(2), TripFormat::Flat);    // cold: freed
}

TEST(Downgrade, RecoversFromFullDevice)
{
    auto dev = deviceWithDynamicRoom(4);
    DowngradePolicy pol(dev);
    for (PageNum p = 1; p <= 4; ++p)
        makeUneven(dev, pol, p);
    EXPECT_TRUE(dev.spaceExhausted());
    EXPECT_GT(pol.maintain(), 0u);
    EXPECT_FALSE(dev.spaceExhausted());
}

TEST(Downgrade, FlatPagesNeverTracked)
{
    auto dev = deviceWithDynamicRoom(4);
    DowngradePolicy pol(dev);
    // Single writes keep pages flat: nothing to downgrade.
    for (PageNum p = 1; p <= 100; ++p) {
        dev.update(blk(p, 0));
        pol.onUpdate(blk(p, 0));
    }
    EXPECT_EQ(pol.maintain(), 0u);
    EXPECT_EQ(pol.downgrades(), 0u);
}

TEST(Downgrade, DowngradedPageCanReupgrade)
{
    auto dev = deviceWithDynamicRoom(2);
    DowngradePolicyConfig cfg;
    cfg.highWatermark = 0.9;
    cfg.lowWatermark = 0.1;
    DowngradePolicy pol(dev, cfg);

    makeUneven(dev, pol, 1);
    makeUneven(dev, pol, 2);
    ASSERT_GT(pol.maintain(), 0u);
    // Freed pages can go uneven again when written irregularly.
    makeUneven(dev, pol, 1);
    EXPECT_EQ(dev.formatOf(1), TripFormat::Uneven);
}
