/**
 * @file
 * Open-loop serving tests: the arrival-model parser, transparency of
 * the RequestSource wrapper (the wrapped generator must emit the
 * exact same reference stream), the contract that the serving overlay
 * never perturbs any non-serving statistic, monotone tail-latency
 * degradation as the offered rate crosses saturation, the rack-wide
 * aggregate, and the record-closed/replay-open trace round trip.
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rack.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"
#include "workload/request.hh"
#include "workload/request_apps.hh"
#include "workload/workload.hh"

using namespace toleo;

namespace {

SweepOptions
servingWindow(const std::string &arrival = "closed")
{
    SweepOptions opts;
    opts.cores = 2;
    opts.warmupRefs = 1000;
    opts.measureRefs = 4000;
    std::string err;
    if (!parseArrivalSpec(arrival, opts.arrival, err))
        ADD_FAILURE() << "bad arrival spec '" << arrival << "': "
                      << err;
    return opts;
}

/** Rebuild a JSON object without one top-level key. */
Json
dropKey(const Json &j, const std::string &key)
{
    Json out = Json::object();
    for (const auto &item : j.items())
        if (item.first != key)
            out[item.first] = item.second;
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Arrival-spec parsing
// ---------------------------------------------------------------------

TEST(ArrivalSpec, ParsesAllThreeModels)
{
    ArrivalConfig cfg;
    std::string err;
    ASSERT_TRUE(parseArrivalSpec("closed", cfg, err));
    EXPECT_EQ(cfg.kind, ArrivalKind::Closed);
    EXPECT_FALSE(cfg.open());

    ASSERT_TRUE(parseArrivalSpec("poisson:2.5e6", cfg, err));
    EXPECT_EQ(cfg.kind, ArrivalKind::Poisson);
    EXPECT_TRUE(cfg.open());
    EXPECT_DOUBLE_EQ(cfg.ratePerSec, 2.5e6);

    ASSERT_TRUE(parseArrivalSpec("burst:5e5,2.0", cfg, err));
    EXPECT_EQ(cfg.kind, ArrivalKind::Burst);
    EXPECT_DOUBLE_EQ(cfg.ratePerSec, 5e5);
    EXPECT_DOUBLE_EQ(cfg.cv, 2.0);
}

TEST(ArrivalSpec, RejectsMalformedSpecs)
{
    ArrivalConfig cfg;
    std::string err;
    const char *bad[] = {
        "",           "bogus",        "poisson",       "poisson:",
        "poisson:0",  "poisson:-1",   "poisson:inf",   "poisson:nan",
        "poisson:1x", "burst:1e6",    "burst:1e6,",    "burst:,1",
        "burst:1e6,-2", "burst:1e6,nan", "burst:1e6,inf",
        "burst:1e6,0x", "burst:0,1",  "closed:1",
    };
    for (const char *spec : bad) {
        err.clear();
        EXPECT_FALSE(parseArrivalSpec(spec, cfg, err))
            << "accepted '" << spec << "'";
        EXPECT_FALSE(err.empty()) << spec;
    }
}

TEST(ArrivalSpec, BurstErrorsNameTheOffendingField)
{
    // Each malformed burst spec names the field and its constraint,
    // not a generic "bad spec" (the CLI surfaces err verbatim).
    ArrivalConfig cfg;
    std::string err;
    ASSERT_FALSE(parseArrivalSpec("burst:1e6", cfg, err));
    EXPECT_NE(err.find("comma"), std::string::npos) << err;
    ASSERT_FALSE(parseArrivalSpec("burst:0,1", cfg, err));
    EXPECT_NE(err.find("rate"), std::string::npos) << err;
    ASSERT_FALSE(parseArrivalSpec("burst:1e6,-2", cfg, err));
    EXPECT_NE(err.find("CV"), std::string::npos) << err;
}

TEST(ArrivalSpec, BurstAcceptsZeroCv)
{
    // CV = 0 is a deterministic-interarrival request: the lognormal
    // degenerates to its mean.  The parse must accept it and the
    // draw must return exactly the mean gap while consuming the same
    // RNG draws as any other CV (determinism composition).
    ArrivalConfig cfg;
    std::string err;
    ASSERT_TRUE(parseArrivalSpec("burst:1e6,0", cfg, err)) << err;
    EXPECT_EQ(cfg.kind, ArrivalKind::Burst);
    EXPECT_DOUBLE_EQ(cfg.ratePerSec, 1e6);
    EXPECT_DOUBLE_EQ(cfg.cv, 0.0);

    Rng detRng(7), refRng(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(drawInterarrivalNs(cfg, 1e6, detRng), 1e3)
            << "draw " << i;
    // Same number of underlying uniform draws as cv > 0: the two
    // streams stay in lockstep.
    ArrivalConfig bursty = cfg;
    bursty.cv = 2.0;
    for (int i = 0; i < 100; ++i)
        drawInterarrivalNs(bursty, 1e6, refRng);
    EXPECT_EQ(detRng.next(), refRng.next());
}

// ---------------------------------------------------------------------
// RequestSource transparency
// ---------------------------------------------------------------------

TEST(RequestSource, WrappedRequestAppEmitsIdenticalStream)
{
    // The request-shaped path replans via nextRequestLen() at the
    // same RNG points as standalone next(), so the streams match.
    auto plain = makeWorkload("kvs", 0, 42);
    RequestSource wrapped(makeWorkload("kvs", 0, 42), 64);
    for (int i = 0; i < 20000; ++i) {
        const MemRef a = plain->next();
        const MemRef b = wrapped.next();
        ASSERT_EQ(a.addr, b.addr) << "ref " << i;
        ASSERT_EQ(a.isWrite, b.isWrite) << "ref " << i;
        ASSERT_EQ(a.instGap, b.instGap) << "ref " << i;
    }
}

TEST(RequestSource, FixedChunkingIsTransparentForMixWorkloads)
{
    auto plain = makeWorkload("bsw", 1, 42);
    RequestSource wrapped(makeWorkload("bsw", 1, 42), 7);
    std::vector<MemRef> a(1000), b(1000);
    plain->nextBatch(a.data(), a.size());
    wrapped.nextBatch(b.data(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].addr, b[i].addr) << "ref " << i;
        ASSERT_EQ(a[i].instGap, b[i].instGap) << "ref " << i;
    }
    // 1000 refs in 7-ref requests: boundaries at 6, 13, ..., every
    // 7th ref; the 142nd request completes at index 993 and the
    // 143rd is still in flight when the batch ends.
    const auto &marks = wrapped.batchBoundaries();
    ASSERT_EQ(marks.size(), 142u);
    EXPECT_EQ(marks.front(), 6u);
    EXPECT_EQ(marks.back(), 993u);
}

TEST(RequestSource, BatchBoundariesLandOnRequestEnds)
{
    RequestSource src(makeWorkload("kvs", 0, 7), 64);
    // Pull a few batches; every boundary index must be in range and
    // strictly increasing within a batch.
    std::vector<MemRef> buf(256);
    for (int batch = 0; batch < 50; ++batch) {
        src.nextBatch(buf.data(), buf.size());
        const auto &marks = src.batchBoundaries();
        std::uint32_t prev = 0;
        bool first = true;
        for (const std::uint32_t m : marks) {
            ASSERT_LT(m, buf.size());
            if (!first) {
                ASSERT_GT(m, prev);
            }
            prev = m;
            first = false;
        }
    }
}

// ---------------------------------------------------------------------
// Request-shaped app generators
// ---------------------------------------------------------------------

TEST(RequestApps, RegisteredAndDeterministic)
{
    for (const auto &name : requestAppWorkloads()) {
        auto a = makeWorkload(name, 0, 42);
        auto b = makeWorkload(name, 0, 42);
        ASSERT_NE(a, nullptr) << name;
        EXPECT_EQ(workloadInfo(name).suite, "tina-rx") << name;
        for (int i = 0; i < 5000; ++i) {
            const MemRef ra = a->next();
            const MemRef rb = b->next();
            ASSERT_EQ(ra.addr, rb.addr) << name << " ref " << i;
            ASSERT_EQ(ra.isWrite, rb.isWrite) << name << " ref " << i;
        }
        // Core c draws only from its own 1 TiB slice at (c+1) << 40.
        EXPECT_EQ(a->next().addr >> 40, 1u) << name;
        auto other = makeWorkload(name, 1, 42);
        EXPECT_EQ(other->next().addr >> 40, 2u) << name;
    }
}

TEST(RequestApps, NotInThePaperGrid)
{
    // The 12-workload paper grid stays byte-pinned; request apps are
    // reachable but never part of "all".
    const auto &paper = paperWorkloads();
    ASSERT_EQ(paper.size(), 12u);
    for (const auto &name : requestAppWorkloads())
        for (const auto &p : paper)
            EXPECT_NE(name, p);
}

// ---------------------------------------------------------------------
// The serving overlay never perturbs execution
// ---------------------------------------------------------------------

TEST(Serving, ClosedModeEmitsNoServingBlock)
{
    const SweepCell cell{"kvs", EngineKind::Toleo};
    const SimStats stats = runSweepCell(cell, servingWindow());
    EXPECT_TRUE(stats.serving.arrival.empty());
    EXPECT_FALSE(statsToJson(stats).has("serving"));
}

TEST(Serving, OpenLoopChangesOnlyTheServingBlock)
{
    // The acceptance contract: an open-loop run's statsToJson equals
    // the closed run's byte-for-byte once the serving block is
    // stripped -- the overlay is pure observation.
    const SweepCell cell{"kvs", EngineKind::Toleo};
    const Json closed =
        statsToJson(runSweepCell(cell, servingWindow()));
    const Json open = statsToJson(
        runSweepCell(cell, servingWindow("poisson:1e6")));
    ASSERT_FALSE(closed.has("serving"));
    ASSERT_TRUE(open.has("serving"));
    EXPECT_EQ(closed.dump(2), dropKey(open, "serving").dump(2));
}

TEST(Serving, OverlayIsObservationOnlyForMixWorkloadsToo)
{
    const SweepCell cell{"redis", EngineKind::Merkle};
    const Json closed =
        statsToJson(runSweepCell(cell, servingWindow()));
    const Json open = statsToJson(
        runSweepCell(cell, servingWindow("burst:5e5,2.0")));
    EXPECT_EQ(closed.dump(2), dropKey(open, "serving").dump(2));
}

TEST(Serving, ReportsRequestsAndCoherentStats)
{
    const SweepCell cell{"kvs", EngineKind::Toleo};
    const SimStats stats =
        runSweepCell(cell, servingWindow("poisson:1e6"));
    const ServingStats &sv = stats.serving;
    EXPECT_EQ(sv.arrival, "poisson");
    EXPECT_DOUBLE_EQ(sv.offeredRatePerSec, 1e6);
    EXPECT_GT(sv.requests, 0u);
    EXPECT_EQ(sv.requests, sv.latency.count());
    EXPECT_LE(sv.sloMet, sv.requests);
    EXPECT_GE(sv.sloAttainment, 0.0);
    EXPECT_LE(sv.sloAttainment, 1.0);
    EXPECT_GT(sv.spanSeconds, 0.0);
    EXPECT_GT(sv.completedRps, 0.0);
    // latency = queue + service, so the means obey the same identity.
    EXPECT_NEAR(sv.meanLatencyUs, sv.meanQueueUs + sv.meanServiceUs,
                1e-6 * sv.meanLatencyUs + 1e-9);
    // Percentiles are ordered and bounded by the observed max.
    EXPECT_LE(sv.p50LatencyUs, sv.p99LatencyUs);
    EXPECT_LE(sv.p99LatencyUs, sv.p999LatencyUs);
    EXPECT_LE(sv.p999LatencyUs, sv.maxLatencyUs + 1e-9);
}

// ---------------------------------------------------------------------
// Saturation behavior: rate up => tails up, attainment down
// ---------------------------------------------------------------------

TEST(Serving, TailsDegradeMonotonicallyWithOfferedRate)
{
    // The same seed draws the same uniforms at every rate; an
    // interarrival sequence scaled by 1/rate can only shrink idle
    // gaps, so every Lindley wait (and hence every latency quantile)
    // is pointwise nondecreasing in the rate.
    const SweepCell cell{"kvs", EngineKind::Toleo};
    const double rates[] = {1e4, 1e6, 1e8, 1e10};
    std::vector<ServingStats> runs;
    for (const double r : rates) {
        SweepOptions opts = servingWindow();
        opts.arrival.kind = ArrivalKind::Poisson;
        opts.arrival.ratePerSec = r;
        // The whole measured span is only tens of microseconds, so a
        // datacenter-scale 100 us SLO could never be violated; pin
        // the threshold near the per-request service time instead.
        opts.arrival.sloUs = 1.0;
        runs.push_back(runSweepCell(cell, opts).serving);
    }
    for (std::size_t i = 1; i < runs.size(); ++i) {
        EXPECT_LE(runs[i - 1].p99LatencyUs, runs[i].p99LatencyUs)
            << "rate " << rates[i];
        EXPECT_LE(runs[i - 1].p999LatencyUs, runs[i].p999LatencyUs)
            << "rate " << rates[i];
        EXPECT_GE(runs[i - 1].sloAttainment, runs[i].sloAttainment)
            << "rate " << rates[i];
    }
    // The sweep must actually cross saturation: at a vanishing rate
    // queueing is nil and the SLO holds; far past saturation the
    // queue dominates and attainment collapses.
    EXPECT_GT(runs.front().sloAttainment, 0.9);
    EXPECT_LT(runs.back().sloAttainment, 0.5);
    EXPECT_GT(runs.back().p99LatencyUs,
              10.0 * runs.front().p99LatencyUs);
    EXPECT_GT(runs.back().meanQueueUs, runs.front().meanQueueUs);
}

// ---------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------

TEST(ServingConfig, RejectsNonPositiveRate)
{
    SystemConfig cfg = makeScaledConfig("kvs", EngineKind::Toleo, 2);
    cfg.arrival.kind = ArrivalKind::Poisson;
    cfg.arrival.ratePerSec = 0.0;
    EXPECT_THROW(System{cfg}, std::invalid_argument);
    cfg.arrival.ratePerSec = -5.0;
    EXPECT_THROW(System{cfg}, std::invalid_argument);
}

TEST(ServingConfig, RejectsBadSloAndRequestRefs)
{
    SystemConfig cfg = makeScaledConfig("kvs", EngineKind::Toleo, 2);
    cfg.arrival.kind = ArrivalKind::Poisson;
    cfg.arrival.ratePerSec = 1e6;
    cfg.arrival.sloUs = 0.0;
    EXPECT_THROW(System{cfg}, std::invalid_argument);
    cfg.arrival.sloUs = 100.0;
    cfg.arrival.requestRefs = 0;
    EXPECT_THROW(System{cfg}, std::invalid_argument);
}

TEST(ServingConfig, RejectsRecordingUnderOpenArrival)
{
    // Recording taps the raw generators below the RequestSource, so
    // boundary bookkeeping cannot see through it; the supported path
    // is record closed, replay open.
    SystemConfig cfg = makeScaledConfig("kvs", EngineKind::Toleo, 2);
    cfg.arrival.kind = ArrivalKind::Poisson;
    cfg.arrival.ratePerSec = 1e6;
    cfg.recordTracePath = "unused.trc";
    EXPECT_THROW(System{cfg}, std::invalid_argument);
}

// ---------------------------------------------------------------------
// Rack aggregation
// ---------------------------------------------------------------------

TEST(ServingRack, AggregatesAcrossNodes)
{
    SweepOptions opts = servingWindow("poisson:1e6");
    opts.rackNodes = 2;
    const RackStats rack =
        runRackSweepCell({"kvs", EngineKind::Toleo}, opts);
    ASSERT_EQ(rack.nodes.size(), 2u);
    std::uint64_t reqs = 0, met = 0;
    for (const auto &node : rack.nodes) {
        EXPECT_EQ(node.sim.serving.arrival, "poisson");
        reqs += node.sim.serving.requests;
        met += node.sim.serving.sloMet;
    }
    EXPECT_EQ(rack.serving.requests, reqs);
    EXPECT_EQ(rack.serving.sloMet, met);
    EXPECT_EQ(rack.serving.latency.count(), reqs);
    EXPECT_DOUBLE_EQ(rack.serving.offeredRatePerSec, 2e6);
    // The merged-histogram p99 is bracketed by the per-node extremes.
    double lo = rack.nodes[0].sim.serving.p99LatencyUs;
    double hi = lo;
    for (const auto &node : rack.nodes) {
        lo = std::min(lo, node.sim.serving.p99LatencyUs);
        hi = std::max(hi, node.sim.serving.p99LatencyUs);
    }
    EXPECT_GE(rack.serving.p99LatencyUs, lo - 1e-9);
    EXPECT_LE(rack.serving.p99LatencyUs, hi + 1e-9);
    // And the JSON gains (only) a rack-level serving block.
    EXPECT_TRUE(rackStatsToJson(rack).has("serving"));
}

TEST(ServingRack, ClosedRackEmitsNoServingBlock)
{
    SweepOptions opts = servingWindow();
    opts.rackNodes = 2;
    const RackStats rack =
        runRackSweepCell({"kvs", EngineKind::Toleo}, opts);
    EXPECT_TRUE(rack.serving.arrival.empty());
    EXPECT_FALSE(rackStatsToJson(rack).has("serving"));
}

// ---------------------------------------------------------------------
// Record closed, replay open
// ---------------------------------------------------------------------

TEST(ServingTrace, RecordClosedReplayOpenRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "serving_capture.trc";
    const SweepCell cell{"kvs", EngineKind::Toleo};

    // Capture the request-shaped stream under the closed model.
    SweepOptions rec = servingWindow();
    rec.recordTracePath = path;
    const Json recorded = statsToJson(runSweepCell(cell, rec));

    // Replay it open-loop: the trace readers are not request-shaped,
    // so the fixed requestRefs grouping segments the stream; all
    // non-serving stats still match the capture run byte-for-byte.
    SweepOptions rep = servingWindow("poisson:1e6");
    rep.tracePath = path;
    const Json replayed = statsToJson(runSweepCell(cell, rep));
    ASSERT_TRUE(replayed.has("serving"));
    EXPECT_EQ(recorded.dump(2), dropKey(replayed, "serving").dump(2));

    // And the replay itself is deterministic.
    const Json again = statsToJson(runSweepCell(cell, rep));
    EXPECT_EQ(replayed.dump(2), again.dump(2));

    std::remove(path.c_str());
}
