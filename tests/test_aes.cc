/**
 * @file
 * AES-128 known-answer tests (FIPS-197) and algebraic properties.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "crypto/aes.hh"

using namespace toleo;

namespace {

AesBlock
blockFromHex(const char *hex)
{
    AesBlock b{};
    for (int i = 0; i < 16; ++i) {
        auto nib = [&](char c) -> std::uint8_t {
            if (c >= '0' && c <= '9')
                return c - '0';
            return c - 'a' + 10;
        };
        b[i] = static_cast<std::uint8_t>((nib(hex[2 * i]) << 4) |
                                         nib(hex[2 * i + 1]));
    }
    return b;
}

} // namespace

TEST(Aes, SboxKnownValues)
{
    // FIPS-197 Figure 7.
    EXPECT_EQ(aesSbox(0x00), 0x63);
    EXPECT_EQ(aesSbox(0x53), 0xed);
    EXPECT_EQ(aesSbox(0xff), 0x16);
    EXPECT_EQ(aesSbox(0x10), 0xca);
}

TEST(Aes, InvSboxInvertsSbox)
{
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(aesInvSbox(aesSbox(static_cast<std::uint8_t>(i))), i);
}

TEST(Aes, GfMulKnownValues)
{
    // Classic examples: 0x57 * 0x83 = 0xc1 and 0x57 * 0x13 = 0xfe.
    EXPECT_EQ(gfMul(0x57, 0x83), 0xc1);
    EXPECT_EQ(gfMul(0x57, 0x13), 0xfe);
    EXPECT_EQ(gfMul(0x01, 0xab), 0xab);
    EXPECT_EQ(gfMul(0x02, 0x80), 0x1b);
}

TEST(Aes, Fips197Vector)
{
    // FIPS-197 Appendix B.
    AesKey key;
    auto kb = blockFromHex("000102030405060708090a0b0c0d0e0f");
    std::copy(kb.begin(), kb.end(), key.begin());
    Aes128 aes(key);

    const AesBlock plain =
        blockFromHex("00112233445566778899aabbccddeeff");
    const AesBlock expect =
        blockFromHex("69c4e0d86a7b0430d8cdb78070b4c55a");

    EXPECT_EQ(aes.encrypt(plain), expect);
    EXPECT_EQ(aes.decrypt(expect), plain);
}

TEST(Aes, RoundTripRandomBlocks)
{
    Rng rng(99);
    AesKey key{};
    for (auto &b : key)
        b = static_cast<std::uint8_t>(rng.next());
    Aes128 aes(key);

    for (int i = 0; i < 200; ++i) {
        AesBlock p{};
        for (auto &b : p)
            b = static_cast<std::uint8_t>(rng.next());
        EXPECT_EQ(aes.decrypt(aes.encrypt(p)), p);
    }
}

TEST(Aes, DifferentKeysDifferentCipher)
{
    AesKey k1{}, k2{};
    k2[0] = 1;
    Aes128 a1(k1), a2(k2);
    AesBlock p{};
    EXPECT_NE(a1.encrypt(p), a2.encrypt(p));
}

TEST(Aes, AvalancheOnPlaintextBit)
{
    AesKey key{};
    Aes128 aes(key);
    AesBlock p{};
    AesBlock c1 = aes.encrypt(p);
    p[0] ^= 1;
    AesBlock c2 = aes.encrypt(p);
    int diff_bits = 0;
    for (int i = 0; i < 16; ++i)
        diff_bits += __builtin_popcount(c1[i] ^ c2[i]);
    // Expect roughly half the 128 bits to flip.
    EXPECT_GT(diff_bits, 40);
    EXPECT_LT(diff_bits, 90);
}
