/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

using namespace toleo;

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, Moments)
{
    Accumulator a;
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
}

TEST(Histogram, BucketsAndTails)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(-1.0);
    h.sample(0.5);
    h.sample(5.5);
    h.sample(25.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(5), 1u);
    EXPECT_EQ(h.totalSamples(), 4u);
}

TEST(Histogram, Percentile)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.1);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.percentile(0.9), 90.0, 2.0);
}

TEST(StatGroup, CountersAndRatios)
{
    StatGroup g("test");
    g.counter("hits") += 3;
    g.counter("misses") += 1;
    EXPECT_DOUBLE_EQ(g.ratio("hits", "misses"), 3.0);
    EXPECT_DOUBLE_EQ(g.ratio("hits", "absent"), 0.0);
}

TEST(StatGroup, DumpContainsNames)
{
    StatGroup g("grp");
    g.counter("alpha") += 5;
    g.accumulator("beta").sample(2.0);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("grp"), std::string::npos);
    EXPECT_NE(os.str().find("alpha"), std::string::npos);
    EXPECT_NE(os.str().find("beta"), std::string::npos);
}

TEST(StatGroup, ResetClearsEverything)
{
    StatGroup g("grp");
    g.counter("a") += 5;
    g.accumulator("b").sample(1.0);
    g.reset();
    EXPECT_EQ(g.counter("a").value(), 0u);
    EXPECT_EQ(g.accumulator("b").count(), 0u);
}
