/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "common/stats.hh"

using namespace toleo;

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    ++c;
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, Moments)
{
    Accumulator a;
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
}

TEST(Histogram, BucketsAndTails)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(-1.0);
    h.sample(0.5);
    h.sample(5.5);
    h.sample(25.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(5), 1u);
    EXPECT_EQ(h.totalSamples(), 4u);
}

TEST(Histogram, Percentile)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.1);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.percentile(0.9), 90.0, 2.0);
}

TEST(Histogram, PercentileIsExactNearestRank)
{
    // Degenerate sample counts used to fall through the cumulative
    // walk (rank truncation returned hi_ for a single sample); the
    // nearest-rank contract pins them down.
    Histogram empty(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);

    Histogram one(0.0, 10.0, 10);
    one.sample(3.5);
    // Every percentile of a single sample is that sample's bucket.
    EXPECT_NEAR(one.percentile(0.0), 3.5, 0.5);
    EXPECT_NEAR(one.percentile(0.5), 3.5, 0.5);
    EXPECT_NEAR(one.percentile(1.0), 3.5, 0.5);

    Histogram two(0.0, 10.0, 10);
    two.sample(1.5);
    two.sample(8.5);
    // Nearest rank: p50 -> rank 1 (the low sample), p51+ -> rank 2.
    EXPECT_NEAR(two.percentile(0.50), 1.5, 0.5);
    EXPECT_NEAR(two.percentile(0.51), 8.5, 0.5);
    EXPECT_NEAR(two.percentile(1.0), 8.5, 0.5);

    Histogram equal(0.0, 10.0, 10);
    for (int i = 0; i < 7; ++i)
        equal.sample(4.2);
    EXPECT_NEAR(equal.percentile(0.01), 4.2, 0.5);
    EXPECT_NEAR(equal.percentile(0.99), 4.2, 0.5);
}

TEST(LatencyHistogram, ExactBelowSubCountAndTracksMinMax)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentileNs(0.5), 0.0);

    h.sample(3.0);
    h.sample(5.0);
    h.sample(7.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.minNs(), 3.0);
    EXPECT_DOUBLE_EQ(h.maxNs(), 7.0);
    EXPECT_DOUBLE_EQ(h.meanNs(), 5.0);
    // Values below subCount land in exact 1-ns buckets, and the
    // rank-1 / rank-count endpoints return the exact min and max.
    EXPECT_DOUBLE_EQ(h.percentileNs(0.0), 3.0);
    EXPECT_DOUBLE_EQ(h.percentileNs(1.0), 7.0);
    EXPECT_NEAR(h.percentileNs(0.5), 5.0, 1.0);
}

TEST(LatencyHistogram, LogBucketsBoundRelativeError)
{
    // 8 sub-buckets per octave bound the relative quantile error at
    // ~12.5%; spot-check across several decades.
    for (const double v : {100.0, 3333.0, 1e6, 4.2e9, 1e13}) {
        LatencyHistogram h;
        for (int i = 0; i < 100; ++i)
            h.sample(v);
        EXPECT_NEAR(h.percentileNs(0.5), v, v * 0.13) << v;
    }
}

TEST(LatencyHistogram, PercentilesOrderedOnSkewedData)
{
    LatencyHistogram h;
    // 1000 fast requests, 10 slow stragglers, 1 disaster.
    for (int i = 0; i < 1000; ++i)
        h.sample(1000.0);
    for (int i = 0; i < 10; ++i)
        h.sample(100000.0);
    h.sample(5e7);
    const double p50 = h.percentileNs(0.50);
    const double p99 = h.percentileNs(0.99);
    const double p999 = h.percentileNs(0.999);
    EXPECT_NEAR(p50, 1000.0, 130.0);
    EXPECT_LE(p50, p99);
    EXPECT_LE(p99, p999);
    EXPECT_NEAR(p999, 100000.0, 13000.0);
    EXPECT_DOUBLE_EQ(h.percentileNs(1.0), 5e7);
}

TEST(LatencyHistogram, ClampsOutOfRangeSamples)
{
    LatencyHistogram h;
    h.sample(-5.0);  // negative clamps to 0
    h.sample(1e300); // astronomical clamps to the top bucket
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.minNs(), 0.0);
    EXPECT_GE(h.percentileNs(1.0), h.percentileNs(0.0));
}

TEST(LatencyHistogram, MergeMatchesCombinedSampling)
{
    LatencyHistogram a, b, all;
    for (int i = 1; i <= 500; ++i) {
        a.sample(i * 17.0);
        all.sample(i * 17.0);
    }
    for (int i = 1; i <= 300; ++i) {
        b.sample(i * 1003.0);
        all.sample(i * 1003.0);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.sumNs(), all.sumNs());
    EXPECT_DOUBLE_EQ(a.minNs(), all.minNs());
    EXPECT_DOUBLE_EQ(a.maxNs(), all.maxNs());
    for (const double p : {0.1, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(a.percentileNs(p), all.percentileNs(p)) << p;
}

// Property pinning merge() for the rack aggregation path: merging K
// per-node shards into an accumulator must equal one histogram fed
// the concatenated samples -- count, sum, min, max, and every
// percentile.  Shard layouts deliberately cover the awkward min/max
// cases: empty shards at the front/middle/back, a shard whose entire
// range lies above (and one below) everything seen so far, a
// single-sample shard, and duplicated extremes across shards.
// Samples are integer-valued so the sums compare exactly.
TEST(LatencyHistogram, MergingKShardsMatchesConcatenatedSamples)
{
    // shard -> list of integer latencies (ns); {} = empty shard.
    const std::vector<std::vector<std::uint64_t>> shards = {
        {},                                     // empty accumulator seed
        {5000, 12, 777, 5000},                  // duplicates + spread
        {3},                                    // single sample, new min
        {},                                     // empty in the middle
        {1'000'000, 2'000'003, 40'000'000},     // strictly above all
        {3, 4, 5},                              // re-hits the global min
        {9'999'999'999},                        // lone huge outlier
        {},                                     // empty at the back
    };

    LatencyHistogram merged, all;
    std::vector<std::uint64_t> concat;
    for (const auto &shard : shards) {
        LatencyHistogram h;
        for (const std::uint64_t ns : shard) {
            h.sample(static_cast<double>(ns));
            concat.push_back(ns);
        }
        merged.merge(h);
    }
    for (const std::uint64_t ns : concat)
        all.sample(static_cast<double>(ns));

    ASSERT_EQ(merged.count(), all.count());
    ASSERT_EQ(merged.count(), concat.size());
    EXPECT_DOUBLE_EQ(merged.sumNs(), all.sumNs());
    EXPECT_DOUBLE_EQ(merged.minNs(), all.minNs());
    EXPECT_DOUBLE_EQ(merged.maxNs(), all.maxNs());
    for (const double p :
         {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0})
        EXPECT_DOUBLE_EQ(merged.percentileNs(p), all.percentileNs(p))
            << "p=" << p;

    // Merge order must not matter either (the rack loop visits nodes
    // in index order, but nothing should depend on it).
    LatencyHistogram reversed;
    for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
        LatencyHistogram h;
        for (const std::uint64_t ns : *it)
            h.sample(static_cast<double>(ns));
        reversed.merge(h);
    }
    EXPECT_EQ(reversed.count(), all.count());
    EXPECT_DOUBLE_EQ(reversed.sumNs(), all.sumNs());
    EXPECT_DOUBLE_EQ(reversed.minNs(), all.minNs());
    EXPECT_DOUBLE_EQ(reversed.maxNs(), all.maxNs());
    for (const double p : {0.5, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(reversed.percentileNs(p), all.percentileNs(p))
            << "p=" << p;

    // Merging an empty histogram into an empty one stays empty.
    LatencyHistogram e1, e2;
    e1.merge(e2);
    EXPECT_EQ(e1.count(), 0u);
    EXPECT_DOUBLE_EQ(e1.percentileNs(0.99), 0.0);
}

TEST(StatGroup, CountersAndRatios)
{
    StatGroup g("test");
    g.counter("hits") += 3;
    g.counter("misses") += 1;
    EXPECT_DOUBLE_EQ(g.ratio("hits", "misses"), 3.0);
    EXPECT_DOUBLE_EQ(g.ratio("hits", "absent"), 0.0);
}

TEST(StatGroup, DumpContainsNames)
{
    StatGroup g("grp");
    g.counter("alpha") += 5;
    g.accumulator("beta").sample(2.0);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("grp"), std::string::npos);
    EXPECT_NE(os.str().find("alpha"), std::string::npos);
    EXPECT_NE(os.str().find("beta"), std::string::npos);
}

TEST(StatGroup, ResetClearsEverything)
{
    StatGroup g("grp");
    g.counter("a") += 5;
    g.accumulator("b").sample(1.0);
    g.reset();
    EXPECT_EQ(g.counter("a").value(), 0u);
    EXPECT_EQ(g.accumulator("b").count(), 0u);
}
