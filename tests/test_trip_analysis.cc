/**
 * @file
 * Tests for the cache-only long-run Trip analyzer (the Figure 10-12 /
 * Table 4 methodology) and the qualitative orderings the paper's
 * Section 7.2 reports.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sim/trip_analysis.hh"
#include "workload/workload.hh"

using namespace toleo;

namespace {

TripAnalysisResult
quick(const std::string &wl, std::uint64_t refs = 300000)
{
    TripAnalysisConfig cfg;
    cfg.workload = wl;
    cfg.refsPerCore = refs;
    return runTripAnalysis(cfg);
}

} // namespace

TEST(TripAnalysis, FractionsSumToOne)
{
    const auto r = quick("pr");
    EXPECT_NEAR(r.flatFraction() + r.unevenFraction() +
                    r.fullFraction(),
                1.0, 1e-9);
    EXPECT_EQ(r.flatPages + r.unevenPages + r.fullPages,
              r.footprintPages);
}

TEST(TripAnalysis, Deterministic)
{
    const auto a = quick("bfs", 100000);
    const auto b = quick("bfs", 100000);
    EXPECT_EQ(a.unevenPages, b.unevenPages);
    EXPECT_EQ(a.updates, b.updates);
    EXPECT_EQ(a.footprintPages, b.footprintPages);
}

TEST(TripAnalysis, DpWorkloadsStayFlat)
{
    for (const char *wl : {"bsw", "chain"}) {
        const auto r = quick(wl);
        EXPECT_GT(r.flatFraction(), 0.96) << wl;
    }
}

TEST(TripAnalysis, KvStoresAreMostlyFlatOverRss)
{
    for (const char *wl : {"redis", "memcached"}) {
        const auto r = quick(wl);
        EXPECT_GT(r.flatFraction(), 0.9) << wl;
    }
}

TEST(TripAnalysis, FmiHasWorstVersionLocality)
{
    const auto fmi = quick("fmi");
    for (const char *wl : {"bsw", "chain", "dbg", "pileup", "redis",
                           "memcached", "hyrise", "llama2-gen"}) {
        EXPECT_GT(fmi.unevenFraction(), quick(wl).unevenFraction())
            << wl;
    }
}

TEST(TripAnalysis, GraphsShowUnevenPages)
{
    // Short windows only begin the drift; the bench runs 2M refs per
    // core where graphs reach the paper's 10-30% band.
    for (const char *wl : {"pr", "sssp", "bfs"}) {
        const auto r = quick(wl);
        EXPECT_GT(r.unevenFraction(), 0.01) << wl;
        EXPECT_LT(r.unevenFraction(), 0.5) << wl;
    }
}

TEST(TripAnalysis, AvgEntrySizeBounded)
{
    // Table 4: average entry must lie between pure-flat (12 B) and
    // flat+uneven (68 B) for every workload.
    for (const auto &wl : paperWorkloads()) {
        const auto r = quick(wl, 150000);
        EXPECT_GE(r.avgEntryBytesPerPage, 12.0) << wl;
        EXPECT_LT(r.avgEntryBytesPerPage, 68.0) << wl;
    }
}

TEST(TripAnalysis, UsagePerTbMatchesArithmetic)
{
    const auto r = quick("pr");
    // Flat part is footprint-independent: 1e12/4096 * 12 B.
    EXPECT_NEAR(r.flatGbPerTb, 1e12 / 4096 * 12 / 1e9, 1e-9);
    // Uneven part follows the measured fraction.
    EXPECT_NEAR(r.unevenGbPerTb,
                1e12 / 4096 * r.unevenFraction() * 56 / 1e9, 1e-6);
}

TEST(TripAnalysis, TimelineIsMonotone)
{
    const auto r = quick("llama2-gen");
    ASSERT_GT(r.timeline.size(), 8u);
    for (std::size_t i = 1; i < r.timeline.size(); ++i)
        EXPECT_GE(r.timeline[i].second, r.timeline[i - 1].second);
}

TEST(TripAnalysis, LargerFilterCacheCoalescesMoreWrites)
{
    TripAnalysisConfig small;
    small.workload = "fmi";
    small.refsPerCore = 200000;
    small.cacheBytes = 128 * KiB;
    TripAnalysisConfig big = small;
    big.cacheBytes = 4 * MiB;
    const auto rs = runTripAnalysis(small);
    const auto rb = runTripAnalysis(big);
    EXPECT_GT(rs.updates, rb.updates);
}

TEST(TripAnalysis, RssNeverBelowTouchedPages)
{
    for (const auto &wl : paperWorkloads()) {
        const auto r = quick(wl, 100000);
        const auto declared =
            workloadInfo(wl).simFootprintBytes / pageSize * 8;
        EXPECT_GE(r.footprintPages, declared) << wl;
    }
}

TEST(TripProfileCache, DuplicateWorkloadsRunTheAnalysisOnce)
{
    TripProfileCache cache;
    TripAnalysisConfig cfg;
    cfg.workload = "bsw";
    cfg.refsPerCore = 50000;

    const TripAnalysisResult &first = cache.get(cfg);
    const TripAnalysisResult &again = cache.get(cfg);
    // Same entry, not merely equal numbers: duplicate tenants must
    // not re-run millions of simulated references.
    EXPECT_EQ(&first, &again);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);

    // The memoized record matches an uncached run exactly.
    const TripAnalysisResult fresh = runTripAnalysis(cfg);
    EXPECT_EQ(first.footprintPages, fresh.footprintPages);
    EXPECT_EQ(first.updates, fresh.updates);
    EXPECT_EQ(first.unevenPages, fresh.unevenPages);
    EXPECT_DOUBLE_EQ(first.avgEntryBytesPerPage,
                     fresh.avgEntryBytesPerPage);
}

TEST(TripProfileCache, EveryConfigFieldKeysTheCache)
{
    TripProfileCache cache;
    TripAnalysisConfig base;
    base.workload = "bsw";
    base.refsPerCore = 20000;
    cache.get(base);

    // Each mutation must miss: aliasing two different configs would
    // silently return the wrong profile.
    std::vector<TripAnalysisConfig> variants;
    variants.push_back(base);
    variants.back().workload = "chain";
    variants.push_back(base);
    variants.back().cores += 1;
    variants.push_back(base);
    variants.back().seed += 1;
    variants.push_back(base);
    variants.back().cacheBytes *= 2;
    variants.push_back(base);
    variants.back().cacheAssoc *= 2;
    variants.push_back(base);
    variants.back().refsPerCore += 1;
    variants.push_back(base);
    variants.back().timelinePoints += 1;
    variants.push_back(base);
    variants.back().trip.resetLog2 -= 1;
    variants.push_back(base);
    variants.back().trip.seed += 1;

    for (const auto &cfg : variants)
        cache.get(cfg);
    EXPECT_EQ(cache.misses(), 1u + variants.size());
    EXPECT_EQ(cache.hits(), 0u);
}
