/**
 * @file
 * toleo_sim: the parallel sweep driver.
 *
 * Replaces serially running the 20 bench/ figure binaries when all
 * you want is the raw numbers: evaluates a (workload x engine) grid,
 * fanning the cells out to worker threads (each cell's toleo::System
 * is self-contained), and emits the full SimStats record for every
 * cell as JSON or CSV.  Typical use:
 *
 *   toleo_sim --workloads bsw,dbg --engines NoProtect,Toleo --jobs 4
 *   toleo_sim --workloads all --engines all --jobs 8 --format csv
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "sim/sweep.hh"
#include "workload/request_apps.hh"
#include "workload/trace_file.hh"

using namespace toleo;

namespace {

struct CliOptions
{
    std::string workloads = "bsw";
    std::string engines = "all";
    bool workloadsSet = false;
    SweepOptions sweep;
    std::string format = "json";
    std::string outPath; ///< empty = stdout (bench: BENCH_sweep.json)
    bool progress = true;
    /** Perf-tracking mode: full grid, BENCH_sweep.json output. */
    bool bench = false;
    /** Previous BENCH_sweep.json to embed for before/after deltas. */
    std::string benchPrevPath;
    /** Free-text host/context note embedded in the bench record. */
    std::string benchNote;
    /** Big-cell microbench thread counts ("1,2,8"); empty = skip. */
    std::string benchBig;
    /** --jobs was given explicitly (0 = auto-detect). */
    bool jobsSet = false;
    /** Run even when jobs x threads-per-cell exceeds the host. */
    bool allowOversubscribe = false;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "Run a (workload x engine) sweep of the Toleo model and emit\n"
        "one SimStats record per cell.\n"
        "\n"
        "options:\n"
        "  --workloads LIST  comma-separated workload names, or 'all'\n"
        "                    for the 12 paper workloads (default: bsw)\n"
        "  --engines LIST    comma-separated engines out of NoProtect,\n"
        "                    C, CI, Toleo, InvisiMem, Merkle, or 'all'\n"
        "                    (default: all)\n"
        "  --cores N         simulated cores per cell (default: 8)\n"
        "  --warmup N        warmup references per core (default: 30000)\n"
        "  --measure N       measured references per core (default: 60000)\n"
        "  --jobs N          cross-cell worker threads; 0 (and the\n"
        "                    default) = auto-detect: hardware threads\n"
        "                    divided by --threads-per-cell\n"
        "  --threads-per-cell N\n"
        "                    private-phase threads inside every cell's\n"
        "                    System(s) (default: 1); statistics are\n"
        "                    bit-identical for any value.  Composes\n"
        "                    multiplicatively with --jobs, and the\n"
        "                    product is checked against the host's\n"
        "                    hardware threads\n"
        "  --allow-oversubscribe\n"
        "                    run anyway when an explicit --jobs x\n"
        "                    --rack-threads x --threads-per-cell\n"
        "                    oversubscribes the host\n"
        "  --seed N          simulation seed (default: 42)\n"
        "  --rack N          simulate every cell as an N-node rack\n"
        "                    sharing one Toleo device (node i seeds\n"
        "                    with seed+i); emits one RackStats record\n"
        "                    per cell with device-side contention\n"
        "                    (JSON, or one CSV row per node with\n"
        "                    --format csv; default: 1 = single node)\n"
        "  --rack-service G  shared-device service bandwidth in GB/s\n"
        "                    (default: 0 = auto, 1.5x the node link)\n"
        "  --rack-threads N  worker threads for the node-private half\n"
        "                    of each rack epoch (default: 1 = the\n"
        "                    serial node loop); the device/arbiter\n"
        "                    replay stays serial in node order, so\n"
        "                    statistics are bit-identical for any\n"
        "                    value.  Composes multiplicatively with\n"
        "                    --jobs and --threads-per-cell under the\n"
        "                    same host-thread budget check\n"
        "  --arrival SPEC    request arrival model: 'closed' (the\n"
        "                    classic replay, default), 'poisson:RATE'\n"
        "                    or 'burst:RATE,CV' with RATE in requests\n"
        "                    per second per node.  Open models add a\n"
        "                    per-request latency/SLO 'serving' block\n"
        "                    to every cell without changing any other\n"
        "                    statistic\n"
        "  --slo-us X        latency SLO threshold in microseconds for\n"
        "                    the serving block's attainment stat\n"
        "                    (default: 100)\n"
        "  --format FMT      json or csv (default: json)\n"
        "  --out FILE        write results to FILE instead of stdout\n"
        "  --trace FILE      replay every cell's reference streams\n"
        "                    from a recorded trace instead of the\n"
        "                    synthetic generators (looped when the\n"
        "                    window outruns the capture)\n"
        "  --record-trace F  capture the generator streams of a\n"
        "                    single (workload x engine) cell to F,\n"
        "                    replayable with --trace\n"
        "  --quiet           suppress per-cell progress on stderr\n"
        "  --list            list known workloads and engines, then exit\n"
        "  --bench           perf-tracking mode: run the grid (default\n"
        "                    the full 12x6 paper grid), measure wall\n"
        "                    time and refs/sec per cell, and write a\n"
        "                    BENCH_sweep.json record (see --out)\n"
        "  --bench-prev F    embed the wallSeconds/refsPerSec of a\n"
        "                    previous BENCH_sweep.json as 'previous'\n"
        "                    and report the speedup against it\n"
        "  --bench-note TEXT embed TEXT as 'note' in the bench record\n"
        "                    (host description, context)\n"
        "  --bench-big LIST  with --bench: also run the 64-core\n"
        "                    big-cell microbench once per\n"
        "                    threads-per-cell count in the comma-\n"
        "                    separated LIST, recording wall time,\n"
        "                    refs/sec, speedup, the per-phase\n"
        "                    breakdown, and stats bit-identity\n"
        "                    across thread counts; the same LIST\n"
        "                    then drives --rack-threads over a\n"
        "                    4-node rack cell (bit-identity gated\n"
        "                    the same way)\n"
        "  --help            this message\n",
        argv0);
}

std::uint64_t
parseUint(const char *flag, const char *text)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    // strtoull silently wraps "-1" to a huge value; reject it here.
    if (end == text || *end != '\0' ||
        std::strchr(text, '-') != nullptr)
        fatal("%s: expected a non-negative integer, got '%s'", flag,
              text);
    return v;
}

const char *
nextArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        fatal("%s requires an argument", argv[i]);
    return argv[++i];
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opts;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--workloads")) {
            opts.workloads = nextArg(argc, argv, i);
            opts.workloadsSet = true;
        } else if (!std::strcmp(arg, "--bench")) {
            opts.bench = true;
        } else if (!std::strcmp(arg, "--bench-prev")) {
            opts.benchPrevPath = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--bench-note")) {
            opts.benchNote = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--bench-big")) {
            opts.benchBig = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--engines")) {
            opts.engines = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--cores")) {
            opts.sweep.cores = static_cast<unsigned>(
                parseUint(arg, nextArg(argc, argv, i)));
            if (opts.sweep.cores == 0)
                fatal("--cores must be positive");
        } else if (!std::strcmp(arg, "--warmup")) {
            opts.sweep.warmupRefs =
                parseUint(arg, nextArg(argc, argv, i));
        } else if (!std::strcmp(arg, "--measure")) {
            opts.sweep.measureRefs =
                parseUint(arg, nextArg(argc, argv, i));
            if (opts.sweep.measureRefs == 0)
                fatal("--measure must be positive");
        } else if (!std::strcmp(arg, "--jobs")) {
            // 0 = auto-detect, resolved below once every flag
            // (notably --threads-per-cell) has been parsed.
            opts.sweep.jobs = static_cast<unsigned>(
                parseUint(arg, nextArg(argc, argv, i)));
            opts.jobsSet = opts.sweep.jobs != 0;
        } else if (!std::strcmp(arg, "--threads-per-cell")) {
            opts.sweep.intraThreads = static_cast<unsigned>(
                parseUint(arg, nextArg(argc, argv, i)));
            if (opts.sweep.intraThreads == 0)
                fatal("--threads-per-cell must be positive");
        } else if (!std::strcmp(arg, "--allow-oversubscribe")) {
            opts.allowOversubscribe = true;
        } else if (!std::strcmp(arg, "--seed")) {
            opts.sweep.seed = parseUint(arg, nextArg(argc, argv, i));
        } else if (!std::strcmp(arg, "--rack")) {
            opts.sweep.rackNodes = static_cast<unsigned>(
                parseUint(arg, nextArg(argc, argv, i)));
            if (opts.sweep.rackNodes == 0)
                fatal("--rack must be positive");
        } else if (!std::strcmp(arg, "--rack-threads")) {
            opts.sweep.rackThreads = static_cast<unsigned>(
                parseUint(arg, nextArg(argc, argv, i)));
            if (opts.sweep.rackThreads == 0)
                fatal("--rack-threads must be positive");
        } else if (!std::strcmp(arg, "--rack-service")) {
            const char *text = nextArg(argc, argv, i);
            char *end = nullptr;
            opts.sweep.rackServiceGBps = std::strtod(text, &end);
            // >= 0.0 rejects NaN; isfinite rejects "inf", which
            // strtod happily parses and runRack would otherwise only
            // reject deep inside the sweep.
            if (end == text || *end != '\0' ||
                !std::isfinite(opts.sweep.rackServiceGBps) ||
                !(opts.sweep.rackServiceGBps >= 0.0))
                fatal("--rack-service: expected a finite non-negative "
                      "bandwidth in GB/s, got '%s'", text);
        } else if (!std::strcmp(arg, "--arrival")) {
            const char *text = nextArg(argc, argv, i);
            std::string err;
            if (!parseArrivalSpec(text, opts.sweep.arrival, err))
                fatal("--arrival: %s", err.c_str());
        } else if (!std::strcmp(arg, "--slo-us")) {
            const char *text = nextArg(argc, argv, i);
            char *end = nullptr;
            opts.sweep.arrival.sloUs = std::strtod(text, &end);
            if (end == text || *end != '\0' ||
                !std::isfinite(opts.sweep.arrival.sloUs) ||
                !(opts.sweep.arrival.sloUs > 0.0))
                fatal("--slo-us: expected a positive latency in "
                      "microseconds, got '%s'", text);
        } else if (!std::strcmp(arg, "--format")) {
            opts.format = nextArg(argc, argv, i);
            if (opts.format != "json" && opts.format != "csv")
                fatal("--format must be json or csv");
        } else if (!std::strcmp(arg, "--out")) {
            opts.outPath = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--trace")) {
            opts.sweep.tracePath = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--record-trace")) {
            opts.sweep.recordTracePath = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--quiet")) {
            opts.progress = false;
        } else if (!std::strcmp(arg, "--list")) {
            std::printf("workloads:");
            for (const auto &w : paperWorkloads())
                std::printf(" %s", w.c_str());
            std::printf("\nrequest apps:");
            for (const auto &w : requestAppWorkloads())
                std::printf(" %s", w.c_str());
            std::printf("\nengines:  ");
            for (const EngineKind e : allEngineKinds())
                std::printf(" %s", engineKindName(e));
            std::printf("\n");
            std::exit(0);
        } else if (!std::strcmp(arg, "--help") ||
                   !std::strcmp(arg, "-h")) {
            usage(argv[0]);
            std::exit(0);
        } else {
            usage(argv[0]);
            fatal("unknown option '%s'", arg);
        }
    }

    // Thread budget.  Unset or explicit-zero --jobs auto-detects:
    // the host's hardware threads divided across the per-cell pools,
    // so the default never oversubscribes whatever
    // --threads-per-cell was chosen.  hardware_concurrency() may
    // return 0 (unknown); treat that as 1 and skip the guard.
    const unsigned hw = std::thread::hardware_concurrency();
    // Per-cell threads: the rack tier multiplies in between jobs and
    // threads-per-cell (each rack worker drives one node's private
    // phase, and each node's System may itself pool).
    const unsigned perCell =
        opts.sweep.rackThreads * opts.sweep.intraThreads;
    if (!opts.jobsSet)
        opts.sweep.jobs = std::max(1u, (hw ? hw : 1) / perCell);

    // An explicit combination that oversubscribes the host thrashes
    // silently (every pool thinks it owns the machine); reject it
    // with the budget spelled out.  Plain --jobs N > hw stays legal
    // as it always was -- the check guards the new multiplicative
    // knobs.
    if (perCell > 1 && opts.jobsSet && hw != 0 &&
        opts.sweep.jobs * perCell > hw && !opts.allowOversubscribe)
        fatal("--jobs %u x --rack-threads %u x --threads-per-cell %u "
              "= %u threads oversubscribes this host's %u hardware "
              "threads; lower one, let --jobs auto-detect (omit it "
              "or pass 0), or pass --allow-oversubscribe",
              opts.sweep.jobs, opts.sweep.rackThreads,
              opts.sweep.intraThreads, opts.sweep.jobs * perCell, hw);
    return opts;
}

void
emitJson(const CliOptions &opts, const std::vector<SweepCell> &cells,
         const std::vector<SimStats> &results, double wall_seconds,
         std::ostream &os)
{
    Json doc = Json::object();
    doc["tool"] = "toleo_sim";

    Json cfg = Json::object();
    cfg["cores"] = opts.sweep.cores;
    cfg["warmupRefs"] = opts.sweep.warmupRefs;
    cfg["measureRefs"] = opts.sweep.measureRefs;
    cfg["seed"] = opts.sweep.seed;
    cfg["jobs"] = opts.sweep.jobs;
    cfg["threadsPerCell"] = opts.sweep.intraThreads;
    cfg["cells"] = static_cast<std::uint64_t>(cells.size());
    doc["config"] = std::move(cfg);

    Json arr = Json::array();
    for (const auto &stats : results)
        arr.push_back(statsToJson(stats));
    doc["results"] = std::move(arr);
    doc["wallSeconds"] = wall_seconds;

    doc.dump(os, 2);
    os << "\n";
}

void
emitRackJson(const CliOptions &opts,
             const std::vector<SweepCell> &cells,
             const std::vector<RackStats> &results,
             double wall_seconds, std::ostream &os)
{
    Json doc = Json::object();
    doc["tool"] = "toleo_sim";
    doc["mode"] = "rack";

    Json cfg = Json::object();
    cfg["rackNodes"] = opts.sweep.rackNodes;
    cfg["rackThreads"] = opts.sweep.rackThreads;
    cfg["cores"] = opts.sweep.cores;
    cfg["warmupRefs"] = opts.sweep.warmupRefs;
    cfg["measureRefs"] = opts.sweep.measureRefs;
    cfg["seed"] = opts.sweep.seed;
    cfg["jobs"] = opts.sweep.jobs;
    cfg["threadsPerCell"] = opts.sweep.intraThreads;
    cfg["cells"] = static_cast<std::uint64_t>(cells.size());
    doc["config"] = std::move(cfg);

    Json arr = Json::array();
    for (std::size_t i = 0; i < results.size(); ++i) {
        Json cell = rackStatsToJson(results[i]);
        cell["workload"] = cells[i].workload;
        cell["engine"] = engineKindName(cells[i].engine);
        arr.push_back(std::move(cell));
    }
    doc["results"] = std::move(arr);
    doc["wallSeconds"] = wall_seconds;

    doc.dump(os, 2);
    os << "\n";
}

void
emitCsv(const std::vector<SimStats> &results, std::ostream &os)
{
    os << statsCsvHeader() << "\n";
    for (const auto &stats : results)
        os << statsCsvRow(stats) << "\n";
}

/** One row per (cell, node); rack-level scalars are denormalized
 *  onto every node row (see rackCsvHeader in sim/rack.hh). */
void
emitRackCsv(const std::vector<RackStats> &results, std::ostream &os)
{
    os << rackCsvHeader() << "\n";
    for (const auto &stats : results)
        for (std::size_t n = 0; n < stats.nodes.size(); ++n)
            os << rackCsvRow(stats, n) << "\n";
}

/** Simulated references per cell: warmup + measurement, all cores. */
std::uint64_t
cellRefs(const SweepOptions &opts)
{
    return (opts.warmupRefs + opts.measureRefs) * opts.cores;
}

/** PhaseTimes (ns accumulators) as a JSON object in seconds. */
Json
phasesToJson(const PhaseTimes &ph)
{
    Json j = Json::object();
    j["privateSeconds"] = ph.privateNs * 1e-9;
    j["sharedSeconds"] = ph.sharedNs * 1e-9;
    j["epochSeconds"] = ph.epochNs * 1e-9;
    return j;
}

/**
 * The big-cell microbench: one 64-core memcached/Toleo cell -- the
 * one-hot-node shape the rack economics care about, where cross-cell
 * --jobs cannot help -- run once per requested threads-per-cell
 * count.  Records wall time, refs/sec, the per-phase breakdown, the
 * speedup over the first run, and whether statsToJson stayed
 * bit-identical across every thread count.
 */
Json
runBenchBig(const CliOptions &opts)
{
    std::vector<unsigned> counts;
    {
        std::stringstream ss(opts.benchBig);
        std::string part;
        while (std::getline(ss, part, ',')) {
            if (part.empty())
                continue;
            const unsigned t = static_cast<unsigned>(
                parseUint("--bench-big", part.c_str()));
            if (t == 0)
                fatal("--bench-big: thread counts must be positive");
            counts.push_back(t);
        }
    }
    if (counts.empty())
        fatal("--bench-big: expected a comma-separated list of "
              "thread counts, got '%s'", opts.benchBig.c_str());

    const SweepCell cell{"memcached", EngineKind::Toleo};
    SweepOptions bo;
    bo.cores = 64;
    bo.warmupRefs = 30000;
    bo.measureRefs = 60000;
    bo.seed = opts.sweep.seed;
    bo.jobs = 1;

    Json big = Json::object();
    big["workload"] = cell.workload;
    big["engine"] = engineKindName(cell.engine);
    big["cores"] = bo.cores;
    big["warmupRefs"] = bo.warmupRefs;
    big["measureRefs"] = bo.measureRefs;

    const unsigned hw = std::thread::hardware_concurrency();
    std::string firstDump;
    double firstSec = 0.0;
    bool identical = true;
    Json runs = Json::array();
    for (const unsigned t : counts) {
        if (hw != 0 && t > hw)
            warn("--bench-big: %u threads on a %u-thread host; the "
                 "timing of this run is not meaningful", t, hw);
        bo.intraThreads = t;
        PhaseTimes ph;
        // Microbench wall clock: perf telemetry only.
        // toleo-lint: allow(nondeterminism)
        const auto t0 = std::chrono::steady_clock::now();
        const SimStats stats = runSweepCell(cell, bo, &ph);
        const double sec =
            std::chrono::duration<double>(
                // toleo-lint: allow(nondeterminism)
                std::chrono::steady_clock::now() - t0)
                .count();

        std::ostringstream dump;
        statsToJson(stats).dump(dump, 2);
        if (firstDump.empty()) {
            firstDump = dump.str();
            firstSec = sec;
        } else if (dump.str() != firstDump) {
            identical = false;
        }

        Json run = Json::object();
        run["intraThreads"] = t;
        run["wallSeconds"] = sec;
        run["refsPerSec"] =
            sec > 0.0 ? static_cast<double>(cellRefs(bo)) / sec : 0.0;
        run["speedupVsFirst"] = sec > 0.0 ? firstSec / sec : 0.0;
        run["phases"] = phasesToJson(ph);
        runs.push_back(std::move(run));
        if (opts.progress)
            std::fprintf(stderr,
                         "[big-cell] %u thread%s: %.3fs\n", t,
                         t == 1 ? "" : "s", sec);
    }
    big["runs"] = std::move(runs);
    big["bitIdentical"] = identical;
    if (!identical)
        fatal("--bench-big: statsToJson differed across thread "
              "counts; the intra-cell pool broke determinism");

    // Rack-cell companion: the same thread-count list drives
    // --rack-threads over a 4-node rack (smaller nodes, so the
    // section stays a smoke-scale gate).  The record pins the
    // node-parallel epoch loop the same way the big cell pins the
    // intra-cell pool: refs/sec per thread count for the
    // trajectory, and a hard failure if rackStatsToJson is not
    // bit-identical across counts.
    {
        SweepOptions ro;
        ro.cores = 8;
        ro.warmupRefs = 10000;
        ro.measureRefs = 20000;
        ro.seed = opts.sweep.seed;
        ro.jobs = 1;
        ro.rackNodes = 4;

        Json rackCell = Json::object();
        rackCell["workload"] = cell.workload;
        rackCell["engine"] = engineKindName(cell.engine);
        rackCell["nodes"] = ro.rackNodes;
        rackCell["coresPerNode"] = ro.cores;
        rackCell["warmupRefs"] = ro.warmupRefs;
        rackCell["measureRefs"] = ro.measureRefs;

        std::string rackFirstDump;
        double rackFirstSec = 0.0;
        bool rackIdentical = true;
        Json rackRuns = Json::array();
        for (const unsigned t : counts) {
            ro.rackThreads = t;
            // toleo-lint: allow(nondeterminism)
            const auto t0 = std::chrono::steady_clock::now();
            const RackStats rstats = runRackSweepCell(cell, ro);
            const double sec =
                std::chrono::duration<double>(
                    // toleo-lint: allow(nondeterminism)
                    std::chrono::steady_clock::now() - t0)
                    .count();

            std::ostringstream dump;
            rackStatsToJson(rstats).dump(dump, 2);
            if (rackFirstDump.empty()) {
                rackFirstDump = dump.str();
                rackFirstSec = sec;
            } else if (dump.str() != rackFirstDump) {
                rackIdentical = false;
            }

            Json run = Json::object();
            run["rackThreads"] = t;
            run["wallSeconds"] = sec;
            run["refsPerSec"] =
                sec > 0.0 ? static_cast<double>(ro.rackNodes) *
                                static_cast<double>(cellRefs(ro)) / sec
                          : 0.0;
            run["speedupVsFirst"] =
                sec > 0.0 ? rackFirstSec / sec : 0.0;
            rackRuns.push_back(std::move(run));
            if (opts.progress)
                std::fprintf(stderr,
                             "[rack-cell] %u rack-thread%s: %.3fs\n",
                             t, t == 1 ? "" : "s", sec);
        }
        rackCell["runs"] = std::move(rackRuns);
        rackCell["bitIdentical"] = rackIdentical;
        if (!rackIdentical)
            fatal("--bench-big: rackStatsToJson differed across "
                  "--rack-threads counts; the node-parallel rack "
                  "loop broke determinism");
        big["rackCell"] = std::move(rackCell);
    }
    return big;
}

/**
 * The machine-readable perf record: wall seconds and refs/sec for
 * the grid and per cell, so every PR leaves a trajectory point to
 * compare against (BENCH_sweep.json).
 */
void
emitBench(const CliOptions &opts, const std::vector<SweepCell> &cells,
          const std::vector<SimStats> &results,
          const std::vector<double> &cell_seconds,
          const std::vector<PhaseTimes> &cell_phases,
          double wall_seconds, Json bigCell, std::ostream &os)
{
    Json doc = Json::object();
    doc["tool"] = "toleo_sim";
    doc["mode"] = "bench";
    if (!opts.benchNote.empty())
        doc["note"] = opts.benchNote;

    Json cfg = Json::object();
    cfg["cores"] = opts.sweep.cores;
    cfg["warmupRefs"] = opts.sweep.warmupRefs;
    cfg["measureRefs"] = opts.sweep.measureRefs;
    cfg["seed"] = opts.sweep.seed;
    cfg["jobs"] = opts.sweep.jobs;
    cfg["threadsPerCell"] = opts.sweep.intraThreads;
    cfg["cells"] = static_cast<std::uint64_t>(cells.size());
    doc["config"] = std::move(cfg);

    const std::uint64_t total_refs = cellRefs(opts.sweep) * cells.size();
    doc["wallSeconds"] = wall_seconds;
    doc["totalRefs"] = total_refs;
    doc["refsPerSec"] =
        wall_seconds > 0.0
            ? static_cast<double>(total_refs) / wall_seconds
            : 0.0;

    Json arr = Json::array();
    for (std::size_t i = 0; i < results.size(); ++i) {
        Json cell = Json::object();
        cell["workload"] = results[i].workload;
        cell["engine"] = results[i].engine;
        cell["wallSeconds"] = cell_seconds[i];
        cell["refsPerSec"] =
            cell_seconds[i] > 0.0
                ? static_cast<double>(cellRefs(opts.sweep)) /
                      cell_seconds[i]
                : 0.0;
        cell["ipc"] = results[i].ipc;
        cell["llcMpki"] = results[i].llcMpki;
        if (i < cell_phases.size())
            cell["phases"] = phasesToJson(cell_phases[i]);
        arr.push_back(std::move(cell));
    }
    doc["cells"] = std::move(arr);

    if (!bigCell.isNull())
        doc["bigCell"] = std::move(bigCell);

    if (!opts.benchPrevPath.empty()) {
        std::ifstream in(opts.benchPrevPath);
        if (!in)
            fatal("cannot open --bench-prev file '%s'",
                  opts.benchPrevPath.c_str());
        std::ostringstream text;
        text << in.rdbuf();
        std::string err;
        const Json prev_doc = Json::parse(text.str(), &err);
        if (!err.empty())
            fatal("--bench-prev '%s': %s", opts.benchPrevPath.c_str(),
                  err.c_str());
        Json prev = Json::object();
        if (const Json *w = prev_doc.get("wallSeconds"))
            prev["wallSeconds"] = w->asDouble();
        if (const Json *r = prev_doc.get("refsPerSec"))
            prev["refsPerSec"] = r->asDouble();
        if (const Json *n = prev_doc.get("note"))
            prev["note"] = n->asString();
        // A wall-clock ratio is only meaningful when both records
        // simulated the same amount of work with the same worker
        // count; otherwise just embed the previous numbers.
        const Json *pw = prev_doc.get("wallSeconds");
        const Json *pt = prev_doc.get("totalRefs");
        const Json *pcfg = prev_doc.get("config");
        const bool same_jobs =
            !pcfg || !pcfg->get("jobs") ||
            pcfg->get("jobs")->asUint() == opts.sweep.jobs;
        if (pw && pt && wall_seconds > 0.0 &&
            pt->asUint() == total_refs && same_jobs) {
            doc["speedupVsPrevious"] = pw->asDouble() / wall_seconds;
        } else if (pw) {
            warn("--bench-prev '%s' ran a different grid or job "
                 "count; omitting speedupVsPrevious",
                 opts.benchPrevPath.c_str());
        }
        doc["previous"] = std::move(prev);
    }

    doc.dump(os, 2);
    os << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    CliOptions opts = parseArgs(argc, argv);
    if (opts.bench) {
        // Perf tracking defaults: the full paper grid, written to
        // the trajectory file unless redirected.
        if (!opts.workloadsSet)
            opts.workloads = "all";
        if (opts.outPath.empty())
            opts.outPath = "BENCH_sweep.json";
        if (opts.format == "csv")
            fatal("--bench emits a JSON perf record; "
                  "--format csv is not supported in bench mode");
        // The trajectory tracks synthetic-generator speed; a replay
        // (or recording) run would write a bogus perf point and a
        // meaningless speedupVsPrevious against it.
        if (!opts.sweep.tracePath.empty() ||
            !opts.sweep.recordTracePath.empty())
            fatal("--bench measures the synthetic generators; "
                  "--trace/--record-trace are not supported in "
                  "bench mode");
    }
    if (!opts.benchBig.empty() && !opts.bench)
        fatal("--bench-big extends the --bench record; pass --bench");

    const bool rack = opts.sweep.rackNodes > 1;
    if (!rack && opts.sweep.rackThreads > 1)
        fatal("--rack-threads parallelizes the rack node loop; it "
              "requires --rack N with N > 1");
    if (rack) {
        if (opts.bench)
            fatal("--bench tracks the single-node grid; it is not "
                  "supported with --rack");
        if (!opts.sweep.recordTracePath.empty())
            fatal("--record-trace is not supported with --rack "
                  "(every node would clobber one capture)");
        // Fail an under-provisioned explicit service bandwidth here,
        // in milliseconds, instead of letting every cell throw the
        // same std::invalid_argument deep inside runRack.  The node
        // link bandwidth is a function of --cores only (the memory
        // topology scales with the node), so one representative
        // config answers for the whole grid.
        if (opts.sweep.rackServiceGBps > 0.0) {
            const double link =
                makeScaledConfig("bsw", EngineKind::Toleo,
                                 opts.sweep.cores)
                    .mem.toleoLinkBandwidthGBps;
            if (opts.sweep.rackServiceGBps < link)
                fatal("--rack-service %.3f GB/s is below the %.3f "
                      "GB/s Toleo link of a %u-core node; even an "
                      "uncontended node would stall (pass 0 for "
                      "auto)",
                      opts.sweep.rackServiceGBps, link,
                      opts.sweep.cores);
        }
    }

    if (opts.sweep.arrival.open()) {
        // The serving overlay never perturbs execution, so perf
        // numbers would be valid -- but a bench record that differs
        // only in its serving block invites apples-to-oranges
        // speedup comparisons.  Keep the trajectory closed-loop.
        if (opts.bench)
            fatal("--bench tracks the closed-loop replay; "
                  "--arrival %s is not supported in bench mode",
                  arrivalKindName(opts.sweep.arrival.kind));
        // Recording taps the raw generators; the request-boundary
        // bookkeeping cannot see through the recording shim (and a
        // capture is arrival-model-independent anyway).
        if (!opts.sweep.recordTracePath.empty())
            fatal("--record-trace captures the raw reference stream; "
                  "record under the default closed arrival model and "
                  "replay the capture open-loop instead");
    }

    const auto workloads = parseWorkloadList(opts.workloads);
    const auto engines = parseEngineList(opts.engines);
    const auto cells = makeSweepGrid(workloads, engines);

    if (!opts.sweep.recordTracePath.empty()) {
        if (!opts.sweep.tracePath.empty())
            fatal("--record-trace cannot be combined with --trace");
        // Concurrent cells would clobber one file; with a fixed seed
        // every cell of a workload generates the same stream anyway.
        if (cells.size() != 1)
            fatal("--record-trace captures a single cell; got %zu "
                  "cells (pick one workload and one engine)",
                  cells.size());
        // Probe the output path now so a typo fails in milliseconds,
        // not after the whole capture window has been simulated.
        // Append mode: a writability check must not truncate an
        // existing capture that a failed run would then have
        // destroyed (the writer truncates when it flushes at end of
        // run).
        std::ofstream probe(opts.sweep.recordTracePath,
                            std::ios::binary | std::ios::app);
        if (!probe)
            fatal("cannot open trace file '%s' for writing",
                  opts.sweep.recordTracePath.c_str());
    }
    if (!opts.sweep.tracePath.empty()) {
        // Open (and fully validate) the trace up front so a bad path
        // or corrupt file fails in milliseconds, not mid-sweep -- and
        // share the one read-only instance across every cell instead
        // of re-decoding the file per cell.
        try {
            opts.sweep.trace = TraceFile::open(opts.sweep.tracePath);
        } catch (const TraceError &e) {
            fatal("%s", e.what());
        }
        if (opts.progress) {
            // Streams can be unequal (e.g. trace_convert's
            // round-robin remainder), so report the total.
            std::uint64_t records = 0;
            const unsigned nstreams =
                opts.sweep.trace->streamCount();
            for (unsigned s = 0; s < nstreams; ++s)
                records += opts.sweep.trace->recordCount(s);
            std::fprintf(stderr,
                         "trace '%s': workload %s, %u streams, "
                         "%llu records\n",
                         opts.sweep.tracePath.c_str(),
                         opts.sweep.trace->workload().c_str(),
                         nstreams,
                         static_cast<unsigned long long>(records));
        }
    }

    SweepProgressFn progress;
    RackSweepProgressFn rackProgress;
    if (opts.progress && !rack) {
        progress = [](const SimStats &stats, std::size_t done,
                      std::size_t total) {
            std::fprintf(stderr,
                         "[%zu/%zu] %s/%s: ipc %.3f, mpki %.1f\n",
                         done, total, stats.workload.c_str(),
                         stats.engine.c_str(), stats.ipc,
                         stats.llcMpki);
        };
    } else if (opts.progress) {
        rackProgress = [](const RackStats &stats, std::size_t done,
                          std::size_t total) {
            double stall_ms = 0.0;
            for (const auto &node : stats.nodes)
                stall_ms += node.contentionStallNs * 1e-6;
            std::fprintf(stderr,
                         "[%zu/%zu] %s/%s: %zu nodes, %llu/%llu "
                         "epochs saturated, %.2f ms contention "
                         "stall\n",
                         done, total,
                         stats.nodes[0].sim.workload.c_str(),
                         stats.nodes[0].sim.engine.c_str(),
                         stats.nodes.size(),
                         static_cast<unsigned long long>(
                             stats.saturatedEpochs),
                         static_cast<unsigned long long>(
                             stats.epochs),
                         stall_ms);
        };
    }

    // Open the output before the sweep so a bad path fails in
    // milliseconds, not after minutes of simulation.
    std::ofstream file;
    if (!opts.outPath.empty()) {
        file.open(opts.outPath);
        if (!file)
            fatal("cannot open output file '%s'",
                  opts.outPath.c_str());
    }
    std::ostream &os = opts.outPath.empty() ? std::cout : file;

    // Whole-sweep wall clock: --bench perf-tracking output only.
    // toleo-lint: allow(nondeterminism)
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<double> cell_seconds;
    std::vector<PhaseTimes> cell_phases;
    std::vector<SimStats> results;
    std::vector<RackStats> rackResults;
    try {
        if (rack)
            rackResults = runRackSweep(cells, opts.sweep,
                                       rackProgress);
        else
            results = runSweep(cells, opts.sweep, progress,
                               opts.bench ? &cell_seconds : nullptr,
                               {},
                               opts.bench ? &cell_phases : nullptr);
    } catch (const std::exception &e) {
        fatal("sweep failed: %s", e.what());
    }
    const double wall_seconds =
        std::chrono::duration<double>(
            // toleo-lint: allow(nondeterminism)
            std::chrono::steady_clock::now() - t0)
            .count();

    // The big-cell microbench runs after (outside) the timed grid so
    // the grid's wallSeconds stays comparable across records.
    Json bigCell;
    if (!opts.benchBig.empty())
        bigCell = runBenchBig(opts);

    if (rack && opts.format == "csv")
        emitRackCsv(rackResults, os);
    else if (rack)
        emitRackJson(opts, cells, rackResults, wall_seconds, os);
    else if (opts.bench)
        emitBench(opts, cells, results, cell_seconds, cell_phases,
                  wall_seconds, std::move(bigCell), os);
    else if (opts.format == "csv")
        emitCsv(results, os);
    else
        emitJson(opts, cells, results, wall_seconds, os);
    os.flush();
    if (!os)
        fatal("error writing results%s%s",
              opts.outPath.empty() ? "" : " to ",
              opts.outPath.c_str());

    if (opts.progress)
        std::fprintf(stderr,
                     "%zu cells, %u jobs, %.2fs wall clock\n",
                     cells.size(), opts.sweep.jobs, wall_seconds);
    return 0;
}
