/**
 * @file
 * trace_convert: import simple text memory traces into the TOLEOTRC
 * binary format toleo_sim --trace replays.
 *
 * Input is one reference per line -- the flat form gem5 or
 * DynamoRIO capture post-processing typically emits:
 *
 *   <addr> <R|W> [instGap]
 *
 * with fields separated by commas and/or whitespace.  Addresses are
 * decimal or 0x-hex; the access type is any token starting with
 * r/R (load) or w/W/s/S (store); the optional gap is the number of
 * non-memory instructions since the previous reference (default 0).
 * Blank lines and lines starting with '#' are skipped.  Example:
 *
 *   # addr,rw,gap
 *   0x7f2a00001040,R,3
 *   0x7f2a00001080,W,1
 *
 * With --streams N the references are dealt round-robin onto N
 * per-core streams, matching an N-core replay.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/logging.hh"
#include "workload/trace_file.hh"

using namespace toleo;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options] <input.txt> <output.trc>\n"
        "\n"
        "Convert a text trace (one '<addr> <R|W> [instGap]' line per\n"
        "reference) into a TOLEOTRC binary trace for toleo_sim\n"
        "--trace.\n"
        "\n"
        "options:\n"
        "  --workload NAME  workload whose Table-2 metadata replay\n"
        "                   cells should pair the trace with; stored\n"
        "                   in the header (default: trace)\n"
        "  --streams N      deal references round-robin onto N\n"
        "                   per-core streams (default: 1)\n"
        "  --seed N         seed recorded in the header (default: 0)\n"
        "  --help           this message\n",
        argv0);
}

/** Split a line into fields at commas/whitespace, in place. */
std::size_t
splitFields(std::string &line, const char *fields[], std::size_t max)
{
    std::size_t n = 0;
    char *p = line.data();
    while (*p && n < max) {
        while (*p == ',' || std::isspace(static_cast<unsigned char>(*p)))
            ++p;
        if (!*p)
            break;
        fields[n++] = p;
        while (*p && *p != ',' &&
               !std::isspace(static_cast<unsigned char>(*p)))
            ++p;
        if (*p)
            *p++ = '\0';
    }
    return n;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "trace";
    std::uint64_t seed = 0;
    unsigned streams = 1;
    const char *inPath = nullptr;
    const char *outPath = nullptr;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("%s requires an argument", argv[i]);
            return argv[++i];
        };
        if (!std::strcmp(arg, "--workload")) {
            workload = next();
        } else if (!std::strcmp(arg, "--streams")) {
            // Digits only: strtoul would silently wrap '-1' to
            // 4294967295 and allocate that many streams.
            const char *val = next();
            char *end = nullptr;
            const unsigned long long n =
                std::isdigit(static_cast<unsigned char>(val[0]))
                    ? std::strtoull(val, &end, 10)
                    : 0;
            constexpr unsigned long long maxStreams = 1u << 16;
            if (!end || end == val || *end != '\0' || n == 0 ||
                n > maxStreams)
                fatal("--streams wants 1..%llu, got '%s'",
                      maxStreams, val);
            streams = static_cast<unsigned>(n);
        } else if (!std::strcmp(arg, "--seed")) {
            // Digits only, like --streams: no silent 0 on garbage
            // or '-1' wraparound.
            const char *val = next();
            char *end = nullptr;
            seed = std::isdigit(static_cast<unsigned char>(val[0]))
                       ? std::strtoull(val, &end, 10)
                       : 0;
            if (!end || end == val || *end != '\0')
                fatal("--seed wants an unsigned integer, got '%s'",
                      val);
        } else if (!std::strcmp(arg, "--help") ||
                   !std::strcmp(arg, "-h")) {
            usage(argv[0]);
            return 0;
        } else if (arg[0] == '-') {
            usage(argv[0]);
            fatal("unknown option '%s'", arg);
        } else if (!inPath) {
            inPath = arg;
        } else if (!outPath) {
            outPath = arg;
        } else {
            fatal("unexpected extra argument '%s'", arg);
        }
    }
    if (!inPath || !outPath) {
        usage(argv[0]);
        fatal("need an input and an output path");
    }

    std::ifstream in(inPath);
    if (!in)
        fatal("cannot open input trace '%s'", inPath);

    TraceWriter writer(streams, workload, seed);
    std::string line;
    std::uint64_t lineno = 0;
    std::uint64_t records = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const char *fields[4];
        // Strip comments before tokenizing.
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        const std::size_t n = splitFields(line, fields, 4);
        if (n == 0)
            continue;
        // Reject extra fields too: silently dropping them would
        // import a corrupted trace from e.g. two joined records.
        if (n < 2 || n > 3)
            fatal("%s:%llu: expected '<addr> <R|W> [gap]'", inPath,
                  static_cast<unsigned long long>(lineno));

        char *end = nullptr;
        MemRef ref;
        // Decimal or 0x-hex, as documented.  Not strtoull base 0
        // (zero-padded decimal would silently read as octal), and
        // digits only (strtoull would silently wrap a '-' sign).
        const bool hex = fields[0][0] == '0' &&
                         (fields[0][1] == 'x' || fields[0][1] == 'X');
        if (!std::isdigit(static_cast<unsigned char>(fields[0][0])))
            end = const_cast<char *>(fields[0]);
        else
            ref.addr = std::strtoull(fields[0], &end, hex ? 16 : 10);
        if (end == fields[0] || *end != '\0')
            fatal("%s:%llu: bad address '%s'", inPath,
                  static_cast<unsigned long long>(lineno), fields[0]);

        const char rw = fields[1][0];
        if (rw == 'r' || rw == 'R')
            ref.isWrite = false;
        else if (rw == 'w' || rw == 'W' || rw == 's' || rw == 'S')
            ref.isWrite = true;
        else
            fatal("%s:%llu: bad access type '%s' (want R or W)",
                  inPath, static_cast<unsigned long long>(lineno),
                  fields[1]);

        if (n == 3) {
            // Digits only, like the address: a '-' gap would wrap
            // through strtoull and can land inside the u32 range.
            const unsigned long long gap =
                std::isdigit(static_cast<unsigned char>(fields[2][0]))
                    ? std::strtoull(fields[2], &end, 10)
                    : (end = const_cast<char *>(fields[2]), 0);
            if (end == fields[2] || *end != '\0' || gap > 0xffffffffULL)
                fatal("%s:%llu: bad instruction gap '%s'", inPath,
                      static_cast<unsigned long long>(lineno),
                      fields[2]);
            ref.instGap = static_cast<std::uint32_t>(gap);
        }

        writer.append(static_cast<unsigned>(records % streams), &ref,
                      1);
        ++records;
    }
    if (records < streams)
        fatal("input has %llu references but --streams %u needs at "
              "least one per stream",
              static_cast<unsigned long long>(records), streams);

    try {
        writer.writeTo(outPath);
    } catch (const TraceError &e) {
        fatal("%s", e.what());
    }
    std::fprintf(stderr, "%s: %llu references -> %s (%u streams)\n",
                 inPath, static_cast<unsigned long long>(records),
                 outPath, streams);
    return 0;
}
