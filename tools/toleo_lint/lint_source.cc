#include "tools/toleo_lint/lint_source.hh"

#include <algorithm>
#include <cctype>
#include <regex>
#include <sstream>

namespace toleo_lint {

std::size_t
SourceFile::lineOfOffset(std::size_t off) const
{
    auto it =
        std::upper_bound(lineOffset.begin(), lineOffset.end(), off);
    return static_cast<std::size_t>(it - lineOffset.begin());
}

std::string
stripCommentsAndStrings(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    enum class St { Code, Line, Block, Str, Chr, Raw };
    St st = St::Code;
    std::string rawDelim;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char n = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (st) {
        case St::Code:
            if (c == '/' && n == '/') {
                st = St::Line;
                out += "  ";
                ++i;
            } else if (c == '/' && n == '*') {
                st = St::Block;
                out += "  ";
                ++i;
            } else if (c == 'R' && n == '"' &&
                       (i == 0 || (!std::isalnum(static_cast<unsigned
                                                     char>(text[i - 1])) &&
                                   text[i - 1] != '_'))) {
                // R"delim( ... )delim"
                std::size_t p = i + 2;
                rawDelim.clear();
                while (p < text.size() && text[p] != '(')
                    rawDelim += text[p++];
                rawDelim = ")" + rawDelim + "\"";
                st = St::Raw;
                out += "R\"";
                out.append(p - (i + 1), ' ');
                i = p; // at '('
            } else if (c == '"') {
                st = St::Str;
                out += c;
            } else if (c == '\'') {
                st = St::Chr;
                out += c;
            } else {
                out += c;
            }
            break;
        case St::Line:
            if (c == '\n') {
                st = St::Code;
                out += c;
            } else {
                out += ' ';
            }
            break;
        case St::Block:
            if (c == '*' && n == '/') {
                st = St::Code;
                out += "  ";
                ++i;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        case St::Str:
            if (c == '\\') {
                out += "  ";
                ++i;
            } else if (c == '"') {
                st = St::Code;
                out += c;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        case St::Chr:
            if (c == '\\') {
                out += "  ";
                ++i;
            } else if (c == '\'') {
                st = St::Code;
                out += c;
            } else {
                out += ' ';
            }
            break;
        case St::Raw:
            if (text.compare(i, rawDelim.size(), rawDelim) == 0) {
                out += rawDelim;
                i += rawDelim.size() - 1;
                st = St::Code;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        }
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

SourceFile
makeSourceFile(std::string display, const std::string &text)
{
    SourceFile sf;
    sf.path = std::move(display);
    sf.raw = splitLines(text);
    sf.joined = stripCommentsAndStrings(text);
    sf.code = splitLines(sf.joined);
    sf.lineOffset.reserve(sf.code.size());
    std::size_t off = 0;
    for (const auto &l : sf.code) {
        sf.lineOffset.push_back(off);
        off += l.size() + 1;
    }

    // Parse suppression comments from the raw text: an allow() on a
    // line covers that line and the next, so a comment line can
    // annotate the declaration below it.
    static const std::regex allowRe(
        "toleo-lint:\\s*allow\\(([A-Za-z0-9_, -]+)\\)");
    for (std::size_t i = 0; i < sf.raw.size(); ++i) {
        for (auto it = std::sregex_iterator(sf.raw[i].begin(),
                                            sf.raw[i].end(), allowRe);
             it != std::sregex_iterator(); ++it) {
            std::stringstream ss((*it)[1].str());
            std::string rule;
            while (std::getline(ss, rule, ',')) {
                rule.erase(0, rule.find_first_not_of(" \t"));
                rule.erase(rule.find_last_not_of(" \t") + 1);
                if (rule.empty())
                    continue;
                sf.allow[i + 1].emplace(rule, i + 1);
                sf.allow[i + 2].emplace(rule, i + 1);
                sf.allowSites.push_back({i + 1, rule});
            }
        }
    }
    return sf;
}

} // namespace toleo_lint
