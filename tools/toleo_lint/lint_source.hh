/**
 * @file
 * Shared substrate of the toleo_lint analyses: the per-file record
 * (raw text, comment/string-stripped text, line offsets), the
 * suppression-comment parser, and the finding sink.
 *
 * Split out of toleo_lint.cc so the phase-safety analysis
 * (phase_safety.hh) and its unit tests (tests/test_lint_phase.cc) can
 * build SourceFiles from string literals without dragging in the rule
 * tables or the filesystem walker.
 */

#ifndef TOLEO_LINT_SOURCE_HH
#define TOLEO_LINT_SOURCE_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace toleo_lint {

struct Finding
{
    std::string file;
    std::size_t line = 0;
    std::string rule;
    std::string message;
};

/** One scanned translation unit: raw text, stripped text, and the
 *  per-line suppression sets parsed from toleo-lint comments. */
struct SourceFile
{
    std::string path; ///< display path (relative to the scan root)
    std::vector<std::string> raw;
    /** Comment and string-literal contents blanked, line structure
     *  preserved, so rules never fire on prose or log messages. */
    std::vector<std::string> code;
    /** code lines joined with '\n' (for multi-line regex scans). */
    std::string joined;
    /** Byte offset of each line within joined. */
    std::vector<std::size_t> lineOffset;
    /** line -> rule -> line of the allow() comment granting it. */
    std::map<std::size_t, std::map<std::string, std::size_t>> allow;

    /** One allow() grant as written (for unused-suppression). */
    struct AllowSite
    {
        std::size_t line = 0;
        std::string rule;
    };
    std::vector<AllowSite> allowSites;

    bool
    allowed(std::size_t line, const std::string &rule) const
    {
        auto it = allow.find(line);
        return it != allow.end() && it->second.count(rule);
    }

    std::size_t
    lineOfOffset(std::size_t off) const;
};

/** Blank comments and string/char literal contents, preserving line
 *  breaks so findings keep their line numbers. */
std::string stripCommentsAndStrings(const std::string &text);

std::vector<std::string> splitLines(const std::string &text);

SourceFile makeSourceFile(std::string display, const std::string &text);

/**
 * Finding sink.  emit() drops findings suppressed by an adjacent
 * `// toleo-lint: allow(<rule>)` comment and remembers which allow()
 * grants earned their keep, so the unused-suppression pass can report
 * the ones that suppressed nothing.
 */
class Linter
{
  public:
    void
    emit(const SourceFile &sf, std::size_t line, const std::string &rule,
         const std::string &message)
    {
        auto it = sf.allow.find(line);
        if (it != sf.allow.end()) {
            auto rit = it->second.find(rule);
            if (rit != it->second.end()) {
                usedAllows.insert({sf.path, rit->second, rule});
                return;
            }
        }
        findings.push_back({sf.path, line, rule, message});
    }

    bool
    allowUsed(const SourceFile &sf, const SourceFile::AllowSite &site) const
    {
        return usedAllows.count({sf.path, site.line, site.rule}) != 0;
    }

    std::vector<Finding> findings;

  private:
    /** (path, allow-comment line, rule) grants that suppressed
     *  at least one finding. */
    std::set<std::tuple<std::string, std::size_t, std::string>>
        usedAllows;
};

} // namespace toleo_lint

#endif // TOLEO_LINT_SOURCE_HH
