#include "tools/toleo_lint/phase_safety.hh"

#include <algorithm>
#include <cctype>
#include <deque>
#include <regex>

namespace toleo_lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isKeyword(const std::string &s)
{
    static const std::set<std::string> kw = {
        "alignas",      "alignof",  "asm",
        "auto",         "bool",     "break",
        "case",         "catch",    "char",
        "class",        "const",    "constexpr",
        "const_cast",   "continue", "decltype",
        "default",      "delete",   "do",
        "double",       "dynamic_cast", "else",
        "enum",         "explicit", "extern",
        "false",        "final",    "float",
        "for",          "friend",   "goto",
        "if",           "inline",   "int",
        "long",         "mutable",  "namespace",
        "new",          "noexcept", "nullptr",
        "operator",     "override", "private",
        "protected",    "public",   "register",
        "reinterpret_cast", "return", "short",
        "signed",       "sizeof",   "static",
        "static_assert", "static_cast", "struct",
        "switch",       "template", "this",
        "throw",        "true",     "try",
        "typedef",      "typeid",   "typename",
        "union",        "unsigned", "using",
        "virtual",      "void",     "volatile",
        "wchar_t",      "while"};
    return kw.count(s) != 0;
}

bool
isCastKeyword(const std::string &s)
{
    return s == "const_cast" || s == "static_cast" ||
           s == "reinterpret_cast" || s == "dynamic_cast";
}

bool
isAssignOp(const std::string &s)
{
    static const std::set<std::string> ops = {
        "=",  "+=", "-=",  "*=",  "/=", "%=",
        "&=", "|=", "^=", "<<=", ">>="};
    return ops.count(s) != 0;
}

bool
isMacroLike(const std::string &s)
{
    if (s.size() < 2)
        return false;
    bool letter = false;
    for (char c : s) {
        if (std::islower(static_cast<unsigned char>(c)))
            return false;
        if (std::isupper(static_cast<unsigned char>(c)))
            letter = true;
    }
    return letter;
}

/** Contribution of a token to template-angle depth. */
int
angleDelta(const std::string &t)
{
    if (t == "<")
        return 1;
    if (t == ">")
        return -1;
    if (t == ">>")
        return -2;
    return 0;
}

using Toks = std::vector<Token>;

/** Index of the matching close for the open bracket at @p i (forward). */
std::size_t
matchForward(const Toks &t, std::size_t i, const char *open,
             const char *close)
{
    int depth = 0;
    for (std::size_t j = i; j < t.size(); ++j) {
        if (t[j].text == open)
            ++depth;
        else if (t[j].text == close && --depth == 0)
            return j;
    }
    return t.size();
}

/** Index of the matching open for the close bracket at @p i (backward);
 *  returns npos on failure. */
std::size_t
matchBackward(const Toks &t, std::size_t i, const char *open,
              const char *close)
{
    int depth = 0;
    for (std::size_t j = i;; --j) {
        if (t[j].text == close)
            ++depth;
        else if (t[j].text == open && --depth == 0)
            return j;
        if (j == 0)
            break;
    }
    return static_cast<std::size_t>(-1);
}

/** Walk backward over a template-argument list ending with the `>` (or
 *  `>>`) at @p i; returns the index of the opening `<`, or npos. */
std::size_t
matchAnglesBackward(const Toks &t, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i;; --j) {
        const std::string &s = t[j].text;
        if (s == ">")
            ++depth;
        else if (s == ">>")
            depth += 2;
        else if (s == "<" && --depth == 0)
            return j;
        else if (s == "<<")
            depth -= 2;
        if (depth <= 0 && s == "<")
            return j;
        if (j == 0)
            break;
    }
    return static_cast<std::size_t>(-1);
}

} // namespace

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

std::vector<Token>
tokenize(const SourceFile &sf)
{
    static const char *three[] = {"<<=", ">>=", "->*", "..."};
    static const char *two[] = {"::", "->", "++", "--", "+=", "-=",
                                "*=", "/=", "%=", "&=", "|=", "^=",
                                "==", "!=", "<=", ">=", "&&", "||",
                                "<<", ">>"};
    const std::string &s = sf.joined;
    std::vector<Token> out;
    std::size_t line = 1;
    bool atLineStart = true;
    std::size_t i = 0;
    while (i < s.size()) {
        const char c = s[i];
        if (c == '\n') {
            ++line;
            atLineStart = true;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '#' && atLineStart) {
            // Preprocessor directive: skip to end of line, honoring
            // backslash continuations.
            while (i < s.size()) {
                if (s[i] == '\n') {
                    const bool cont = i > 0 && s[i - 1] == '\\';
                    ++line;
                    ++i;
                    if (!cont)
                        break;
                } else {
                    ++i;
                }
            }
            atLineStart = true;
            continue;
        }
        atLineStart = false;
        if (isIdentStart(c)) {
            std::size_t j = i + 1;
            while (j < s.size() && isIdentChar(s[j]))
                ++j;
            out.push_back({Token::Kind::Ident, s.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i + 1;
            while (j < s.size() &&
                   (isIdentChar(s[j]) || s[j] == '.' || s[j] == '\''))
                ++j;
            out.push_back({Token::Kind::Number, s.substr(i, j - i), line});
            i = j;
            continue;
        }
        bool matched = false;
        for (const char *op : three) {
            if (s.compare(i, 3, op) == 0) {
                out.push_back({Token::Kind::Punct, op, line});
                i += 3;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        for (const char *op : two) {
            if (s.compare(i, 2, op) == 0) {
                out.push_back({Token::Kind::Punct, op, line});
                i += 2;
                matched = true;
                break;
            }
        }
        if (matched)
            continue;
        out.push_back({Token::Kind::Punct, std::string(1, c), line});
        ++i;
    }
    return out;
}

// ---------------------------------------------------------------------
// CodeIndex lookups
// ---------------------------------------------------------------------

const MemberInfo *
CodeIndex::findMember(const std::string &cls, const std::string &name) const
{
    auto it = members.find(cls + "::" + name);
    return it == members.end() ? nullptr : &it->second;
}

const MemberInfo *
CodeIndex::findMemberInherited(const std::string &cls,
                               const std::string &name) const
{
    std::set<std::string> seen;
    std::deque<std::string> q = {cls};
    while (!q.empty()) {
        const std::string c = q.front();
        q.pop_front();
        if (!seen.insert(c).second)
            continue;
        if (const MemberInfo *m = findMember(c, name))
            return m;
        auto it = classes.find(c);
        if (it != classes.end())
            for (const auto &b : it->second.bases)
                q.push_back(b);
    }
    return nullptr;
}

const FunctionInfo *
CodeIndex::findMethodInherited(const std::string &cls,
                               const std::string &name) const
{
    std::set<std::string> seen;
    std::deque<std::string> q = {cls};
    while (!q.empty()) {
        const std::string c = q.front();
        q.pop_front();
        if (!seen.insert(c).second)
            continue;
        auto fit = functionsByQual.find(c + "::" + name);
        if (fit != functionsByQual.end() && !fit->second.empty())
            return &functions[fit->second.front()];
        auto it = classes.find(c);
        if (it != classes.end())
            for (const auto &b : it->second.bases)
                q.push_back(b);
    }
    return nullptr;
}

std::vector<std::string>
CodeIndex::transitiveDerived(const std::string &cls) const
{
    std::vector<std::string> out;
    std::set<std::string> seen = {cls};
    std::deque<std::string> q = {cls};
    while (!q.empty()) {
        const std::string c = q.front();
        q.pop_front();
        auto it = derived.find(c);
        if (it == derived.end())
            continue;
        for (const auto &d : it->second) {
            if (seen.insert(d).second) {
                out.push_back(d);
                q.push_back(d);
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

// ---------------------------------------------------------------------
// Indexer
// ---------------------------------------------------------------------

namespace {

struct Anno
{
    PhaseKind phase = PhaseKind::None;
    StateKind state = StateKind::None;
    bool phaseUsed = false;
    bool stateUsed = false;
};

class Indexer
{
  public:
    Indexer(const std::vector<SourceFile> &files, CodeIndex &ix)
        : files_(files), ix_(ix)
    {
    }

    void
    run()
    {
        ix_.tokens.resize(files_.size());
        annos_.resize(files_.size());
        for (std::size_t fi = 0; fi < files_.size(); ++fi) {
            ix_.tokens[fi] = tokenize(files_[fi]);
            parseAnnotations(fi);
            std::size_t i = 0;
            parseRegion(fi, i, ix_.tokens[fi].size(), "", false);
        }
        resolveDeferred();
    }

  private:
    const std::vector<SourceFile> &files_;
    CodeIndex &ix_;
    /** Per-file, per-raw-line phase/state annotations. */
    std::vector<std::map<std::size_t, Anno>> annos_;
    /** Qualifier chains of out-of-line definitions, parallel to
     *  ix_.functions ("" entries for inline/free definitions). */
    std::vector<std::vector<std::string>> chains_;
    /** Raw type-ident candidates per member, resolved after all
     *  classes are known. */
    std::vector<std::pair<std::string, std::vector<std::string>>>
        memberTypeIdents_; // qual -> idents

    void
    parseAnnotations(std::size_t fi)
    {
        static const std::regex phaseRe(
            "//\\s*toleo:\\s*phase\\((private|shared)\\)");
        static const std::regex stateRe(
            "//\\s*toleo:\\s*state\\((shared|per-core)\\)");
        const auto &raw = files_[fi].raw;
        for (std::size_t i = 0; i < raw.size(); ++i) {
            std::smatch m;
            Anno a;
            if (std::regex_search(raw[i], m, phaseRe))
                a.phase = m[1].str() == "private" ? PhaseKind::Private
                                                  : PhaseKind::Shared;
            if (std::regex_search(raw[i], m, stateRe))
                a.state = m[1].str() == "shared" ? StateKind::Shared
                                                 : StateKind::PerCore;
            if (a.phase != PhaseKind::None || a.state != StateKind::None)
                annos_[fi][i + 1] = a;
        }
    }

    PhaseKind
    attachPhase(std::size_t fi, std::size_t line)
    {
        // Nearest unconsumed phase annotation within a few lines above
        // the declaration (comments sit above multi-line signatures).
        const std::size_t lo = line > 4 ? line - 4 : 1;
        for (std::size_t l = line; l + 1 > lo; --l) {
            auto it = annos_[fi].find(l);
            if (it != annos_[fi].end() &&
                it->second.phase != PhaseKind::None &&
                !it->second.phaseUsed) {
                it->second.phaseUsed = true;
                return it->second.phase;
            }
        }
        return PhaseKind::None;
    }

    StateKind
    attachState(std::size_t fi, std::size_t line)
    {
        const std::size_t lo = line > 3 ? line - 3 : 1;
        for (std::size_t l = line; l + 1 > lo; --l) {
            auto it = annos_[fi].find(l);
            if (it != annos_[fi].end() &&
                it->second.state != StateKind::None &&
                !it->second.stateUsed) {
                it->second.stateUsed = true;
                return it->second.state;
            }
        }
        return StateKind::None;
    }

    struct FnHeader
    {
        enum class S { None, Skip, Found };
        S s = S::None;
        std::size_t nameIdx = 0;   ///< absolute token index of the name
        std::size_t parenOpen = 0; ///< absolute index of '('
        std::vector<std::string> chain; ///< qualifier chain (A::B::)
    };

    /** Recognize a function declarator in a decl-scope statement.
     *  @p stmt holds absolute token indices into the file stream. */
    FnHeader
    findFunctionHeader(const Toks &t, const std::vector<std::size_t> &stmt)
    {
        FnHeader h;
        int angle = 0;
        for (std::size_t k = 0; k < stmt.size(); ++k) {
            const std::string &s = t[stmt[k]].text;
            if (s == "operator") {
                h.s = FnHeader::S::Skip;
                return h;
            }
            angle += angleDelta(s);
            if (angle < 0)
                angle = 0;
            if (s != "(" || angle != 0 || k == 0)
                continue;
            const Token &prev = t[stmt[k - 1]];
            if (prev.kind != Token::Kind::Ident || isKeyword(prev.text)) {
                // Skip the parenthesized group so its contents can't
                // produce a bogus candidate.
                std::size_t close =
                    matchForward(t, stmt[k], "(", ")");
                while (k + 1 < stmt.size() && stmt[k] < close)
                    ++k;
                continue;
            }
            h.s = FnHeader::S::Found;
            h.nameIdx = stmt[k - 1];
            h.parenOpen = stmt[k];
            // Collect the `A :: B ::` qualifier chain before the name.
            std::size_t j = k - 1;
            while (j >= 2 && t[stmt[j - 1]].text == "::" &&
                   t[stmt[j - 2]].kind == Token::Kind::Ident) {
                h.chain.insert(h.chain.begin(), t[stmt[j - 2]].text);
                j -= 2;
            }
            return h;
        }
        return h;
    }

    void
    registerFunction(std::size_t fi, const FnHeader &h,
                     const std::string &cls, bool sawVirtualPrefix,
                     const std::vector<std::size_t> &stmt, bool hasBody,
                     std::size_t bodyBegin, std::size_t bodyEnd)
    {
        const Toks &t = ix_.tokens[fi];
        FunctionInfo f;
        f.name = t[h.nameIdx].text;
        if (h.nameIdx > 0 && t[h.nameIdx - 1].text == "~")
            f.name = "~" + f.name;
        f.className = cls; // chain-qualified names resolved later
        f.isVirtual = sawVirtualPrefix;
        f.hasBody = hasBody;
        f.file = &files_[fi];
        f.line = t[h.nameIdx].line;
        f.fileIndex = fi;
        f.paramBegin = h.parenOpen + 1;
        f.paramEnd = matchForward(t, h.parenOpen, "(", ")");
        f.bodyBegin = bodyBegin;
        f.bodyEnd = bodyEnd;
        // Scan the declarator suffix (between ')' and the statement
        // end) for const / override / final.  Stop const detection at
        // the first ':' / '=' / '->' so ctor-init lists and trailing
        // returns can't contribute.
        bool stopConst = false;
        for (std::size_t k = 0; k < stmt.size(); ++k) {
            if (stmt[k] <= f.paramEnd)
                continue;
            const std::string &s = t[stmt[k]].text;
            if (s == ":" || s == "=" || s == "->")
                stopConst = true;
            if (s == "const" && !stopConst)
                f.isConst = true;
            if (s == "override" || s == "final")
                f.isVirtual = true;
        }
        f.phase = attachPhase(fi, f.line);
        ix_.functions.push_back(f);
        chains_.push_back(h.chain);
    }

    void
    registerMember(std::size_t fi, const std::string &cls,
                   const std::vector<std::size_t> &stmt,
                   std::size_t stopAt)
    {
        const Toks &t = ix_.tokens[fi];
        // Name = last top-level (angle-depth 0) identifier before the
        // initializer ('=', brace init, or array extent).
        int angle = 0;
        bool sawAngle = false;
        std::size_t nameIdx = static_cast<std::size_t>(-1);
        std::vector<std::string> typeIdents;
        for (std::size_t k = 0; k < stmt.size() && stmt[k] < stopAt; ++k) {
            const Token &tok = t[stmt[k]];
            const std::string &s = tok.text;
            if (angle == 0 && (s == "=" || s == "["))
                break;
            angle += angleDelta(s);
            if (angle < 0)
                angle = 0;
            sawAngle = sawAngle || angle > 0;
            if (tok.kind == Token::Kind::Ident && !isKeyword(s)) {
                if (nameIdx != static_cast<std::size_t>(-1))
                    typeIdents.push_back(t[nameIdx].text);
                if (angle == 0)
                    nameIdx = stmt[k];
                else
                    typeIdents.push_back(s);
            }
        }
        if (nameIdx == static_cast<std::size_t>(-1))
            return;
        const std::string name = t[nameIdx].text;
        MemberInfo m;
        m.name = name;
        m.container = sawAngle;
        m.className = cls;
        m.file = &files_[fi];
        m.line = t[nameIdx].line;
        m.state = attachState(fi, m.line);
        const std::string qual = cls + "::" + name;
        if (ix_.members.count(qual))
            return; // redeclaration (e.g. across #if arms)
        ix_.members.emplace(qual, m);
        ix_.classes[cls].memberNames.push_back(name);
        if (m.state == StateKind::Shared)
            ix_.classes[cls].hasSharedState = true;
        memberTypeIdents_.push_back({qual, typeIdents});
    }

    /** Parse one declaration region (file top level, namespace body,
     *  or class body).  @p i is the token cursor; the region ends at
     *  @p end or at an unmatched '}' (consumed). */
    void
    parseRegion(std::size_t fi, std::size_t &i, std::size_t end,
                const std::string &cls, bool classScope)
    {
        const Toks &t = ix_.tokens[fi];
        while (i < end) {
            // Access labels.
            if (classScope && i + 1 < end &&
                (t[i].text == "public" || t[i].text == "protected" ||
                 t[i].text == "private") &&
                t[i + 1].text == ":") {
                i += 2;
                continue;
            }
            if (t[i].text == "}") {
                ++i;
                return;
            }
            if (t[i].text == ";") {
                ++i;
                continue;
            }
            // Gather a statement up to a top-level ';', '{' or '}'.
            std::vector<std::size_t> stmt;
            int paren = 0;
            std::size_t term = end;
            char termKind = 0;
            for (std::size_t j = i; j < end; ++j) {
                const std::string &s = t[j].text;
                if (paren == 0 &&
                    (s == ";" || s == "{" || s == "}")) {
                    term = j;
                    termKind = s[0];
                    break;
                }
                if (s == "(")
                    ++paren;
                else if (s == ")" && paren > 0)
                    --paren;
                stmt.push_back(j);
            }
            if (termKind == 0) {
                i = end;
                return;
            }
            if (termKind == '}') {
                // Malformed trailing tokens; let the '}' handler run.
                i = term;
                continue;
            }

            // --- classify the statement -------------------------------
            const std::string &first = t[stmt.empty() ? term : stmt[0]].text;

            if (termKind == '{' && first == "namespace") {
                i = term + 1;
                parseRegion(fi, i, end, "", false);
                continue;
            }
            if (termKind == '{' && first == "extern") {
                // extern "C" { ... } -- transparent.
                i = term + 1;
                parseRegion(fi, i, end, cls, classScope);
                continue;
            }
            // enum / enum class: skip the enumerator body.
            if (termKind == '{' && containsTopLevel(t, stmt, "enum")) {
                std::size_t close = matchForward(t, term, "{", "}");
                i = std::min(close + 1, end);
                continue;
            }
            // Variable with initializer list: `X x = { ... };`
            if (termKind == '{' && hasTopLevelBefore(t, stmt, "=")) {
                std::size_t close = matchForward(t, term, "{", "}");
                i = skipToSemicolon(t, std::min(close + 1, end), end);
                continue;
            }
            // Class/struct definition.
            std::size_t clsKw = findTopLevel(t, stmt, "class");
            if (clsKw == static_cast<std::size_t>(-1))
                clsKw = findTopLevel(t, stmt, "struct");
            if (clsKw == static_cast<std::size_t>(-1))
                clsKw = findTopLevel(t, stmt, "union");
            if (termKind == '{' && clsKw != static_cast<std::size_t>(-1) &&
                first != "friend" && first != "using" &&
                first != "typedef") {
                std::string name;
                for (std::size_t k = 0; k < stmt.size(); ++k) {
                    if (stmt[k] <= clsKw)
                        continue;
                    const Token &tok = t[stmt[k]];
                    if (tok.kind == Token::Kind::Ident &&
                        !isKeyword(tok.text)) {
                        name = tok.text;
                        break;
                    }
                }
                if (name.empty()) {
                    // Anonymous struct/union: treat as transparent.
                    i = term + 1;
                    parseRegion(fi, i, end, cls, classScope);
                    continue;
                }
                ClassInfo &ci = ix_.classes[name];
                ci.name = name;
                // Base-specifier list after a top-level ':'.
                std::size_t colon = static_cast<std::size_t>(-1);
                int angle = 0;
                for (std::size_t k = 0; k < stmt.size(); ++k) {
                    const std::string &s = t[stmt[k]].text;
                    angle += angleDelta(s);
                    if (angle < 0)
                        angle = 0;
                    if (angle == 0 && s == ":" && stmt[k] > clsKw &&
                        (k == 0 || t[stmt[k - 1]].text != ":")) {
                        colon = k;
                        break;
                    }
                }
                if (colon != static_cast<std::size_t>(-1)) {
                    std::string base;
                    angle = 0;
                    for (std::size_t k = colon + 1; k <= stmt.size(); ++k) {
                        const bool last = k == stmt.size();
                        const std::string s =
                            last ? "," : t[stmt[k]].text;
                        if (!last) {
                            angle += angleDelta(s);
                            if (angle < 0)
                                angle = 0;
                        }
                        if (!last && angle == 0 &&
                            t[stmt[k]].kind == Token::Kind::Ident &&
                            !isKeyword(s))
                            base = s;
                        if ((last || (angle == 0 && s == ",")) &&
                            !base.empty()) {
                            ci.bases.push_back(base);
                            base.clear();
                        }
                    }
                }
                i = term + 1;
                parseRegion(fi, i, end, name, true);
                continue;
            }

            // Function declaration or definition.
            FnHeader h = findFunctionHeader(t, stmt);
            if (h.s == FnHeader::S::Found) {
                const bool sawVirtual =
                    containsTopLevel(t, stmt, "virtual");
                if (termKind == ';') {
                    registerFunction(fi, h, cls, sawVirtual, stmt, false,
                                     0, 0);
                    i = term + 1;
                    continue;
                }
                // '{' terminator: the body, unless the declarator
                // suffix has a ctor-init list -- then it may be a
                // brace-init inside that list.  An init brace is
                // directly preceded by an identifier / '>' / ']'; the
                // body brace follows ')' or '}'.
                std::size_t paramClose =
                    matchForward(t, h.parenOpen, "(", ")");
                bool ctorInit = false;
                int sp = 0;
                for (std::size_t k = 0; k < stmt.size(); ++k) {
                    if (stmt[k] <= paramClose)
                        continue;
                    const std::string &s = t[stmt[k]].text;
                    if (s == "(")
                        ++sp;
                    else if (s == ")" && sp > 0)
                        --sp;
                    if (sp == 0 && s == ":") {
                        ctorInit = true;
                        break;
                    }
                }
                std::size_t bracePos = term;
                while (ctorInit) {
                    const std::string &before =
                        t[bracePos - 1].text;
                    if (before == ")" || before == "}")
                        break;
                    std::size_t close =
                        matchForward(t, bracePos, "{", "}");
                    bracePos = close + 1;
                    // Scan to the next top-level '{' (or give up at ';').
                    int p = 0;
                    bool found = false;
                    for (std::size_t j = bracePos; j < end; ++j) {
                        const std::string &s = t[j].text;
                        if (p == 0 && s == "{") {
                            bracePos = j;
                            found = true;
                            break;
                        }
                        if (p == 0 && s == ";") {
                            bracePos = j;
                            break;
                        }
                        if (s == "(")
                            ++p;
                        else if (s == ")" && p > 0)
                            --p;
                    }
                    if (!found) {
                        // Delegating/aggregate oddity; treat as decl.
                        registerFunction(fi, h, cls, sawVirtual, stmt,
                                         false, 0, 0);
                        i = std::min(bracePos + 1, end);
                        break;
                    }
                    if (t[bracePos - 1].text == ")" ||
                        t[bracePos - 1].text == "}")
                        break;
                }
                if (i > term)
                    continue; // decl fallback above already advanced
                std::size_t close = matchForward(t, bracePos, "{", "}");
                registerFunction(fi, h, cls, sawVirtual, stmt, true,
                                 bracePos + 1, close);
                i = std::min(close + 1, end);
                continue;
            }
            if (h.s == FnHeader::S::Skip) {
                // operator etc.: skip body if present.
                if (termKind == '{') {
                    std::size_t close = matchForward(t, term, "{", "}");
                    i = std::min(close + 1, end);
                } else {
                    i = term + 1;
                }
                continue;
            }

            // Data member (class scope) or uninteresting namespace-
            // scope declaration.
            if (termKind == '{') {
                // Brace-initialized member: `Rng rng{0};`
                std::size_t close = matchForward(t, term, "{", "}");
                if (classScope && !isSkippedMember(first))
                    registerMember(fi, cls, stmt, term);
                i = skipToSemicolon(t, std::min(close + 1, end), end);
                continue;
            }
            if (classScope && !isSkippedMember(first) &&
                clsKw == static_cast<std::size_t>(-1))
                registerMember(fi, cls, stmt, term);
            i = term + 1;
        }
    }

    static bool
    isSkippedMember(const std::string &first)
    {
        return first == "using" || first == "typedef" ||
               first == "friend" || first == "static" ||
               first == "template" || first == "constexpr" ||
               first == "enum";
    }

    static bool
    containsTopLevel(const Toks &t, const std::vector<std::size_t> &stmt,
                     const char *kw)
    {
        return findTopLevel(t, stmt, kw) != static_cast<std::size_t>(-1);
    }

    static std::size_t
    findTopLevel(const Toks &t, const std::vector<std::size_t> &stmt,
                 const char *kw)
    {
        int angle = 0;
        for (std::size_t k : stmt) {
            angle += angleDelta(t[k].text);
            if (angle < 0)
                angle = 0;
            if (angle == 0 && t[k].text == kw)
                return k;
        }
        return static_cast<std::size_t>(-1);
    }

    static bool
    hasTopLevelBefore(const Toks &t, const std::vector<std::size_t> &stmt,
                      const char *kw)
    {
        int angle = 0;
        for (std::size_t k : stmt) {
            angle += angleDelta(t[k].text);
            if (angle < 0)
                angle = 0;
            if (angle == 0 && t[k].text == kw)
                return true;
        }
        return false;
    }

    static std::size_t
    skipToSemicolon(const Toks &t, std::size_t i, std::size_t end)
    {
        int p = 0;
        for (std::size_t j = i; j < end; ++j) {
            const std::string &s = t[j].text;
            if (p == 0 && s == ";")
                return j + 1;
            if (p == 0 && s == "}")
                return j; // don't eat the region close
            if (s == "(" || s == "{")
                ++p;
            else if ((s == ")" || s == "}") && p > 0)
                --p;
        }
        return end;
    }

    void
    resolveDeferred()
    {
        // Out-of-line qualifier chains -> class names.
        for (std::size_t k = 0; k < ix_.functions.size(); ++k) {
            FunctionInfo &f = ix_.functions[k];
            if (f.className.empty() && !chains_[k].empty()) {
                const std::string &last = chains_[k].back();
                if (ix_.classes.count(last))
                    f.className = last;
                // else: namespace-qualified free function; keep bare.
            }
        }
        for (std::size_t k = 0; k < ix_.functions.size(); ++k) {
            FunctionInfo &f = ix_.functions[k];
            ix_.functionsByQual[f.qualName()].push_back(k);
            if (!f.className.empty()) {
                ix_.classes[f.className].methodNames.insert(f.name);
                ix_.methodsByName[f.name].push_back(k);
            }
        }
        // Member types: last declaration ident naming an indexed class
        // wins (innermost template argument).
        for (auto &mt : memberTypeIdents_) {
            auto it = ix_.members.find(mt.first);
            if (it == ix_.members.end())
                continue;
            for (auto rit = mt.second.rbegin(); rit != mt.second.rend();
                 ++rit) {
                if (ix_.classes.count(*rit)) {
                    it->second.typeClass = *rit;
                    break;
                }
            }
        }
        for (const auto &kv : ix_.classes)
            for (const auto &b : kv.second.bases)
                ix_.derived[b].push_back(kv.first);
        for (auto &kv : ix_.derived) {
            std::sort(kv.second.begin(), kv.second.end());
            kv.second.erase(
                std::unique(kv.second.begin(), kv.second.end()),
                kv.second.end());
        }
    }
};

} // namespace

CodeIndex
buildIndex(const std::vector<SourceFile> &files)
{
    CodeIndex ix;
    Indexer(files, ix).run();
    return ix;
}

// ---------------------------------------------------------------------
// Phase-safety analysis
// ---------------------------------------------------------------------

namespace {

struct Merged
{
    PhaseKind phase = PhaseKind::None;
    bool isVirtual = false;
    bool isConst = false;
    bool hasBody = false;
    bool exists = false;
};

Merged
mergedOf(const CodeIndex &ix, const std::string &qual)
{
    Merged m;
    auto it = ix.functionsByQual.find(qual);
    if (it == ix.functionsByQual.end())
        return m;
    m.exists = true;
    for (std::size_t k : it->second) {
        const FunctionInfo &f = ix.functions[k];
        if (f.phase != PhaseKind::None)
            m.phase = f.phase;
        m.isVirtual |= f.isVirtual;
        m.isConst |= f.isConst;
        m.hasBody |= f.hasBody;
    }
    return m;
}

/** Owning class (cls or a base) that declares method @p m; "". */
std::string
methodOwner(const CodeIndex &ix, const std::string &cls,
            const std::string &m)
{
    std::set<std::string> seen;
    std::deque<std::string> q = {cls};
    while (!q.empty()) {
        const std::string c = q.front();
        q.pop_front();
        if (!seen.insert(c).second)
            continue;
        if (ix.functionsByQual.count(c + "::" + m))
            return c;
        auto it = ix.classes.find(c);
        if (it != ix.classes.end())
            for (const auto &b : it->second.bases)
                q.push_back(b);
    }
    return "";
}

/** One syntactic postfix chain: base expression plus member parts. */
struct Chain
{
    enum class Base { This, Ident, Cast, Unresolved };
    Base base = Base::Unresolved;
    std::string baseIdent;     ///< when base == Ident
    std::string castClass;     ///< cast target class (when resolvable)
    bool castOnThis = false;   ///< cast argument mentions `this`
    std::vector<std::string> parts; ///< member names, outermost first
    bool ok = false;
};

/** Walk backward from token @p j (the last token of a postfix chain)
 *  collecting `base . a -> b [i]` shapes. */
Chain
chainBackward(const Toks &t, std::size_t j, const CodeIndex &ix)
{
    Chain ch;
    for (;;) {
        if (j == static_cast<std::size_t>(-1))
            return ch;
        const Token &tok = t[j];
        if (tok.text == "]") {
            std::size_t open = matchBackward(t, j, "[", "]");
            if (open == static_cast<std::size_t>(-1) || open == 0)
                return ch;
            j = open - 1;
            continue;
        }
        if (tok.text == ")") {
            std::size_t open = matchBackward(t, j, "(", ")");
            if (open == static_cast<std::size_t>(-1) || open == 0)
                return ch;
            const std::string &before = t[open - 1].text;
            if (before == ">" || before == ">>") {
                std::size_t lt = matchAnglesBackward(t, open - 1);
                if (lt != static_cast<std::size_t>(-1) && lt > 0 &&
                    isCastKeyword(t[lt - 1].text)) {
                    // const_cast<T *>(expr)
                    ch.base = Chain::Base::Cast;
                    for (std::size_t k = lt + 1; k < open - 1; ++k)
                        if (t[k].kind == Token::Kind::Ident &&
                            ix.classes.count(t[k].text))
                            ch.castClass = t[k].text;
                    for (std::size_t k = open + 1; k < j; ++k)
                        if (t[k].text == "this")
                            ch.castOnThis = true;
                    ch.ok = true;
                    return ch;
                }
            }
            // Call or parenthesized expression as receiver: opaque.
            return ch;
        }
        if (tok.kind == Token::Kind::Ident || tok.text == "this") {
            ch.parts.insert(ch.parts.begin(), tok.text);
            if (j >= 2 &&
                (t[j - 1].text == "." || t[j - 1].text == "->")) {
                j -= 2;
                continue;
            }
            // Chain base reached.
            if (tok.text == "this") {
                ch.base = Chain::Base::This;
                ch.parts.erase(ch.parts.begin());
            } else {
                ch.base = Chain::Base::Ident;
                ch.baseIdent = tok.text;
                ch.parts.erase(ch.parts.begin());
            }
            ch.ok = true;
            return ch;
        }
        return ch;
    }
}

/** Collect a forward postfix chain starting at ident token @p i;
 *  returns the chain and sets @p last to the final consumed token. */
Chain
chainForward(const Toks &t, std::size_t i, std::size_t bodyEnd,
             std::size_t &last)
{
    Chain ch;
    if (t[i].text == "this")
        ch.base = Chain::Base::This;
    else {
        ch.base = Chain::Base::Ident;
        ch.baseIdent = t[i].text;
    }
    ch.ok = true;
    std::size_t j = i + 1;
    last = i;
    while (j < bodyEnd) {
        if (t[j].text == "[") {
            std::size_t close = matchForward(t, j, "[", "]");
            j = close + 1;
            last = close;
            continue;
        }
        if ((t[j].text == "." || t[j].text == "->") &&
            j + 1 < bodyEnd &&
            t[j + 1].kind == Token::Kind::Ident) {
            ch.parts.push_back(t[j + 1].text);
            last = j + 1;
            j += 2;
            continue;
        }
        break;
    }
    return ch;
}

struct EvalResult
{
    bool baseResolved = false;
    bool fullyResolved = false;
    /** Any member along the chain (incl. the last part) annotated
     *  state(shared); holds the first such member's name. */
    std::string sharedMember;
    /** Class owning the final part ("" if unresolved). */
    std::string finalOwner;
    /** typeClass after the final part ("" if unknown / scalar). */
    std::string finalClass;
    /** The final resolved member is a container/smart pointer:
     *  finalClass is its *element* type (see MemberInfo::container). */
    bool finalContainer = false;
};

class Analyzer
{
  public:
    Analyzer(const std::vector<SourceFile> &files, const CodeIndex &ix)
        : files_(files), ix_(ix)
    {
        (void)files_;
        for (const auto &kv : ix_.members)
            if (kv.second.state == StateKind::Shared)
                sharedMemberNames_.insert(kv.second.name);
        static const char *statsCls[] = {"SimStats", "ServingStats",
                                         "RackStats", "RackNodeStats",
                                         "LatencyHistogram"};
        for (const char *c : statsCls) {
            auto it = ix_.classes.find(c);
            if (it == ix_.classes.end())
                continue;
            statsClasses_.insert(c);
            for (const auto &m : it->second.memberNames)
                statsFieldNames_.insert(m);
        }
    }

    PhaseReport
    run()
    {
        seedRoots();
        while (!queue_.empty()) {
            const auto [qual, root] = queue_.front();
            queue_.pop_front();
            curRoot_ = root;
            auto it = ix_.functionsByQual.find(qual);
            if (it == ix_.functionsByQual.end())
                continue;
            for (std::size_t k : it->second) {
                const FunctionInfo &f = ix_.functions[k];
                if (f.hasBody)
                    scanBody(f);
            }
            ++report_.functionsWalked;
        }
        auto lt = [](const PhaseIssue &a, const PhaseIssue &b) {
            if (a.file->path != b.file->path)
                return a.file->path < b.file->path;
            if (a.line != b.line)
                return a.line < b.line;
            return a.message < b.message;
        };
        std::sort(report_.violations.begin(), report_.violations.end(),
                  lt);
        std::sort(report_.warnings.begin(), report_.warnings.end(), lt);
        return std::move(report_);
    }

  private:
    const std::vector<SourceFile> &files_;
    const CodeIndex &ix_;
    std::set<std::string> sharedMemberNames_;
    std::set<std::string> statsClasses_;
    std::set<std::string> statsFieldNames_;
    /** Worklist entries carry the phase(private) root that made the
     *  function reachable, so findings deep in a call chain name the
     *  entry point the hazard escapes from. */
    std::deque<std::pair<std::string, std::string>> queue_;
    std::set<std::string> visited_;
    std::string curRoot_;
    PhaseReport report_;

    void
    enqueue(const std::string &qual)
    {
        if (visited_.insert(qual).second)
            queue_.push_back({qual, curRoot_});
    }

    void
    seedRoots()
    {
        for (const auto &kv : ix_.functionsByQual) {
            Merged m = mergedOf(ix_, kv.first);
            if (m.phase != PhaseKind::Private)
                continue;
            ++report_.roots;
            report_.rootNames.push_back(kv.first);
            const FunctionInfo &f = ix_.functions[kv.second.front()];
            if (!m.hasBody && !m.isVirtual)
                report_.warnings.push_back(
                    {f.file, f.line,
                     "phase(private) root " + kv.first +
                         " has no indexed definition"});
            curRoot_ = kv.first;
            enqueue(kv.first);
            // A virtual private root covers its whole override set.
            if (m.isVirtual && !f.className.empty()) {
                for (const auto &d :
                     ix_.transitiveDerived(f.className)) {
                    auto cit = ix_.classes.find(d);
                    if (cit != ix_.classes.end() &&
                        cit->second.methodNames.count(f.name))
                        enqueue(d + "::" + f.name);
                }
            }
        }
    }

    void
    violation(const FunctionInfo &f, std::size_t line,
              const std::string &msg)
    {
        const std::string where =
            f.qualName() == curRoot_
                ? " [in phase(private) root " + curRoot_ + "]"
                : " [reached from phase(private) root " + curRoot_ +
                      " via " + f.qualName() + "]";
        report_.violations.push_back({f.file, line, msg + where});
    }

    void
    warning(const FunctionInfo &f, std::size_t line,
            const std::string &msg)
    {
        report_.warnings.push_back(
            {f.file, line, msg + " [in " + f.qualName() + "]"});
    }

    /** Resolve `Class ( & | * | const )* name` local/param decls so
     *  receivers like `SetAssocCache &l1 = l1_[i]` stay typed. */
    void
    collectLocals(const Toks &t, std::size_t begin, std::size_t end,
                  std::map<std::string, std::string> &locals)
    {
        for (std::size_t j = begin; j + 1 < end; ++j) {
            if (t[j].kind != Token::Kind::Ident ||
                !ix_.classes.count(t[j].text))
                continue;
            std::size_t k = j + 1;
            while (k < end && (t[k].text == "&" || t[k].text == "*" ||
                               t[k].text == "const"))
                ++k;
            if (k < end && k > j + 1 &&
                t[k].kind == Token::Kind::Ident &&
                !isKeyword(t[k].text))
                locals.emplace(t[k].text, t[j].text);
            else if (k == j + 1 && k < end &&
                     t[k].kind == Token::Kind::Ident &&
                     !isKeyword(t[k].text) && k + 1 < end &&
                     (t[k + 1].text == "=" || t[k + 1].text == "{" ||
                      t[k + 1].text == ";" || t[k + 1].text == "("))
                locals.emplace(t[k].text, t[j].text);
        }
    }

    EvalResult
    evalChain(const Chain &ch, const FunctionInfo &f,
              const std::map<std::string, std::string> &locals)
    {
        EvalResult r;
        std::string cls;
        switch (ch.base) {
        case Chain::Base::This:
            cls = f.className;
            r.baseResolved = !cls.empty();
            break;
        case Chain::Base::Cast:
            cls = !ch.castClass.empty()
                      ? ch.castClass
                      : (ch.castOnThis ? f.className : "");
            r.baseResolved = !cls.empty();
            break;
        case Chain::Base::Ident: {
            auto lit = locals.find(ch.baseIdent);
            if (lit != locals.end()) {
                cls = lit->second;
                r.baseResolved = true;
            } else if (!f.className.empty()) {
                const MemberInfo *m = ix_.findMemberInherited(
                    f.className, ch.baseIdent);
                if (m) {
                    r.baseResolved = true;
                    if (m->state == StateKind::Shared &&
                        r.sharedMember.empty())
                        r.sharedMember = m->name;
                    cls = m->typeClass;
                    r.finalOwner = m->className;
                    r.finalContainer = m->container;
                }
            }
            break;
        }
        case Chain::Base::Unresolved:
            break;
        }
        if (ch.base == Chain::Base::Ident && r.baseResolved &&
            ch.parts.empty()) {
            // Chain is just the member itself.
            r.fullyResolved = true;
            r.finalClass = cls;
            return r;
        }
        r.finalOwner.clear();
        r.finalContainer = false;
        bool resolved = r.baseResolved;
        for (std::size_t k = 0; k < ch.parts.size(); ++k) {
            if (!resolved || cls.empty()) {
                resolved = false;
                break;
            }
            const MemberInfo *m =
                ix_.findMemberInherited(cls, ch.parts[k]);
            if (!m) {
                resolved = false;
                break;
            }
            if (m->state == StateKind::Shared && r.sharedMember.empty())
                r.sharedMember = m->name;
            r.finalOwner = m->className;
            cls = m->typeClass;
            r.finalContainer = m->container;
        }
        r.fullyResolved = resolved;
        r.finalClass = resolved ? cls : "";
        return r;
    }

    /** Handle a resolved method call `recvClass.m(...)`. */
    void
    handleMethodCall(const FunctionInfo &f, std::size_t line,
                     const std::string &recvClass, const std::string &m,
                     bool viaShared, const std::string &sharedName)
    {
        const std::string owner = methodOwner(ix_, recvClass, m);
        if (owner.empty()) {
            if (ix_.classes.count(recvClass))
                warning(f, line,
                        "unknown callee: method " + recvClass +
                            "::" + m + " not found in index");
            return;
        }
        dispatchTo(f, line, owner, m, viaShared, sharedName,
                   /*isVirtualSite=*/false);
        Merged mg = mergedOf(ix_, owner + "::" + m);
        if (mg.isVirtual) {
            for (const auto &d : ix_.transitiveDerived(owner)) {
                auto cit = ix_.classes.find(d);
                if (cit != ix_.classes.end() &&
                    cit->second.methodNames.count(m))
                    dispatchTo(f, line, d, m, viaShared, sharedName,
                               /*isVirtualSite=*/true);
            }
        }
    }

    void
    dispatchTo(const FunctionInfo &f, std::size_t line,
               const std::string &cls, const std::string &m,
               bool viaShared, const std::string &sharedName,
               bool isVirtualSite)
    {
        const std::string qual = cls + "::" + m;
        Merged mg = mergedOf(ix_, qual);
        if (!mg.exists)
            return;
        if (mg.phase == PhaseKind::Shared) {
            violation(f, line,
                      std::string(isVirtualSite ? "virtual dispatch to "
                                                : "call into ") +
                          "phase(shared) function " + qual +
                          " from private-phase code");
            return;
        }
        if (viaShared && !mg.isConst)
            violation(f, line,
                      "non-const call " + qual +
                          " on state(shared) member '" + sharedName +
                          "'");
        enqueue(qual);
    }

    void
    maybeWarnUnresolvedCall(const FunctionInfo &f, std::size_t line,
                            const std::string &m)
    {
        auto it = ix_.methodsByName.find(m);
        if (it == ix_.methodsByName.end())
            return;
        std::set<std::string> quals;
        for (std::size_t k : it->second)
            quals.insert(ix_.functions[k].qualName());
        for (const auto &q : quals) {
            Merged mg = mergedOf(ix_, q);
            const std::string cls = q.substr(0, q.find("::"));
            if (mg.phase == PhaseKind::Shared) {
                warning(f, line,
                        "unknown callee: unresolved receiver for '" + m +
                            "(...)' shadows phase(shared) " + q);
                return;
            }
            if (mg.isVirtual && !ix_.transitiveDerived(cls).empty()) {
                warning(f, line,
                        "unknown callee: unresolved receiver for '" + m +
                            "(...)' shadows virtual " + q);
                return;
            }
        }
    }

    void
    scanBody(const FunctionInfo &f)
    {
        const Toks &t = ix_.tokens[f.fileIndex];
        std::map<std::string, std::string> locals;
        collectLocals(t, f.paramBegin, f.paramEnd, locals);
        collectLocals(t, f.bodyBegin, f.bodyEnd, locals);

        for (std::size_t i = f.bodyBegin; i < f.bodyEnd; ++i) {
            const Token &tok = t[i];

            // ---- calls ----
            if (tok.kind == Token::Kind::Ident && i + 1 < f.bodyEnd &&
                t[i + 1].text == "(" && !isKeyword(tok.text)) {
                const std::string prev =
                    i > f.bodyBegin ? t[i - 1].text : "";
                if (prev == "." || prev == "->") {
                    Chain ch = chainBackward(t, i - 2, ix_);
                    // `member.method(...)` with no [i]/deref between:
                    // the receiver is the container object itself, so
                    // element-class method lookup does not apply.
                    const bool directIdent =
                        i >= 2 && t[i - 2].kind == Token::Kind::Ident;
                    if (ch.ok) {
                        EvalResult r = evalChain(ch, f, locals);
                        if (prev == "." && directIdent &&
                            r.fullyResolved && r.finalContainer) {
                            handleContainerCall(f, tok.line, tok.text,
                                                r.sharedMember);
                        } else if (r.fullyResolved &&
                                   !r.finalClass.empty()) {
                            handleMethodCall(f, tok.line, r.finalClass,
                                             tok.text,
                                             !r.sharedMember.empty(),
                                             r.sharedMember);
                        } else if (!r.sharedMember.empty()) {
                            warning(f, tok.line,
                                    "unknown callee: call '" + tok.text +
                                        "(...)' through state(shared) "
                                        "member '" +
                                        r.sharedMember +
                                        "' of unresolved type");
                        } else {
                            maybeWarnUnresolvedCall(f, tok.line,
                                                    tok.text);
                        }
                    } else {
                        maybeWarnUnresolvedCall(f, tok.line, tok.text);
                    }
                } else if (prev == "::") {
                    // Qualified call A::B::m(...).
                    std::size_t j = i - 1;
                    std::string qcls;
                    std::string firstQ;
                    while (j >= 1 && t[j].text == "::" &&
                           t[j - 1].kind == Token::Kind::Ident) {
                        firstQ = t[j - 1].text;
                        if (qcls.empty() &&
                            ix_.classes.count(t[j - 1].text))
                            qcls = t[j - 1].text;
                        if (j < 2)
                            break;
                        j -= 2;
                    }
                    if (!qcls.empty())
                        handleMethodCall(f, tok.line, qcls, tok.text,
                                         false, "");
                    else if (ix_.functionsByQual.count(tok.text) &&
                             firstQ != "std")
                        handleFreeCall(f, tok.line, tok.text);
                    // else: std:: or other external -- silent.
                } else {
                    // Bare call.
                    if (!f.className.empty() &&
                        !methodOwner(ix_, f.className, tok.text)
                             .empty()) {
                        handleMethodCall(f, tok.line, f.className,
                                         tok.text, false, "");
                    } else if (ix_.functionsByQual.count(tok.text)) {
                        handleFreeCall(f, tok.line, tok.text);
                    } else if (isMacroLike(tok.text)) {
                        warning(f, tok.line,
                                "unknown callee: macro-like call '" +
                                    tok.text +
                                    "(...)' has no indexed definition");
                    } else {
                        maybeWarnUnresolvedCall(f, tok.line, tok.text);
                    }
                }
            }

            // ---- writes ----
            const bool isIncDec = tok.text == "++" || tok.text == "--";
            if (isAssignOp(tok.text) || isIncDec) {
                Chain ch;
                std::size_t line = tok.line;
                if (isIncDec && i + 1 < f.bodyEnd &&
                    (t[i + 1].kind == Token::Kind::Ident) &&
                    !(i > f.bodyBegin &&
                      (t[i - 1].kind == Token::Kind::Ident ||
                       t[i - 1].text == "]" || t[i - 1].text == ")"))) {
                    // Prefix ++x / --x.
                    std::size_t lastTok = i + 1;
                    ch = chainForward(t, i + 1, f.bodyEnd, lastTok);
                    line = t[i + 1].line;
                } else if (i > f.bodyBegin) {
                    ch = chainBackward(t, i - 1, ix_);
                }
                if (!ch.ok)
                    continue;
                checkWrite(f, line, ch, locals);
            }
        }
    }

    /**
     * A method called directly on a container/smart-pointer member
     * (no subscript or deref): classify by the standard container
     * vocabulary instead of looking it up on the element class.
     * Const reads are always safe; mutations are writes to the
     * member; anything unrecognized on a state(shared) member
     * degrades to a warning, never silence.
     */
    void
    handleContainerCall(const FunctionInfo &f, std::size_t line,
                        const std::string &m,
                        const std::string &sharedName)
    {
        static const std::set<std::string> constOps = {
            "size",  "empty", "begin",    "end",   "cbegin",
            "cend",  "rbegin", "rend",    "count", "find",
            "at",    "front", "back",     "capacity", "data",
            "get",   "contains", "lower_bound", "upper_bound"};
        static const std::set<std::string> mutatingOps = {
            "push_back", "emplace_back", "pop_back", "clear",
            "insert",    "erase",        "resize",   "reserve",
            "assign",    "emplace",      "swap",     "push_front",
            "pop_front", "reset",        "release",  "fill"};
        if (constOps.count(m))
            return;
        if (mutatingOps.count(m)) {
            if (!sharedName.empty())
                violation(f, line,
                          "mutating container call '" + m +
                              "' on state(shared) member '" +
                              sharedName + "'");
            return;
        }
        if (!sharedName.empty())
            warning(f, line,
                    "unknown callee: container method '" + m +
                        "(...)' on state(shared) member '" +
                        sharedName + "'");
    }

    void
    handleFreeCall(const FunctionInfo &f, std::size_t line,
                   const std::string &name)
    {
        Merged mg = mergedOf(ix_, name);
        if (!mg.exists)
            return;
        if (mg.phase == PhaseKind::Shared) {
            violation(f, line,
                      "call into phase(shared) function " + name +
                          " from private-phase code");
            return;
        }
        enqueue(name);
    }

    void
    checkWrite(const FunctionInfo &f, std::size_t line, const Chain &ch,
               const std::map<std::string, std::string> &locals)
    {
        // The written location is the full chain; the final part (or
        // the base ident itself) is the mutated field.
        std::string finalName =
            ch.parts.empty() ? ch.baseIdent : ch.parts.back();
        if (finalName.empty())
            return;
        EvalResult r = evalChain(ch, f, locals);
        if (!r.sharedMember.empty()) {
            violation(f, line,
                      "write to state(shared) data through member '" +
                          r.sharedMember + "'");
            return;
        }
        if (r.fullyResolved && statsClasses_.count(r.finalOwner)) {
            violation(f, line,
                      "mutation of stats field " + r.finalOwner +
                          "::" + finalName + " in private-phase code");
            return;
        }
        if (!r.baseResolved && !ch.parts.empty()) {
            if (statsFieldNames_.count(finalName))
                warning(f, line,
                        "possible stats mutation '" + finalName +
                            "' on unresolved receiver");
            else if (sharedMemberNames_.count(finalName))
                warning(f, line,
                        "possible write to state(shared) '" + finalName +
                            "' on unresolved receiver");
        }
    }
};

} // namespace

PhaseReport
analyzePhaseSafety(const std::vector<SourceFile> &files,
                   const CodeIndex &index)
{
    return Analyzer(files, index).run();
}

PhaseReport
analyzePhaseSafety(const std::vector<SourceFile> &files)
{
    CodeIndex ix = buildIndex(files);
    return Analyzer(files, ix).run();
}

} // namespace toleo_lint
