/**
 * @file
 * toleo_lint: determinism guard-rail static checker.
 *
 * Every headline result of this reproduction rests on fixed-seed
 * statsToJson output being bit-identical across runs, --jobs counts,
 * record/replay, and rack decompositions.  The golden fixtures catch
 * a determinism bug after the fact; this tool bans the *classes* of
 * bug that have already bitten the tree (the PR 4 float->unsigned UB
 * cast, the PR 2 stats leaks) before they compile:
 *
 *   nondeterminism      banned entropy/time sources (std::rand,
 *                       time(), *_clock::now, std::this_thread,
 *                       getenv, random_device)
 *   unordered-iteration iterating std::unordered_{map,set} in a file
 *                       that also touches stats serialization, and
 *                       pointer-valued map/set keys anywhere
 *   unclamped-cast      static_cast/functional casts of floating
 *                       expressions to unsigned integers without an
 *                       adjacent clamp (the PR 4 bug shape)
 *   stats-serialization every SimStats/RackStats/RackNodeStats field
 *                       must appear in statsToJson/rackStatsToJson,
 *                       and every scalar stats field in the CSV
 *                       emitters (statsCsvRow, rackCsvRow)
 *   include-convention  quoted #includes must be src-relative or
 *                       repo-root-relative (subsumes the old
 *                       tests/check_includes.cmake)
 *   struct-init         scalar members of Config/Options/Stats
 *                       structs must carry in-class initializers
 *   raw-thread          std::thread/std::async/pthread_create outside
 *                       the sanctioned pool implementations
 *                       (sim/intra_pool, sim/sweep.cc); new
 *                       parallelism must preserve deterministic replay
 *   phase-safety        annotation-driven call-graph analysis: code
 *                       reachable from a // toleo: phase(private)
 *                       root must not write state(shared) data,
 *                       mutate stats structs, or call phase(shared)
 *                       functions (see phase_safety.hh)
 *   unused-suppression  allow() comments that suppressed nothing
 *                       (run after the other requested rules)
 *
 * A justified site is annotated, never globally silenced:
 *
 *   // toleo-lint: allow(<rule>[, <rule>...])
 *
 * on the offending line or the line directly above suppresses that
 * rule there.  Each rule family runs as its own ctest case
 * (lint_<rule>), plus lint_self_test, which feeds known-bad snippets
 * through every rule and fails if any rule has gone blind.  The tree
 * is loaded and stripped once per process; --rule accepts comma lists
 * so one invocation can run any subset.
 *
 * The scanner skips its own directory (tools/toleo_lint): this file
 * necessarily names every banned pattern in its rule tables.
 */

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/toleo_lint/lint_source.hh"
#include "tools/toleo_lint/phase_safety.hh"

namespace fs = std::filesystem;

using toleo_lint::Finding;
using toleo_lint::Linter;
using toleo_lint::makeSourceFile;
using toleo_lint::PhaseReport;
using toleo_lint::SourceFile;
using toleo_lint::splitLines;

namespace {

// ---------------------------------------------------------------------
// Rule: nondeterminism
// ---------------------------------------------------------------------

void
ruleNondeterminism(const std::vector<SourceFile> &files, Linter &lint)
{
    struct Pat
    {
        std::regex re;
        const char *what;
    };
    static const std::vector<Pat> pats = {
        {std::regex(R"(std\s*::\s*rand\b)"),
         "std::rand is unseeded global state; use toleo::Rng"},
        {std::regex(R"((^|[^\w:.>])s?rand\s*\()"),
         "rand()/srand() is unseeded global state; use toleo::Rng"},
        {std::regex(R"((^|[^\w:.>])time\s*\()"),
         "time() is wall-clock input; simulations must not read it"},
        {std::regex(
             R"((steady_clock|system_clock|high_resolution_clock)\s*::\s*now)"),
         "clock reads are nondeterministic; only --bench wall-time "
         "plumbing may use them (annotate the justified site)"},
        {std::regex(R"(std\s*::\s*this_thread)"),
         "std::this_thread (sleep/yield) makes timing part of the "
         "result"},
        {std::regex(R"(\brandom_device\b)"),
         "std::random_device is an entropy source; seed toleo::Rng "
         "explicitly"},
        {std::regex(R"((^|[^\w:.>])getenv\s*\(|std\s*::\s*getenv\b)"),
         "environment reads belong in whitelisted entry points only "
         "(annotate the justified site)"},
    };
    for (const auto &sf : files) {
        for (std::size_t i = 0; i < sf.code.size(); ++i) {
            for (const auto &p : pats) {
                if (std::regex_search(sf.code[i], p.re))
                    lint.emit(sf, i + 1, "nondeterminism", p.what);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: unordered-iteration
// ---------------------------------------------------------------------

void
ruleUnorderedIteration(const std::vector<SourceFile> &files, Linter &lint)
{
    static const std::regex statsRe(
        R"(\b(SimStats|RackStats|RackNodeStats|ServingStats|statsToJson|rackStatsToJson|servingStatsToJson|statsCsvRow)\b)");
    static const std::regex declRe(
        R"(unordered_(?:map|set)\s*<[^;{}()]*>\s+(\w+)\s*[;{=])");
    static const std::regex ptrKeyRe(
        R"((?:\bstd\s*::\s*|\bunordered_)(?:map|set)\s*<\s*(?:const\s+)?\w[\w:]*\s*\*)");

    for (const auto &sf : files) {
        // Pointer-valued keys hash/compare by address -- iteration
        // order then depends on the allocator.  Banned everywhere.
        for (std::size_t i = 0; i < sf.code.size(); ++i) {
            if (std::regex_search(sf.code[i], ptrKeyRe))
                lint.emit(sf, i + 1, "unordered-iteration",
                          "pointer-valued map/set key: ordering "
                          "depends on allocation addresses");
        }

        // Iterating an unordered container is only a hazard where the
        // result can reach serialized stats output.
        if (!std::regex_search(sf.joined, statsRe))
            continue;
        std::set<std::string> names;
        for (auto it = std::sregex_iterator(sf.joined.begin(),
                                            sf.joined.end(), declRe);
             it != std::sregex_iterator(); ++it)
            names.insert((*it)[1].str());
        for (const auto &name : names) {
            const std::regex iterRe(
                "for\\s*\\([^;)]*:\\s*" + name + "\\b|\\b" + name +
                "\\s*\\.\\s*(begin|cbegin|rbegin)\\s*\\(");
            for (std::size_t i = 0; i < sf.code.size(); ++i) {
                if (std::regex_search(sf.code[i], iterRe))
                    lint.emit(sf, i + 1, "unordered-iteration",
                              "iterating unordered container '" + name +
                                  "' in a file that feeds stats "
                                  "serialization: order is "
                                  "implementation-defined");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: unclamped-cast
// ---------------------------------------------------------------------

/** Heuristic: does this cast operand look floating-valued? */
bool
looksFloating(const std::string &expr)
{
    static const std::regex floatish(
        R"((\b\d+\.\d*|\B\.\d+)|\b(double|float)\b|\b(ceil|floor|round|lround|trunc|pow|sqrt|exp|log|log2|fma)\s*\(|\bnext(Double|Gaussian)\s*\(|[a-z](Ns|Gbps|GBps|Ghz|GHz|Fraction|Seconds|Ratio)\b)");
    return std::regex_search(expr, floatish);
}

void
ruleUnclampedCast(const std::vector<SourceFile> &files, Linter &lint)
{
    // static_cast<unsigned...>( and functional std::uintN_t( casts.
    static const std::regex castRe(
        R"(static_cast\s*<\s*(?:std\s*::\s*)?(unsigned(?:\s+(?:char|short|int|long))?(?:\s+long)?|u?int(?:8|16|32|64)_t|size_t|uintptr_t)\s*>\s*\(|\b(?:std\s*::\s*)?uint(?:8|16|32|64)_t\s*\()");
    static const std::regex clampRe(
        R"(\b(?:std\s*::\s*)?(min|max|clamp|isfinite)\s*[<(])");

    for (const auto &sf : files) {
        for (auto it = std::sregex_iterator(sf.joined.begin(),
                                            sf.joined.end(), castRe);
             it != std::sregex_iterator(); ++it) {
            // Extract the balanced-paren operand.
            std::size_t open = static_cast<std::size_t>(it->position()) +
                               static_cast<std::size_t>(it->length()) - 1;
            int depth = 1;
            std::size_t p = open + 1;
            while (p < sf.joined.size() && depth > 0) {
                if (sf.joined[p] == '(')
                    ++depth;
                else if (sf.joined[p] == ')')
                    --depth;
                ++p;
            }
            const std::string expr =
                sf.joined.substr(open + 1, p - open - 2);
            if (!looksFloating(expr))
                continue;

            const std::size_t line =
                sf.lineOfOffset(static_cast<std::size_t>(it->position()));
            const std::size_t endLine = sf.lineOfOffset(p);
            // An adjacent clamp (within two lines either side of the
            // cast expression) is the accepted guard shape.
            const std::size_t lo = line > 2 ? line - 2 : 1;
            const std::size_t hi =
                std::min(endLine + 2, sf.code.size());
            bool clamped = false;
            for (std::size_t l = lo; l <= hi && !clamped; ++l)
                clamped = std::regex_search(sf.code[l - 1], clampRe);
            if (!clamped)
                lint.emit(sf, line, "unclamped-cast",
                          "floating expression cast to unsigned "
                          "integer without an adjacent clamp "
                          "(std::min/max/clamp/isfinite): UB for "
                          "negative or over-range values");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: stats-serialization
// ---------------------------------------------------------------------

struct StructField
{
    std::string name;
    std::string type;
    const SourceFile *file = nullptr;
    std::size_t line = 0;
    bool scalar = false;
};

/** Find "struct <name>" and return its brace-matched body text plus
 *  per-field declarations parsed at depth 1. */
bool
parseStruct(const std::vector<SourceFile> &files, const std::string &name,
            std::vector<StructField> &out)
{
    const std::regex defRe("\\bstruct\\s+" + name + "\\b[^;{]*\\{");
    static const std::regex scalarRe(
        R"(^(?:const\s+)?(bool|char|short|int|long|unsigned|float|double|(?:std\s*::\s*)?u?int(?:8|16|32|64)_t|(?:std\s*::\s*)?size_t|Cycles|Addr|BlockNum|PageNum|Tick|EngineKind|Pattern|(?:std\s*::\s*)?string)\b)");
    for (const auto &sf : files) {
        std::smatch m;
        if (!std::regex_search(sf.joined, m, defRe))
            continue;
        std::size_t p = static_cast<std::size_t>(m.position()) +
                        static_cast<std::size_t>(m.length());
        int depth = 1;
        std::string decl;
        while (p < sf.joined.size() && depth > 0) {
            const char c = sf.joined[p];
            if (c == '{' || c == '(') {
                ++depth;
            } else if (c == '}' || c == ')') {
                --depth;
                if (depth == 0)
                    break;
            } else if (c == ';' && depth == 1) {
                // One declaration complete.
                std::string d = decl;
                decl.clear();
                // Trim.
                const auto b = d.find_first_not_of(" \t\n");
                if (b == std::string::npos) {
                    ++p;
                    continue;
                }
                d = d.substr(b);
                // Skip functions/usings/access/static members.
                if (d.find('(') == std::string::npos &&
                    d.rfind("using", 0) != 0 &&
                    d.rfind("static", 0) != 0 &&
                    d.rfind("struct", 0) != 0 &&
                    d.rfind("enum", 0) != 0 && !d.empty()) {
                    static const std::regex fieldRe(
                        R"(([A-Za-z_]\w*)\s*(?:\[[^\]]*\]\s*)?(=[^;]*|\{[^;]*\})?$)");
                    std::smatch fm;
                    std::string flat;
                    for (char ch : d)
                        flat += ch == '\n' ? ' ' : ch;
                    // Strip a trailing initializer for name matching.
                    const auto eq = flat.find('=');
                    std::string head =
                        eq == std::string::npos ? flat
                                                : flat.substr(0, eq);
                    while (!head.empty() &&
                           std::isspace(static_cast<unsigned char>(
                               head.back())))
                        head.pop_back();
                    if (std::regex_search(head, fm, fieldRe)) {
                        StructField f;
                        f.name = fm[1].str();
                        f.type = flat;
                        f.file = &sf;
                        // Report at the semicolon's line: the last
                        // line of the declaration, where the
                        // initializer would go.
                        f.line = sf.lineOfOffset(p);
                        f.scalar =
                            std::regex_search(flat, scalarRe) &&
                            flat.find('<') == std::string::npos;
                        out.push_back(std::move(f));
                    }
                }
                ++p;
                continue;
            }
            decl += c;
            ++p;
        }
        return true;
    }
    return false;
}

/** Brace-matched body of function <name>(...) { ... } if defined in
 *  any scanned file. */
std::string
functionBody(const std::vector<SourceFile> &files, const std::string &name)
{
    const std::regex defRe("\\b" + name + "\\s*\\([^;{)]*\\)\\s*\\{");
    for (const auto &sf : files) {
        std::smatch m;
        if (!std::regex_search(sf.joined, m, defRe))
            continue;
        std::size_t p = static_cast<std::size_t>(m.position()) +
                        static_cast<std::size_t>(m.length());
        int depth = 1;
        const std::size_t start = p;
        while (p < sf.joined.size() && depth > 0) {
            if (sf.joined[p] == '{')
                ++depth;
            else if (sf.joined[p] == '}')
                --depth;
            ++p;
        }
        return sf.joined.substr(start, p - start - 1);
    }
    return "";
}

void
checkFieldsSerialized(const std::vector<SourceFile> &files, Linter &lint,
                      const std::string &structName,
                      const std::string &fnName, bool scalarOnly)
{
    std::vector<StructField> fields;
    if (!parseStruct(files, structName, fields)) {
        // Struct not present in this corpus (self-test snippets):
        // nothing to check.
        return;
    }
    const std::string body = functionBody(files, fnName);
    if (body.empty()) {
        if (!fields.empty() && fields.front().file)
            lint.emit(*fields.front().file, fields.front().line,
                      "stats-serialization",
                      "serializer " + fnName + "() for " + structName +
                          " not found in the scanned tree");
        return;
    }
    for (const auto &f : fields) {
        if (scalarOnly && !f.scalar)
            continue;
        const std::regex useRe("[.>]\\s*" + f.name + "\\b");
        if (!std::regex_search(body, useRe))
            lint.emit(*f.file, f.line, "stats-serialization",
                      structName + "::" + f.name +
                          " is never serialized by " + fnName +
                          "(): adding a stat without serializing it "
                          "silently drops it from every report");
    }
}

void
ruleStatsSerialization(const std::vector<SourceFile> &files, Linter &lint)
{
    // JSON serializers must cover every field; the CSV emitters are
    // documented scalar-only, so compound fields are exempt there.
    checkFieldsSerialized(files, lint, "SimStats", "statsToJson", false);
    checkFieldsSerialized(files, lint, "SimStats", "statsCsvRow", true);
    checkFieldsSerialized(files, lint, "RackNodeStats",
                          "rackStatsToJson", false);
    checkFieldsSerialized(files, lint, "RackStats", "rackStatsToJson",
                          false);
    checkFieldsSerialized(files, lint, "ServingStats",
                          "servingStatsToJson", false);
    // CSV coverage: a new serving or rack stat must not silently miss
    // the CSV reports just because the JSON path carries it.
    checkFieldsSerialized(files, lint, "ServingStats", "statsCsvRow",
                          true);
    checkFieldsSerialized(files, lint, "RackNodeStats", "rackCsvRow",
                          true);
    checkFieldsSerialized(files, lint, "RackStats", "rackCsvRow", true);
}

// ---------------------------------------------------------------------
// Rule: include-convention
// ---------------------------------------------------------------------

void
ruleIncludeConvention(const std::vector<SourceFile> &files, Linter &lint)
{
    // Quoted includes must resolve against one of the two include
    // roots the build defines: src-relative for library headers
    // ("common/logging.hh") or repo-root-relative outside src/
    // ("bench/bench_util.hh", "tools/toleo_lint/phase_safety.hh").
    // Anything else compiles only by accident of the including file's
    // directory.
    static const std::set<std::string> allowed = {
        "cache", "common", "crypto",   "mem",   "secmem",
        "sim",   "toleo",  "workload", "bench", "tools"};
    static const std::regex incRe(
        R"re(^\s*#\s*include\s+"([^"]+)")re");
    for (const auto &sf : files) {
        for (std::size_t i = 0; i < sf.raw.size(); ++i) {
            std::smatch m;
            if (!std::regex_search(sf.raw[i], m, incRe))
                continue;
            const std::string path = m[1].str();
            const auto slash = path.find('/');
            const std::string prefix =
                slash == std::string::npos ? std::string()
                                           : path.substr(0, slash);
            if (!allowed.count(prefix))
                lint.emit(sf, i + 1, "include-convention",
                          "#include \"" + path +
                              "\" is not src-relative or "
                              "repo-root-relative");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: struct-init
// ---------------------------------------------------------------------

void
ruleStructInit(const std::vector<SourceFile> &files, Linter &lint)
{
    // Config/stats structs are aggregate-initialized all over the
    // tree; one bare scalar member means whichever site forgets to
    // set it reads indeterminate garbage -- a nondeterminism source
    // the sanitizers only catch if the branch executes.
    static const std::regex nameRe(
        R"(\bstruct\s+(\w*(?:Config|Options|Stats))\b)");
    for (const auto &sf : files) {
        for (auto it = std::sregex_iterator(sf.joined.begin(),
                                            sf.joined.end(), nameRe);
             it != std::sregex_iterator(); ++it) {
            const std::string structName = (*it)[1].str();
            std::vector<StructField> fields;
            if (!parseStruct(files, structName, fields))
                continue;
            for (const auto &f : fields) {
                if (f.file != &sf)
                    continue;
                const bool ptr =
                    f.type.find('*') != std::string::npos;
                const bool isString =
                    f.type.find("string") != std::string::npos;
                if (!ptr && (!f.scalar || isString))
                    continue; // class types default-construct safely
                const bool hasInit =
                    f.type.find('=') != std::string::npos ||
                    f.type.find('{') != std::string::npos;
                if (!hasInit)
                    lint.emit(sf, f.line, "struct-init",
                              structName + "::" + f.name +
                                  " has no in-class initializer: "
                                  "aggregate users that omit it read "
                                  "indeterminate garbage");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: raw-thread
// ---------------------------------------------------------------------

void
ruleRawThread(const std::vector<SourceFile> &files, Linter &lint)
{
    // Threading is only compatible with the determinism contract
    // here because every existing pool preserves the replay
    // structure: runCellPool (sim/sweep.cc) runs cells that share no
    // mutable state, and IntraPool (sim/intra_pool) runs per-core
    // private phases whose work assignment is a pure function of the
    // index.  A raw std::thread anywhere else has no such argument
    // attached, so it is banned: route new parallelism through one
    // of the pools (or extend this sanctioned list with the
    // accompanying reasoning).
    static const std::vector<std::string> sanctioned = {
        "src/sim/intra_pool.hh",
        "src/sim/intra_pool.cc",
        "src/sim/sweep.cc",
    };
    // hardware_concurrency() is a capacity query, not a spawn.
    static const std::regex threadRe(
        R"(std\s*::\s*j?thread\b(?!\s*::\s*hardware_concurrency))");
    static const std::regex spawnRe(
        R"(\bpthread_create\b|std\s*::\s*async\b)");
    for (const auto &sf : files) {
        if (std::find(sanctioned.begin(), sanctioned.end(), sf.path) !=
            sanctioned.end())
            continue;
        for (std::size_t i = 0; i < sf.code.size(); ++i) {
            if (std::regex_search(sf.code[i], threadRe) ||
                std::regex_search(sf.code[i], spawnRe))
                lint.emit(sf, i + 1, "raw-thread",
                          "raw thread spawn outside the sanctioned "
                          "pools: new parallelism must go through "
                          "IntraPool (per-core private phases) or "
                          "runCellPool (independent cells) so the "
                          "deterministic-replay structure survives");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: phase-safety
// ---------------------------------------------------------------------

/** Degradation notes from the last phase-safety run (printed by
 *  runRules; informational, never part of the exit status). */
std::vector<std::string> gPhaseWarnings;
/** Walk-coverage summary of the last phase-safety run. */
std::string gPhaseSummary;

void
rulePhaseSafety(const std::vector<SourceFile> &files, Linter &lint)
{
    // Only library code carries the phase discipline; test/bench
    // mocks would otherwise pollute the override sets.
    std::vector<SourceFile> srcFiles;
    for (const auto &sf : files)
        if (sf.path.rfind("src/", 0) == 0)
            srcFiles.push_back(sf);
    if (srcFiles.empty())
        return;
    PhaseReport rep = toleo_lint::analyzePhaseSafety(srcFiles);
    for (const auto &v : rep.violations) {
        // Map back to the caller's SourceFile so allow() grants and
        // finding paths refer to the real (unfiltered) file list.
        for (const auto &sf : files) {
            if (sf.path == v.file->path) {
                lint.emit(sf, v.line, "phase-safety", v.message);
                break;
            }
        }
    }
    for (const auto &w : rep.warnings)
        gPhaseWarnings.push_back(w.file->path + ":" +
                                 std::to_string(w.line) +
                                 ": note: [phase-safety] " + w.message);
    gPhaseSummary = "toleo_lint: phase-safety walked " +
                    std::to_string(rep.functionsWalked) +
                    " function(s) from " + std::to_string(rep.roots) +
                    " phase(private) root(s)";
    // Name every root so CI can assert a specific decomposition is
    // actually being proven (e.g. the rack node-step path), rather
    // than inferring it from a bare count.
    if (!rep.rootNames.empty()) {
        gPhaseSummary += " [roots: ";
        for (std::size_t i = 0; i < rep.rootNames.size(); ++i) {
            if (i)
                gPhaseSummary += ", ";
            gPhaseSummary += rep.rootNames[i];
        }
        gPhaseSummary += "]";
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

using RuleFn =
    std::function<void(const std::vector<SourceFile> &, Linter &)>;

const std::vector<std::pair<std::string, RuleFn>> &
ruleTable()
{
    static const std::vector<std::pair<std::string, RuleFn>> rules = {
        {"nondeterminism", ruleNondeterminism},
        {"unordered-iteration", ruleUnorderedIteration},
        {"unclamped-cast", ruleUnclampedCast},
        {"stats-serialization", ruleStatsSerialization},
        {"include-convention", ruleIncludeConvention},
        {"struct-init", ruleStructInit},
        {"raw-thread", ruleRawThread},
        {"phase-safety", rulePhaseSafety},
    };
    return rules;
}

/** The meta-rule: reported after the others, never in the table. */
const char *const kUnusedSuppression = "unused-suppression";

std::vector<std::string>
allRuleNames()
{
    std::vector<std::string> names;
    for (const auto &[name, fn] : ruleTable())
        names.push_back(name);
    names.push_back(kUnusedSuppression);
    return names;
}

bool
contains(const std::vector<std::string> &v, const std::string &s)
{
    return std::find(v.begin(), v.end(), s) != v.end();
}

/**
 * Run the requested rules over an already-loaded tree and return the
 * findings filtered to @p reportSet.  When unused-suppression is
 * requested, every table rule runs first (an allow() can only be
 * judged unused once everything it could suppress has fired), but
 * only @p reportSet findings are returned -- that keeps per-rule
 * ctest granularity cheap on top of a single load/strip pass.
 */
std::vector<Finding>
runRuleSet(const std::vector<SourceFile> &files,
           const std::vector<std::string> &reportSet)
{
    const bool wantUnused = contains(reportSet, kUnusedSuppression);
    Linter lint;
    std::vector<std::string> ran;
    for (const auto &[name, fn] : ruleTable()) {
        if (!wantUnused && !contains(reportSet, name))
            continue;
        fn(files, lint);
        ran.push_back(name);
    }
    if (wantUnused) {
        const std::vector<std::string> known = allRuleNames();
        for (const auto &sf : files) {
            for (const auto &site : sf.allowSites) {
                if (!contains(known, site.rule)) {
                    lint.emit(sf, site.line, kUnusedSuppression,
                              "allow(" + site.rule +
                                  ") references an unknown rule");
                    continue;
                }
                if (site.rule != kUnusedSuppression &&
                    !contains(ran, site.rule))
                    continue;
                if (!lint.allowUsed(sf, site))
                    lint.emit(sf, site.line, kUnusedSuppression,
                              "allow(" + site.rule +
                                  ") suppressed nothing: remove the "
                                  "stale annotation");
            }
        }
    }
    std::vector<Finding> out;
    for (const auto &f : lint.findings)
        if (contains(reportSet, f.rule))
            out.push_back(f);
    return out;
}

bool
isSourceExt(const fs::path &p)
{
    const std::string e = p.extension().string();
    return e == ".cc" || e == ".hh" || e == ".cpp" || e == ".hpp";
}

std::vector<SourceFile>
loadTree(const fs::path &root)
{
    std::vector<SourceFile> files;
    static const std::vector<std::string> dirs = {
        "src", "tools", "bench", "examples", "tests"};
    for (const auto &d : dirs) {
        const fs::path base = root / d;
        if (!fs::exists(base))
            continue;
        for (auto it = fs::recursive_directory_iterator(base);
             it != fs::recursive_directory_iterator(); ++it) {
            // The linter's own sources necessarily spell out every
            // banned pattern; scanning them would be self-flagging.
            if (it->is_directory() &&
                it->path().filename() == "toleo_lint") {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file() || !isSourceExt(it->path()))
                continue;
            std::ifstream in(it->path());
            std::stringstream ss;
            ss << in.rdbuf();
            files.push_back(makeSourceFile(
                fs::relative(it->path(), root).string(), ss.str()));
        }
    }
    std::sort(files.begin(), files.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.path < b.path;
              });
    return files;
}

int
runRules(const std::vector<SourceFile> &files,
         const std::vector<std::string> &requested)
{
    const std::vector<std::string> reportSet =
        requested.empty() ? allRuleNames() : requested;
    gPhaseWarnings.clear();
    gPhaseSummary.clear();
    const std::vector<Finding> findings = runRuleSet(files, reportSet);
    if (!gPhaseSummary.empty())
        std::cerr << gPhaseSummary << "\n";
    for (const auto &w : gPhaseWarnings)
        std::cerr << w << "\n";
    if (!gPhaseWarnings.empty())
        std::cerr << "toleo_lint: " << gPhaseWarnings.size()
                  << " unknown-callee warning(s) (degraded, not "
                     "findings)\n";
    for (const auto &f : findings)
        std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
    if (!findings.empty()) {
        std::cerr << "toleo_lint: " << findings.size()
                  << " finding(s)\n";
        return 1;
    }
    return 0;
}

// ---------------------------------------------------------------------
// Self-test: every rule must fire on its known-bad snippet and stay
// quiet once the snippet carries an allow() annotation.
// ---------------------------------------------------------------------

struct SelfCase
{
    std::string rule;
    /** Extra virtual files making up the case, path -> contents. */
    std::vector<std::pair<std::string, std::string>> files;
};

const std::vector<SelfCase> &
selfCases()
{
    static const std::vector<SelfCase> cases = {
        {"nondeterminism",
         {{"src/bad.cc", "int f() { return std::rand(); }\n"
                         "long g() { return time(nullptr); }\n"
                         "void h() { auto t = "
                         "std::chrono::steady_clock::now(); (void)t; }\n"}}},
        {"unordered-iteration",
         {{"src/bad.cc",
           "#include <unordered_map>\n"
           "void serialize(SimStats &s);\n"
           "std::unordered_map<int, int> tab;\n"
           "void f() { for (auto &kv : tab) { (void)kv; } }\n"},
          {"src/worse.hh",
           "#include <map>\n"
           "std::map<Foo *, int> byPtr;\n"}}},
        {"unclamped-cast",
         {{"src/bad.cc",
           "unsigned f(double x) { return "
           "static_cast<unsigned>(x * 1.5); }\n"}}},
        {"stats-serialization",
         {{"src/bad.hh", "struct SimStats {\n"
                         "    std::uint64_t refs = 0;\n"
                         "    double newStat = 0.0;\n"
                         "};\n"},
          {"src/bad.cc",
           "Json statsToJson(const SimStats &stats) {\n"
           "    Json j;\n"
           "    j[\"refs\"] = stats.refs;\n"
           "    return j;\n"
           "}\n"
           "std::string statsCsvRow(const SimStats &stats) {\n"
           "    return std::to_string(stats.refs);\n"
           "}\n"}}},
        // The serving-stats serializer is covered by the same
        // field-completeness sweep: a ServingStats field that
        // servingStatsToJson() never touches must fire.
        {"stats-serialization",
         {{"src/bad2.hh", "struct ServingStats {\n"
                          "    std::uint64_t requests = 0;\n"
                          "    double droppedStat = 0.0;\n"
                          "};\n"},
          {"src/bad2.cc",
           "Json servingStatsToJson(const ServingStats &stats) {\n"
           "    Json j;\n"
           "    j[\"requests\"] = stats.requests;\n"
           "    return j;\n"
           "}\n"
           "std::string statsCsvRow(const ServingStats &stats) {\n"
           "    return std::to_string(stats.requests);\n"
           "}\n"}}},
        // CSV emitters are held to the same standard: a scalar rack
        // stat missing from rackCsvRow must fire even when the JSON
        // serializer covers it.
        {"stats-serialization",
         {{"src/bad3.hh", "struct RackStats {\n"
                          "    std::uint64_t epochs = 0;\n"
                          "    double rackOnly = 0.0;\n"
                          "};\n"},
          {"src/bad3.cc",
           "Json rackStatsToJson(const RackStats &stats) {\n"
           "    Json j;\n"
           "    j[\"epochs\"] = stats.epochs;\n"
           "    j[\"rackOnly\"] = stats.rackOnly;\n"
           "    return j;\n"
           "}\n"
           "std::string rackCsvRow(const RackStats &stats) {\n"
           "    return std::to_string(stats.epochs);\n"
           "}\n"}}},
        {"include-convention",
         {{"src/bad.cc", "#include \"../sim/system.hh\"\n"}}},
        {"struct-init",
         {{"src/bad.hh", "struct FooConfig {\n"
                         "    unsigned good = 4;\n"
                         "    double bare;\n"
                         "};\n"}}},
        {"raw-thread",
         {{"src/bad.cc",
           "#include <thread>\n"
           "void f() { std::thread t([] {}); t.join(); }\n"
           "void g() { auto r = std::async([] { return 1; }); }\n"}}},
        // --- phase-safety violation shapes -------------------------
        // Direct write to state(shared) from a phase(private) root.
        {"phase-safety",
         {{"src/phase_direct.hh",
           "struct Sys {\n"
           "  // toleo: state(shared)\n"
           "  unsigned long total_ = 0;\n"
           "  // toleo: phase(private)\n"
           "  void privateCore(unsigned core);\n"
           "};\n"
           "void Sys::privateCore(unsigned core) {\n"
           "  total_ += core;\n"
           "}\n"}}},
        // Write reached through a two-deep call chain.
        {"phase-safety",
         {{"src/phase_chain.hh",
           "struct Sys {\n"
           "  // toleo: state(shared)\n"
           "  unsigned long total_ = 0;\n"
           "  // toleo: phase(private)\n"
           "  void privateCore(unsigned core);\n"
           "  void helpA(unsigned c);\n"
           "  void helpB(unsigned c);\n"
           "};\n"
           "void Sys::privateCore(unsigned core) { helpA(core); }\n"
           "void Sys::helpA(unsigned c) { helpB(c); }\n"
           "void Sys::helpB(unsigned c) { total_ = c; }\n"}}},
        // Write reached through virtual dispatch: the root calls
        // through a base pointer; only an override is dirty.
        {"phase-safety",
         {{"src/phase_virtual.hh",
           "struct Counters {\n"
           "  // toleo: state(shared)\n"
           "  unsigned long hits = 0;\n"
           "};\n"
           "struct Gen {\n"
           "  virtual void fill();\n"
           "  virtual ~Gen();\n"
           "};\n"
           "struct BadGen : Gen {\n"
           "  Counters *shared_;\n"
           "  void fill() override;\n"
           "};\n"
           "struct Sys {\n"
           "  Gen *gen_;\n"
           "  // toleo: phase(private)\n"
           "  void run();\n"
           "};\n"
           "void Sys::run() { gen_->fill(); }\n"
           "void BadGen::fill() { shared_->hits++; }\n"}}},
        // Const-laundering: a const method reached from the private
        // phase casts constness away and writes shared state.
        {"phase-safety",
         {{"src/phase_launder.hh",
           "struct Sys {\n"
           "  // toleo: state(shared)\n"
           "  unsigned long seen_ = 0;\n"
           "  unsigned long peek() const;\n"
           "  // toleo: phase(private)\n"
           "  void probe();\n"
           "};\n"
           "void Sys::probe() { (void)peek(); }\n"
           "unsigned long Sys::peek() const {\n"
           "  const_cast<Sys *>(this)->seen_ = 1;\n"
           "  return seen_;\n"
           "}\n"}}},
        // Calling into the shared phase from the private phase.
        {"phase-safety",
         {{"src/phase_cross.hh",
           "struct Sys {\n"
           "  // toleo: phase(shared)\n"
           "  void replay();\n"
           "  // toleo: phase(private)\n"
           "  void core();\n"
           "};\n"
           "void Sys::core() { replay(); }\n"
           "void Sys::replay() {}\n"}}},
        // Non-const method call on a state(shared) member object.
        {"phase-safety",
         {{"src/phase_nonconst.hh",
           "struct Pool {\n"
           "  void reset();\n"
           "  unsigned long size() const;\n"
           "};\n"
           "struct Sys {\n"
           "  // toleo: state(shared)\n"
           "  Pool pool_;\n"
           "  // toleo: phase(private)\n"
           "  void core();\n"
           "};\n"
           "void Sys::core() { pool_.reset(); (void)pool_.size(); }\n"}}},
        // Mutating a stats struct field from the private phase.
        {"phase-safety",
         {{"src/phase_stats.hh",
           "struct SimStats { unsigned long refs = 0; };\n"
           "struct Sys {\n"
           "  SimStats stats_;\n"
           "  // toleo: phase(private)\n"
           "  void core();\n"
           "};\n"
           "void Sys::core() { stats_.refs += 1; }\n"}}},
    };
    return cases;
}

int
selfTest()
{
    int failures = 0;
    for (const auto &c : selfCases()) {
        std::vector<SourceFile> files;
        for (const auto &[path, text] : c.files)
            files.push_back(makeSourceFile(path, text));
        if (runRuleSet(files, {c.rule}).empty()) {
            std::cerr << "self-test FAIL: rule '" << c.rule
                      << "' missed its known-bad snippet ("
                      << c.files.front().first << ")\n";
            ++failures;
        }

        // The same snippets with every line annotated must be clean:
        // the suppression channel works per rule.
        std::vector<SourceFile> suppressed;
        for (const auto &[path, text] : c.files) {
            std::string annotated;
            for (const auto &l : splitLines(text))
                annotated +=
                    l + " // toleo-lint: allow(" + c.rule + ")\n";
            suppressed.push_back(makeSourceFile(path, annotated));
        }
        if (!runRuleSet(suppressed, {c.rule}).empty()) {
            std::cerr << "self-test FAIL: rule '" << c.rule
                      << "' ignored allow() suppressions ("
                      << c.files.front().first << ")\n";
            ++failures;
        }
    }

    // Degradation: constructs the resolver cannot see through must
    // surface as unknown-callee warnings, never as silent certainty
    // (and never as false violations).
    {
        std::vector<SourceFile> files;
        files.push_back(makeSourceFile(
            "src/phase_macro.hh",
            "struct Sys {\n"
            "  // toleo: phase(private)\n"
            "  void core();\n"
            "};\n"
            "void Sys::core() { TOLEO_MAGIC(1); }\n"));
        PhaseReport rep = toleo_lint::analyzePhaseSafety(files);
        if (!rep.violations.empty() || rep.warnings.empty()) {
            std::cerr << "self-test FAIL: phase-safety macro call must "
                         "degrade to a warning (got "
                      << rep.violations.size() << " violations, "
                      << rep.warnings.size() << " warnings)\n";
            ++failures;
        }
    }

    // A clean, fully annotated snippet must stay silent end to end.
    {
        std::vector<SourceFile> files;
        files.push_back(makeSourceFile(
            "src/phase_clean.hh",
            "struct Sys {\n"
            "  // toleo: state(per-core)\n"
            "  unsigned long perCore_[8];\n"
            "  // toleo: state(shared)\n"
            "  unsigned long total_ = 0;\n"
            "  // toleo: phase(private)\n"
            "  void core(unsigned c);\n"
            "  // toleo: phase(shared)\n"
            "  void replay();\n"
            "};\n"
            "void Sys::core(unsigned c) { perCore_[c] += 1; }\n"
            "void Sys::replay() { total_ += 1; }\n"));
        if (!runRuleSet(files, {"phase-safety"}).empty()) {
            std::cerr << "self-test FAIL: phase-safety flagged a clean "
                         "annotated snippet\n";
            ++failures;
        }
    }

    // Unused suppressions: an allow() that suppressed nothing is
    // itself a finding, and is silenced by allow(unused-suppression)
    // on the same line.
    {
        std::vector<SourceFile> files;
        files.push_back(makeSourceFile(
            "src/stale.cc",
            "int clean() { return 1; } // toleo-lint: "
            "allow(nondeterminism)\n"));
        const auto findings =
            runRuleSet(files, {kUnusedSuppression});
        bool ok = findings.size() == 1 &&
                  findings.front().rule == kUnusedSuppression;
        if (!ok) {
            std::cerr << "self-test FAIL: unused-suppression missed a "
                         "stale allow()\n";
            ++failures;
        }
        std::vector<SourceFile> suppressed;
        suppressed.push_back(makeSourceFile(
            "src/stale.cc",
            "int clean() { return 1; } // toleo-lint: "
            "allow(nondeterminism) // toleo-lint: "
            "allow(unused-suppression)\n"));
        if (!runRuleSet(suppressed, {kUnusedSuppression}).empty()) {
            std::cerr << "self-test FAIL: unused-suppression ignored "
                         "its own allow()\n";
            ++failures;
        }
        // And a *used* allow() must not be reported.
        std::vector<SourceFile> used;
        used.push_back(makeSourceFile(
            "src/used.cc",
            "int f() { return std::rand(); } // toleo-lint: "
            "allow(nondeterminism)\n"));
        if (!runRuleSet(used, {kUnusedSuppression}).empty()) {
            std::cerr << "self-test FAIL: unused-suppression flagged a "
                         "working allow()\n";
            ++failures;
        }
    }

    if (failures == 0) {
        std::cout << "self-test OK: " << selfCases().size()
                  << " rule cases fire and suppress correctly; "
                     "degradation, clean-tree, and unused-suppression "
                     "checks hold\n";
        return 0;
    }
    return 1;
}

void
usage()
{
    std::cerr
        << "usage: toleo_lint --root DIR [--rule NAME[,NAME...]]...\n"
        << "       toleo_lint --list-rules | --self-test\n"
        << "Scans DIR/{src,tools,bench,examples,tests} for determinism\n"
        << "hazards.  The tree is loaded once; --rule filters which\n"
        << "rule families are reported.  Exit 0 = clean, 1 = findings,\n"
        << "2 = usage error.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root;
    std::vector<std::string> rules;
    bool doSelfTest = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--rule" && i + 1 < argc) {
            std::stringstream ss(argv[++i]);
            std::string name;
            while (std::getline(ss, name, ','))
                if (!name.empty())
                    rules.push_back(name);
        } else if (arg == "--list-rules") {
            for (const auto &name : allRuleNames())
                std::cout << name << "\n";
            return 0;
        } else if (arg == "--self-test") {
            doSelfTest = true;
        } else {
            usage();
            return 2;
        }
    }
    if (doSelfTest)
        return selfTest();
    if (root.empty()) {
        usage();
        return 2;
    }
    const std::vector<std::string> known = allRuleNames();
    for (const auto &r : rules) {
        if (std::find(known.begin(), known.end(), r) == known.end()) {
            std::cerr << "toleo_lint: unknown rule '" << r << "'\n";
            return 2;
        }
    }
    return runRules(loadTree(root), rules);
}
