/**
 * @file
 * toleo_lint: determinism guard-rail static checker.
 *
 * Every headline result of this reproduction rests on fixed-seed
 * statsToJson output being bit-identical across runs, --jobs counts,
 * record/replay, and rack decompositions.  The golden fixtures catch
 * a determinism bug after the fact; this tool bans the *classes* of
 * bug that have already bitten the tree (the PR 4 float->unsigned UB
 * cast, the PR 2 stats leaks) before they compile:
 *
 *   nondeterminism      banned entropy/time sources (std::rand,
 *                       time(), *_clock::now, std::this_thread,
 *                       getenv, random_device)
 *   unordered-iteration iterating std::unordered_{map,set} in a file
 *                       that also touches stats serialization, and
 *                       pointer-valued map/set keys anywhere
 *   unclamped-cast      static_cast/functional casts of floating
 *                       expressions to unsigned integers without an
 *                       adjacent clamp (the PR 4 bug shape)
 *   stats-serialization every SimStats/RackStats/RackNodeStats field
 *                       must appear in statsToJson/rackStatsToJson,
 *                       and every scalar SimStats field in statsCsvRow
 *   include-convention  quoted #includes must be src-relative or
 *                       repo-root-relative (subsumes the old
 *                       tests/check_includes.cmake)
 *   struct-init         scalar members of Config/Options/Stats
 *                       structs must carry in-class initializers
 *   raw-thread          std::thread/std::async/pthread_create outside
 *                       the sanctioned pool implementations
 *                       (sim/intra_pool, sim/sweep.cc); new
 *                       parallelism must preserve deterministic replay
 *
 * A justified site is annotated, never globally silenced:
 *
 *   // toleo-lint: allow(<rule>[, <rule>...])
 *
 * on the offending line or the line directly above suppresses that
 * rule there.  Each rule family runs as its own ctest case
 * (lint_<rule>), plus lint_self_test, which feeds known-bad snippets
 * through every rule and fails if any rule has gone blind.
 *
 * The scanner skips its own directory (tools/toleo_lint): this file
 * necessarily names every banned pattern in its rule tables.
 */

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding
{
    std::string file;
    std::size_t line = 0;
    std::string rule;
    std::string message;
};

/** One scanned translation unit: raw text, stripped text, and the
 *  per-line suppression sets parsed from toleo-lint comments. */
struct SourceFile
{
    std::string path; ///< display path (relative to the scan root)
    std::vector<std::string> raw;
    /** Comment and string-literal contents blanked, line structure
     *  preserved, so rules never fire on prose or log messages. */
    std::vector<std::string> code;
    /** code lines joined with '\n' (for multi-line regex scans). */
    std::string joined;
    /** Byte offset of each line within joined. */
    std::vector<std::size_t> lineOffset;
    /** line -> rules suppressed on that line. */
    std::map<std::size_t, std::set<std::string>> allow;

    bool
    allowed(std::size_t line, const std::string &rule) const
    {
        auto it = allow.find(line);
        return it != allow.end() && it->second.count(rule);
    }

    std::size_t
    lineOfOffset(std::size_t off) const
    {
        auto it = std::upper_bound(lineOffset.begin(), lineOffset.end(),
                                   off);
        return static_cast<std::size_t>(it - lineOffset.begin());
    }
};

/** Blank comments and string/char literal contents, preserving line
 *  breaks so findings keep their line numbers. */
std::string
stripCommentsAndStrings(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    enum class St { Code, Line, Block, Str, Chr, Raw };
    St st = St::Code;
    std::string rawDelim;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char n = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (st) {
        case St::Code:
            if (c == '/' && n == '/') {
                st = St::Line;
                out += "  ";
                ++i;
            } else if (c == '/' && n == '*') {
                st = St::Block;
                out += "  ";
                ++i;
            } else if (c == 'R' && n == '"' &&
                       (i == 0 || (!std::isalnum(static_cast<unsigned
                                                     char>(text[i - 1])) &&
                                   text[i - 1] != '_'))) {
                // R"delim( ... )delim"
                std::size_t p = i + 2;
                rawDelim.clear();
                while (p < text.size() && text[p] != '(')
                    rawDelim += text[p++];
                rawDelim = ")" + rawDelim + "\"";
                st = St::Raw;
                out += "R\"";
                out.append(p - (i + 1), ' ');
                i = p; // at '('
            } else if (c == '"') {
                st = St::Str;
                out += c;
            } else if (c == '\'') {
                st = St::Chr;
                out += c;
            } else {
                out += c;
            }
            break;
        case St::Line:
            if (c == '\n') {
                st = St::Code;
                out += c;
            } else {
                out += ' ';
            }
            break;
        case St::Block:
            if (c == '*' && n == '/') {
                st = St::Code;
                out += "  ";
                ++i;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        case St::Str:
            if (c == '\\') {
                out += "  ";
                ++i;
            } else if (c == '"') {
                st = St::Code;
                out += c;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        case St::Chr:
            if (c == '\\') {
                out += "  ";
                ++i;
            } else if (c == '\'') {
                st = St::Code;
                out += c;
            } else {
                out += ' ';
            }
            break;
        case St::Raw:
            if (text.compare(i, rawDelim.size(), rawDelim) == 0) {
                out += rawDelim;
                i += rawDelim.size() - 1;
                st = St::Code;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        }
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

SourceFile
makeSourceFile(std::string display, const std::string &text)
{
    SourceFile sf;
    sf.path = std::move(display);
    sf.raw = splitLines(text);
    sf.joined = stripCommentsAndStrings(text);
    sf.code = splitLines(sf.joined);
    sf.lineOffset.reserve(sf.code.size());
    std::size_t off = 0;
    for (const auto &l : sf.code) {
        sf.lineOffset.push_back(off);
        off += l.size() + 1;
    }

    // Parse suppression comments from the raw text: an allow() on a
    // line covers that line and the next, so a comment line can
    // annotate the declaration below it.
    static const std::regex allowRe(
        "toleo-lint:\\s*allow\\(([A-Za-z0-9_, -]+)\\)");
    for (std::size_t i = 0; i < sf.raw.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(sf.raw[i], m, allowRe))
            continue;
        std::stringstream ss(m[1].str());
        std::string rule;
        while (std::getline(ss, rule, ',')) {
            rule.erase(0, rule.find_first_not_of(" \t"));
            rule.erase(rule.find_last_not_of(" \t") + 1);
            if (rule.empty())
                continue;
            sf.allow[i + 1].insert(rule);
            sf.allow[i + 2].insert(rule);
        }
    }
    return sf;
}

class Linter
{
  public:
    void
    emit(const SourceFile &sf, std::size_t line, const std::string &rule,
         const std::string &message)
    {
        if (sf.allowed(line, rule))
            return;
        findings.push_back({sf.path, line, rule, message});
    }

    std::vector<Finding> findings;
};

// ---------------------------------------------------------------------
// Rule: nondeterminism
// ---------------------------------------------------------------------

void
ruleNondeterminism(const std::vector<SourceFile> &files, Linter &lint)
{
    struct Pat
    {
        std::regex re;
        const char *what;
    };
    static const std::vector<Pat> pats = {
        {std::regex(R"(std\s*::\s*rand\b)"),
         "std::rand is unseeded global state; use toleo::Rng"},
        {std::regex(R"((^|[^\w:.>])s?rand\s*\()"),
         "rand()/srand() is unseeded global state; use toleo::Rng"},
        {std::regex(R"((^|[^\w:.>])time\s*\()"),
         "time() is wall-clock input; simulations must not read it"},
        {std::regex(
             R"((steady_clock|system_clock|high_resolution_clock)\s*::\s*now)"),
         "clock reads are nondeterministic; only --bench wall-time "
         "plumbing may use them (annotate the justified site)"},
        {std::regex(R"(std\s*::\s*this_thread)"),
         "std::this_thread (sleep/yield) makes timing part of the "
         "result"},
        {std::regex(R"(\brandom_device\b)"),
         "std::random_device is an entropy source; seed toleo::Rng "
         "explicitly"},
        {std::regex(R"((^|[^\w:.>])getenv\s*\(|std\s*::\s*getenv\b)"),
         "environment reads belong in whitelisted entry points only "
         "(annotate the justified site)"},
    };
    for (const auto &sf : files) {
        for (std::size_t i = 0; i < sf.code.size(); ++i) {
            for (const auto &p : pats) {
                if (std::regex_search(sf.code[i], p.re))
                    lint.emit(sf, i + 1, "nondeterminism", p.what);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: unordered-iteration
// ---------------------------------------------------------------------

void
ruleUnorderedIteration(const std::vector<SourceFile> &files, Linter &lint)
{
    static const std::regex statsRe(
        R"(\b(SimStats|RackStats|RackNodeStats|ServingStats|statsToJson|rackStatsToJson|servingStatsToJson|statsCsvRow)\b)");
    static const std::regex declRe(
        R"(unordered_(?:map|set)\s*<[^;{}()]*>\s+(\w+)\s*[;{=])");
    static const std::regex ptrKeyRe(
        R"((?:\bstd\s*::\s*|\bunordered_)(?:map|set)\s*<\s*(?:const\s+)?\w[\w:]*\s*\*)");

    for (const auto &sf : files) {
        // Pointer-valued keys hash/compare by address -- iteration
        // order then depends on the allocator.  Banned everywhere.
        for (std::size_t i = 0; i < sf.code.size(); ++i) {
            if (std::regex_search(sf.code[i], ptrKeyRe))
                lint.emit(sf, i + 1, "unordered-iteration",
                          "pointer-valued map/set key: ordering "
                          "depends on allocation addresses");
        }

        // Iterating an unordered container is only a hazard where the
        // result can reach serialized stats output.
        if (!std::regex_search(sf.joined, statsRe))
            continue;
        std::set<std::string> names;
        for (auto it = std::sregex_iterator(sf.joined.begin(),
                                            sf.joined.end(), declRe);
             it != std::sregex_iterator(); ++it)
            names.insert((*it)[1].str());
        for (const auto &name : names) {
            const std::regex iterRe(
                "for\\s*\\([^;)]*:\\s*" + name + "\\b|\\b" + name +
                "\\s*\\.\\s*(begin|cbegin|rbegin)\\s*\\(");
            for (std::size_t i = 0; i < sf.code.size(); ++i) {
                if (std::regex_search(sf.code[i], iterRe))
                    lint.emit(sf, i + 1, "unordered-iteration",
                              "iterating unordered container '" + name +
                                  "' in a file that feeds stats "
                                  "serialization: order is "
                                  "implementation-defined");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: unclamped-cast
// ---------------------------------------------------------------------

/** Heuristic: does this cast operand look floating-valued? */
bool
looksFloating(const std::string &expr)
{
    static const std::regex floatish(
        R"((\b\d+\.\d*|\B\.\d+)|\b(double|float)\b|\b(ceil|floor|round|lround|trunc|pow|sqrt|exp|log|log2|fma)\s*\(|\bnext(Double|Gaussian)\s*\(|[a-z](Ns|Gbps|GBps|Ghz|GHz|Fraction|Seconds|Ratio)\b)");
    return std::regex_search(expr, floatish);
}

void
ruleUnclampedCast(const std::vector<SourceFile> &files, Linter &lint)
{
    // static_cast<unsigned...>( and functional std::uintN_t( casts.
    static const std::regex castRe(
        R"(static_cast\s*<\s*(?:std\s*::\s*)?(unsigned(?:\s+(?:char|short|int|long))?(?:\s+long)?|u?int(?:8|16|32|64)_t|size_t|uintptr_t)\s*>\s*\(|\b(?:std\s*::\s*)?uint(?:8|16|32|64)_t\s*\()");
    static const std::regex clampRe(
        R"(\b(?:std\s*::\s*)?(min|max|clamp|isfinite)\s*[<(])");

    for (const auto &sf : files) {
        for (auto it = std::sregex_iterator(sf.joined.begin(),
                                            sf.joined.end(), castRe);
             it != std::sregex_iterator(); ++it) {
            // Extract the balanced-paren operand.
            std::size_t open = static_cast<std::size_t>(it->position()) +
                               static_cast<std::size_t>(it->length()) - 1;
            int depth = 1;
            std::size_t p = open + 1;
            while (p < sf.joined.size() && depth > 0) {
                if (sf.joined[p] == '(')
                    ++depth;
                else if (sf.joined[p] == ')')
                    --depth;
                ++p;
            }
            const std::string expr =
                sf.joined.substr(open + 1, p - open - 2);
            if (!looksFloating(expr))
                continue;

            const std::size_t line =
                sf.lineOfOffset(static_cast<std::size_t>(it->position()));
            const std::size_t endLine = sf.lineOfOffset(p);
            // An adjacent clamp (within two lines either side of the
            // cast expression) is the accepted guard shape.
            const std::size_t lo = line > 2 ? line - 2 : 1;
            const std::size_t hi =
                std::min(endLine + 2, sf.code.size());
            bool clamped = false;
            for (std::size_t l = lo; l <= hi && !clamped; ++l)
                clamped = std::regex_search(sf.code[l - 1], clampRe);
            if (!clamped)
                lint.emit(sf, line, "unclamped-cast",
                          "floating expression cast to unsigned "
                          "integer without an adjacent clamp "
                          "(std::min/max/clamp/isfinite): UB for "
                          "negative or over-range values");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: stats-serialization
// ---------------------------------------------------------------------

struct StructField
{
    std::string name;
    std::string type;
    const SourceFile *file = nullptr;
    std::size_t line = 0;
    bool scalar = false;
};

/** Find "struct <name>" and return its brace-matched body text plus
 *  per-field declarations parsed at depth 1. */
bool
parseStruct(const std::vector<SourceFile> &files, const std::string &name,
            std::vector<StructField> &out)
{
    const std::regex defRe("\\bstruct\\s+" + name + "\\b[^;{]*\\{");
    static const std::regex scalarRe(
        R"(^(?:const\s+)?(bool|char|short|int|long|unsigned|float|double|(?:std\s*::\s*)?u?int(?:8|16|32|64)_t|(?:std\s*::\s*)?size_t|Cycles|Addr|BlockNum|PageNum|Tick|EngineKind|Pattern|(?:std\s*::\s*)?string)\b)");
    for (const auto &sf : files) {
        std::smatch m;
        if (!std::regex_search(sf.joined, m, defRe))
            continue;
        std::size_t p = static_cast<std::size_t>(m.position()) +
                        static_cast<std::size_t>(m.length());
        int depth = 1;
        std::string decl;
        while (p < sf.joined.size() && depth > 0) {
            const char c = sf.joined[p];
            if (c == '{' || c == '(') {
                ++depth;
            } else if (c == '}' || c == ')') {
                --depth;
                if (depth == 0)
                    break;
            } else if (c == ';' && depth == 1) {
                // One declaration complete.
                std::string d = decl;
                decl.clear();
                // Trim.
                const auto b = d.find_first_not_of(" \t\n");
                if (b == std::string::npos) {
                    ++p;
                    continue;
                }
                d = d.substr(b);
                // Skip functions/usings/access/static members.
                if (d.find('(') == std::string::npos &&
                    d.rfind("using", 0) != 0 &&
                    d.rfind("static", 0) != 0 &&
                    d.rfind("struct", 0) != 0 &&
                    d.rfind("enum", 0) != 0 && !d.empty()) {
                    static const std::regex fieldRe(
                        R"(([A-Za-z_]\w*)\s*(?:\[[^\]]*\]\s*)?(=[^;]*|\{[^;]*\})?$)");
                    std::smatch fm;
                    std::string flat;
                    for (char ch : d)
                        flat += ch == '\n' ? ' ' : ch;
                    // Strip a trailing initializer for name matching.
                    const auto eq = flat.find('=');
                    std::string head =
                        eq == std::string::npos ? flat
                                                : flat.substr(0, eq);
                    while (!head.empty() &&
                           std::isspace(static_cast<unsigned char>(
                               head.back())))
                        head.pop_back();
                    if (std::regex_search(head, fm, fieldRe)) {
                        StructField f;
                        f.name = fm[1].str();
                        f.type = flat;
                        f.file = &sf;
                        // Report at the semicolon's line: the last
                        // line of the declaration, where the
                        // initializer would go.
                        f.line = sf.lineOfOffset(p);
                        f.scalar =
                            std::regex_search(flat, scalarRe) &&
                            flat.find('<') == std::string::npos;
                        out.push_back(std::move(f));
                    }
                }
                ++p;
                continue;
            }
            decl += c;
            ++p;
        }
        return true;
    }
    return false;
}

/** Brace-matched body of function <name>(...) { ... } if defined in
 *  any scanned file. */
std::string
functionBody(const std::vector<SourceFile> &files, const std::string &name)
{
    const std::regex defRe("\\b" + name + "\\s*\\([^;{)]*\\)\\s*\\{");
    for (const auto &sf : files) {
        std::smatch m;
        if (!std::regex_search(sf.joined, m, defRe))
            continue;
        std::size_t p = static_cast<std::size_t>(m.position()) +
                        static_cast<std::size_t>(m.length());
        int depth = 1;
        const std::size_t start = p;
        while (p < sf.joined.size() && depth > 0) {
            if (sf.joined[p] == '{')
                ++depth;
            else if (sf.joined[p] == '}')
                --depth;
            ++p;
        }
        return sf.joined.substr(start, p - start - 1);
    }
    return "";
}

void
checkFieldsSerialized(const std::vector<SourceFile> &files, Linter &lint,
                      const std::string &structName,
                      const std::string &fnName, bool scalarOnly)
{
    std::vector<StructField> fields;
    if (!parseStruct(files, structName, fields)) {
        // Struct not present in this corpus (self-test snippets):
        // nothing to check.
        return;
    }
    const std::string body = functionBody(files, fnName);
    if (body.empty()) {
        if (!fields.empty() && fields.front().file)
            lint.emit(*fields.front().file, fields.front().line,
                      "stats-serialization",
                      "serializer " + fnName + "() for " + structName +
                          " not found in the scanned tree");
        return;
    }
    for (const auto &f : fields) {
        if (scalarOnly && !f.scalar)
            continue;
        const std::regex useRe("[.>]\\s*" + f.name + "\\b");
        if (!std::regex_search(body, useRe))
            lint.emit(*f.file, f.line, "stats-serialization",
                      structName + "::" + f.name +
                          " is never serialized by " + fnName +
                          "(): adding a stat without serializing it "
                          "silently drops it from every report");
    }
}

void
ruleStatsSerialization(const std::vector<SourceFile> &files, Linter &lint)
{
    // JSON serializers must cover every field; the CSV row is
    // documented scalar-only, so compound fields are exempt there.
    checkFieldsSerialized(files, lint, "SimStats", "statsToJson", false);
    checkFieldsSerialized(files, lint, "SimStats", "statsCsvRow", true);
    checkFieldsSerialized(files, lint, "RackNodeStats",
                          "rackStatsToJson", false);
    checkFieldsSerialized(files, lint, "RackStats", "rackStatsToJson",
                          false);
    checkFieldsSerialized(files, lint, "ServingStats",
                          "servingStatsToJson", false);
}

// ---------------------------------------------------------------------
// Rule: include-convention
// ---------------------------------------------------------------------

void
ruleIncludeConvention(const std::vector<SourceFile> &files, Linter &lint)
{
    // Quoted includes must resolve against one of the two include
    // roots the build defines: src-relative for library headers
    // ("common/logging.hh") or repo-root-relative outside src/
    // ("bench/bench_util.hh").  Anything else compiles only by
    // accident of the including file's directory.
    static const std::set<std::string> allowed = {
        "cache", "common", "crypto",   "mem",  "secmem",
        "sim",   "toleo",  "workload", "bench"};
    static const std::regex incRe(
        R"re(^\s*#\s*include\s+"([^"]+)")re");
    for (const auto &sf : files) {
        for (std::size_t i = 0; i < sf.raw.size(); ++i) {
            std::smatch m;
            if (!std::regex_search(sf.raw[i], m, incRe))
                continue;
            const std::string path = m[1].str();
            const auto slash = path.find('/');
            const std::string prefix =
                slash == std::string::npos ? std::string()
                                           : path.substr(0, slash);
            if (!allowed.count(prefix))
                lint.emit(sf, i + 1, "include-convention",
                          "#include \"" + path +
                              "\" is not src-relative or "
                              "repo-root-relative");
        }
    }
}

// ---------------------------------------------------------------------
// Rule: struct-init
// ---------------------------------------------------------------------

void
ruleStructInit(const std::vector<SourceFile> &files, Linter &lint)
{
    // Config/stats structs are aggregate-initialized all over the
    // tree; one bare scalar member means whichever site forgets to
    // set it reads indeterminate garbage -- a nondeterminism source
    // the sanitizers only catch if the branch executes.
    static const std::regex nameRe(
        R"(\bstruct\s+(\w*(?:Config|Options|Stats))\b)");
    for (const auto &sf : files) {
        for (auto it = std::sregex_iterator(sf.joined.begin(),
                                            sf.joined.end(), nameRe);
             it != std::sregex_iterator(); ++it) {
            const std::string structName = (*it)[1].str();
            std::vector<StructField> fields;
            if (!parseStruct(files, structName, fields))
                continue;
            for (const auto &f : fields) {
                if (f.file != &sf)
                    continue;
                const bool ptr =
                    f.type.find('*') != std::string::npos;
                const bool isString =
                    f.type.find("string") != std::string::npos;
                if (!ptr && (!f.scalar || isString))
                    continue; // class types default-construct safely
                const bool hasInit =
                    f.type.find('=') != std::string::npos ||
                    f.type.find('{') != std::string::npos;
                if (!hasInit)
                    lint.emit(sf, f.line, "struct-init",
                              structName + "::" + f.name +
                                  " has no in-class initializer: "
                                  "aggregate users that omit it read "
                                  "indeterminate garbage");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: raw-thread
// ---------------------------------------------------------------------

void
ruleRawThread(const std::vector<SourceFile> &files, Linter &lint)
{
    // Threading is only compatible with the determinism contract
    // here because every existing pool preserves the replay
    // structure: runCellPool (sim/sweep.cc) runs cells that share no
    // mutable state, and IntraPool (sim/intra_pool) runs per-core
    // private phases whose work assignment is a pure function of the
    // index.  A raw std::thread anywhere else has no such argument
    // attached, so it is banned: route new parallelism through one
    // of the pools (or extend this sanctioned list with the
    // accompanying reasoning).
    static const std::vector<std::string> sanctioned = {
        "src/sim/intra_pool.hh",
        "src/sim/intra_pool.cc",
        "src/sim/sweep.cc",
    };
    // hardware_concurrency() is a capacity query, not a spawn.
    static const std::regex threadRe(
        R"(std\s*::\s*j?thread\b(?!\s*::\s*hardware_concurrency))");
    static const std::regex spawnRe(
        R"(\bpthread_create\b|std\s*::\s*async\b)");
    for (const auto &sf : files) {
        if (std::find(sanctioned.begin(), sanctioned.end(), sf.path) !=
            sanctioned.end())
            continue;
        for (std::size_t i = 0; i < sf.code.size(); ++i) {
            if (std::regex_search(sf.code[i], threadRe) ||
                std::regex_search(sf.code[i], spawnRe))
                lint.emit(sf, i + 1, "raw-thread",
                          "raw thread spawn outside the sanctioned "
                          "pools: new parallelism must go through "
                          "IntraPool (per-core private phases) or "
                          "runCellPool (independent cells) so the "
                          "deterministic-replay structure survives");
        }
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

using RuleFn =
    std::function<void(const std::vector<SourceFile> &, Linter &)>;

const std::vector<std::pair<std::string, RuleFn>> &
ruleTable()
{
    static const std::vector<std::pair<std::string, RuleFn>> rules = {
        {"nondeterminism", ruleNondeterminism},
        {"unordered-iteration", ruleUnorderedIteration},
        {"unclamped-cast", ruleUnclampedCast},
        {"stats-serialization", ruleStatsSerialization},
        {"include-convention", ruleIncludeConvention},
        {"struct-init", ruleStructInit},
        {"raw-thread", ruleRawThread},
    };
    return rules;
}

bool
isSourceExt(const fs::path &p)
{
    const std::string e = p.extension().string();
    return e == ".cc" || e == ".hh" || e == ".cpp" || e == ".hpp";
}

std::vector<SourceFile>
loadTree(const fs::path &root)
{
    std::vector<SourceFile> files;
    static const std::vector<std::string> dirs = {
        "src", "tools", "bench", "examples", "tests"};
    for (const auto &d : dirs) {
        const fs::path base = root / d;
        if (!fs::exists(base))
            continue;
        for (auto it = fs::recursive_directory_iterator(base);
             it != fs::recursive_directory_iterator(); ++it) {
            // The linter's own sources necessarily spell out every
            // banned pattern; scanning them would be self-flagging.
            if (it->is_directory() &&
                it->path().filename() == "toleo_lint") {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file() || !isSourceExt(it->path()))
                continue;
            std::ifstream in(it->path());
            std::stringstream ss;
            ss << in.rdbuf();
            files.push_back(makeSourceFile(
                fs::relative(it->path(), root).string(), ss.str()));
        }
    }
    std::sort(files.begin(), files.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.path < b.path;
              });
    return files;
}

int
runRules(const std::vector<SourceFile> &files,
         const std::vector<std::string> &ruleNames)
{
    Linter lint;
    for (const auto &[name, fn] : ruleTable()) {
        if (!ruleNames.empty() &&
            std::find(ruleNames.begin(), ruleNames.end(), name) ==
                ruleNames.end())
            continue;
        fn(files, lint);
    }
    for (const auto &f : lint.findings)
        std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
    if (!lint.findings.empty()) {
        std::cerr << "toleo_lint: " << lint.findings.size()
                  << " finding(s)\n";
        return 1;
    }
    return 0;
}

// ---------------------------------------------------------------------
// Self-test: every rule must fire on its known-bad snippet and stay
// quiet once the snippet carries an allow() annotation.
// ---------------------------------------------------------------------

struct SelfCase
{
    std::string rule;
    /** Extra virtual files making up the case, path -> contents. */
    std::vector<std::pair<std::string, std::string>> files;
};

int
selfTest()
{
    const std::vector<SelfCase> cases = {
        {"nondeterminism",
         {{"src/bad.cc", "int f() { return std::rand(); }\n"
                         "long g() { return time(nullptr); }\n"
                         "void h() { auto t = "
                         "std::chrono::steady_clock::now(); (void)t; }\n"}}},
        {"unordered-iteration",
         {{"src/bad.cc",
           "#include <unordered_map>\n"
           "void serialize(SimStats &s);\n"
           "std::unordered_map<int, int> tab;\n"
           "void f() { for (auto &kv : tab) { (void)kv; } }\n"},
          {"src/worse.hh",
           "#include <map>\n"
           "std::map<Foo *, int> byPtr;\n"}}},
        {"unclamped-cast",
         {{"src/bad.cc",
           "unsigned f(double x) { return "
           "static_cast<unsigned>(x * 1.5); }\n"}}},
        {"stats-serialization",
         {{"src/bad.hh", "struct SimStats {\n"
                         "    std::uint64_t refs = 0;\n"
                         "    double newStat = 0.0;\n"
                         "};\n"},
          {"src/bad.cc",
           "Json statsToJson(const SimStats &stats) {\n"
           "    Json j;\n"
           "    j[\"refs\"] = stats.refs;\n"
           "    return j;\n"
           "}\n"
           "std::string statsCsvRow(const SimStats &stats) {\n"
           "    return std::to_string(stats.refs);\n"
           "}\n"}}},
        // The serving-stats serializer is covered by the same
        // field-completeness sweep: a ServingStats field that
        // servingStatsToJson() never touches must fire.
        {"stats-serialization",
         {{"src/bad2.hh", "struct ServingStats {\n"
                          "    std::uint64_t requests = 0;\n"
                          "    double droppedStat = 0.0;\n"
                          "};\n"},
          {"src/bad2.cc",
           "Json servingStatsToJson(const ServingStats &stats) {\n"
           "    Json j;\n"
           "    j[\"requests\"] = stats.requests;\n"
           "    return j;\n"
           "}\n"}}},
        {"include-convention",
         {{"src/bad.cc", "#include \"../sim/system.hh\"\n"}}},
        {"struct-init",
         {{"src/bad.hh", "struct FooConfig {\n"
                         "    unsigned good = 4;\n"
                         "    double bare;\n"
                         "};\n"}}},
        {"raw-thread",
         {{"src/bad.cc",
           "#include <thread>\n"
           "void f() { std::thread t([] {}); t.join(); }\n"
           "void g() { auto r = std::async([] { return 1; }); }\n"}}},
    };

    int failures = 0;
    for (const auto &c : cases) {
        std::vector<SourceFile> files;
        for (const auto &[path, text] : c.files)
            files.push_back(makeSourceFile(path, text));
        Linter lint;
        for (const auto &[name, fn] : ruleTable())
            if (name == c.rule)
                fn(files, lint);
        if (lint.findings.empty()) {
            std::cerr << "self-test FAIL: rule '" << c.rule
                      << "' missed its known-bad snippet\n";
            ++failures;
        }

        // The same snippets with every line annotated must be clean:
        // the suppression channel works per rule.
        std::vector<SourceFile> suppressed;
        for (const auto &[path, text] : c.files) {
            std::string annotated;
            for (const auto &l : splitLines(text))
                annotated +=
                    l + " // toleo-lint: allow(" + c.rule + ")\n";
            suppressed.push_back(makeSourceFile(path, annotated));
        }
        Linter lint2;
        for (const auto &[name, fn] : ruleTable())
            if (name == c.rule)
                fn(suppressed, lint2);
        if (!lint2.findings.empty()) {
            std::cerr << "self-test FAIL: rule '" << c.rule
                      << "' ignored allow() suppressions\n";
            ++failures;
        }
    }
    if (failures == 0) {
        std::cout << "self-test OK: " << cases.size()
                  << " rule families fire and suppress correctly\n";
        return 0;
    }
    return 1;
}

void
usage()
{
    std::cerr
        << "usage: toleo_lint --root DIR [--rule NAME]... \n"
        << "       toleo_lint --list-rules | --self-test\n"
        << "Scans DIR/{src,tools,bench,examples,tests} for determinism\n"
        << "hazards.  Exit 0 = clean, 1 = findings, 2 = usage error.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root;
    std::vector<std::string> rules;
    bool doSelfTest = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--rule" && i + 1 < argc) {
            rules.push_back(argv[++i]);
        } else if (arg == "--list-rules") {
            for (const auto &[name, fn] : ruleTable())
                std::cout << name << "\n";
            return 0;
        } else if (arg == "--self-test") {
            doSelfTest = true;
        } else {
            usage();
            return 2;
        }
    }
    if (doSelfTest)
        return selfTest();
    if (root.empty()) {
        usage();
        return 2;
    }
    for (const auto &r : rules) {
        bool known = false;
        for (const auto &[name, fn] : ruleTable())
            known = known || name == r;
        if (!known) {
            std::cerr << "toleo_lint: unknown rule '" << r << "'\n";
            return 2;
        }
    }
    return runRules(loadTree(root), rules);
}
