/**
 * @file
 * Phase-safety static race analysis for the toleo tree.
 *
 * The repo's load-bearing invariant -- bit-identical fixed-seed stats
 * under any --threads-per-cell / --jobs combination -- rests on a
 * phase discipline: inside System::stepRounds the *private* phase may
 * run per-core bodies concurrently (IntraPool), so everything
 * reachable from a private-phase entry point must touch only
 * core-indexed or instance-local state; all genuinely shared
 * structures are mutated only in the single-threaded *shared* replay
 * phase.  TSan checks this discipline on the executions the test grid
 * happens to run; this pass checks it on the *code*, over every
 * app/engine combination at once.
 *
 * The source of truth is annotations in comments:
 *
 *   // toleo: phase(private)   on private-phase entry points
 *   // toleo: phase(shared)    on shared-replay-only code
 *   // toleo: state(shared)    on members shared across cores/nodes
 *   // toleo: state(per-core)  on members indexed/partitioned by core
 *
 * The analysis tokenizes every file under src/, indexes classes
 * (members, methods, bases, annotations), builds an intra-repo call
 * graph (qualified-name resolution; virtual calls fan out over the
 * indexed override set), walks everything reachable from each
 * phase(private) root, and reports:
 *
 *   - any write (or call to a non-const method) on state(shared) data,
 *   - any mutation of a SimStats/ServingStats/RackStats/RackNodeStats
 *     field,
 *   - any call into a phase(shared) function.
 *
 * Anything the resolver cannot see through -- macro invocations,
 *  calls on receivers it cannot type, methods missing from an indexed
 * class -- degrades to an "unknown callee" warning, never to silent
 * certainty.  A justified site is suppressed with
 * `// toleo-lint: allow(phase-safety)` plus a why-comment.
 */

#ifndef TOLEO_LINT_PHASE_SAFETY_HH
#define TOLEO_LINT_PHASE_SAFETY_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/toleo_lint/lint_source.hh"

namespace toleo_lint {

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

struct Token
{
    enum class Kind { Ident, Number, Punct };
    Kind kind = Kind::Punct;
    std::string text;
    std::size_t line = 0; ///< 1-based source line
};

/**
 * Tokenize stripped source text (see stripCommentsAndStrings):
 * identifiers, numbers, and multi-char operators ("::", "->", "+=",
 * "==", ...).  Preprocessor lines (and their backslash
 * continuations) are skipped entirely, so both arms of an #if block
 * contribute declarations but no directive tokens.
 */
std::vector<Token> tokenize(const SourceFile &sf);

// ---------------------------------------------------------------------
// Declaration / member index
// ---------------------------------------------------------------------

enum class PhaseKind { None, Private, Shared };
enum class StateKind { None, Shared, PerCore };

struct MemberInfo
{
    std::string name;
    std::string className; ///< owning class
    StateKind state = StateKind::None;
    /** Resolved class type when the declaration names an indexed
     *  class (innermost template argument wins); "" otherwise. */
    std::string typeClass;
    /** Declaration had template arguments (container / smart
     *  pointer): typeClass is the *element* type, so a method called
     *  directly on the member (no [i] / deref) is a container
     *  operation, not an element method. */
    bool container = false;
    const SourceFile *file = nullptr;
    std::size_t line = 0;
};

struct FunctionInfo
{
    std::string name;      ///< unqualified
    std::string className; ///< "" for free functions
    bool isVirtual = false;
    bool isConst = false;
    bool hasBody = false;
    PhaseKind phase = PhaseKind::None;
    const SourceFile *file = nullptr;
    std::size_t line = 0;      ///< declaration/definition line
    std::size_t fileIndex = 0; ///< index into CodeIndex::tokens
    /** Parameter-list token range (paren) for local-type resolution. */
    std::size_t paramBegin = 0;
    std::size_t paramEnd = 0;
    /** Body token range [bodyBegin, bodyEnd) when hasBody. */
    std::size_t bodyBegin = 0;
    std::size_t bodyEnd = 0;

    std::string
    qualName() const
    {
        return className.empty() ? name : className + "::" + name;
    }
};

struct ClassInfo
{
    std::string name;
    std::vector<std::string> bases; ///< direct base class names
    std::vector<std::string> memberNames;
    std::set<std::string> methodNames;
    bool hasSharedState = false; ///< any state(shared) member
};

struct CodeIndex
{
    /** Token stream per input file (parallel to the files vector the
     *  index was built from). */
    std::vector<std::vector<Token>> tokens;
    std::map<std::string, ClassInfo> classes;
    std::vector<FunctionInfo> functions;
    /** "Class::name" or bare name -> indices into functions. */
    std::map<std::string, std::vector<std::size_t>> functionsByQual;
    /** Unqualified method name -> indices (for degradation checks). */
    std::map<std::string, std::vector<std::size_t>> methodsByName;
    /** "Class::member" -> member record. */
    std::map<std::string, MemberInfo> members;
    /** class -> direct subclasses (for virtual fan-out). */
    std::map<std::string, std::vector<std::string>> derived;

    const MemberInfo *
    findMember(const std::string &cls, const std::string &name) const;

    /** Member lookup through the base-class chain of @p cls. */
    const MemberInfo *
    findMemberInherited(const std::string &cls,
                        const std::string &name) const;

    /** Method lookup through the base-class chain; nullptr or the
     *  first declaration's info (flags merged across redecls). */
    const FunctionInfo *
    findMethodInherited(const std::string &cls,
                        const std::string &name) const;

    /** Transitive subclasses of @p cls (not including @p cls). */
    std::vector<std::string>
    transitiveDerived(const std::string &cls) const;
};

/**
 * Index class declarations, data members, function
 * declarations/definitions, and phase/state annotations across
 * @p files.  The returned index points into @p files; keep them
 * alive.
 */
CodeIndex buildIndex(const std::vector<SourceFile> &files);

// ---------------------------------------------------------------------
// Phase-safety analysis
// ---------------------------------------------------------------------

struct PhaseIssue
{
    const SourceFile *file = nullptr;
    std::size_t line = 0;
    std::string message;
};

struct PhaseReport
{
    /** Discipline violations (lint findings). */
    std::vector<PhaseIssue> violations;
    /** Unknown-callee degradations: sites the resolver could not see
     *  through.  Not findings -- but never silently dropped. */
    std::vector<PhaseIssue> warnings;
    std::size_t roots = 0;
    std::size_t functionsWalked = 0;
    /** Qualified names of the phase(private) roots, in walk order
     *  (functionsByQual map order, i.e. sorted).  Printed with the
     *  summary so CI can assert that a path it cares about -- e.g.
     *  the rack node-step root -- is actually being proven. */
    std::vector<std::string> rootNames;
};

/** Analyze a pre-built index (files must outlive the report). */
PhaseReport analyzePhaseSafety(const std::vector<SourceFile> &files,
                               const CodeIndex &index);

/** Convenience: buildIndex + analyze. */
PhaseReport analyzePhaseSafety(const std::vector<SourceFile> &files);

} // namespace toleo_lint

#endif // TOLEO_LINT_PHASE_SAFETY_HH
